#include "common/strings.h"

#include <gtest/gtest.h>

namespace privmark {
namespace {

TEST(HexTest, EncodeKnownBytes) {
  EXPECT_EQ(HexEncode({0x00, 0xFF, 0x1a}), "00ff1a");
  EXPECT_EQ(HexEncode({}), "");
}

TEST(HexTest, DecodeRoundTrip) {
  const std::vector<uint8_t> bytes = {0xde, 0xad, 0xbe, 0xef, 0x00};
  auto decoded = HexDecode(HexEncode(bytes));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bytes);
}

TEST(HexTest, DecodeAcceptsUppercase) {
  auto decoded = HexDecode("DEADBEEF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(HexEncode(*decoded), "deadbeef");
}

TEST(HexTest, DecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(HexTest, DecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, InvertsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("privmark", "priv"));
  EXPECT_TRUE(StartsWith("priv", "priv"));
  EXPECT_FALSE(StartsWith("pri", "priv"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.5, 3), "2.500");
}

}  // namespace
}  // namespace privmark
