#include "common/bitvec.h"

#include <gtest/gtest.h>

namespace privmark {
namespace {

TEST(BitVectorTest, DefaultEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.ToString(), "");
}

TEST(BitVectorTest, ConstructAllZeros) {
  BitVector v(70);
  EXPECT_EQ(v.size(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVectorTest, ConstructAllOnes) {
  BitVector v(70, true);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(v.Get(i));
  // Padding bits must not break equality with a manually filled vector.
  BitVector w(70);
  for (size_t i = 0; i < 70; ++i) w.Set(i, true);
  EXPECT_EQ(v, w);
}

TEST(BitVectorTest, SetAndGet) {
  BitVector v(10);
  v.Set(3, true);
  v.Set(9, true);
  EXPECT_TRUE(v.Get(3));
  EXPECT_TRUE(v.Get(9));
  EXPECT_FALSE(v.Get(4));
  v.Set(3, false);
  EXPECT_FALSE(v.Get(3));
}

TEST(BitVectorTest, PushBackGrowsAcrossWords) {
  BitVector v;
  for (int i = 0; i < 130; ++i) v.PushBack(i % 3 == 0);
  EXPECT_EQ(v.size(), 130u);
  for (int i = 0; i < 130; ++i) EXPECT_EQ(v.Get(i), i % 3 == 0);
}

TEST(BitVectorTest, FromStringRoundTrip) {
  auto v = BitVector::FromString("0110010111");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToString(), "0110010111");
}

TEST(BitVectorTest, FromStringRejectsJunk) {
  EXPECT_FALSE(BitVector::FromString("01x0").ok());
}

TEST(BitVectorTest, FromDigestTakesMsbFirst) {
  // 0xA5 = 10100101.
  auto v = BitVector::FromDigest({0xA5}, 8);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToString(), "10100101");
}

TEST(BitVectorTest, FromDigestPrefix) {
  auto v = BitVector::FromDigest({0xFF, 0x00}, 10);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToString(), "1111111100");
}

TEST(BitVectorTest, FromDigestRejectsOverlongRequest) {
  EXPECT_FALSE(BitVector::FromDigest({0xFF}, 9).ok());
}

TEST(BitVectorTest, DuplicateConcatenatesCopies) {
  auto v = BitVector::FromString("101").ValueOrDie();
  const BitVector d = v.Duplicate(3);
  EXPECT_EQ(d.ToString(), "101101101");
}

TEST(BitVectorTest, DuplicateZeroCopiesIsEmpty) {
  auto v = BitVector::FromString("101").ValueOrDie();
  EXPECT_TRUE(v.Duplicate(0).empty());
}

TEST(BitVectorTest, HammingDistance) {
  auto a = BitVector::FromString("10101").ValueOrDie();
  auto b = BitVector::FromString("10010").ValueOrDie();
  ASSERT_TRUE(a.HammingDistance(b).ok());
  EXPECT_EQ(*a.HammingDistance(b), 3u);
  EXPECT_EQ(*a.HammingDistance(a), 0u);
}

TEST(BitVectorTest, HammingDistanceSizeMismatch) {
  auto a = BitVector::FromString("101").ValueOrDie();
  auto b = BitVector::FromString("10").ValueOrDie();
  EXPECT_FALSE(a.HammingDistance(b).ok());
}

TEST(BitVectorTest, LossFraction) {
  auto a = BitVector::FromString("1111").ValueOrDie();
  auto b = BitVector::FromString("1001").ValueOrDie();
  EXPECT_DOUBLE_EQ(*a.LossFraction(b), 0.5);
  EXPECT_DOUBLE_EQ(*a.LossFraction(a), 0.0);
}

TEST(BitVectorTest, EqualityIsValueBased) {
  auto a = BitVector::FromString("0011").ValueOrDie();
  auto b = BitVector::FromString("0011").ValueOrDie();
  auto c = BitVector::FromString("0010").ValueOrDie();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace privmark
