#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace privmark {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status st = Status::InvalidArgument("k must be >= 2");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "k must be >= 2");
  EXPECT_EQ(st.ToString(), "InvalidArgument: k must be >= 2");
}

TEST(StatusTest, AllFactoriesMapToTheirCodes) {
  EXPECT_EQ(Status::KeyError("x").code(), StatusCode::kKeyError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unbinnable("x").code(), StatusCode::kUnbinnable);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::VerificationFailed("x").code(),
            StatusCode::kVerificationFailed);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::KeyError("a"), Status::KeyError("a"));
  EXPECT_FALSE(Status::KeyError("a") == Status::KeyError("b"));
  EXPECT_FALSE(Status::KeyError("a") == Status::IOError("a"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnbinnable), "Unbinnable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kVerificationFailed),
               "VerificationFailed");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::KeyError("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  PRIVMARK_RETURN_NOT_OK(FailIfNegative(x));
  return x * 2;
}

Result<int> ChainedViaAssign(int x) {
  PRIVMARK_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(DoubleIfPositive(-1).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultMacrosTest, AssignOrReturnUnwrapsAndPropagates) {
  ASSERT_TRUE(ChainedViaAssign(5).ok());
  EXPECT_EQ(*ChainedViaAssign(5), 11);
  EXPECT_EQ(ChainedViaAssign(-2).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace privmark
