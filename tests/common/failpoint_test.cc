// Unit tests for the deterministic failpoint registry. In builds
// without PRIVMARK_FAILPOINTS_ENABLED the macro is a constant and the
// registry is never armed by production code; these tests exercise the
// registry API directly, which exists in every build.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.h"

namespace privmark {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().Reset(); }
  void TearDown() override { FailpointRegistry::Instance().Reset(); }
};

TEST_F(FailpointTest, UnconfiguredNeverFires) {
  auto& registry = FailpointRegistry::Instance();
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(registry.Hit("nope"));
  EXPECT_EQ(registry.hit_count("nope"), 0u);  // unarmed fast path: no count
}

TEST_F(FailpointTest, AlwaysAndOffModes) {
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.Configure("p", "always").ok());
  EXPECT_TRUE(registry.Hit("p"));
  EXPECT_TRUE(registry.Hit("p"));
  ASSERT_TRUE(registry.Configure("p", "off").ok());
  EXPECT_FALSE(registry.Hit("p"));
}

TEST_F(FailpointTest, NthFiresFromNthHitOn) {
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.Configure("p", "nth:3").ok());
  EXPECT_FALSE(registry.Hit("p"));
  EXPECT_FALSE(registry.Hit("p"));
  EXPECT_TRUE(registry.Hit("p"));
  EXPECT_TRUE(registry.Hit("p"));
  EXPECT_EQ(registry.hit_count("p"), 4u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.Configure("p", "once:2").ok());
  EXPECT_FALSE(registry.Hit("p"));
  EXPECT_TRUE(registry.Hit("p"));
  EXPECT_FALSE(registry.Hit("p"));
  EXPECT_FALSE(registry.Hit("p"));
}

TEST_F(FailpointTest, ProbIsDeterministicPerSeed) {
  auto& registry = FailpointRegistry::Instance();
  auto draw_pattern = [&registry](const std::string& trigger) {
    EXPECT_TRUE(registry.Configure("p", trigger).ok());
    std::vector<bool> fired;
    fired.reserve(64);
    for (int i = 0; i < 64; ++i) fired.push_back(registry.Hit("p"));
    return fired;
  };
  const std::vector<bool> a = draw_pattern("prob:0.3:42");
  const std::vector<bool> b = draw_pattern("prob:0.3:42");
  const std::vector<bool> c = draw_pattern("prob:0.3:43");
  EXPECT_EQ(a, b);       // same seed -> same firing pattern
  EXPECT_NE(a, c);       // different seed -> (with 64 draws) different
  size_t fired = 0;
  for (bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 64u);
}

TEST_F(FailpointTest, SpecParsesMultipleEntries) {
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(
      registry.ConfigureFromSpec("a=always; b=nth:2 ;c=off").ok());
  EXPECT_TRUE(registry.Hit("a"));
  EXPECT_FALSE(registry.Hit("b"));
  EXPECT_TRUE(registry.Hit("b"));
  EXPECT_FALSE(registry.Hit("c"));
}

TEST_F(FailpointTest, MalformedTriggersRejected) {
  auto& registry = FailpointRegistry::Instance();
  EXPECT_FALSE(registry.Configure("p", "sometimes").ok());
  EXPECT_FALSE(registry.Configure("p", "nth:0").ok());
  EXPECT_FALSE(registry.Configure("p", "nth:abc").ok());
  EXPECT_FALSE(registry.Configure("p", "nth:99999999999999999999999").ok());
  EXPECT_FALSE(registry.Configure("p", "prob:1.5:1").ok());
  EXPECT_FALSE(registry.Configure("p", "prob:0.5").ok());
  EXPECT_FALSE(registry.Configure("", "always").ok());
  EXPECT_FALSE(registry.ConfigureFromSpec("no-equals-sign").ok());
}

#if defined(PRIVMARK_FAILPOINTS_ENABLED)
TEST_F(FailpointTest, MacroSitesAreLiveInThisBuild) {
  auto& registry = FailpointRegistry::Instance();
  // The ThreadPool dispatch site is the one macro site reachable without
  // any IO: arm it, run a pooled batch, and expect the injected error to
  // surface as the lowest-numbered task's exception.
  ASSERT_TRUE(registry.Configure("threadpool.dispatch", "always").ok());
  ThreadPool pool(3);
  EXPECT_THROW(pool.Run(8, [](size_t) {}), std::runtime_error);
  ASSERT_TRUE(registry.Configure("threadpool.dispatch", "off").ok());
  // Disarmed again: the same batch runs clean.
  std::atomic<size_t> ran{0};
  pool.Run(8, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8u);
}
#else
TEST_F(FailpointTest, MacroCompilesToNothingInThisBuild) {
  // Arm a point that production sites hit: the macro is a constant, so
  // nothing fires and nothing counts.
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.Configure("threadpool.dispatch", "always").ok());
  ThreadPool pool(3);
  std::atomic<size_t> ran{0};
  EXPECT_NO_THROW(pool.Run(8, [&](size_t) { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 8u);
  EXPECT_EQ(registry.hit_count("threadpool.dispatch"), 0u);
}
#endif

}  // namespace
}  // namespace privmark
