// Unit tests for the deterministic parallel substrate: sharding math,
// pool lifecycle and reuse, concurrent batch submission and capped
// leases (the service's pool-sharing substrate), Status/exception
// propagation, and the shard-order merge guarantee of ParallelReduce.

#include "common/parallel.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace privmark {
namespace {

TEST(ShardRangesTest, EmptyCountYieldsNoShards) {
  EXPECT_TRUE(ShardRanges(0, 1).empty());
  EXPECT_TRUE(ShardRanges(0, 8).empty());
}

TEST(ShardRangesTest, SingleElement) {
  const auto shards = ShardRanges(1, 8);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], (ShardRange{0, 1}));
}

TEST(ShardRangesTest, ZeroShardsTreatedAsOne) {
  const auto shards = ShardRanges(5, 0);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], (ShardRange{0, 5}));
}

TEST(ShardRangesTest, FewerElementsThanShardsAllNonEmpty) {
  const auto shards = ShardRanges(3, 7);
  ASSERT_EQ(shards.size(), 3u);
  for (size_t s = 0; s < shards.size(); ++s) {
    EXPECT_EQ(shards[s].size(), 1u) << "shard " << s;
  }
}

TEST(ShardRangesTest, CoversRangeContiguouslyWithBalancedSizes) {
  for (size_t count : {1u, 2u, 7u, 100u, 101u, 20000u}) {
    for (size_t n : {1u, 2u, 3u, 7u, 8u, 64u}) {
      const auto shards = ShardRanges(count, n);
      ASSERT_EQ(shards.size(), std::min<size_t>(n, count));
      size_t expected_begin = 0;
      size_t min_size = count;
      size_t max_size = 0;
      for (const ShardRange& shard : shards) {
        EXPECT_EQ(shard.begin, expected_begin);
        EXPECT_GT(shard.size(), 0u);
        min_size = std::min(min_size, shard.size());
        max_size = std::max(max_size, shard.size());
        expected_begin = shard.end;
      }
      EXPECT_EQ(expected_begin, count);
      EXPECT_LE(max_size - min_size, 1u) << count << " over " << n;
    }
  }
}

TEST(ShardRangesTest, DependsOnlyOnCountAndShards) {
  EXPECT_EQ(ShardRanges(12345, 7), ShardRanges(12345, 7));
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(10, 0);
  pool.Run(10, [&](size_t i) { hits[i] = static_cast<int>(i) + 1; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp) {
  ThreadPool pool(4);
  pool.Run(0, [&](size_t) { FAIL() << "task ran for an empty batch"; });
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.Run(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, PoolReusableAcrossSubmissions) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.Run(17, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 17u * 18u / 2u) << "round " << round;
  }
}

TEST(ThreadPoolTest, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.Run(16, [&](size_t i) {
      if (i == 5 || i == 11) {
        throw std::runtime_error("task " + std::to_string(i));
      }
      completed.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Deterministic choice: the lowest-numbered throwing task.
    EXPECT_STREQ(e.what(), "task 5");
  }
  // Every non-throwing task still ran (no partial abandonment).
  EXPECT_EQ(completed.load(), 14);
  // The pool survives a throwing batch.
  std::atomic<size_t> sum{0};
  pool.Run(8, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 28u);
}

TEST(ThreadPoolTest, SerialPathExceptionAlsoPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.Run(3,
                        [](size_t i) {
                          if (i == 1) throw std::logic_error("boom");
                        }),
               std::logic_error);
}

TEST(MakeThreadPoolTest, OneThreadMeansNoPool) {
  EXPECT_EQ(MakeThreadPool(1), nullptr);
  const auto pool = MakeThreadPool(3);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->num_threads(), 3u);
  const auto hw = MakeThreadPool(0);
  ASSERT_NE(hw, nullptr);
  EXPECT_GE(hw->num_threads(), 1u);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<char> seen(100, 0);
  const Status status =
      ParallelFor(nullptr, seen.size(), [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) seen[i] = 1;
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  for (char c : seen) EXPECT_EQ(c, 1);
}

TEST(ParallelForTest, EmptyRangeOk) {
  ThreadPool pool(4);
  const Status status = ParallelFor(&pool, 0, [&](size_t, size_t, size_t) {
    return Status::InvalidArgument("must not run");
  });
  EXPECT_TRUE(status.ok());
}

TEST(ParallelForTest, CoversRangeOnPool) {
  ThreadPool pool(4);
  std::vector<char> seen(1001, 0);
  const Status status =
      ParallelFor(&pool, seen.size(), [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) seen[i] = 1;  // shard-owned
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  for (char c : seen) EXPECT_EQ(c, 1);
}

TEST(ParallelForTest, FirstFailingShardInShardOrderWins) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const Status status =
        ParallelFor(&pool, 1000, [&](size_t shard, size_t, size_t) {
          if (shard >= 1) {
            return Status::OutOfRange("shard " + std::to_string(shard));
          }
          return Status::OK();
        });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
    // Shards 1, 2, 3 all fail; shard order makes shard 1 the answer.
    EXPECT_EQ(status.message(), "shard 1");
  }
}

TEST(ParallelReduceTest, EmptyCountReturnsInit) {
  ThreadPool pool(4);
  const Result<int> result = ParallelReduce<int>(
      &pool, 0, 42,
      [](size_t, size_t, size_t) -> Result<int> {
        return Status::InvalidArgument("must not run");
      },
      [](int* acc, int&& x) { *acc += x; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ParallelReduceTest, SumsMatchSerial) {
  ThreadPool pool(3);
  const size_t n = 12345;
  const Result<uint64_t> result = ParallelReduce<uint64_t>(
      &pool, n, uint64_t{0},
      [](size_t, size_t begin, size_t end) -> Result<uint64_t> {
        uint64_t sum = 0;
        for (size_t i = begin; i < end; ++i) sum += i;
        return sum;
      },
      [](uint64_t* acc, uint64_t&& x) { *acc += x; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, uint64_t{n} * (n - 1) / 2);
}

TEST(ParallelReduceTest, MergeRunsInShardOrder) {
  // The merge order is the heart of the byte-identical guarantee: collect
  // shard indices through the merge and require ascending order, many
  // times, under real concurrency.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const Result<std::vector<size_t>> result =
        ParallelReduce<std::vector<size_t>>(
            &pool, 100, {},
            [](size_t shard, size_t, size_t) -> Result<std::vector<size_t>> {
              return std::vector<size_t>{shard};
            },
            [](std::vector<size_t>* acc, std::vector<size_t>&& x) {
              acc->insert(acc->end(), x.begin(), x.end());
            });
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->size(), 4u);
    for (size_t s = 0; s < result->size(); ++s) {
      EXPECT_EQ((*result)[s], s) << "round " << round;
    }
  }
}

TEST(ThreadPoolTest, ConcurrentSubmittersEachCompleteTheirBatch) {
  // The service shares one pool across session strands: many threads
  // submit fork-join batches at once, and every submitter must get all
  // of its own tasks executed exactly once.
  ThreadPool pool(4);
  constexpr size_t kSubmitters = 6;
  constexpr size_t kTasks = 64;
  constexpr int kRounds = 25;
  std::vector<std::array<std::atomic<int>, kTasks>> hits(kSubmitters);
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &hits, s] {
      for (int round = 0; round < kRounds; ++round) {
        pool.Run(kTasks, [&hits, s](size_t i) {
          hits[s][i].fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (size_t s = 0; s < kSubmitters; ++s) {
    for (size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(hits[s][i].load(), kRounds) << "submitter " << s << " task "
                                            << i;
    }
  }
}

TEST(ThreadPoolTest, ConcurrentSubmitterExceptionsStayWithTheirBatch) {
  ThreadPool pool(3);
  std::atomic<int> clean_runs{0};
  std::thread thrower([&pool] {
    for (int round = 0; round < 20; ++round) {
      EXPECT_THROW(
          pool.Run(8,
                   [](size_t i) {
                     if (i == 3) throw std::runtime_error("batch error");
                   }),
          std::runtime_error);
    }
  });
  std::thread quiet([&pool, &clean_runs] {
    for (int round = 0; round < 20; ++round) {
      pool.Run(8, [&clean_runs](size_t) {
        clean_runs.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  thrower.join();
  quiet.join();
  EXPECT_EQ(clean_runs.load(), 20 * 8);
}

TEST(ThreadPoolLeaseTest, ReportsCappedThreadCount) {
  ThreadPool pool(4);
  const auto lease = ThreadPool::Lease(&pool, 2);
  EXPECT_TRUE(lease->is_lease());
  EXPECT_FALSE(pool.is_lease());
  EXPECT_EQ(lease->num_threads(), 2u);
  // The parent bounds the lease: a grant can never exceed the pool.
  const auto wide = ThreadPool::Lease(&pool, 64);
  EXPECT_EQ(wide->num_threads(), 4u);
}

TEST(ThreadPoolLeaseTest, SetLimitReCapsAndClampsToOne) {
  ThreadPool pool(4);
  const auto lease = ThreadPool::Lease(&pool, 4);
  lease->set_limit(3);
  EXPECT_EQ(lease->num_threads(), 3u);
  lease->set_limit(0);  // a lease is never smaller than its caller
  EXPECT_EQ(lease->num_threads(), 1u);
}

TEST(ThreadPoolLeaseTest, RunForwardsToParentWorkers) {
  ThreadPool pool(4);
  const auto lease = ThreadPool::Lease(&pool, 2);
  std::vector<std::atomic<int>> hits(32);
  lease->Run(hits.size(), [&hits](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolLeaseTest, ShardsCutToTheGrantNotTheParent) {
  // The admission small-fix in one assertion: agents shard by
  // pool->num_threads(), so a leased pool must make them cut to the
  // granted width, not the shared pool's full width.
  ThreadPool pool(8);
  const auto lease = ThreadPool::Lease(&pool, 3);
  EXPECT_EQ(ShardRanges(1000, lease->num_threads()).size(), 3u);
  const Result<std::vector<size_t>> result =
      ParallelReduce<std::vector<size_t>>(
          lease.get(), 1000, {},
          [](size_t shard, size_t, size_t) -> Result<std::vector<size_t>> {
            return std::vector<size_t>{shard};
          },
          [](std::vector<size_t>* acc, std::vector<size_t>&& x) {
            acc->insert(acc->end(), x.begin(), x.end());
          });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // three shards — the grant, not eight
}

TEST(ParallelReduceTest, MapErrorPropagatesLowestShard) {
  ThreadPool pool(4);
  const Result<int> result = ParallelReduce<int>(
      &pool, 1000, 0,
      [](size_t shard, size_t, size_t) -> Result<int> {
        if (shard == 2 || shard == 3) {
          return Status::KeyError("shard " + std::to_string(shard));
        }
        return 1;
      },
      [](int* acc, int&& x) { *acc += x; });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kKeyError);
  EXPECT_EQ(result.status().message(), "shard 2");
}

}  // namespace
}  // namespace privmark
