#include "common/text_table.h"

#include <gtest/gtest.h>

namespace privmark {
namespace {

TEST(TextTableTest, AlignedColumnsPadToWidest) {
  TextTable t;
  t.SetHeader({"k", "loss"});
  t.AddRow({"10", "0.1"});
  t.AddRow({"350", "0.85"});
  const std::string out = t.ToAligned();
  EXPECT_NE(out.find("k    loss"), std::string::npos);
  EXPECT_NE(out.find("10   0.1"), std::string::npos);
  EXPECT_NE(out.find("350  0.85"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, CsvRendering) {
  TextTable t;
  t.SetHeader({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n3,4\n");
}

TEST(TextTableTest, NoHeaderWorks) {
  TextTable t;
  t.AddRow({"x", "y"});
  EXPECT_EQ(t.ToCsv(), "x,y\n");
  EXPECT_EQ(t.ToAligned(), "x  y\n");
}

TEST(TextTableTest, RowCountTracksAdds) {
  TextTable t;
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, RaggedRowsDoNotCrash) {
  TextTable t;
  t.AddRow({"a", "b", "c"});
  t.AddRow({"longer"});
  const std::string out = t.ToAligned();
  EXPECT_NE(out.find("longer"), std::string::npos);
}

}  // namespace
}  // namespace privmark
