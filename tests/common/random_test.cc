#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace privmark {
namespace {

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(RandomTest, UniformStaysInBounds) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformCoversAllResidues) {
  Random rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTest, UniformIsApproximatelyUniform) {
  Random rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.10);
  }
}

TEST(RandomTest, UniformIntCoversInclusiveRange) {
  Random rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRateRoughlyMatchesP) {
  Random rng(17);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(RandomTest, WeightedIndexRespectsWeights) {
  Random rng(21);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RandomTest, PermutationIsAPermutation) {
  Random rng(13);
  const std::vector<size_t> perm = rng.Permutation(100);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RandomTest, SampleWithoutReplacementSortedUnique) {
  Random rng(31);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(1000, 50);
  EXPECT_EQ(sample.size(), 50u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  const std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_LT(sample.back(), 1000u);
}

TEST(RandomTest, SampleAllIsIdentitySet) {
  Random rng(31);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RandomTest, DigitStringFormat) {
  Random rng(41);
  const std::string s = rng.DigitString(9);
  EXPECT_EQ(s.size(), 9u);
  for (char c : s) {
    EXPECT_GE(c, '0');
    EXPECT_LE(c, '9');
  }
}

TEST(ZipfSamplerTest, UniformWhenSkewZero) {
  Random rng(51);
  ZipfSampler zipf(4, 0.0);
  int counts[4] = {0};
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(ZipfSamplerTest, SkewFavorsLowRanks) {
  Random rng(61);
  ZipfSampler zipf(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(ZipfSamplerTest, SingleRank) {
  Random rng(71);
  ZipfSampler zipf(1, 2.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace privmark
