// Property checks on generalization enumeration: the enumerated count must
// equal the closed-form antichain count, and greedy multi-attribute binning
// must never beat the exhaustive optimum.

#include <gtest/gtest.h>

#include <memory>

#include "binning/multi_attribute.h"
#include "common/random.h"
#include "hierarchy/generalization.h"

namespace privmark {
namespace {

// Builds a random tree with `max_children` fanout and about `target_leaves`
// leaves; deterministic in `seed`.
DomainHierarchy RandomTree(uint64_t seed, size_t target_leaves,
                           size_t max_children) {
  Random rng(seed);
  HierarchyBuilder builder("rand", "root");
  std::vector<NodeId> frontier = {0};
  size_t next_label = 0;
  size_t leaves = 1;  // the root counts until it gets children
  while (leaves < target_leaves && !frontier.empty()) {
    const size_t pick = rng.Uniform(frontier.size());
    const NodeId parent = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
    const size_t fanout = 2 + rng.Uniform(max_children - 1);
    leaves += fanout - 1;  // parent stops being a leaf, fanout children are
    for (size_t i = 0; i < fanout; ++i) {
      const NodeId child =
          builder.AddChild(parent, "n" + std::to_string(next_label++))
              .ValueOrDie();
      frontier.push_back(child);
    }
  }
  return builder.Build().ValueOrDie();
}

// Closed form: the number of antichains covering all leaves of the subtree
// at v (each leaf exactly once) is count(v) = 1 + prod(count(children)),
// with count(leaf) = 1.
size_t AntichainCount(const DomainHierarchy& tree, NodeId v) {
  if (tree.IsLeaf(v)) return 1;
  size_t product = 1;
  for (NodeId child : tree.Children(v)) {
    product *= AntichainCount(tree, child);
  }
  return 1 + product;
}

class EnumerationCountTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnumerationCountTest, MatchesClosedFormCount) {
  auto tree = std::make_unique<DomainHierarchy>(
      RandomTree(GetParam(), 9, 3));
  const GeneralizationSet lower = GeneralizationSet::AllLeaves(tree.get());
  const GeneralizationSet upper = GeneralizationSet::RootOnly(tree.get());
  auto all = EnumerateBetween(lower, upper, 1000000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), AntichainCount(*tree, tree->root()));
  // Every enumerated generalization is valid and distinct.
  std::set<std::vector<NodeId>> unique;
  for (const auto& gs : *all) {
    EXPECT_TRUE(GeneralizationSet::ValidateCover(*tree, gs.nodes()).ok());
    unique.insert(gs.nodes());
  }
  EXPECT_EQ(unique.size(), all->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumerationCountTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

class GreedyVsExhaustiveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyVsExhaustiveTest, GreedyNeverBeatsExhaustive) {
  const uint64_t seed = GetParam();
  auto tree_a =
      std::make_unique<DomainHierarchy>(RandomTree(seed * 11 + 1, 6, 3));
  auto tree_b =
      std::make_unique<DomainHierarchy>(RandomTree(seed * 13 + 2, 6, 3));

  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  ASSERT_TRUE(schema.AddColumn({"a", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  ASSERT_TRUE(schema.AddColumn({"b", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  Table table(schema);
  Random rng(seed);
  const auto& leaves_a = tree_a->Leaves();
  const auto& leaves_b = tree_b->Leaves();
  for (size_t r = 0; r < 60; ++r) {
    ASSERT_TRUE(
        table
            .AppendRow(
                {Value::String("id" + std::to_string(r)),
                 Value::String(
                     tree_a->node(leaves_a[rng.Uniform(leaves_a.size())])
                         .label),
                 Value::String(
                     tree_b->node(leaves_b[rng.Uniform(leaves_b.size())])
                         .label)})
            .ok());
  }

  const std::vector<GeneralizationSet> minimal = {
      GeneralizationSet::AllLeaves(tree_a.get()),
      GeneralizationSet::AllLeaves(tree_b.get())};
  const std::vector<GeneralizationSet> maximal = {
      GeneralizationSet::RootOnly(tree_a.get()),
      GeneralizationSet::RootOnly(tree_b.get())};

  MultiBinningOptions exhaustive_options;
  exhaustive_options.k = 4;
  exhaustive_options.strategy = SearchStrategy::kExhaustive;
  exhaustive_options.max_enumerations = 500000;
  MultiBinningOptions greedy_options = exhaustive_options;
  greedy_options.strategy = SearchStrategy::kGreedy;

  auto exhaustive = MultiAttributeBin(table, {1, 2}, minimal, maximal,
                                      exhaustive_options);
  auto greedy =
      MultiAttributeBin(table, {1, 2}, minimal, maximal, greedy_options);
  ASSERT_TRUE(exhaustive.ok());
  ASSERT_TRUE(greedy.ok());
  // Both must be valid solutions...
  EXPECT_TRUE(
      *IsJointlyKAnonymous(table, {1, 2}, exhaustive->ultimate, 4));
  EXPECT_TRUE(*IsJointlyKAnonymous(table, {1, 2}, greedy->ultimate, 4));
  // ...and the exhaustive optimum can only be at most as lossy as greedy.
  EXPECT_LE(exhaustive->total_specificity_loss,
            greedy->total_specificity_loss + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsExhaustiveTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace privmark
