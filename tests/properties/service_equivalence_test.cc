// Concurrency-equivalence property suite for the service front-end: N
// sessions driven by interleaved concurrent requests must produce epoch
// tables, manifests, and detection vote margins byte-identical to each
// session replayed serially on a bare ProtectionSession — across thread
// caps {1, 2, hardware}.
//
// This is the service's whole determinism contract in one claim: the
// strand-per-session design may interleave *different* sessions'
// compute arbitrarily on the shared pool (and the admission controller
// may grant any width the cap allows), but a session's own request
// sequence serializes in arrival order, and every pipeline stage is
// byte-identical for any worker count — so nothing the scheduler or the
// controller does can show up in the bytes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.h"
#include "core/manifest.h"
#include "core/session.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "service/service.h"

namespace privmark {
namespace {

constexpr size_t kSessions = 3;
constexpr size_t kRows = 2000;
constexpr size_t kBatch = 500;

// One stream's scripted workload and its serial-reference outcome.
struct Stream {
  std::string name;
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  FrameworkConfig config;
  SessionConfig session_config;

  // Serial reference, per request index: the emitted rows' CSV (empty
  // when the request emitted nothing).
  std::vector<std::string> reference_emitted_csv;
  std::vector<std::string> reference_manifests;
  std::vector<std::vector<double>> reference_margins;  // per epoch
  std::string reference_concat_csv;
};

// Distinct data, keys, policies, and k per stream — equivalence must
// hold for heterogeneous co-tenants, not just clones of one config.
Stream MakeStream(size_t index) {
  Stream stream;
  stream.name = "stream-" + std::to_string(index);
  MedicalDataSpec spec;
  spec.num_rows = kRows;
  spec.seed = 7000 + index;
  stream.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  stream.metrics =
      MetricsFromDepthCuts(stream.dataset->trees(), {2, 1, 2, 1, 1})
          .ValueOrDie();
  stream.config.binning.k = index == 0 ? 20 : 10;
  stream.config.binning.enforce_joint = false;
  stream.config.binning.encryption_passphrase = stream.name + "-pass";
  // Asks differ per stream so grants genuinely vary under small caps.
  stream.config.binning.num_threads = index + 1;
  stream.config.watermark.num_threads = index + 1;
  stream.config.key = {stream.name + "-k1", stream.name + "-k2",
                       /*eta=*/10};
  if (index == 2) {
    // One drift stream: multi-epoch output must also be reproduced. Its
    // 500-row re-bin windows can hit thin maximal subtrees (< k tuples),
    // so it runs the paper's suppression fallback instead of erroring —
    // which equivalence must reproduce too.
    stream.session_config.policy = RebinPolicy::kRebinOnDrift;
    stream.session_config.drift_threshold = 0.5;
    stream.config.binning.mono.on_unbinnable = UnbinnablePolicy::kSuppress;
  }
  return stream;
}

// The scripted request sequence, identical for the serial replay and the
// service run: every batch, then one final flush (drift streams flush
// epoch 0 after the first batch, so later batches stream live).
struct Request {
  bool flush = false;
  size_t begin = 0;
};

std::vector<Request> Script(const Stream& stream) {
  std::vector<Request> script;
  bool first = true;
  for (size_t begin = 0; begin < kRows; begin += kBatch) {
    script.push_back({false, begin});
    if (first &&
        stream.session_config.policy == RebinPolicy::kRebinOnDrift) {
      script.push_back({true, 0});
    }
    first = false;
  }
  script.push_back({true, 0});
  return script;
}

void BuildReference(Stream* stream) {
  ProtectionSession session(stream->metrics, stream->config,
                            stream->session_config);
  Table concat(stream->dataset->table.schema());
  auto append = [&concat](const Table& emitted) {
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      (void)concat.AppendRow(emitted.row(r));
    }
  };
  for (const Request& request : Script(*stream)) {
    if (request.flush) {
      auto flushed = session.Flush();
      ASSERT_TRUE(flushed.ok())
          << stream->name << ": " << flushed.status().ToString();
      append(flushed->outcome.watermarked);
      stream->reference_emitted_csv.push_back(
          TableToCsv(flushed->outcome.watermarked));
    } else {
      auto ingested = session.Ingest(
          stream->dataset->table.Slice(request.begin, request.begin + kBatch));
      ASSERT_TRUE(ingested.ok())
          << stream->name << ": " << ingested.status().ToString();
      append(ingested->emitted);
      stream->reference_emitted_csv.push_back(TableToCsv(ingested->emitted));
    }
  }
  for (const EpochRecord& epoch : session.epochs()) {
    stream->reference_manifests.push_back(SerializeManifest(
        std::move(ManifestFromEpoch(epoch, stream->dataset->table.schema(),
                                    stream->metrics, stream->config))
            .ValueOrDie()));
  }
  auto reports = session.DetectAcrossEpochs(concat);
  ASSERT_TRUE(reports.ok()) << stream->name;
  for (const DetectReport& report : *reports) {
    stream->reference_margins.push_back(report.vote_margin);
  }
  stream->reference_concat_csv = TableToCsv(concat);
}

void RunServiceAndCompare(std::vector<Stream>* streams, size_t thread_cap) {
  const std::string context = "cap=" + std::to_string(thread_cap);
  ServiceConfig service_config;
  service_config.thread_cap = thread_cap;
  PrivmarkService service(service_config);
  for (Stream& stream : *streams) {
    ASSERT_TRUE(service
                    .OpenSession(stream.name, stream.metrics, stream.config,
                                 stream.session_config)
                    .ok())
        << context;
  }

  // Interleaved concurrent submission: one driver thread per stream,
  // firing its whole script without waiting between requests.
  std::vector<std::vector<ServiceFuture>> futures(streams->size());
  {
    std::vector<std::thread> drivers;
    for (size_t i = 0; i < streams->size(); ++i) {
      drivers.emplace_back([&service, &futures, i, streams] {
        Stream& stream = (*streams)[i];
        for (const Request& request : Script(stream)) {
          if (request.flush) {
            futures[i].push_back(service.Flush(stream.name));
          } else {
            futures[i].push_back(service.ProtectBatch(
                stream.name,
                stream.dataset->table.Slice(request.begin,
                                            request.begin + kBatch)));
          }
        }
      });
    }
    for (std::thread& driver : drivers) driver.join();
  }

  for (size_t i = 0; i < streams->size(); ++i) {
    Stream& stream = (*streams)[i];
    Table concat(stream.dataset->table.schema());
    ASSERT_EQ(futures[i].size(), stream.reference_emitted_csv.size())
        << context;
    for (size_t r = 0; r < futures[i].size(); ++r) {
      auto result = futures[i][r].get();
      ASSERT_TRUE(result.ok()) << context << " " << stream.name;
      ASSERT_GE(result->threads_granted, 1u) << context;
      ASSERT_LE(result->threads_granted, service.thread_cap()) << context;
      const Table& emitted = result->kind == RequestKind::kFlush
                                 ? result->epoch.outcome.watermarked
                                 : result->ingest.emitted;
      // Per-request byte identity: each response carries exactly the
      // rows the serial replay emitted at the same script position.
      EXPECT_EQ(TableToCsv(emitted), stream.reference_emitted_csv[r])
          << context << " " << stream.name << " request " << r;
      for (size_t row = 0; row < emitted.num_rows(); ++row) {
        (void)concat.AppendRow(emitted.row(row));
      }
    }
    EXPECT_EQ(TableToCsv(concat), stream.reference_concat_csv)
        << context << " " << stream.name;

    // Epoch manifests and detection vote margins, through the service's
    // own Detect request.
    auto detect = service.Detect(stream.name, concat.Clone());
    auto close = service.CloseSession(stream.name);
    auto reports = detect.get();
    auto stats = close.get();
    ASSERT_TRUE(reports.ok()) << context;
    ASSERT_TRUE(stats.ok()) << context;
    ASSERT_EQ(stats->stats.epochs.size(), stream.reference_manifests.size())
        << context;
    for (size_t e = 0; e < stats->stats.epochs.size(); ++e) {
      EXPECT_EQ(SerializeManifest(
                    std::move(ManifestFromEpoch(
                                  stats->stats.epochs[e],
                                  stream.dataset->table.schema(),
                                  stream.metrics, stream.config))
                        .ValueOrDie()),
                stream.reference_manifests[e])
          << context << " " << stream.name << " epoch " << e;
    }
    ASSERT_EQ(reports->reports.size(), stream.reference_margins.size())
        << context;
    for (size_t e = 0; e < reports->reports.size(); ++e) {
      // Exact double equality: the margins must come out of the same
      // arithmetic, not merely land close.
      EXPECT_EQ(reports->reports[e].vote_margin,
                stream.reference_margins[e])
          << context << " " << stream.name << " epoch " << e;
    }
  }
  service.Shutdown();
}

TEST(ServiceEquivalenceTest, ConcurrentStreamsMatchSerialReplayAcrossCaps) {
  std::vector<Stream> streams;
  for (size_t i = 0; i < kSessions; ++i) streams.push_back(MakeStream(i));
  for (Stream& stream : streams) {
    BuildReference(&stream);
    if (::testing::Test::HasFatalFailure()) return;
  }
  for (const size_t cap : {size_t{1}, size_t{2}, size_t{0}}) {  // 0 = hw
    RunServiceAndCompare(&streams, cap);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Repeated service runs under real concurrency must keep reproducing the
// same bytes — a scheduler-sensitivity probe beyond the single pass.
TEST(ServiceEquivalenceTest, RepeatedConcurrentRunsStayDeterministic) {
  std::vector<Stream> streams;
  for (size_t i = 0; i < kSessions; ++i) streams.push_back(MakeStream(i));
  for (Stream& stream : streams) {
    BuildReference(&stream);
    if (::testing::Test::HasFatalFailure()) return;
  }
  for (int round = 0; round < 3; ++round) {
    RunServiceAndCompare(&streams, 2);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace privmark
