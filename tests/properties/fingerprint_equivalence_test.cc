// Property suite for the acceptance claim of the multi-key fingerprint
// engine: on the standard 20k-row fixed-seed dataset, a registry scan
// over {K keys, any thread count} produces vote margins byte-identical to
// K independent serial single-key Detect() runs, the embedded key ranks
// first, and in the mixed-copy (collusion) case both contributors clear
// the threshold.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "binning/binning_engine.h"
#include "common/parallel.h"
#include "common/random.h"
#include "datagen/medical_data.h"
#include "metrics/usage_metrics.h"
#include "watermark/detect_index.h"
#include "watermark/fingerprint.h"
#include "watermark/hierarchical.h"
#include "watermark/key_registry.h"

namespace privmark {
namespace {

constexpr size_t kRows = 20000;
constexpr uint64_t kSeed = 20050405;
constexpr size_t kK = 20;
constexpr uint64_t kEta = 75;
constexpr size_t kCopies = 4;

std::vector<size_t> ThreadCounts() {
  std::vector<size_t> counts = {1, 2, 7};
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  return counts;
}

struct Fixture {
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  BinningOutcome binning;
  BitVector mark;
  KeyRegistry registry;       // two recipients + decoys
  Table east_copy;            // embedded under "clinic-east"
  Table west_copy;            // embedded under "clinic-west"
  Table mixed;                // even rows east, odd rows west
  size_t wmd_size = 0;
};

HierarchicalWatermarker MakeWatermarker(const Fixture& f,
                                        const WatermarkKey& key,
                                        size_t num_threads) {
  WatermarkOptions options;
  options.num_threads = num_threads;
  return HierarchicalWatermarker(
      f.binning.qi_columns, *f.binning.binned.schema().IdentifyingColumn(),
      f.metrics.maximal, f.binning.ultimate, key, options);
}

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture;
    MedicalDataSpec spec;
    spec.num_rows = kRows;
    spec.seed = kSeed;
    f->dataset = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
    f->metrics =
        MetricsFromDepthCuts(f->dataset->trees(), {2, 1, 2, 1, 1})
            .ValueOrDie();
    BinningConfig config;
    config.k = kK;
    config.enforce_joint = false;
    config.encryption_passphrase = "fingerprint-owner-passphrase";
    BinningAgent agent(f->metrics, config);
    f->binning = std::move(agent.Run(f->dataset->table)).ValueOrDie();
    f->mark = BitVector::FromString("10110010011010111001").ValueOrDie();

    Random keygen(kSeed);
    EXPECT_TRUE(
        f->registry.Add(GenerateKey("clinic-east", kEta, &keygen)).ok());
    EXPECT_TRUE(
        f->registry.Add(GenerateKey("clinic-west", kEta, &keygen)).ok());
    for (const char* decoy : {"decoy-a", "decoy-b", "decoy-c"}) {
      EXPECT_TRUE(f->registry.Add(GenerateKey(decoy, kEta, &keygen)).ok());
    }

    // Fixed copies so both recipients' wmd sizes coincide.
    f->east_copy = f->binning.binned.Clone();
    auto east_embed =
        MakeWatermarker(*f, f->registry.Find("clinic-east")->key, 1)
            .Embed(&f->east_copy, f->mark, kCopies);
    EXPECT_TRUE(east_embed.ok());
    f->wmd_size = east_embed->wmd_size;
    f->west_copy = f->binning.binned.Clone();
    auto west_embed =
        MakeWatermarker(*f, f->registry.Find("clinic-west")->key, 1)
            .Embed(&f->west_copy, f->mark, kCopies);
    EXPECT_TRUE(west_embed.ok());
    EXPECT_EQ(west_embed->wmd_size, f->wmd_size);

    f->mixed = Table(f->binning.binned.schema());
    for (size_t r = 0; r < f->east_copy.num_rows(); ++r) {
      const Table& source = (r % 2 == 0) ? f->east_copy : f->west_copy;
      EXPECT_TRUE(f->mixed.AppendRow(source.row(r)).ok());
    }
    return f;
  }();
  return *fixture;
}

void ExpectDetectReportsEqual(const DetectReport& a, const DetectReport& b,
                              const std::string& what) {
  EXPECT_EQ(a.recovered.ToString(), b.recovered.ToString()) << what;
  EXPECT_EQ(a.bit_voted, b.bit_voted) << what;
  EXPECT_EQ(a.tuples_selected, b.tuples_selected) << what;
  EXPECT_EQ(a.slots_read, b.slots_read) << what;
  EXPECT_EQ(a.slots_skipped, b.slots_skipped) << what;
  ASSERT_EQ(a.vote_margin.size(), b.vote_margin.size()) << what;
  for (size_t j = 0; j < a.vote_margin.size(); ++j) {
    // Exact double equality: tallies sum whole 1.0 votes, so margins must
    // match bit for bit.
    EXPECT_EQ(a.vote_margin[j], b.vote_margin[j]) << what << " bit " << j;
  }
}

TEST(FingerprintEquivalenceTest, ScanMatchesSerialSingleKeyDetects) {
  Fixture& f = SharedFixture();

  // Baseline: one independent, serial, fused Detect() per registry key.
  std::vector<DetectReport> serial;
  for (const NamedKey& named : f.registry.keys()) {
    auto report = MakeWatermarker(f, named.key, 1)
                      .Detect(f.east_copy, f.mark.size(), f.wmd_size);
    ASSERT_TRUE(report.ok()) << named.name;
    serial.push_back(*std::move(report));
  }

  FingerprintConfig config;
  config.wm_size = f.mark.size();
  config.wmd_size = f.wmd_size;
  config.expected_mark = f.mark;
  for (size_t t : ThreadCounts()) {
    // The scanning watermarker's own key is irrelevant — assert that by
    // scanning through a decoy-keyed instance.
    const HierarchicalWatermarker scanner =
        MakeWatermarker(f, f.registry.Find("decoy-a")->key, t);
    auto report =
        ScanForFingerprints(scanner, f.east_copy, f.registry, config);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_EQ(report->verdicts.size(), f.registry.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectDetectReportsEqual(
          serial[i], report->verdicts[i].detection,
          f.registry.keys()[i].name + ", " + std::to_string(t) + " threads");
    }
    // The embedded key ranks first and is the only detection.
    EXPECT_EQ(report->verdicts[report->ranking[0]].key_name, "clinic-east")
        << t;
    EXPECT_TRUE(report->verdicts[report->ranking[0]].detected) << t;
    EXPECT_EQ(report->keys_detected, 1u) << t;
    EXPECT_FALSE(report->collusion) << t;
  }
}

TEST(FingerprintEquivalenceTest, MultiKeyTallyStableAcrossShardGeometry) {
  // Same index, same keys, every thread count and a repeat run: the
  // (key x shard) grid must collapse to one answer.
  Fixture& f = SharedFixture();
  const HierarchicalWatermarker scanner =
      MakeWatermarker(f, f.registry.Find("decoy-a")->key, 1);
  auto index = BuildDetectIndex(scanner, f.mixed);
  ASSERT_TRUE(index.ok());
  std::vector<WatermarkKey> keys;
  for (const NamedKey& named : f.registry.keys()) keys.push_back(named.key);

  auto baseline = MultiKeyTally(*index, keys, HashAlgorithm::kSha1,
                                f.mark.size(), f.wmd_size, nullptr);
  ASSERT_TRUE(baseline.ok());
  for (size_t t : ThreadCounts()) {
    auto pool = MakeThreadPool(t);
    for (int repeat = 0; repeat < 2; ++repeat) {
      auto batch = MultiKeyTally(*index, keys, HashAlgorithm::kSha1,
                                 f.mark.size(), f.wmd_size, pool.get());
      ASSERT_TRUE(batch.ok());
      for (size_t i = 0; i < keys.size(); ++i) {
        ExpectDetectReportsEqual((*baseline)[i], (*batch)[i],
                                 "key " + std::to_string(i) + ", " +
                                     std::to_string(t) + " threads, repeat " +
                                     std::to_string(repeat));
      }
    }
  }
}

TEST(FingerprintEquivalenceTest, CollusionAttributesBothContributors) {
  Fixture& f = SharedFixture();
  FingerprintConfig config;
  config.wm_size = f.mark.size();
  config.wmd_size = f.wmd_size;
  config.expected_mark = f.mark;
  for (size_t t : ThreadCounts()) {
    const HierarchicalWatermarker scanner =
        MakeWatermarker(f, f.registry.Find("decoy-a")->key, t);
    auto report = ScanForFingerprints(scanner, f.mixed, f.registry, config);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->collusion) << t;
    EXPECT_EQ(report->keys_detected, 2u) << t;
    // The two contributors occupy the top two ranks (either order).
    const std::string first =
        report->verdicts[report->ranking[0]].key_name;
    const std::string second =
        report->verdicts[report->ranking[1]].key_name;
    EXPECT_TRUE((first == "clinic-east" && second == "clinic-west") ||
                (first == "clinic-west" && second == "clinic-east"))
        << first << ", " << second;
    EXPECT_TRUE(report->verdicts[report->ranking[0]].detected) << t;
    EXPECT_TRUE(report->verdicts[report->ranking[1]].detected) << t;
    for (size_t i = 2; i < report->ranking.size(); ++i) {
      EXPECT_FALSE(report->verdicts[report->ranking[i]].detected)
          << t << " rank " << i;
    }
  }
}

TEST(FingerprintEquivalenceTest, ScaledRegistryStaysSerialIdentical) {
  // Hundreds of candidate keys (the "thousands of keys" path in
  // miniature): block scheduling over the (key x shard) grid must keep
  // every report byte-identical to a serial scan of the same registry.
  Fixture& f = SharedFixture();
  const HierarchicalWatermarker scanner =
      MakeWatermarker(f, f.registry.Find("decoy-a")->key, 1);
  auto index = BuildDetectIndex(scanner, f.east_copy);
  ASSERT_TRUE(index.ok());

  Random keygen(987);
  std::vector<WatermarkKey> keys = {f.registry.Find("clinic-east")->key};
  for (size_t i = 0; i < 300; ++i) {
    keys.push_back(GenerateKey("k" + std::to_string(i), kEta, &keygen).key);
  }

  auto serial = MultiKeyTally(*index, keys, HashAlgorithm::kSha1,
                              f.mark.size(), f.wmd_size, nullptr);
  ASSERT_TRUE(serial.ok());
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  auto pool = MakeThreadPool(hw);
  auto parallel = MultiKeyTally(*index, keys, HashAlgorithm::kSha1,
                                f.mark.size(), f.wmd_size, pool.get());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ExpectDetectReportsEqual((*serial)[i], (*parallel)[i],
                             "key " + std::to_string(i));
  }
  // Sanity: the embedded key still recovers its mark through the bulk.
  EXPECT_EQ((*parallel)[0].recovered.ToString(), f.mark.ToString());
}

}  // namespace
}  // namespace privmark
