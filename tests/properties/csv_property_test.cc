// CSV round-trip property sweep: randomly generated tables — including
// adversarial cell contents (quotes, commas, newlines, generalized
// labels) — must survive serialize -> parse exactly.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "relation/csv.h"

namespace privmark {
namespace {

Schema MixedSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"age", ColumnRole::kQuasiNumeric,
                                ValueType::kInt64}).ok());
  EXPECT_TRUE(schema.AddColumn({"label", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

std::string RandomCell(Random* rng) {
  static const char* kAlphabet[] = {
      "a",  "Z",  "0", " ",  ",",  "\"", "\n", "|", "[", ")",
      "\r", "beta", "[25,50)", "x,y", "say \"hi\"", "'",
  };
  const size_t length = rng->Uniform(8);
  std::string cell;
  for (size_t i = 0; i < length; ++i) {
    cell += kAlphabet[rng->Uniform(sizeof(kAlphabet) / sizeof(*kAlphabet))];
  }
  return cell;
}

class CsvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvPropertyTest, RandomTablesRoundTripExactly) {
  Random rng(GetParam());
  Table table(MixedSchema());
  const size_t rows = 1 + rng.Uniform(40);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(Value::String(RandomCell(&rng)));
    // Numeric column: half typed ints, half generalized labels.
    if (rng.Bernoulli(0.5)) {
      row.push_back(Value::Int64(rng.UniformInt(-1000, 1000)));
    } else {
      row.push_back(Value::String("[" + std::to_string(rng.Uniform(100)) +
                                  "," + std::to_string(100 + rng.Uniform(100)) +
                                  ")"));
    }
    row.push_back(Value::String(RandomCell(&rng)));
    ASSERT_TRUE(table.AppendRow(std::move(row)).ok());
  }

  auto back = TableFromCsv(TableToCsv(table), MixedSchema());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      // Cells compare by rendered text: typed cells parse back typed,
      // labels stay labels.
      EXPECT_EQ(back->at(r, c).ToString(), table.at(r, c).ToString())
          << r << "," << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace privmark
