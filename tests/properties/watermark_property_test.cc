// Property-style sweeps over the watermarking stack: clean round trips for
// a grid of (eta, hash, seed), usage-metric containment, and the Sec. 6
// Lemma 1/2 balance (Pr- == Pr+) measured empirically.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "common/random.h"
#include "watermark/hierarchical.h"

namespace privmark {
namespace {

DomainHierarchy LemmaTree() {
  // Two maximal-node subtrees with n1 = 4 and n2 = 2 ultimate nodes: even
  // child counts keep the parity-constrained walk uniform over targets,
  // matching the lemmas' assumption (ii).
  return HierarchyBuilder::FromOutline("col", R"(root
  N1
    u1
    u2
    u3
    u4
  N2
    u5
    u6)").ValueOrDie();
}

Schema OneQiSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"col", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

class WatermarkRoundTripTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, HashAlgorithm, uint64_t>> {
 protected:
  uint64_t eta() const { return std::get<0>(GetParam()); }
  HashAlgorithm hash() const { return std::get<1>(GetParam()); }
  uint64_t seed() const { return std::get<2>(GetParam()); }
};

TEST_P(WatermarkRoundTripTest, CleanRoundTripIsExact) {
  auto tree = std::make_unique<DomainHierarchy>(LemmaTree());
  Table table(OneQiSchema());
  Random rng(seed());
  const auto& leaves = tree->Leaves();
  for (size_t r = 0; r < 500; ++r) {
    ASSERT_TRUE(
        table
            .AppendRow({Value::String("id-" + std::to_string(rng.Next())),
                        Value::String(
                            tree->node(leaves[rng.Uniform(leaves.size())])
                                .label)})
            .ok());
  }
  WatermarkKey key;
  key.k1 = "prop-k1";
  key.k2 = "prop-k2";
  key.eta = eta();
  WatermarkOptions options;
  options.hash = hash();
  const GeneralizationSet ultimate = GeneralizationSet::AllLeaves(tree.get());
  const GeneralizationSet maximal = CutAtDepth(tree.get(), 1);
  HierarchicalWatermarker wm(std::vector<size_t>{1}, 0,
                             std::vector<GeneralizationSet>{maximal},
                             std::vector<GeneralizationSet>{ultimate}, key,
                             options);
  BitVector mark(20);
  Random mark_rng(seed() + 1);
  for (size_t i = 0; i < 20; ++i) mark.Set(i, mark_rng.Bernoulli(0.5));

  Table marked = table.Clone();
  auto embed = wm.Embed(&marked, mark);
  ASSERT_TRUE(embed.ok());
  if (embed->slots_embedded < 60) {
    GTEST_SKIP() << "not enough selected tuples at eta=" << eta();
  }
  auto detect = wm.Detect(marked, mark.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->recovered, mark)
      << "eta=" << eta() << " hash=" << HashAlgorithmToString(hash());

  // Containment: marked labels stay inside their maximal subtree.
  for (size_t r = 0; r < marked.num_rows(); ++r) {
    const NodeId before = *tree->FindByLabel(table.at(r, 1).ToString());
    const NodeId after = *tree->FindByLabel(marked.at(r, 1).ToString());
    EXPECT_EQ(*maximal.NodeForLeaf(tree->LeavesUnder(before).front()),
              *maximal.NodeForLeaf(tree->LeavesUnder(after).front()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    EtaHashSeedGrid, WatermarkRoundTripTest,
    ::testing::Combine(::testing::Values(1u, 2u, 5u),
                       ::testing::Values(HashAlgorithm::kSha1,
                                         HashAlgorithm::kMd5),
                       ::testing::Values(3u, 17u)),
    [](const ::testing::TestParamInfo<
        std::tuple<uint64_t, HashAlgorithm, uint64_t>>& info) {
      return "eta" + std::to_string(std::get<0>(info.param)) +
             std::string(HashAlgorithmToString(std::get<1>(info.param))) +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

// ---- Sec. 6, Lemmas 1 and 2 ----

TEST(LemmaBalanceTest, EmbeddingNeitherShrinksNorGrowsBinsOnAverage) {
  // Setup satisfying the lemmas' assumptions: equal-size ultimate bins
  // (assumption i) and uniform walk targets (assumption ii, even child
  // counts). Embed with eta = 1 (every tuple selected) and measure the
  // empirical Pr-/Pr+ per bin; both must match (n_k - 1)/(n_k * sum n_i).
  auto tree = std::make_unique<DomainHierarchy>(LemmaTree());
  Table table(OneQiSchema());
  const auto& leaves = tree->Leaves();
  constexpr size_t kPerBin = 600;
  size_t serial = 0;
  for (NodeId leaf : leaves) {
    for (size_t i = 0; i < kPerBin; ++i) {
      ASSERT_TRUE(table
                      .AppendRow({Value::String(
                                      "id-" + std::to_string(serial++)),
                                  Value::String(tree->node(leaf).label)})
                      .ok());
    }
  }
  WatermarkKey key;
  key.eta = 1;  // every tuple embeds: maximal sample size
  const GeneralizationSet ultimate = GeneralizationSet::AllLeaves(tree.get());
  const GeneralizationSet maximal = CutAtDepth(tree.get(), 1);
  HierarchicalWatermarker wm(std::vector<size_t>{1}, 0,
                             std::vector<GeneralizationSet>{maximal},
                             std::vector<GeneralizationSet>{ultimate}, key,
                             WatermarkOptions{});
  BitVector mark(20);
  for (size_t i = 0; i < 20; ++i) mark.Set(i, i % 2 == 0);

  Table marked = table.Clone();
  auto embed = wm.Embed(&marked, mark);
  ASSERT_TRUE(embed.ok());
  const double total_embeddings =
      static_cast<double>(embed->slots_embedded);
  ASSERT_GT(total_embeddings, 3000.0);

  // Per-leaf movement counts.
  std::map<std::string, double> moved_out;
  std::map<std::string, double> moved_in;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const std::string before = table.at(r, 1).ToString();
    const std::string after = marked.at(r, 1).ToString();
    if (before != after) {
      moved_out[before] += 1.0;
      moved_in[after] += 1.0;
    }
  }

  const double total_leaves = 6.0;  // sum n_i
  for (NodeId leaf : leaves) {
    const std::string& label = tree->node(leaf).label;
    const double nk =
        static_cast<double>(tree->Children(tree->Parent(leaf)).size());
    const double expected = (nk - 1.0) / (nk * total_leaves);
    const double pr_minus = moved_out[label] / total_embeddings;
    const double pr_plus = moved_in[label] / total_embeddings;
    EXPECT_NEAR(pr_minus, expected, 0.02) << label;
    EXPECT_NEAR(pr_plus, expected, 0.02) << label;
    // Lemma 1 == Lemma 2: the two probabilities cancel on average.
    EXPECT_NEAR(pr_minus, pr_plus, 0.02) << label;
  }

  // Consequence: bin sizes stay near kPerBin.
  for (const Bin& bin : marked.GroupBy({1})) {
    EXPECT_NEAR(static_cast<double>(bin.size()), static_cast<double>(kPerBin),
                0.15 * kPerBin);
  }
}

}  // namespace
}  // namespace privmark
