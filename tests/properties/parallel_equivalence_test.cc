// Property suite for the parallel execution layer's hard invariant:
// binned tables, watermarked tables, reports, and vote margins are
// byte-identical across every thread count — num_threads in {1, 2, 3, 7,
// hardware_concurrency} — and across repeated runs, on the standard
// 20k-row fixed-seed dataset and on adversarial small tables (0 rows,
// 1 row, k-1 rows, fewer rows than shards). Tables compare through their
// CSV serialization, the literal byte-level claim.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attack/attacks.h"
#include "binning/binning_engine.h"
#include "common/random.h"
#include "crypto/sha1_multibuffer.h"
#include "datagen/medical_data.h"
#include "metrics/usage_metrics.h"
#include "relation/csv.h"
#include "watermark/hierarchical.h"
#include "watermark/single_level.h"

namespace privmark {
namespace {

constexpr size_t kRows = 20000;
constexpr uint64_t kSeed = 20050405;
constexpr size_t kK = 20;
constexpr uint64_t kEta = 75;
constexpr char kPassphrase[] = "bench-owner-passphrase";

// Non-serial thread counts to pit against the num_threads = 1 baseline.
// 0 exercises the hardware-concurrency path; 7 exceeds this container's
// core count, so shards outnumber workers.
std::vector<size_t> ThreadCounts() {
  std::vector<size_t> counts = {2, 3, 7, 0};
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  return counts;
}

struct Fixture {
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  BinningConfig binning_config;  // num_threads = 1 (the baseline)
  WatermarkKey key;
  BinningOutcome baseline;      // serial binning outcome
  std::string baseline_csv;     // serial binned table, serialized
  BitVector mark;
};

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture;
    MedicalDataSpec spec;
    spec.num_rows = kRows;
    spec.seed = kSeed;
    f->dataset = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
    f->metrics =
        MetricsFromDepthCuts(f->dataset->trees(), {2, 1, 2, 1, 1})
            .ValueOrDie();
    f->binning_config.k = kK;
    f->binning_config.enforce_joint = false;
    f->binning_config.encryption_passphrase = kPassphrase;
    f->key.k1 = "bench-k1";
    f->key.k2 = "bench-k2";
    f->key.eta = kEta;
    BinningAgent agent(f->metrics, f->binning_config);
    f->baseline = std::move(agent.Run(f->dataset->table)).ValueOrDie();
    f->baseline_csv = TableToCsv(f->baseline.binned);
    f->mark = BitVector::FromString("10110010011010111001").ValueOrDie();
    return f;
  }();
  return *fixture;
}

HierarchicalWatermarker MakeHierarchical(const Fixture& f,
                                         size_t num_threads) {
  WatermarkOptions options;
  options.num_threads = num_threads;
  return HierarchicalWatermarker(
      f.baseline.qi_columns,
      *f.baseline.binned.schema().IdentifyingColumn(), f.metrics.maximal,
      f.baseline.ultimate, f.key, options);
}

SingleLevelWatermarker MakeSingleLevel(const Fixture& f, size_t num_threads) {
  WatermarkOptions options;
  options.num_threads = num_threads;
  return SingleLevelWatermarker(
      f.baseline.qi_columns,
      *f.baseline.binned.schema().IdentifyingColumn(), f.baseline.ultimate,
      f.key, options);
}

void ExpectEmbedReportsEqual(const EmbedReport& a, const EmbedReport& b,
                             size_t num_threads) {
  EXPECT_EQ(a.tuples_selected, b.tuples_selected) << num_threads;
  EXPECT_EQ(a.slots_embedded, b.slots_embedded) << num_threads;
  EXPECT_EQ(a.slots_skipped_no_gap, b.slots_skipped_no_gap) << num_threads;
  EXPECT_EQ(a.copies, b.copies) << num_threads;
  EXPECT_EQ(a.wmd_size, b.wmd_size) << num_threads;
  EXPECT_EQ(a.cells_changed, b.cells_changed) << num_threads;
}

void ExpectDetectReportsEqual(const DetectReport& a, const DetectReport& b,
                              size_t num_threads) {
  EXPECT_EQ(a.recovered.ToString(), b.recovered.ToString()) << num_threads;
  EXPECT_EQ(a.tuples_selected, b.tuples_selected) << num_threads;
  EXPECT_EQ(a.slots_read, b.slots_read) << num_threads;
  EXPECT_EQ(a.slots_skipped, b.slots_skipped) << num_threads;
  ASSERT_EQ(a.vote_margin.size(), b.vote_margin.size()) << num_threads;
  for (size_t j = 0; j < a.vote_margin.size(); ++j) {
    // Exact double equality, deliberately: vote tallies sum 1.0s, so the
    // margins must match bit for bit, not merely within a tolerance.
    EXPECT_EQ(a.vote_margin[j], b.vote_margin[j])
        << "bit " << j << " with " << num_threads << " threads";
  }
  EXPECT_EQ(a.bit_voted, b.bit_voted) << num_threads;
}

TEST(ParallelEquivalenceTest, BinningByteIdenticalAcrossThreadCounts) {
  Fixture& f = SharedFixture();
  for (size_t t : ThreadCounts()) {
    BinningConfig config = f.binning_config;
    config.num_threads = t;
    BinningAgent agent(f.metrics, config);
    auto outcome = agent.Run(f.dataset->table);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(TableToCsv(outcome->binned), f.baseline_csv)
        << "binned table diverged with num_threads = " << t;
    EXPECT_EQ(outcome->minimal, f.baseline.minimal) << t;
    EXPECT_EQ(outcome->ultimate, f.baseline.ultimate) << t;
    EXPECT_EQ(outcome->mono_column_loss, f.baseline.mono_column_loss) << t;
    EXPECT_EQ(outcome->multi_column_loss, f.baseline.multi_column_loss) << t;
    EXPECT_EQ(outcome->mono_normalized_loss, f.baseline.mono_normalized_loss)
        << t;
    EXPECT_EQ(outcome->multi_normalized_loss,
              f.baseline.multi_normalized_loss)
        << t;
    EXPECT_EQ(outcome->suppressed_rows, f.baseline.suppressed_rows) << t;
  }
}

TEST(ParallelEquivalenceTest, BinningRepeatedRunsIdentical) {
  Fixture& f = SharedFixture();
  BinningConfig config = f.binning_config;
  config.num_threads = 3;
  BinningAgent agent(f.metrics, config);
  const auto first = agent.Run(f.dataset->table);
  const auto second = agent.Run(f.dataset->table);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(TableToCsv(first->binned), TableToCsv(second->binned));
}

TEST(ParallelEquivalenceTest, HierarchicalEmbedByteIdentical) {
  Fixture& f = SharedFixture();
  const HierarchicalWatermarker serial = MakeHierarchical(f, 1);
  Table serial_marked = f.baseline.binned.Clone();
  const auto serial_report = serial.Embed(&serial_marked, f.mark);
  ASSERT_TRUE(serial_report.ok());
  const std::string serial_csv = TableToCsv(serial_marked);

  for (size_t t : ThreadCounts()) {
    const HierarchicalWatermarker parallel = MakeHierarchical(f, t);
    const auto bandwidth = parallel.EstimateBandwidth(f.baseline.binned);
    const auto serial_bandwidth = serial.EstimateBandwidth(f.baseline.binned);
    ASSERT_TRUE(bandwidth.ok());
    ASSERT_TRUE(serial_bandwidth.ok());
    EXPECT_EQ(*bandwidth, *serial_bandwidth) << t;

    for (int repeat = 0; repeat < 2; ++repeat) {
      Table marked = f.baseline.binned.Clone();
      const auto report = parallel.Embed(&marked, f.mark);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(TableToCsv(marked), serial_csv)
          << "marked table diverged with num_threads = " << t << " (repeat "
          << repeat << ")";
      ExpectEmbedReportsEqual(*serial_report, *report, t);
    }
  }
}

TEST(ParallelEquivalenceTest, HierarchicalDetectByteIdentical) {
  Fixture& f = SharedFixture();
  const HierarchicalWatermarker serial = MakeHierarchical(f, 1);
  Table marked = f.baseline.binned.Clone();
  const auto embed = serial.Embed(&marked, f.mark);
  ASSERT_TRUE(embed.ok());

  // Also detect through an attacked table: skip paths (unknown labels,
  // ceiling hits) must stay deterministic too.
  Table attacked = marked.Clone();
  ASSERT_TRUE(GeneralizationAttack(&attacked, f.baseline.qi_columns,
                                   f.metrics.maximal, 1)
                  .ok());

  const auto serial_clean = serial.Detect(marked, f.mark.size(),
                                          embed->wmd_size);
  const auto serial_attacked =
      serial.Detect(attacked, f.mark.size(), embed->wmd_size);
  ASSERT_TRUE(serial_clean.ok());
  ASSERT_TRUE(serial_attacked.ok());

  for (size_t t : ThreadCounts()) {
    const HierarchicalWatermarker parallel = MakeHierarchical(f, t);
    for (int repeat = 0; repeat < 2; ++repeat) {
      const auto clean = parallel.Detect(marked, f.mark.size(),
                                         embed->wmd_size);
      ASSERT_TRUE(clean.ok());
      ExpectDetectReportsEqual(*serial_clean, *clean, t);
      const auto under_attack =
          parallel.Detect(attacked, f.mark.size(), embed->wmd_size);
      ASSERT_TRUE(under_attack.ok());
      ExpectDetectReportsEqual(*serial_attacked, *under_attack, t);
    }
  }
}

TEST(ParallelEquivalenceTest, SingleLevelEmbedDetectByteIdentical) {
  Fixture& f = SharedFixture();
  const SingleLevelWatermarker serial = MakeSingleLevel(f, 1);
  Table serial_marked = f.baseline.binned.Clone();
  const auto serial_embed = serial.Embed(&serial_marked, f.mark);
  ASSERT_TRUE(serial_embed.ok());
  const std::string serial_csv = TableToCsv(serial_marked);
  const auto serial_detect =
      serial.Detect(serial_marked, f.mark.size(), serial_embed->wmd_size);
  ASSERT_TRUE(serial_detect.ok());

  for (size_t t : ThreadCounts()) {
    const SingleLevelWatermarker parallel = MakeSingleLevel(f, t);
    Table marked = f.baseline.binned.Clone();
    const auto embed = parallel.Embed(&marked, f.mark);
    ASSERT_TRUE(embed.ok());
    EXPECT_EQ(TableToCsv(marked), serial_csv) << t;
    ExpectEmbedReportsEqual(*serial_embed, *embed, t);
    const auto detect =
        parallel.Detect(marked, f.mark.size(), embed->wmd_size);
    ASSERT_TRUE(detect.ok());
    ExpectDetectReportsEqual(*serial_detect, *detect, t);
  }
}

TEST(ParallelEquivalenceTest, AttacksByteIdenticalAcrossThreadCounts) {
  Fixture& f = SharedFixture();
  Table marked = f.baseline.binned.Clone();
  ASSERT_TRUE(MakeHierarchical(f, 1).Embed(&marked, f.mark).ok());

  // Each attack runs from an identical table and an identically seeded
  // Random for every thread count; tables and reports must match the
  // serial run exactly.
  for (size_t t : ThreadCounts()) {
    {
      Table serial_t = marked.Clone();
      Table parallel_t = marked.Clone();
      Random serial_rng(77);
      Random parallel_rng(77);
      const auto a = SubsetAlterationAttack(&serial_t, f.baseline.qi_columns,
                                            0.3, &serial_rng);
      const auto b = SubsetAlterationAttack(
          &parallel_t, f.baseline.qi_columns, 0.3, &parallel_rng, t);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->cells_changed, b->cells_changed) << t;
      EXPECT_EQ(TableToCsv(serial_t), TableToCsv(parallel_t))
          << "alteration diverged with num_threads = " << t;
    }
    {
      Table serial_t = marked.Clone();
      Table parallel_t = marked.Clone();
      Random serial_rng(78);
      Random parallel_rng(78);
      const auto a = SubsetDeletionAttack(&serial_t, 0.25, &serial_rng);
      const auto b = SubsetDeletionAttack(&parallel_t, 0.25, &parallel_rng, t);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->rows_affected, b->rows_affected) << t;
      EXPECT_EQ(TableToCsv(serial_t), TableToCsv(parallel_t))
          << "deletion diverged with num_threads = " << t;
    }
    {
      Table serial_t = marked.Clone();
      Table parallel_t = marked.Clone();
      const auto a = GeneralizationAttack(&serial_t, f.baseline.qi_columns,
                                          f.metrics.maximal, 1);
      const auto b = GeneralizationAttack(&parallel_t, f.baseline.qi_columns,
                                          f.metrics.maximal, 1, t);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->rows_affected, b->rows_affected) << t;
      EXPECT_EQ(a->cells_changed, b->cells_changed) << t;
      EXPECT_EQ(TableToCsv(serial_t), TableToCsv(parallel_t))
          << "generalization diverged with num_threads = " << t;
    }
  }
}

// --- Adversarial small tables -------------------------------------------

// Builds a tiny dataset (rows may be 0) with the medical schema and trees.
struct SmallCase {
  std::unique_ptr<MedicalDataset> dataset;
  Table table;
  UsageMetrics metrics;
};

SmallCase MakeSmallCase(size_t rows) {
  SmallCase sc;
  MedicalDataSpec spec;
  spec.num_rows = std::max<size_t>(1, rows);
  spec.seed = 99;
  sc.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  if (rows == 0) {
    sc.table = Table(sc.dataset->table.schema());
  } else {
    sc.table = sc.dataset->table.Clone();
  }
  sc.metrics =
      MetricsFromDepthCuts(sc.dataset->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  return sc;
}

TEST(ParallelEquivalenceTest, SmallTablesAndErrorsIdenticalAcrossThreads) {
  Fixture& f = SharedFixture();
  // 0 rows, 1 row, k-1 rows (k = 20 forces the unbinnable/suppression
  // paths), and 3 rows against 7 threads (fewer rows than shards).
  for (size_t rows : {size_t{0}, size_t{1}, size_t{kK - 1}, size_t{3}}) {
    SmallCase sc = MakeSmallCase(rows);
    for (UnbinnablePolicy policy :
         {UnbinnablePolicy::kError, UnbinnablePolicy::kSuppress}) {
      BinningConfig config = f.binning_config;
      config.mono.on_unbinnable = policy;
      BinningAgent serial_agent(sc.metrics, config);
      const auto serial = serial_agent.Run(sc.table);

      for (size_t t : ThreadCounts()) {
        BinningConfig parallel_config = config;
        parallel_config.num_threads = t;
        BinningAgent agent(sc.metrics, parallel_config);
        const auto parallel = agent.Run(sc.table);
        ASSERT_EQ(serial.ok(), parallel.ok())
            << rows << " rows, " << t << " threads";
        if (!serial.ok()) {
          // Unbinnable paths must fail identically: same code, same text.
          EXPECT_EQ(serial.status(), parallel.status())
              << rows << " rows, " << t << " threads";
          continue;
        }
        EXPECT_EQ(TableToCsv(serial->binned), TableToCsv(parallel->binned))
            << rows << " rows, " << t << " threads";
        EXPECT_EQ(serial->suppressed_rows, parallel->suppressed_rows)
            << rows << " rows, " << t << " threads";

        // Embed + detect over whatever survived (possibly zero rows).
        WatermarkOptions serial_options;
        WatermarkOptions parallel_options;
        parallel_options.num_threads = t;
        const size_t ident =
            *serial->binned.schema().IdentifyingColumn();
        const HierarchicalWatermarker serial_wm(
            serial->qi_columns, ident, sc.metrics.maximal, serial->ultimate,
            f.key, serial_options);
        const HierarchicalWatermarker parallel_wm(
            parallel->qi_columns, ident, sc.metrics.maximal,
            parallel->ultimate, f.key, parallel_options);
        Table serial_marked = serial->binned.Clone();
        Table parallel_marked = parallel->binned.Clone();
        const auto serial_embed = serial_wm.Embed(&serial_marked, f.mark);
        const auto parallel_embed =
            parallel_wm.Embed(&parallel_marked, f.mark);
        ASSERT_TRUE(serial_embed.ok());
        ASSERT_TRUE(parallel_embed.ok());
        EXPECT_EQ(TableToCsv(serial_marked), TableToCsv(parallel_marked))
            << rows << " rows, " << t << " threads";
        ExpectEmbedReportsEqual(*serial_embed, *parallel_embed, t);

        const auto serial_detect = serial_wm.Detect(
            serial_marked, f.mark.size(), serial_embed->wmd_size);
        const auto parallel_detect = parallel_wm.Detect(
            parallel_marked, f.mark.size(), parallel_embed->wmd_size);
        ASSERT_TRUE(serial_detect.ok());
        ASSERT_TRUE(parallel_detect.ok());
        ExpectDetectReportsEqual(*serial_detect, *parallel_detect, t);
      }
    }
  }
}

TEST(ParallelEquivalenceTest, Sha1BackendsProduceIdenticalMarksAndMargins) {
  // The multi-buffer SHA-1 kernel is pure throughput: forcing each
  // compiled backend (portable ILP, SSE2, AVX2 where present) must leave
  // the marked table and every vote margin byte-identical.
  Fixture& f = SharedFixture();
  ASSERT_TRUE(Sha1MultiBuffer::ForceBackend("auto"));
  const HierarchicalWatermarker wm = MakeHierarchical(f, 2);
  Table auto_marked = f.baseline.binned.Clone();
  const auto auto_embed = wm.Embed(&auto_marked, f.mark);
  ASSERT_TRUE(auto_embed.ok());
  const std::string auto_csv = TableToCsv(auto_marked);
  const auto auto_detect =
      wm.Detect(auto_marked, f.mark.size(), auto_embed->wmd_size);
  ASSERT_TRUE(auto_detect.ok());

  for (const char* backend : Sha1MultiBuffer::AvailableBackends()) {
    ASSERT_TRUE(Sha1MultiBuffer::ForceBackend(backend)) << backend;
    Table marked = f.baseline.binned.Clone();
    const auto embed = wm.Embed(&marked, f.mark);
    ASSERT_TRUE(embed.ok()) << backend;
    EXPECT_EQ(TableToCsv(marked), auto_csv)
        << "marked table diverged with backend " << backend;
    ExpectEmbedReportsEqual(*auto_embed, *embed, 2);
    const auto detect = wm.Detect(marked, f.mark.size(), embed->wmd_size);
    ASSERT_TRUE(detect.ok()) << backend;
    ExpectDetectReportsEqual(*auto_detect, *detect, 2);
  }
  Sha1MultiBuffer::ForceBackend("auto");
}

TEST(ParallelEquivalenceTest, RemainderRowsNotDivisibleByLaneWidth) {
  // 677 rows leaves 37 rows in the final 64-row selection block, and odd
  // shard splits leave every small remainder mod the 4- and 8-lane kernel
  // widths — the batched-hash tails and scalar stragglers all fire, and
  // must change nothing.
  Fixture& f = SharedFixture();
  SmallCase sc = MakeSmallCase(677);
  BinningAgent serial_agent(sc.metrics, f.binning_config);
  const auto binned = serial_agent.Run(sc.table);
  ASSERT_TRUE(binned.ok()) << binned.status().ToString();
  const size_t ident = *binned->binned.schema().IdentifyingColumn();

  const HierarchicalWatermarker serial(
      binned->qi_columns, ident, sc.metrics.maximal, binned->ultimate, f.key,
      WatermarkOptions());
  Table serial_marked = binned->binned.Clone();
  const auto serial_embed = serial.Embed(&serial_marked, f.mark);
  ASSERT_TRUE(serial_embed.ok());
  const std::string serial_csv = TableToCsv(serial_marked);
  const auto serial_detect =
      serial.Detect(serial_marked, f.mark.size(), serial_embed->wmd_size);
  ASSERT_TRUE(serial_detect.ok());

  for (size_t t : ThreadCounts()) {
    WatermarkOptions options;
    options.num_threads = t;
    const HierarchicalWatermarker parallel(
        binned->qi_columns, ident, sc.metrics.maximal, binned->ultimate,
        f.key, options);
    Table marked = binned->binned.Clone();
    const auto embed = parallel.Embed(&marked, f.mark);
    ASSERT_TRUE(embed.ok());
    EXPECT_EQ(TableToCsv(marked), serial_csv)
        << "marked table diverged with num_threads = " << t;
    ExpectEmbedReportsEqual(*serial_embed, *embed, t);
    const auto detect =
        parallel.Detect(marked, f.mark.size(), embed->wmd_size);
    ASSERT_TRUE(detect.ok());
    ExpectDetectReportsEqual(*serial_detect, *detect, t);
  }
}

}  // namespace
}  // namespace privmark
