// Property-style sweeps (TEST_P) over the binning stack: for a grid of
// (k, seed) configurations, the pipeline must uphold its invariants —
// valid generalizations, k-anonymity, refinement ordering, bounded losses.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "binning/binning_engine.h"
#include "datagen/medical_data.h"

namespace privmark {
namespace {

class BinningPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {
 protected:
  size_t k() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }

  MedicalDataset Generate() const {
    MedicalDataSpec spec;
    spec.num_rows = 900;
    spec.seed = seed();
    return std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  }
};

TEST_P(BinningPropertyTest, PerAttributeBinningInvariants) {
  MedicalDataset ds = Generate();
  const UsageMetrics metrics = UnconstrainedMetrics(ds.trees());
  BinningConfig config;
  config.k = k();
  config.enforce_joint = false;
  BinningAgent agent(metrics, config);
  auto outcome = agent.Run(ds.table);
  ASSERT_TRUE(outcome.ok());

  for (size_t c = 0; c < outcome->qi_columns.size(); ++c) {
    // (1) Ultimate generalization is a valid cover.
    EXPECT_TRUE(GeneralizationSet::ValidateCover(
                    *metrics.trees[c], outcome->ultimate[c].nodes())
                    .ok());
    // (2) Bounded by the maximal nodes.
    EXPECT_TRUE(outcome->ultimate[c].IsRefinementOf(metrics.maximal[c]));
    // (3) Per-attribute k-anonymity.
    EXPECT_GE(outcome->binned.MinBinSize({outcome->qi_columns[c]}), k());
    // (4) Loss in [0, 1].
    EXPECT_GE(outcome->multi_column_loss[c], 0.0);
    EXPECT_LE(outcome->multi_column_loss[c], 1.0);
  }
}

TEST_P(BinningPropertyTest, JointBinningInvariants) {
  MedicalDataset ds = Generate();
  const UsageMetrics metrics = UnconstrainedMetrics(ds.trees());
  BinningConfig config;
  config.k = k();
  config.enforce_joint = true;
  BinningAgent agent(metrics, config);
  auto outcome = agent.Run(ds.table);
  ASSERT_TRUE(outcome.ok());

  // Joint k-anonymity over all quasi-identifying columns.
  EXPECT_GE(outcome->binned.MinBinSize(outcome->qi_columns), k());
  // Joint generalization can only be at or above the mono-attribute one.
  for (size_t c = 0; c < outcome->qi_columns.size(); ++c) {
    EXPECT_TRUE(outcome->minimal[c].IsRefinementOf(outcome->ultimate[c]));
  }
  EXPECT_GE(outcome->multi_normalized_loss,
            outcome->mono_normalized_loss - 1e-12);
}

TEST_P(BinningPropertyTest, MonotoneLossInK) {
  // Larger k must not reduce information loss (same data, same metrics).
  MedicalDataset ds = Generate();
  const UsageMetrics metrics = UnconstrainedMetrics(ds.trees());
  BinningConfig small_config;
  small_config.k = k();
  small_config.enforce_joint = false;
  BinningConfig big_config = small_config;
  big_config.k = k() * 2;
  auto small = BinningAgent(metrics, small_config).Run(ds.table);
  auto big = BinningAgent(metrics, big_config).Run(ds.table);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GE(big->mono_normalized_loss, small->mono_normalized_loss - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    KAndSeedGrid, BinningPropertyTest,
    ::testing::Combine(::testing::Values(2, 5, 10, 25),
                       ::testing::Values(1u, 42u, 20050405u)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace privmark
