// Property suite for the incremental protection session, on the standard
// 20k-row fixed-seed dataset:
//
//  1. Freeze-mode replay equivalence: ingesting the table in batches of
//     any size (whole, 1k, a prime, and one row at a time) and flushing
//     once produces output byte-identical to one-shot Protect — tables
//     via CSV serialization, reports field by field, detection vote
//     margins as exact doubles. This pins down the mergeable CountState:
//     per-batch counts folded in arrival order must equal whole-table
//     counts exactly.
//  2. Thread-count equivalence: the single-batch session and batched
//     replays are bit-identical to the serial baseline for num_threads
//     in {1, 2, hw}, and frozen per-batch emission is deterministic
//     across thread counts.
//  3. Drift-mode epochs: each emitted epoch independently satisfies
//     per-attribute k-anonymity and detects its own mark.
//  4. Joint-binning candidate search: the pool-parallel MultiAttributeBin
//     chooses the same generalization as the serial search on the 20k
//     dataset.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "binning/binning_engine.h"
#include "core/framework.h"
#include "core/session.h"
#include "datagen/medical_data.h"
#include "metrics/usage_metrics.h"
#include "relation/csv.h"
#include "watermark/hierarchical.h"

namespace privmark {
namespace {

constexpr size_t kRows = 20000;
constexpr uint64_t kSeed = 20050405;
constexpr size_t kK = 20;
constexpr uint64_t kEta = 75;
constexpr char kPassphrase[] = "bench-owner-passphrase";

struct Fixture {
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  FrameworkConfig config;             // num_threads = 1 (serial)
  ProtectionOutcome baseline;         // serial one-shot Protect
  std::string baseline_watermarked_csv;
  std::string baseline_binned_csv;
  DetectReport baseline_detect;
};

Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture;
    MedicalDataSpec spec;
    spec.num_rows = kRows;
    spec.seed = kSeed;
    f->dataset = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
    f->metrics =
        MetricsFromDepthCuts(f->dataset->trees(), {2, 1, 2, 1, 1})
            .ValueOrDie();
    f->config.binning.k = kK;
    f->config.binning.enforce_joint = false;
    f->config.binning.encryption_passphrase = kPassphrase;
    f->config.key = {"bench-k1", "bench-k2", kEta};
    ProtectionFramework framework(f->metrics, f->config);
    f->baseline = std::move(framework.Protect(f->dataset->table)).ValueOrDie();
    f->baseline_watermarked_csv = TableToCsv(f->baseline.watermarked);
    f->baseline_binned_csv = TableToCsv(f->baseline.binning.binned);
    HierarchicalWatermarker watermarker =
        framework.MakeWatermarker(f->baseline.binning);
    f->baseline_detect =
        std::move(watermarker.Detect(f->baseline.watermarked,
                                     f->baseline.mark.size(),
                                     f->baseline.embed.wmd_size))
            .ValueOrDie();
    return f;
  }();
  return *fixture;
}

void ExpectOutcomeMatchesBaseline(const Fixture& f,
                                  const ProtectionOutcome& outcome,
                                  const std::string& context) {
  EXPECT_EQ(TableToCsv(outcome.watermarked), f.baseline_watermarked_csv)
      << context;
  EXPECT_EQ(TableToCsv(outcome.binning.binned), f.baseline_binned_csv)
      << context;
  EXPECT_EQ(outcome.mark.ToString(), f.baseline.mark.ToString()) << context;
  // Exact double equality, deliberately: the identifier statistic and the
  // loss sums must come out of the same arithmetic, not merely close.
  EXPECT_EQ(outcome.identifier_statistic, f.baseline.identifier_statistic)
      << context;
  EXPECT_EQ(outcome.binning.mono_column_loss, f.baseline.binning.mono_column_loss)
      << context;
  EXPECT_EQ(outcome.binning.multi_column_loss,
            f.baseline.binning.multi_column_loss)
      << context;
  EXPECT_EQ(outcome.binning.minimal, f.baseline.binning.minimal) << context;
  EXPECT_EQ(outcome.binning.ultimate, f.baseline.binning.ultimate) << context;
  EXPECT_EQ(outcome.binning.suppressed_rows, f.baseline.binning.suppressed_rows)
      << context;
  EXPECT_EQ(outcome.epsilon_used, f.baseline.epsilon_used) << context;
  EXPECT_EQ(outcome.embed.tuples_selected, f.baseline.embed.tuples_selected)
      << context;
  EXPECT_EQ(outcome.embed.slots_embedded, f.baseline.embed.slots_embedded)
      << context;
  EXPECT_EQ(outcome.embed.slots_skipped_no_gap,
            f.baseline.embed.slots_skipped_no_gap)
      << context;
  EXPECT_EQ(outcome.embed.copies, f.baseline.embed.copies) << context;
  EXPECT_EQ(outcome.embed.wmd_size, f.baseline.embed.wmd_size) << context;
  EXPECT_EQ(outcome.embed.cells_changed, f.baseline.embed.cells_changed)
      << context;
  ASSERT_EQ(outcome.seamlessness.size(), f.baseline.seamlessness.size())
      << context;
  for (size_t i = 0; i < outcome.seamlessness.size(); ++i) {
    EXPECT_EQ(outcome.seamlessness[i].total_bins,
              f.baseline.seamlessness[i].total_bins)
        << context;
    EXPECT_EQ(outcome.seamlessness[i].bins_size_changed,
              f.baseline.seamlessness[i].bins_size_changed)
        << context;
    EXPECT_EQ(outcome.seamlessness[i].bins_below_k,
              f.baseline.seamlessness[i].bins_below_k)
        << context;
  }
}

void ExpectDetectMatchesBaseline(const Fixture& f, const DetectReport& report,
                                 const std::string& context) {
  EXPECT_EQ(report.recovered.ToString(), f.baseline_detect.recovered.ToString())
      << context;
  EXPECT_EQ(report.tuples_selected, f.baseline_detect.tuples_selected)
      << context;
  EXPECT_EQ(report.slots_read, f.baseline_detect.slots_read) << context;
  ASSERT_EQ(report.vote_margin.size(), f.baseline_detect.vote_margin.size())
      << context;
  for (size_t j = 0; j < report.vote_margin.size(); ++j) {
    // Exact: vote tallies sum 1.0s, so margins must match bit for bit.
    EXPECT_EQ(report.vote_margin[j], f.baseline_detect.vote_margin[j])
        << context << " bit " << j;
  }
  EXPECT_EQ(report.bit_voted, f.baseline_detect.bit_voted) << context;
}

// Replays the whole table through a freeze-mode session in `batch_size`
// batches at `num_threads`, flushes once, and returns the epoch output.
EpochOutput ReplayFreeze(const Fixture& f, size_t batch_size,
                         size_t num_threads) {
  FrameworkConfig config = f.config;
  config.binning.num_threads = num_threads;
  config.watermark.num_threads = num_threads;
  ProtectionSession session(f.metrics, config);
  for (size_t begin = 0; begin < kRows; begin += batch_size) {
    auto result =
        session.Ingest(f.dataset->table.Slice(begin, begin + batch_size));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->rows_emitted, 0u);
  }
  auto flush = session.Flush();
  EXPECT_TRUE(flush.ok()) << flush.status().ToString();
  return std::move(flush).ValueOrDie();
}

TEST(StreamingEquivalenceTest, FreezeReplayByteIdenticalToProtect) {
  Fixture& f = SharedFixture();
  for (size_t batch_size : {kRows, size_t{1000}, size_t{317}, size_t{1}}) {
    EpochOutput epoch = ReplayFreeze(f, batch_size, /*num_threads=*/1);
    const std::string context =
        "batch size " + std::to_string(batch_size);
    ExpectOutcomeMatchesBaseline(f, epoch.outcome, context);
  }
}

TEST(StreamingEquivalenceTest, SingleBatchBitIdenticalAcrossThreads) {
  Fixture& f = SharedFixture();
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (size_t t : {size_t{1}, size_t{2}, hw}) {
    EpochOutput epoch = ReplayFreeze(f, kRows, t);
    const std::string context = "num_threads " + std::to_string(t);
    ExpectOutcomeMatchesBaseline(f, epoch.outcome, context);

    // Detection over the session's output: vote margins must equal the
    // serial baseline's exactly, at this thread count too.
    FrameworkConfig config = f.config;
    config.watermark.num_threads = t;
    ProtectionFramework framework(f.metrics, config);
    HierarchicalWatermarker watermarker =
        framework.MakeWatermarker(epoch.outcome.binning);
    auto report =
        watermarker.Detect(epoch.outcome.watermarked,
                           epoch.outcome.mark.size(),
                           epoch.outcome.embed.wmd_size);
    ASSERT_TRUE(report.ok());
    ExpectDetectMatchesBaseline(f, *report, context);
  }
}

TEST(StreamingEquivalenceTest, BatchedReplayBitIdenticalAcrossThreads) {
  Fixture& f = SharedFixture();
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (size_t t : {size_t{2}, hw}) {
    EpochOutput epoch = ReplayFreeze(f, /*batch_size=*/317, t);
    ExpectOutcomeMatchesBaseline(
        f, epoch.outcome,
        "batch 317, num_threads " + std::to_string(t));
  }
}

TEST(StreamingEquivalenceTest, FrozenEmissionDeterministicAcrossThreads) {
  Fixture& f = SharedFixture();
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  constexpr size_t kInitial = 10000;
  constexpr size_t kBatch = 500;

  // Serial reference stream: flush at 10k, then emit per 500-row batch.
  std::vector<std::string> reference_batches;
  std::vector<size_t> reference_suppressed;
  {
    ProtectionSession session(f.metrics, f.config);
    ASSERT_TRUE(
        session.Ingest(f.dataset->table.Slice(0, kInitial)).ok());
    ASSERT_TRUE(session.Flush().ok());
    for (size_t begin = kInitial; begin < kRows; begin += kBatch) {
      auto result = session.Ingest(
          f.dataset->table.Slice(begin, begin + kBatch));
      ASSERT_TRUE(result.ok());
      reference_batches.push_back(TableToCsv(result->emitted));
      reference_suppressed.push_back(result->rows_suppressed);
    }
  }
  ASSERT_FALSE(reference_batches.empty());

  for (size_t t : {size_t{2}, hw}) {
    FrameworkConfig config = f.config;
    config.binning.num_threads = t;
    config.watermark.num_threads = t;
    ProtectionSession session(f.metrics, config);
    ASSERT_TRUE(
        session.Ingest(f.dataset->table.Slice(0, kInitial)).ok());
    ASSERT_TRUE(session.Flush().ok());
    size_t i = 0;
    for (size_t begin = kInitial; begin < kRows; begin += kBatch, ++i) {
      auto result = session.Ingest(
          f.dataset->table.Slice(begin, begin + kBatch));
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(TableToCsv(result->emitted), reference_batches[i])
          << "batch " << i << " with num_threads " << t;
      EXPECT_EQ(result->rows_suppressed, reference_suppressed[i])
          << "batch " << i << " with num_threads " << t;
    }
  }
}

TEST(StreamingEquivalenceTest, DriftEpochsSatisfyKAndDetectTheirMarks) {
  Fixture& f = SharedFixture();
  FrameworkConfig config = f.config;
  config.auto_epsilon = true;  // Sec. 6: keep bins >= k through the embed
  SessionConfig session_config;
  session_config.policy = RebinPolicy::kRebinOnDrift;
  session_config.drift_threshold = 0.5;
  ProtectionSession session(f.metrics, config, session_config);

  ASSERT_TRUE(session.Ingest(f.dataset->table.Slice(0, 10000)).ok());
  auto first = session.Flush();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Table concatenated = first->outcome.watermarked.Clone();
  for (size_t begin = 10000; begin < kRows; begin += 1000) {
    auto result =
        session.Ingest(f.dataset->table.Slice(begin, begin + 1000));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->flushed) {
      for (size_t r = 0; r < result->emitted.num_rows(); ++r) {
        ASSERT_TRUE(concatenated.AppendRow(result->emitted.row(r)).ok());
      }
    }
  }
  if (session.rows_buffered() > 0) {
    auto tail = session.Flush();
    ASSERT_TRUE(tail.ok());
    for (size_t r = 0; r < tail->outcome.watermarked.num_rows(); ++r) {
      ASSERT_TRUE(
          concatenated.AppendRow(tail->outcome.watermarked.row(r)).ok());
    }
  }
  // 10k basis at threshold 0.5 -> an epoch at 5k, then the 5k tail.
  ASSERT_GE(session.epochs().size(), 2u);

  auto reports = session.DetectAcrossEpochs(concatenated);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  size_t offset = 0;
  for (const EpochRecord& epoch : session.epochs()) {
    const Table segment =
        concatenated.Slice(offset, offset + epoch.rows_emitted);
    offset += epoch.rows_emitted;
    EXPECT_GT(segment.num_rows(), 0u) << "epoch " << epoch.epoch;
    for (size_t qi : segment.schema().QuasiIdentifyingColumns()) {
      EXPECT_TRUE(segment.IsKAnonymous({qi}, kK))
          << "epoch " << epoch.epoch << " column " << qi;
    }
    // Detection: no voted bit may flip (unvoted positions in a small
    // epoch are erasures, not failures) and the agreement must be far
    // beyond chance.
    const DetectReport& report = (*reports)[epoch.epoch];
    size_t voted = 0;
    size_t flips = 0;
    for (size_t j = 0; j < epoch.mark.size(); ++j) {
      if (!report.bit_voted[j]) continue;
      ++voted;
      if (report.recovered.Get(j) != epoch.mark.Get(j)) ++flips;
    }
    EXPECT_EQ(flips, 0u) << "epoch " << epoch.epoch;
    EXPECT_GE(voted, epoch.mark.size() - 2) << "epoch " << epoch.epoch;
    auto p_value = DetectionPValue(epoch.mark, report);
    ASSERT_TRUE(p_value.ok());
    EXPECT_LT(*p_value, 1e-4) << "epoch " << epoch.epoch;
    // Epoch marks derive from the epoch's own identifiers; distinct
    // windows must not share a mark (derivation is a hash of the mean).
    if (epoch.epoch > 0) {
      EXPECT_NE(epoch.mark.ToString(), session.epochs()[0].mark.ToString());
    }
  }
  EXPECT_EQ(offset, concatenated.num_rows());
}

TEST(StreamingEquivalenceTest, JointParallelCandidateSearchMatchesSerial) {
  // The acceptance criterion for the joint-binning fan-out: on the 20k
  // dataset, the pool-parallel MultiAttributeBin candidate search (driven
  // through the binning agent) picks the same generalization as serial.
  Fixture& f = SharedFixture();
  const UsageMetrics unconstrained =
      UnconstrainedMetrics(f.dataset->trees());
  BinningConfig config;
  config.k = 10;
  config.enforce_joint = true;
  config.encryption_passphrase = kPassphrase;
  BinningAgent serial_agent(unconstrained, config);
  auto serial = serial_agent.Run(f.dataset->table);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (size_t t : {size_t{2}, hw}) {
    BinningConfig parallel_config = config;
    parallel_config.num_threads = t;
    BinningAgent agent(unconstrained, parallel_config);
    auto parallel = agent.Run(f.dataset->table);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(serial->ultimate, parallel->ultimate) << t;
    EXPECT_EQ(serial->candidates_considered, parallel->candidates_considered)
        << t;
    EXPECT_EQ(TableToCsv(serial->binned), TableToCsv(parallel->binned)) << t;
  }
}

}  // namespace
}  // namespace privmark