// Property sweep over the attack surface: for a grid of
// (attack kind x strength), the hierarchical watermark on the standard
// pipeline must keep its strict mark loss under a per-strength bound, and
// attacks must degrade detection monotonically-ish (never catastrophically
// at low strength).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "attack/attacks.h"
#include "core/framework.h"
#include "datagen/medical_data.h"

namespace privmark {
namespace {

enum class AttackKind { kAlter, kAdd, kDelete, kSwap };

const char* AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kAlter:
      return "Alter";
    case AttackKind::kAdd:
      return "Add";
    case AttackKind::kDelete:
      return "Delete";
    case AttackKind::kSwap:
      return "Swap";
  }
  return "Unknown";
}

// One shared protected table for the whole suite (expensive to build).
struct SharedPipeline {
  std::unique_ptr<MedicalDataset> dataset;
  std::unique_ptr<UsageMetrics> metrics;
  std::unique_ptr<ProtectionFramework> framework;
  std::unique_ptr<ProtectionOutcome> outcome;
  std::unique_ptr<HierarchicalWatermarker> watermarker;

  static SharedPipeline& Get() {
    static SharedPipeline* pipeline = [] {
      auto* p = new SharedPipeline;
      MedicalDataSpec spec;
      spec.num_rows = 8000;
      spec.seed = 404;
      p->dataset = std::make_unique<MedicalDataset>(
          std::move(GenerateMedicalDataset(spec)).ValueOrDie());
      FrameworkConfig config;
      config.binning.k = 15;
      config.binning.enforce_joint = false;
      config.key = {"rb-k1", "rb-k2", /*eta=*/25};
      p->metrics = std::make_unique<UsageMetrics>(
          MetricsFromDepthCuts(p->dataset->trees(), {2, 1, 2, 1, 1})
              .ValueOrDie());
      p->framework =
          std::make_unique<ProtectionFramework>(*p->metrics, config);
      p->outcome = std::make_unique<ProtectionOutcome>(
          std::move(p->framework->Protect(p->dataset->table)).ValueOrDie());
      p->watermarker = std::make_unique<HierarchicalWatermarker>(
          p->framework->MakeWatermarker(p->outcome->binning));
      return p;
    }();
    return *pipeline;
  }
};

class RobustnessSweepTest
    : public ::testing::TestWithParam<std::tuple<AttackKind, double>> {};

TEST_P(RobustnessSweepTest, StrictLossStaysBounded) {
  const auto [kind, fraction] = GetParam();
  SharedPipeline& p = SharedPipeline::Get();

  Table attacked = p.outcome->watermarked.Clone();
  Random rng(777 + static_cast<uint64_t>(fraction * 100));
  switch (kind) {
    case AttackKind::kAlter:
      ASSERT_TRUE(SubsetAlterationAttack(&attacked,
                                         p.outcome->binning.qi_columns,
                                         fraction, &rng)
                      .ok());
      break;
    case AttackKind::kAdd:
      ASSERT_TRUE(SubsetAdditionAttack(&attacked, fraction, &rng).ok());
      break;
    case AttackKind::kDelete:
      ASSERT_TRUE(SubsetDeletionAttack(&attacked, fraction, &rng).ok());
      break;
    case AttackKind::kSwap:
      ASSERT_TRUE(SiblingSwapAttack(&attacked, p.outcome->binning.qi_columns,
                                    p.outcome->binning.ultimate, fraction,
                                    &rng)
                      .ok());
      break;
  }
  auto detect = p.watermarker->Detect(attacked, p.outcome->mark.size(),
                                      p.outcome->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  const double loss = *StrictMarkLoss(p.outcome->mark, *detect);

  // Bound: benign at low strength, bounded degradation at high strength
  // (the multi-column pipeline carries ~25x redundancy per bit).
  const double bound = fraction <= 0.3 ? 0.10 : 0.35;
  EXPECT_LE(loss, bound) << AttackKindName(kind) << " at " << fraction;
}

INSTANTIATE_TEST_SUITE_P(
    AttackGrid, RobustnessSweepTest,
    ::testing::Combine(::testing::Values(AttackKind::kAlter,
                                         AttackKind::kAdd,
                                         AttackKind::kDelete,
                                         AttackKind::kSwap),
                       ::testing::Values(0.1, 0.3, 0.6)),
    [](const ::testing::TestParamInfo<std::tuple<AttackKind, double>>& info) {
      return std::string(AttackKindName(std::get<0>(info.param))) + "_" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "pct";
    });

TEST(RobustnessBaselineTest, CleanTableHasZeroStrictLoss) {
  SharedPipeline& p = SharedPipeline::Get();
  auto detect =
      p.watermarker->Detect(p.outcome->watermarked, p.outcome->mark.size(),
                            p.outcome->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_DOUBLE_EQ(*StrictMarkLoss(p.outcome->mark, *detect), 0.0);
}

TEST(RobustnessBaselineTest, GeneralizationAttackHarmless) {
  SharedPipeline& p = SharedPipeline::Get();
  Table attacked = p.outcome->watermarked.Clone();
  ASSERT_TRUE(GeneralizationAttack(&attacked, p.outcome->binning.qi_columns,
                                   p.framework->metrics().maximal, 1)
                  .ok());
  auto detect = p.watermarker->Detect(attacked, p.outcome->mark.size(),
                                      p.outcome->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_LE(*StrictMarkLoss(p.outcome->mark, *detect), 0.05);
}

}  // namespace
}  // namespace privmark
