#include "binning/mono_attribute.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

namespace privmark {
namespace {

// Role tree with known leaf counts.
DomainHierarchy RoleTree() {
  return HierarchyBuilder::FromOutline("role", R"(Person
  Medical Practitioner
    GP
    Specialist
  Paramedic
    Pharmacist
    Nurse
    Consultant)").ValueOrDie();
}

std::vector<Value> Repeat(const std::vector<std::pair<std::string, int>>&
                              label_counts) {
  std::vector<Value> out;
  for (const auto& [label, count] : label_counts) {
    for (int i = 0; i < count; ++i) out.push_back(Value::String(label));
  }
  return out;
}

std::set<std::string> Labels(const DomainHierarchy& tree,
                             const GeneralizationSet& gs) {
  std::set<std::string> out;
  for (NodeId id : gs.nodes()) out.insert(tree.node(id).label);
  return out;
}

TEST(NumTupleTest, CountsSubtreeValues) {
  DomainHierarchy tree = RoleTree();
  const std::vector<Value> values =
      Repeat({{"GP", 3}, {"Nurse", 2}, {"Pharmacist", 1}});
  EXPECT_EQ(*NumTuple(tree, *tree.FindByLabel("Paramedic"), values), 3u);
  EXPECT_EQ(*NumTuple(tree, *tree.FindByLabel("GP"), values), 3u);
  EXPECT_EQ(*NumTuple(tree, tree.root(), values), 6u);
  EXPECT_EQ(*NumTuple(tree, *tree.FindByLabel("Consultant"), values), 0u);
}

TEST(NumTupleTest, RejectsBadNode) {
  DomainHierarchy tree = RoleTree();
  EXPECT_FALSE(NumTuple(tree, 999, {}).ok());
}

TEST(MonoBinTest, AllLeavesSatisfyK) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  MonoBinningOptions options;
  options.k = 2;
  // Every leaf has >= 2 tuples: minimal nodes are the leaves themselves.
  auto result = MonoAttributeBin(
      maximal,
      Repeat({{"GP", 2}, {"Specialist", 2}, {"Pharmacist", 2},
              {"Nurse", 3}, {"Consultant", 2}}),
      options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->minimal.size(), 5u);
  EXPECT_EQ(result->suppressed_tuples, 0u);
}

TEST(MonoBinTest, SparseLeafForcesParent) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  MonoBinningOptions options;
  options.k = 2;
  // Pharmacist has only 1 tuple -> Paramedic cannot split; MP side can.
  auto result = MonoAttributeBin(
      maximal,
      Repeat({{"GP", 2}, {"Specialist", 2}, {"Pharmacist", 1},
              {"Nurse", 3}, {"Consultant", 2}}),
      options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Labels(tree, result->minimal),
            (std::set<std::string>{"GP", "Specialist", "Paramedic"}));
}

TEST(MonoBinTest, EmptyChildAlsoForcesParentUnderSimpleStrategy) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  MonoBinningOptions options;
  options.k = 2;
  // Consultant has 0 tuples: Fig. 5's rule treats count < k as a stop, so
  // Paramedic stays whole even though Pharmacist/Nurse are rich.
  auto result = MonoAttributeBin(
      maximal,
      Repeat({{"GP", 5}, {"Specialist", 5}, {"Pharmacist", 5}, {"Nurse", 5}}),
      options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Labels(tree, result->minimal),
            (std::set<std::string>{"GP", "Specialist", "Paramedic"}));
}

TEST(MonoBinTest, AggressiveStrategyDescendsAndSuppresses) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  MonoBinningOptions options;
  options.k = 2;
  options.strategy = MinimalityStrategy::kAggressive;
  options.on_unbinnable = UnbinnablePolicy::kSuppress;
  // Pharmacist: 1 tuple (suppressed); Nurse: 5 (kept); Consultant: 0 (kept
  // empty). Aggressive descends because Nurse satisfies k.
  auto result = MonoAttributeBin(
      maximal,
      Repeat({{"GP", 5}, {"Specialist", 5}, {"Pharmacist", 1}, {"Nurse", 5}}),
      options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Labels(tree, result->minimal),
            (std::set<std::string>{"GP", "Specialist", "Pharmacist", "Nurse",
                                   "Consultant"}));
  EXPECT_EQ(result->suppressed_tuples, 1u);
  ASSERT_EQ(result->suppressed_nodes.size(), 1u);
  EXPECT_EQ(tree.node(result->suppressed_nodes[0]).label, "Pharmacist");
}

TEST(MonoBinTest, AggressiveWithErrorPolicyRefuses) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  MonoBinningOptions options;
  options.k = 2;
  options.strategy = MinimalityStrategy::kAggressive;
  options.on_unbinnable = UnbinnablePolicy::kError;
  auto result = MonoAttributeBin(
      maximal,
      Repeat({{"GP", 5}, {"Specialist", 5}, {"Pharmacist", 1}, {"Nurse", 5}}),
      options);
  EXPECT_EQ(result.status().code(), StatusCode::kUnbinnable);
}

TEST(MonoBinTest, UnbinnableSubtreeErrorsByDefault) {
  DomainHierarchy tree = RoleTree();
  // Maximal nodes at depth 1: {Medical Practitioner, Paramedic}.
  auto maximal =
      GeneralizationSet::Create(&tree,
                                {*tree.FindByLabel("Medical Practitioner"),
                                 *tree.FindByLabel("Paramedic")})
          .ValueOrDie();
  MonoBinningOptions options;
  options.k = 5;
  // Paramedic subtree holds only 2 tuples < k: not binnable within metrics.
  auto result = MonoAttributeBin(
      maximal, Repeat({{"GP", 5}, {"Nurse", 2}}), options);
  EXPECT_EQ(result.status().code(), StatusCode::kUnbinnable);
}

TEST(MonoBinTest, UnbinnableSubtreeSuppressedOnRequest) {
  DomainHierarchy tree = RoleTree();
  auto maximal =
      GeneralizationSet::Create(&tree,
                                {*tree.FindByLabel("Medical Practitioner"),
                                 *tree.FindByLabel("Paramedic")})
          .ValueOrDie();
  MonoBinningOptions options;
  options.k = 5;
  options.on_unbinnable = UnbinnablePolicy::kSuppress;
  auto result = MonoAttributeBin(
      maximal, Repeat({{"GP", 5}, {"Nurse", 2}}), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->suppressed_tuples, 2u);
  // The suppressed maximal node stays in the cover.
  EXPECT_TRUE(result->minimal.Contains(*tree.FindByLabel("Paramedic")));
}

TEST(MonoBinTest, EmptyMaximalSubtreeKeptWithoutSuppression) {
  DomainHierarchy tree = RoleTree();
  auto maximal =
      GeneralizationSet::Create(&tree,
                                {*tree.FindByLabel("Medical Practitioner"),
                                 *tree.FindByLabel("Paramedic")})
          .ValueOrDie();
  MonoBinningOptions options;
  options.k = 2;
  // No paramedics at all: the Paramedic node is kept, nothing suppressed.
  auto result =
      MonoAttributeBin(maximal, Repeat({{"GP", 3}, {"Specialist", 3}}),
                       options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->suppressed_tuples, 0u);
  EXPECT_TRUE(result->minimal.Contains(*tree.FindByLabel("Paramedic")));
}

TEST(MonoBinTest, ResultRespectsMaximalCeiling) {
  DomainHierarchy tree = RoleTree();
  auto maximal =
      GeneralizationSet::Create(&tree,
                                {*tree.FindByLabel("Medical Practitioner"),
                                 *tree.FindByLabel("Paramedic")})
          .ValueOrDie();
  MonoBinningOptions options;
  options.k = 100;  // huge k: everything collapses to the maximal nodes
  auto result = MonoAttributeBin(
      maximal, Repeat({{"GP", 60}, {"Specialist", 60}, {"Nurse", 120}}),
      options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->minimal.IsRefinementOf(maximal));
  EXPECT_EQ(Labels(tree, result->minimal),
            (std::set<std::string>{"Medical Practitioner", "Paramedic"}));
}

TEST(MonoBinTest, MinimalityHolds) {
  // Property: the result satisfies k-anonymity per node, and no member
  // node's children all satisfy k (simple-strategy minimality).
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  const std::vector<Value> values = Repeat(
      {{"GP", 7}, {"Specialist", 1}, {"Pharmacist", 4}, {"Nurse", 4},
       {"Consultant", 9}});
  MonoBinningOptions options;
  options.k = 3;
  auto result = MonoAttributeBin(maximal, values, options);
  ASSERT_TRUE(result.ok());
  for (NodeId member : result->minimal.nodes()) {
    const size_t count = *NumTuple(tree, member, values);
    if (count > 0) {
      EXPECT_GE(count, options.k);
    }
    if (!tree.IsLeaf(member)) {
      bool all_children_satisfy = true;
      for (NodeId child : tree.Children(member)) {
        if (*NumTuple(tree, child, values) < options.k) {
          all_children_satisfy = false;
        }
      }
      EXPECT_FALSE(all_children_satisfy)
          << tree.node(member).label << " is not minimal";
    }
  }
}

TEST(MonoBinTest, RejectsZeroK) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  MonoBinningOptions options;
  options.k = 0;
  EXPECT_FALSE(MonoAttributeBin(maximal, {}, options).ok());
}

}  // namespace
}  // namespace privmark
