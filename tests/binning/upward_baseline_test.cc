#include "binning/upward_baseline.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "datagen/medical_data.h"

namespace privmark {
namespace {

DomainHierarchy RoleTree() {
  return HierarchyBuilder::FromOutline("role", R"(Person
  Medical Practitioner
    GP
    Specialist
  Paramedic
    Pharmacist
    Nurse
    Consultant)").ValueOrDie();
}

std::vector<Value> Repeat(
    const std::vector<std::pair<std::string, int>>& label_counts) {
  std::vector<Value> out;
  for (const auto& [label, count] : label_counts) {
    for (int i = 0; i < count; ++i) out.push_back(Value::String(label));
  }
  return out;
}

TEST(UpwardBaselineTest, KeepsRichLeaves) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  auto result = UpwardAttributeBin(
      maximal,
      Repeat({{"GP", 5}, {"Specialist", 5}, {"Pharmacist", 5},
              {"Nurse", 5}, {"Consultant", 5}}),
      3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->minimal.size(), 5u);
}

TEST(UpwardBaselineTest, MergesViolatorsUpward) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  auto result = UpwardAttributeBin(
      maximal,
      Repeat({{"GP", 5}, {"Specialist", 5}, {"Pharmacist", 1},
              {"Nurse", 5}, {"Consultant", 5}}),
      3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->minimal.Contains(*tree.FindByLabel("Paramedic")));
  EXPECT_TRUE(result->minimal.Contains(*tree.FindByLabel("GP")));
}

TEST(UpwardBaselineTest, UnbinnableDetected) {
  DomainHierarchy tree = RoleTree();
  auto maximal = GeneralizationSet::Create(
                     &tree, {*tree.FindByLabel("Medical Practitioner"),
                             *tree.FindByLabel("Paramedic")})
                     .ValueOrDie();
  auto result =
      UpwardAttributeBin(maximal, Repeat({{"GP", 5}, {"Nurse", 2}}), 4);
  EXPECT_EQ(result.status().code(), StatusCode::kUnbinnable);
}

TEST(UpwardBaselineTest, EmptyRegionKeepsMaximalNode) {
  DomainHierarchy tree = RoleTree();
  auto maximal = GeneralizationSet::Create(
                     &tree, {*tree.FindByLabel("Medical Practitioner"),
                             *tree.FindByLabel("Paramedic")})
                     .ValueOrDie();
  auto result = UpwardAttributeBin(
      maximal, Repeat({{"GP", 3}, {"Specialist", 3}}), 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->minimal.Contains(*tree.FindByLabel("Paramedic")));
}

TEST(UpwardBaselineTest, AgreesWithDownwardOnHandCases) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  const std::vector<std::vector<std::pair<std::string, int>>> cases = {
      {{"GP", 5}, {"Specialist", 5}, {"Pharmacist", 5}, {"Nurse", 5},
       {"Consultant", 5}},
      {{"GP", 5}, {"Specialist", 1}, {"Nurse", 9}},
      {{"GP", 2}, {"Specialist", 2}, {"Pharmacist", 2}, {"Nurse", 2},
       {"Consultant", 2}},
      {{"Consultant", 50}},
  };
  for (size_t i = 0; i < cases.size(); ++i) {
    const std::vector<Value> values = Repeat(cases[i]);
    for (size_t k : {2, 3, 10}) {
      MonoBinningOptions options;
      options.k = k;
      auto down = MonoAttributeBin(maximal, values, options);
      auto up = UpwardAttributeBin(maximal, values, k);
      ASSERT_EQ(down.ok(), up.ok()) << "case " << i << " k " << k;
      if (!down.ok()) continue;
      EXPECT_EQ(down->minimal.nodes(), up->minimal.nodes())
          << "case " << i << " k " << k;
    }
  }
}

TEST(UpwardBaselineTest, AgreesWithDownwardOnMedicalOntologies) {
  // Property check across the real ontologies and several k.
  MedicalDataSpec spec;
  spec.num_rows = 1500;
  spec.seed = 13;
  auto ds = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  const auto qi = ds.table.schema().QuasiIdentifyingColumns();
  const auto trees = ds.trees();
  for (size_t c = 0; c < qi.size(); ++c) {
    const GeneralizationSet maximal = GeneralizationSet::RootOnly(trees[c]);
    const std::vector<Value> values = ds.table.ColumnValues(qi[c]);
    for (size_t k : {2, 8, 40}) {
      MonoBinningOptions options;
      options.k = k;
      auto down = MonoAttributeBin(maximal, values, options);
      auto up = UpwardAttributeBin(maximal, values, k);
      ASSERT_TRUE(down.ok()) << c << " " << k;
      ASSERT_TRUE(up.ok()) << c << " " << k;
      EXPECT_EQ(down->minimal.nodes(), up->minimal.nodes())
          << "column " << c << " k " << k;
      EXPECT_GT(down->nodes_inspected, 0u);
      EXPECT_GT(up->nodes_inspected, 0u);
    }
  }
}

TEST(UpwardBaselineTest, DownwardInspectsFewerNodesAtLargeK) {
  // The paper's efficiency claim: starting from the maximal nodes pays off
  // when the answer lies near them, i.e. at large k.
  MedicalDataSpec spec;
  spec.num_rows = 2000;
  spec.seed = 5;
  auto ds = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  const size_t symptom = *ds.table.schema().ColumnIndex("symptom");
  const GeneralizationSet maximal =
      GeneralizationSet::RootOnly(ds.symptom.get());
  const std::vector<Value> values = ds.table.ColumnValues(symptom);
  // k large enough that the answer sits just below the maximal node.
  MonoBinningOptions options;
  options.k = 800;
  auto down = MonoAttributeBin(maximal, values, options);
  auto up = UpwardAttributeBin(maximal, values, 800);
  ASSERT_TRUE(down.ok());
  ASSERT_TRUE(up.ok());
  EXPECT_LT(down->nodes_inspected, up->nodes_inspected);
}

TEST(UpwardBaselineTest, RejectsZeroK) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet maximal = GeneralizationSet::RootOnly(&tree);
  EXPECT_FALSE(UpwardAttributeBin(maximal, {}, 0).ok());
}

}  // namespace
}  // namespace privmark
