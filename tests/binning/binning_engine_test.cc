#include "binning/binning_engine.h"

#include <gtest/gtest.h>

#include <set>

#include "crypto/aes128.h"
#include "datagen/medical_data.h"

namespace privmark {
namespace {

// A compact data set so engine tests stay fast.
MedicalDataset SmallDataset() {
  MedicalDataSpec spec;
  spec.num_rows = 1500;
  spec.seed = 7;
  return std::move(GenerateMedicalDataset(spec)).ValueOrDie();
}

TEST(BinningEngineTest, EncryptsIdentifiersReversibly) {
  MedicalDataset ds = SmallDataset();
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  BinningAgent agent(UnconstrainedMetrics(ds.trees()), config);
  auto outcome = agent.Run(ds.table);
  ASSERT_TRUE(outcome.ok());

  const Aes128 cipher = Aes128::FromPassphrase(config.encryption_passphrase);
  const size_t ident = *ds.table.schema().IdentifyingColumn();
  for (size_t r = 0; r < 20; ++r) {
    const std::string encrypted = outcome->binned.at(r, ident).ToString();
    EXPECT_NE(encrypted, ds.table.at(r, ident).ToString());
    auto decrypted = cipher.DecryptValue(encrypted);
    ASSERT_TRUE(decrypted.ok());
    EXPECT_EQ(*decrypted, ds.table.at(r, ident).ToString());
  }
}

TEST(BinningEngineTest, QiCellsHoldUltimateLabels) {
  MedicalDataset ds = SmallDataset();
  BinningConfig config;
  config.k = 10;
  config.enforce_joint = false;
  BinningAgent agent(UnconstrainedMetrics(ds.trees()), config);
  auto outcome = agent.Run(ds.table);
  ASSERT_TRUE(outcome.ok());
  for (size_t c = 0; c < outcome->qi_columns.size(); ++c) {
    const size_t col = outcome->qi_columns[c];
    for (size_t r = 0; r < outcome->binned.num_rows(); ++r) {
      EXPECT_TRUE(outcome->ultimate[c]
                      .NodeForLabel(outcome->binned.at(r, col).ToString())
                      .ok())
          << "row " << r << " column " << col;
    }
  }
}

TEST(BinningEngineTest, PerAttributeKAnonymityHolds) {
  MedicalDataset ds = SmallDataset();
  BinningConfig config;
  config.k = 15;
  config.enforce_joint = false;
  BinningAgent agent(UnconstrainedMetrics(ds.trees()), config);
  auto outcome = agent.Run(ds.table);
  ASSERT_TRUE(outcome.ok());
  for (size_t col : outcome->qi_columns) {
    EXPECT_GE(outcome->binned.MinBinSize({col}), config.k) << col;
  }
}

TEST(BinningEngineTest, JointKAnonymityWhenEnforced) {
  MedicalDataset ds = SmallDataset();
  BinningConfig config;
  config.k = 8;
  config.enforce_joint = true;
  BinningAgent agent(UnconstrainedMetrics(ds.trees()), config);
  auto outcome = agent.Run(ds.table);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->binned.MinBinSize(outcome->qi_columns), config.k);
}

TEST(BinningEngineTest, LossesAreOrderedAndBounded) {
  MedicalDataset ds = SmallDataset();
  BinningConfig config;
  config.k = 8;
  config.enforce_joint = true;
  BinningAgent agent(UnconstrainedMetrics(ds.trees()), config);
  auto outcome = agent.Run(ds.table);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->mono_normalized_loss, 0.0);
  EXPECT_LE(outcome->mono_normalized_loss, 1.0);
  // Joint binning can only generalize further.
  EXPECT_GE(outcome->multi_normalized_loss,
            outcome->mono_normalized_loss - 1e-12);
  EXPECT_LE(outcome->multi_normalized_loss, 1.0);
}

TEST(BinningEngineTest, EpsilonRaisesEffectiveK) {
  MedicalDataset ds = SmallDataset();
  BinningConfig config;
  config.k = 10;
  config.epsilon = 5;
  config.enforce_joint = false;
  BinningAgent agent(UnconstrainedMetrics(ds.trees()), config);
  auto outcome = agent.Run(ds.table);
  ASSERT_TRUE(outcome.ok());
  for (size_t col : outcome->qi_columns) {
    EXPECT_GE(outcome->binned.MinBinSize({col}), config.k + config.epsilon);
  }
}

TEST(BinningEngineTest, MetricsCountMismatchRejected) {
  MedicalDataset ds = SmallDataset();
  auto trees = ds.trees();
  trees.pop_back();
  BinningConfig config;
  BinningAgent agent(UnconstrainedMetrics(trees), config);
  EXPECT_FALSE(agent.Run(ds.table).ok());
}

TEST(BinningEngineTest, RowCountPreservedWithoutSuppression) {
  MedicalDataset ds = SmallDataset();
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  BinningAgent agent(UnconstrainedMetrics(ds.trees()), config);
  auto outcome = agent.Run(ds.table);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->suppressed_rows, 0u);
  EXPECT_EQ(outcome->binned.num_rows(), ds.table.num_rows());
}

TEST(ApplyGeneralizationTest, ReplacesCellsWithLabels) {
  auto tree = HierarchyBuilder::FromOutline("role", R"(Person
  Doctor
  Nurse)").ValueOrDie();
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"role", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value::String("Doctor")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::String("Nurse")}).ok());
  const GeneralizationSet root = GeneralizationSet::RootOnly(&tree);
  ASSERT_TRUE(ApplyGeneralization(&t, {0}, {root}).ok());
  EXPECT_EQ(t.at(0, 0).AsString(), "Person");
  EXPECT_EQ(t.at(1, 0).AsString(), "Person");
}

TEST(ApplyGeneralizationTest, CountMismatchRejected) {
  auto tree = HierarchyBuilder::FromOutline("x", "r\n  a\n  b").ValueOrDie();
  Table t{Schema{}};
  EXPECT_FALSE(ApplyGeneralization(&t, {0}, {}).ok());
}

TEST(BinningEngineTest, SuppressionPathDropsRows) {
  // Craft a table with one rare symptom leaf under a depth-capped maximal
  // node, k too large for it.
  auto tree = HierarchyBuilder::FromOutline("sym", R"(All
  A
    a1
    a2
  B
    b1)").ValueOrDie();
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  ASSERT_TRUE(schema.AddColumn({"sym", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  Table t(schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::String("i" + std::to_string(i)),
                             Value::String(i < 9 ? (i % 2 ? "a1" : "a2")
                                                 : "b1")}).ok());
  }
  // Maximal at depth 1: {A, B}; B holds 1 < k = 3 tuples.
  UsageMetrics metrics;
  metrics.trees = {&tree};
  metrics.maximal = {CutAtDepth(&tree, 1)};
  BinningConfig config;
  config.k = 3;
  config.enforce_joint = false;
  config.mono.on_unbinnable = UnbinnablePolicy::kSuppress;
  BinningAgent agent(metrics, config);
  auto outcome = agent.Run(t);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->suppressed_rows, 1u);
  EXPECT_EQ(outcome->binned.num_rows(), 9u);

  // Same run with the error policy refuses.
  BinningConfig strict = config;
  strict.mono.on_unbinnable = UnbinnablePolicy::kError;
  BinningAgent strict_agent(metrics, strict);
  EXPECT_EQ(strict_agent.Run(t).status().code(), StatusCode::kUnbinnable);
}

}  // namespace
}  // namespace privmark
