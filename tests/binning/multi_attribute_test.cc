#include "binning/multi_attribute.h"

#include <gtest/gtest.h>

#include <set>

#include "binning/mono_attribute.h"
#include "common/parallel.h"

namespace privmark {
namespace {

// Two tiny trees for a 2-QI-column table, mirroring the paper's example of
// ages and roles each k-anonymous alone but not in combination.
DomainHierarchy AgeTree() {
  return BuildNumericHierarchy("age", {0, 25, 50, 75, 100}).ValueOrDie();
}

DomainHierarchy RoleTree() {
  return HierarchyBuilder::FromOutline("role", R"(Person
  Doctor
  Nurse)").ValueOrDie();
}

Schema TwoQiSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"age", ColumnRole::kQuasiNumeric,
                                ValueType::kInt64}).ok());
  EXPECT_TRUE(schema.AddColumn({"role", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

Table MakeTable(const std::vector<std::pair<int, std::string>>& rows) {
  Table t(TwoQiSchema());
  int id = 0;
  for (const auto& [age, role] : rows) {
    EXPECT_TRUE(t.AppendRow({Value::String("id" + std::to_string(id++)),
                             Value::Int64(age), Value::String(role)}).ok());
  }
  return t;
}

// A table where each attribute alone is 4-anonymous but the combination is
// not: 4 young doctors + 4 old nurses + ... crossing cells of size 2.
Table CrossedTable() {
  std::vector<std::pair<int, std::string>> rows;
  for (int i = 0; i < 2; ++i) rows.push_back({10, "Doctor"});
  for (int i = 0; i < 2; ++i) rows.push_back({10, "Nurse"});
  for (int i = 0; i < 2; ++i) rows.push_back({60, "Doctor"});
  for (int i = 0; i < 2; ++i) rows.push_back({60, "Nurse"});
  return MakeTable(rows);
}

TEST(IsJointlyKAnonymousTest, DetectsViolations) {
  DomainHierarchy age = AgeTree();
  DomainHierarchy role = RoleTree();
  const Table table = CrossedTable();
  const std::vector<GeneralizationSet> leaves = {
      GeneralizationSet::AllLeaves(&age), GeneralizationSet::AllLeaves(&role)};
  // Each joint cell has exactly 2 rows.
  EXPECT_TRUE(*IsJointlyKAnonymous(table, {1, 2}, leaves, 2));
  EXPECT_FALSE(*IsJointlyKAnonymous(table, {1, 2}, leaves, 3));
  // Fully generalized: everything in one bin of 8.
  const std::vector<GeneralizationSet> roots = {
      GeneralizationSet::RootOnly(&age), GeneralizationSet::RootOnly(&role)};
  EXPECT_TRUE(*IsJointlyKAnonymous(table, {1, 2}, roots, 8));
}

TEST(MultiBinTest, AlreadySatisfiedFastPath) {
  DomainHierarchy age = AgeTree();
  DomainHierarchy role = RoleTree();
  const Table table = CrossedTable();
  const std::vector<GeneralizationSet> minimal = {
      GeneralizationSet::AllLeaves(&age), GeneralizationSet::AllLeaves(&role)};
  const std::vector<GeneralizationSet> maximal = {
      GeneralizationSet::RootOnly(&age), GeneralizationSet::RootOnly(&role)};
  MultiBinningOptions options;
  options.k = 2;
  auto result = MultiAttributeBin(table, {1, 2}, minimal, maximal, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->already_satisfied);
  EXPECT_EQ(result->ultimate[0], minimal[0]);
  EXPECT_EQ(result->ultimate[1], minimal[1]);
}

TEST(MultiBinTest, GeneralizesToMeetJointK) {
  DomainHierarchy age = AgeTree();
  DomainHierarchy role = RoleTree();
  const Table table = CrossedTable();
  const std::vector<GeneralizationSet> minimal = {
      GeneralizationSet::AllLeaves(&age), GeneralizationSet::AllLeaves(&role)};
  const std::vector<GeneralizationSet> maximal = {
      GeneralizationSet::RootOnly(&age), GeneralizationSet::RootOnly(&role)};
  for (SearchStrategy strategy :
       {SearchStrategy::kExhaustive, SearchStrategy::kGreedy}) {
    MultiBinningOptions options;
    options.k = 4;
    options.strategy = strategy;
    auto result = MultiAttributeBin(table, {1, 2}, minimal, maximal, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(
        *IsJointlyKAnonymous(table, {1, 2}, result->ultimate, options.k));
    // Merging the role column alone ({10,"*"} x4, {60,"*"} x4) suffices and
    // is cheaper than merging ages; both strategies should find a solution
    // with total specificity loss <= merging the age tree.
    EXPECT_LE(result->total_specificity_loss, 0.76);
  }
}

TEST(MultiBinTest, ExhaustiveMatchesGreedyOnSmallCase) {
  DomainHierarchy age = AgeTree();
  DomainHierarchy role = RoleTree();
  const Table table = CrossedTable();
  const std::vector<GeneralizationSet> minimal = {
      GeneralizationSet::AllLeaves(&age), GeneralizationSet::AllLeaves(&role)};
  const std::vector<GeneralizationSet> maximal = {
      GeneralizationSet::RootOnly(&age), GeneralizationSet::RootOnly(&role)};
  MultiBinningOptions ex;
  ex.k = 4;
  ex.strategy = SearchStrategy::kExhaustive;
  MultiBinningOptions gr;
  gr.k = 4;
  gr.strategy = SearchStrategy::kGreedy;
  auto exhaustive = MultiAttributeBin(table, {1, 2}, minimal, maximal, ex);
  auto greedy = MultiAttributeBin(table, {1, 2}, minimal, maximal, gr);
  ASSERT_TRUE(exhaustive.ok());
  ASSERT_TRUE(greedy.ok());
  // Exhaustive is optimal; greedy must be no better (and here, equal or
  // close).
  EXPECT_LE(exhaustive->total_specificity_loss,
            greedy->total_specificity_loss + 1e-12);
}

TEST(MultiBinTest, UnbinnableWhenMaximalTooTight) {
  DomainHierarchy age = AgeTree();
  DomainHierarchy role = RoleTree();
  const Table table = CrossedTable();  // 8 rows
  const std::vector<GeneralizationSet> minimal = {
      GeneralizationSet::AllLeaves(&age), GeneralizationSet::AllLeaves(&role)};
  // Maximal = minimal: no room to generalize.
  MultiBinningOptions options;
  options.k = 4;
  auto result = MultiAttributeBin(table, {1, 2}, minimal, minimal, options);
  EXPECT_EQ(result.status().code(), StatusCode::kUnbinnable);
}

TEST(MultiBinTest, RejectsInconsistentBounds) {
  DomainHierarchy age = AgeTree();
  DomainHierarchy role = RoleTree();
  const Table table = CrossedTable();
  const std::vector<GeneralizationSet> minimal = {
      GeneralizationSet::AllLeaves(&age), GeneralizationSet::AllLeaves(&role)};
  const std::vector<GeneralizationSet> maximal = {
      GeneralizationSet::RootOnly(&age)};
  MultiBinningOptions options;
  options.k = 2;
  EXPECT_FALSE(
      MultiAttributeBin(table, {1, 2}, minimal, maximal, options).ok());
}

TEST(MultiBinTest, ExhaustiveCapTriggers) {
  // A wider tree so enumeration explodes past a tiny cap.
  auto age = BuildNumericHierarchy(
                 "age", {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
                 .ValueOrDie();
  DomainHierarchy role = RoleTree();
  std::vector<std::pair<int, std::string>> rows;
  for (int a = 5; a < 100; a += 10) {
    rows.push_back({a, "Doctor"});
    rows.push_back({a, "Nurse"});
  }
  const Table table = MakeTable(rows);
  const std::vector<GeneralizationSet> minimal = {
      GeneralizationSet::AllLeaves(&age), GeneralizationSet::AllLeaves(&role)};
  const std::vector<GeneralizationSet> maximal = {
      GeneralizationSet::RootOnly(&age), GeneralizationSet::RootOnly(&role)};
  MultiBinningOptions options;
  options.k = 4;
  options.strategy = SearchStrategy::kExhaustive;
  options.max_enumerations = 5;
  auto result = MultiAttributeBin(table, {1, 2}, minimal, maximal, options);
  EXPECT_EQ(result.status().code(), StatusCode::kCapacityExceeded);
}

TEST(MultiBinTest, GreedyHandlesWiderProblem) {
  auto age = BuildNumericHierarchy(
                 "age", {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
                 .ValueOrDie();
  DomainHierarchy role = RoleTree();
  std::vector<std::pair<int, std::string>> rows;
  for (int a = 5; a < 100; a += 10) {
    for (int i = 0; i < 3; ++i) rows.push_back({a, "Doctor"});
    rows.push_back({a, "Nurse"});
  }
  const Table table = MakeTable(rows);
  const std::vector<GeneralizationSet> minimal = {
      GeneralizationSet::AllLeaves(&age), GeneralizationSet::AllLeaves(&role)};
  const std::vector<GeneralizationSet> maximal = {
      GeneralizationSet::RootOnly(&age), GeneralizationSet::RootOnly(&role)};
  MultiBinningOptions options;
  options.k = 4;
  options.strategy = SearchStrategy::kGreedy;
  auto result = MultiAttributeBin(table, {1, 2}, minimal, maximal, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(
      *IsJointlyKAnonymous(table, {1, 2}, result->ultimate, options.k));
  // Ultimate sets must stay within bounds.
  for (size_t c = 0; c < 2; ++c) {
    EXPECT_TRUE(minimal[c].IsRefinementOf(result->ultimate[c]));
    EXPECT_TRUE(result->ultimate[c].IsRefinementOf(maximal[c]));
  }
}

TEST(MultiBinTest, ParallelCandidateSearchMatchesSerial) {
  // Both strategies must pick the same chosen generalization — same
  // ultimate nodes, candidate count, and loss — for any worker count
  // (candidate verdicts merge in candidate order).
  auto age = BuildNumericHierarchy(
                 "age", {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
                 .ValueOrDie();
  DomainHierarchy role = RoleTree();
  std::vector<std::pair<int, std::string>> rows;
  for (int a = 5; a < 100; a += 10) {
    for (int i = 0; i < 3; ++i) rows.push_back({a, "Doctor"});
    rows.push_back({a, "Nurse"});
  }
  const Table table = MakeTable(rows);
  const std::vector<GeneralizationSet> minimal = {
      GeneralizationSet::AllLeaves(&age), GeneralizationSet::AllLeaves(&role)};
  const std::vector<GeneralizationSet> maximal = {
      GeneralizationSet::RootOnly(&age), GeneralizationSet::RootOnly(&role)};
  for (SearchStrategy strategy :
       {SearchStrategy::kExhaustive, SearchStrategy::kGreedy}) {
    MultiBinningOptions options;
    options.k = 4;
    options.strategy = strategy;
    options.max_enumerations = 1000000;
    const auto serial =
        MultiAttributeBin(table, {1, 2}, minimal, maximal, options);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (size_t threads : {size_t{2}, size_t{3}, size_t{7}}) {
      const auto pool = MakeThreadPool(threads);
      const auto parallel = MultiAttributeBin(table, {1, 2}, minimal, maximal,
                                              options, nullptr, pool.get());
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(serial->ultimate, parallel->ultimate)
          << threads << " threads, strategy "
          << (strategy == SearchStrategy::kGreedy ? "greedy" : "exhaustive");
      EXPECT_EQ(serial->candidates_considered, parallel->candidates_considered)
          << threads;
      EXPECT_EQ(serial->total_specificity_loss,
                parallel->total_specificity_loss)
          << threads;
    }
  }
}

TEST(MultiBinTest, ParallelErrorsMatchSerial) {
  // Unbinnable and capacity errors must surface identically with workers.
  DomainHierarchy age = AgeTree();
  DomainHierarchy role = RoleTree();
  const Table table = CrossedTable();
  const std::vector<GeneralizationSet> minimal = {
      GeneralizationSet::AllLeaves(&age), GeneralizationSet::AllLeaves(&role)};
  MultiBinningOptions options;
  options.k = 4;
  const auto pool = MakeThreadPool(3);
  const auto serial = MultiAttributeBin(table, {1, 2}, minimal, minimal,
                                        options);
  const auto parallel = MultiAttributeBin(table, {1, 2}, minimal, minimal,
                                          options, nullptr, pool.get());
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(serial.status(), parallel.status());
}

}  // namespace
}  // namespace privmark
