#include "datagen/medical_data.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace privmark {
namespace {

TEST(OntologyTest, AgeTreeShape) {
  auto tree = BuildAgeHierarchy().ValueOrDie();
  EXPECT_TRUE(tree.is_numeric());
  EXPECT_EQ(tree.Leaves().size(), 30u);  // [0,150) in width-5 strips
  EXPECT_EQ(tree.node(tree.root()).label, "[0,150)");
  // Every age in-domain maps to a leaf.
  for (int age = 0; age < 150; age += 7) {
    EXPECT_TRUE(tree.LeafForValue(Value::Int64(age)).ok()) << age;
  }
  EXPECT_FALSE(tree.LeafForValue(Value::Int64(150)).ok());
}

TEST(OntologyTest, ZipTreeShape) {
  auto tree = BuildZipHierarchy().ValueOrDie();
  EXPECT_EQ(tree.Leaves().size(), 96u);  // matches Fig. 14's zip bin count
  // 8 regions at depth 1, 3 districts each.
  EXPECT_EQ(tree.Children(tree.root()).size(), 8u);
  for (NodeId region : tree.Children(tree.root())) {
    EXPECT_EQ(tree.Children(region).size(), 3u);
    for (NodeId district : tree.Children(region)) {
      EXPECT_EQ(tree.Children(district).size(), 4u);
    }
  }
  // Leaves are 5-digit codes consistent with their district prefix.
  for (NodeId leaf : tree.Leaves()) {
    const std::string& label = tree.node(leaf).label;
    EXPECT_EQ(label.size(), 5u);
    const std::string& district = tree.node(tree.Parent(leaf)).label;
    EXPECT_EQ(label.substr(0, 3), district.substr(0, 3));
  }
}

TEST(OntologyTest, DoctorTreeHasTwentyPractitioners) {
  auto tree = BuildDoctorHierarchy().ValueOrDie();
  EXPECT_EQ(tree.Leaves().size(), 20u);  // Fig. 14: 20 doctor bins
  EXPECT_EQ(tree.node(tree.root()).label, "Person");
  EXPECT_TRUE(tree.FindByLabel("Paramedic").ok());
  EXPECT_TRUE(tree.FindByLabel("Medical Practitioner").ok());
}

TEST(OntologyTest, SymptomTreeIcd9Shape) {
  auto tree = BuildSymptomHierarchy().ValueOrDie();
  EXPECT_GE(tree.Leaves().size(), 80u);
  EXPECT_LE(tree.Leaves().size(), 120u);
  EXPECT_EQ(tree.Children(tree.root()).size(), 8u);  // chapters
  // Conditions are exactly three levels down: chapter -> block -> leaf.
  for (NodeId leaf : tree.Leaves()) {
    EXPECT_EQ(tree.Depth(leaf), 3) << tree.node(leaf).label;
  }
}

TEST(OntologyTest, PrescriptionTreeShape) {
  auto tree = BuildPrescriptionHierarchy().ValueOrDie();
  EXPECT_GE(tree.Leaves().size(), 80u);
  EXPECT_LE(tree.Leaves().size(), 120u);
  EXPECT_EQ(tree.Children(tree.root()).size(), 8u);  // drug classes
}

TEST(MedicalSchemaTest, MatchesPaperSchema) {
  const Schema schema = MedicalSchema();
  ASSERT_EQ(schema.num_columns(), 6u);
  EXPECT_EQ(schema.column(0).name, "ssn");
  EXPECT_EQ(schema.column(0).role, ColumnRole::kIdentifying);
  EXPECT_EQ(schema.column(1).name, "age");
  EXPECT_EQ(schema.column(1).role, ColumnRole::kQuasiNumeric);
  EXPECT_EQ(schema.QuasiIdentifyingColumns().size(), 5u);
  EXPECT_EQ(*schema.IdentifyingColumn(), 0u);
}

TEST(GeneratorTest, ProducesRequestedRows) {
  MedicalDataSpec spec;
  spec.num_rows = 500;
  auto ds = GenerateMedicalDataset(spec);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->table.num_rows(), 500u);
  EXPECT_EQ(ds->table.num_columns(), 6u);
}

TEST(GeneratorTest, SsnsAreUniqueNineDigitStrings) {
  MedicalDataSpec spec;
  spec.num_rows = 800;
  auto ds = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  std::set<std::string> ssns;
  for (size_t r = 0; r < ds.table.num_rows(); ++r) {
    const std::string ssn = ds.table.at(r, 0).ToString();
    EXPECT_EQ(ssn.size(), 9u);
    for (char c : ssn) EXPECT_TRUE(c >= '0' && c <= '9');
    ssns.insert(ssn);
  }
  EXPECT_EQ(ssns.size(), 800u);
}

TEST(GeneratorTest, AllValuesLieInTheirDomains) {
  MedicalDataSpec spec;
  spec.num_rows = 400;
  auto ds = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  const auto trees = ds.trees();
  const auto qi = ds.table.schema().QuasiIdentifyingColumns();
  ASSERT_EQ(qi.size(), trees.size());
  for (size_t r = 0; r < ds.table.num_rows(); ++r) {
    for (size_t c = 0; c < qi.size(); ++c) {
      EXPECT_TRUE(trees[c]->LeafForValue(ds.table.at(r, qi[c])).ok())
          << "row " << r << " column " << qi[c];
    }
  }
}

TEST(GeneratorTest, DeterministicForEqualSeeds) {
  MedicalDataSpec spec;
  spec.num_rows = 200;
  spec.seed = 4242;
  auto a = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  auto b = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  ASSERT_EQ(a.table.num_rows(), b.table.num_rows());
  for (size_t r = 0; r < a.table.num_rows(); ++r) {
    for (size_t c = 0; c < a.table.num_columns(); ++c) {
      EXPECT_EQ(a.table.at(r, c), b.table.at(r, c)) << r << "," << c;
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  MedicalDataSpec a_spec;
  a_spec.num_rows = 200;
  a_spec.seed = 1;
  MedicalDataSpec b_spec = a_spec;
  b_spec.seed = 2;
  auto a = std::move(GenerateMedicalDataset(a_spec)).ValueOrDie();
  auto b = std::move(GenerateMedicalDataset(b_spec)).ValueOrDie();
  int differing = 0;
  for (size_t r = 0; r < 200; ++r) {
    if (a.table.at(r, 0) != b.table.at(r, 0)) ++differing;
  }
  EXPECT_GT(differing, 150);
}

TEST(GeneratorTest, ValueFrequenciesAreSkewed) {
  // Zipf skew: the most common symptom should dominate the median one.
  MedicalDataSpec spec;
  spec.num_rows = 5000;
  auto ds = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  const size_t symptom_col = *ds.table.schema().ColumnIndex("symptom");
  std::map<std::string, size_t> counts;
  for (size_t r = 0; r < ds.table.num_rows(); ++r) {
    ++counts[ds.table.at(r, symptom_col).ToString()];
  }
  std::vector<size_t> sorted;
  for (const auto& [label, n] : counts) sorted.push_back(n);
  std::sort(sorted.rbegin(), sorted.rend());
  ASSERT_GT(sorted.size(), 10u);
  EXPECT_GT(sorted[0], 3 * sorted[sorted.size() / 2]);
}

TEST(GeneratorTest, AgeDistributionIsMultimodalAdultHeavy) {
  MedicalDataSpec spec;
  spec.num_rows = 5000;
  auto ds = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  const size_t age_col = *ds.table.schema().ColumnIndex("age");
  size_t adults = 0;
  for (size_t r = 0; r < ds.table.num_rows(); ++r) {
    const int64_t age = ds.table.at(r, age_col).AsInt64();
    EXPECT_GE(age, 0);
    EXPECT_LT(age, 150);
    if (age >= 18 && age < 65) ++adults;
  }
  EXPECT_GT(adults, ds.table.num_rows() / 2);
}

}  // namespace
}  // namespace privmark
