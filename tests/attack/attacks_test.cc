#include "attack/attacks.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace privmark {
namespace {

DomainHierarchy DeepTree() {
  return HierarchyBuilder::FromOutline("sym", R"(All
  C1
    a1
    a2
  C2
    b1
    b2)").ValueOrDie();
}

Schema OneQiSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"sym", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

Table MakeTable(const DomainHierarchy& tree, size_t rows) {
  Table t(OneQiSchema());
  const auto& leaves = tree.Leaves();
  for (size_t r = 0; r < rows; ++r) {
    EXPECT_TRUE(
        t.AppendRow({Value::String("id-" + std::to_string(1000 + r)),
                     Value::String(tree.node(leaves[r % leaves.size()]).label)})
            .ok());
  }
  return t;
}

TEST(SubsetAlterationTest, AffectsRequestedFraction) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 200);
  Random rng(1);
  auto report = SubsetAlterationAttack(&t, {1}, 0.25, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_affected, 50u);
  EXPECT_LE(report->cells_changed, 50u);
  EXPECT_EQ(t.num_rows(), 200u);
}

TEST(SubsetAlterationTest, ReplacementsComeFromVisibleLabels) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 100);
  std::set<std::string> visible;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    visible.insert(t.at(r, 1).ToString());
  }
  Random rng(2);
  ASSERT_TRUE(SubsetAlterationAttack(&t, {1}, 1.0, &rng).ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_TRUE(visible.count(t.at(r, 1).ToString())) << r;
  }
}

TEST(SubsetAlterationTest, ZeroFractionIsNoop) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 50);
  Table before = t.Clone();
  Random rng(3);
  auto report = SubsetAlterationAttack(&t, {1}, 0.0, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_affected, 0u);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(t.at(r, 1), before.at(r, 1));
  }
}

TEST(SubsetAlterationTest, RejectsBadFraction) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 10);
  Random rng(4);
  EXPECT_FALSE(SubsetAlterationAttack(&t, {1}, -0.1, &rng).ok());
  EXPECT_FALSE(SubsetAlterationAttack(&t, {1}, 1.5, &rng).ok());
}

TEST(SubsetAlterationTest, DeterministicGivenSeed) {
  DomainHierarchy tree = DeepTree();
  Table a = MakeTable(tree, 100);
  Table b = MakeTable(tree, 100);
  Random rng_a(7);
  Random rng_b(7);
  ASSERT_TRUE(SubsetAlterationAttack(&a, {1}, 0.5, &rng_a).ok());
  ASSERT_TRUE(SubsetAlterationAttack(&b, {1}, 0.5, &rng_b).ok());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.at(r, 1), b.at(r, 1));
  }
}

TEST(SubsetAdditionTest, AppendsPlausibleTuples) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 100);
  Random rng(5);
  auto report = SubsetAdditionAttack(&t, 0.4, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_affected, 40u);
  EXPECT_EQ(t.num_rows(), 140u);
  // Added identifiers are hex-looking and same length as donors'.
  for (size_t r = 100; r < 140; ++r) {
    const std::string ident = t.at(r, 0).ToString();
    EXPECT_EQ(ident.size(), t.at(0, 0).ToString().size());
    for (char ch : ident) {
      EXPECT_TRUE((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')) << ch;
    }
    // QI cell copied from a donor: must be a known label.
    EXPECT_TRUE(tree.FindByLabel(t.at(r, 1).ToString()).ok());
  }
}

TEST(SubsetAdditionTest, FractionAboveOneAllowed) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 50);
  Random rng(6);
  auto report = SubsetAdditionAttack(&t, 2.0, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(t.num_rows(), 150u);
}

TEST(SubsetAdditionTest, RejectsNegativeFraction) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 10);
  Random rng(6);
  EXPECT_FALSE(SubsetAdditionAttack(&t, -0.5, &rng).ok());
}

TEST(SubsetDeletionTest, DeletesContiguousIdentifierRange) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 100);
  Random rng(8);
  auto report = SubsetDeletionAttack(&t, 0.3, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rows_affected, 30u);
  EXPECT_EQ(t.num_rows(), 70u);
  // The surviving identifiers form the complement of one contiguous range
  // in sorted order: sorted survivors must have exactly one "gap".
  std::vector<std::string> survivors;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    survivors.push_back(t.at(r, 0).ToString());
  }
  std::sort(survivors.begin(), survivors.end());
  // ids were "id-1000".."id-1099": find the missing block.
  int gaps = 0;
  int prev = 1000 - 1;
  for (const auto& ident : survivors) {
    const int num = std::stoi(ident.substr(3));
    if (num != prev + 1) ++gaps;
    prev = num;
  }
  // One interior gap (or none if the range was a prefix/suffix).
  EXPECT_LE(gaps, 1);
}

TEST(SubsetDeletionTest, FullDeletionEmptiesTable) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 40);
  Random rng(9);
  auto report = SubsetDeletionAttack(&t, 1.0, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(SubsetDeletionTest, RejectsBadFraction) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 10);
  Random rng(9);
  EXPECT_FALSE(SubsetDeletionAttack(&t, 1.0001, &rng).ok());
}

TEST(GeneralizationAttackTest, MovesLabelsOneLevelUp) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 20);
  const GeneralizationSet maximal = CutAtDepth(&tree, 1);
  auto report = GeneralizationAttack(&t, {1}, {maximal}, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->cells_changed, 20u);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const std::string label = t.at(r, 1).ToString();
    EXPECT_TRUE(label == "C1" || label == "C2") << label;
  }
}

TEST(GeneralizationAttackTest, NeverExceedsMaximalCeiling) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 20);
  const GeneralizationSet maximal = CutAtDepth(&tree, 1);
  // Ask for 5 levels: must stop at C1/C2, never reach "All".
  auto report = GeneralizationAttack(&t, {1}, {maximal}, 5);
  ASSERT_TRUE(report.ok());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const std::string label = t.at(r, 1).ToString();
    EXPECT_NE(label, "All");
  }
}

TEST(GeneralizationAttackTest, IdempotentOnceAtCeiling) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 20);
  const GeneralizationSet maximal = CutAtDepth(&tree, 1);
  ASSERT_TRUE(GeneralizationAttack(&t, {1}, {maximal}, 1).ok());
  auto second = GeneralizationAttack(&t, {1}, {maximal}, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cells_changed, 0u);
}

TEST(GeneralizationAttackTest, Validation) {
  DomainHierarchy tree = DeepTree();
  Table t = MakeTable(tree, 5);
  const GeneralizationSet maximal = CutAtDepth(&tree, 1);
  EXPECT_FALSE(GeneralizationAttack(&t, {1}, {maximal}, 0).ok());
  EXPECT_FALSE(GeneralizationAttack(&t, {1}, {}, 1).ok());
}

TEST(ForgeryTest, LongMarkMakesRandomClaimsHopeless) {
  // Attack 2: with F one-way, the attacker's only move is random v_a
  // claims. For a 64-bit mark, P(>= 80% agreement by chance) ~ 4e-7, so
  // thousands of trials produce zero successes.
  Random rng(12);
  BitVector recovered(64);
  for (size_t i = 0; i < 64; ++i) recovered.Set(i, (i * 7) % 3 == 0);
  auto report = AttemptStatisticForgery(recovered, 64, HashAlgorithm::kSha1,
                                        0.8, 3000, &rng);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->trials, 3000u);
  EXPECT_EQ(report->successes, 0u);
  EXPECT_LT(report->best_match, 0.8);
}

TEST(ForgeryTest, ShortMarkChanceRateMatchesBinomialTail) {
  // The paper's experiments use a 20-bit mark; at that length a random
  // claim reaches 80% agreement with probability ~0.6% (binomial tail
  // P[X >= 16], X ~ Bin(20, 1/2)) — which is why the dispute protocol also
  // demands the decryption-based statistic consistency, not just the mark
  // match. This test pins the measured chance rate to that analysis.
  Random rng(12);
  BitVector recovered = BitVector::FromString("10110010011010111001")
                            .ValueOrDie();
  constexpr size_t kTrials = 5000;
  auto report = AttemptStatisticForgery(recovered, 20, HashAlgorithm::kSha1,
                                        0.8, kTrials, &rng);
  ASSERT_TRUE(report.ok());
  const double expected_rate = 0.0059;  // P[Bin(20,0.5) >= 16]
  const double measured_rate =
      static_cast<double>(report->successes) / kTrials;
  EXPECT_GT(measured_rate, expected_rate / 3);
  EXPECT_LT(measured_rate, expected_rate * 3);
}

}  // namespace
}  // namespace privmark
