// The conversion-seam suite (service/convert.h): one round-trip per
// RequestKind through ToWireRequest -> ToServiceRequest, the frame/kind
// bijection, and the non-OK response envelope that ToWireResponse pins
// down (threads_granted = 0, journal_status OK, retry hint on the
// status). A field added to either request surface must fail here, not
// silently drop in a hand-copy.

#include "service/convert.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "watermark/key_registry.h"

namespace privmark {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnRole::kIdentifying, ValueType::kString},
                 {"age", ColumnRole::kQuasiNumeric, ValueType::kInt64}});
}

Table TestTable() {
  Table table(TestSchema());
  EXPECT_TRUE(table.AppendRow({Value::String("s-1"), Value::Int64(41)}).ok());
  EXPECT_TRUE(table.AppendRow({Value::String("s-2"), Value::Int64(17)}).ok());
  return table;
}

std::shared_ptr<const KeyRegistry> TestRegistry() {
  KeyRegistry registry;
  Random rng(77);
  EXPECT_TRUE(registry.Add(GenerateKey("recipient-a", 10, &rng)).ok());
  EXPECT_TRUE(registry.Add(GenerateKey("recipient-b", 10, &rng)).ok());
  return std::make_shared<const KeyRegistry>(std::move(registry));
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.at(r, c), b.at(r, c)) << "row " << r << " col " << c;
    }
  }
}

// ---- kind <-> frame bijection ---------------------------------------------

constexpr RequestKind kAllKinds[] = {
    RequestKind::kProtectBatch, RequestKind::kFlush, RequestKind::kDetect,
    RequestKind::kDetectFingerprint, RequestKind::kCloseSession};

TEST(ConvertKindTest, EveryKindRoundTripsThroughItsFrame) {
  for (const RequestKind kind : kAllKinds) {
    auto back = RequestKindForFrame(FrameForRequestKind(kind));
    ASSERT_TRUE(back.ok()) << RequestKindToString(kind);
    EXPECT_EQ(*back, kind) << RequestKindToString(kind);
  }
}

TEST(ConvertKindTest, NonRequestFramesHaveNoKind) {
  for (const WireFrameType type :
       {WireFrameType::kOpen, WireFrameType::kResponse,
        WireFrameType::kPartial}) {
    auto kind = RequestKindForFrame(type);
    ASSERT_FALSE(kind.ok()) << WireFrameTypeToString(type);
    EXPECT_EQ(kind.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---- per-kind request round-trips -----------------------------------------

// Sends `request` through ToWireRequest -> ToServiceRequest and checks
// the shared fields; returns the round-tripped request for kind-specific
// assertions.
ServiceRequest RoundTrip(const ServiceRequest& request) {
  const WireRequest wire = ToWireRequest(request);
  EXPECT_EQ(wire.type, FrameForRequestKind(request.kind));
  auto back = ToServiceRequest(wire);
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->kind, request.kind);
  EXPECT_EQ(back->session, request.session);
  EXPECT_EQ(back->num_threads, request.num_threads);
  EXPECT_EQ(back->deadline_ms, request.deadline_ms);
  return *std::move(back);
}

TEST(ConvertRequestTest, ProtectBatchRoundTripsTable) {
  ServiceRequest request;
  request.kind = RequestKind::kProtectBatch;
  request.session = "ward-a";
  request.table = TestTable();
  request.num_threads = 4;
  request.deadline_ms = 2500;
  const ServiceRequest back = RoundTrip(request);
  ExpectTablesEqual(request.table, back.table);
}

TEST(ConvertRequestTest, FlushRoundTripsSessionThreadsSentinel) {
  ServiceRequest request;
  request.kind = RequestKind::kFlush;
  request.session = "ward-b";
  // The defaults themselves must survive: kSessionThreads is a
  // sentinel, not a count, and must come back as exactly that value.
  const ServiceRequest back = RoundTrip(request);
  EXPECT_EQ(back.num_threads, kSessionThreads);
  EXPECT_EQ(back.deadline_ms, kDeadlineFromConfig);
}

TEST(ConvertRequestTest, DetectRoundTripsTable) {
  ServiceRequest request;
  request.kind = RequestKind::kDetect;
  request.session = "ward-c";
  request.table = TestTable();
  const ServiceRequest back = RoundTrip(request);
  ExpectTablesEqual(request.table, back.table);
}

TEST(ConvertRequestTest, FingerprintRoundTripsRegistryLosslessly) {
  ServiceRequest request;
  request.kind = RequestKind::kDetectFingerprint;
  request.session = "audit";
  request.table = TestTable();
  request.registry = TestRegistry();
  const ServiceRequest back = RoundTrip(request);
  ASSERT_NE(back.registry, nullptr);
  // Serialize/Parse is the wire's registry transport; the round-tripped
  // registry must be byte-identical under re-serialization (names,
  // order, key material, eta — everything).
  EXPECT_EQ(back.registry->Serialize(), request.registry->Serialize());
  // No sink crossed the seam: a sink is transport-local.
  EXPECT_EQ(back.fingerprint_sink, nullptr);
}

TEST(ConvertRequestTest, FingerprintSinkBecomesTheStreamFlag) {
  ServiceRequest request;
  request.kind = RequestKind::kDetectFingerprint;
  request.session = "audit";
  request.registry = TestRegistry();
  EXPECT_FALSE(ToWireRequest(request).stream);
  request.fingerprint_sink = [](const FingerprintShard&) {};
  EXPECT_TRUE(ToWireRequest(request).stream);
  // The flag is fingerprint-only: other kinds never set it.
  ServiceRequest flush;
  flush.kind = RequestKind::kFlush;
  EXPECT_FALSE(ToWireRequest(flush).stream);
}

TEST(ConvertRequestTest, CloseRoundTrips) {
  ServiceRequest request;
  request.kind = RequestKind::kCloseSession;
  request.session = "done";
  RoundTrip(request);
}

TEST(ConvertRequestTest, MalformedRegistryTextRejected) {
  WireRequest wire;
  wire.type = WireFrameType::kFingerprint;
  wire.session = "audit";
  wire.registry_text = "not a registry";
  auto request = ToServiceRequest(wire);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
}

// ---- response envelope ----------------------------------------------------

TEST(ConvertResponseTest, NonOkResultPinsDownTheEnvelope) {
  const Status shed =
      Status::ResourceExhausted("queue full").WithRetryAfterMs(120);
  const WireResponse response = ToWireResponse(
      WireFrameType::kIngest, Result<ServiceResponse>(shed));
  EXPECT_EQ(response.kind, WireFrameType::kIngest);
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(response.status.retry_after_ms(), 120);
  EXPECT_EQ(response.threads_granted, 0u);
  EXPECT_TRUE(response.journal_status.ok());
}

TEST(ConvertResponseTest, IngestResultCopiesEveryField) {
  ServiceResponse executed;
  executed.kind = RequestKind::kProtectBatch;
  executed.threads_granted = 3;
  executed.journal_status = Status::IOError("barrier degraded");
  executed.ingest.epoch = 2;
  executed.ingest.flushed = true;
  executed.ingest.rows_emitted = 10;
  executed.ingest.rows_suppressed = 1;
  executed.ingest.rows_buffered = 4;
  executed.ingest.emitted = TestTable();
  const WireResponse response = ToWireResponse(
      WireFrameType::kIngest, Result<ServiceResponse>(std::move(executed)));
  EXPECT_TRUE(response.status.ok());
  EXPECT_EQ(response.threads_granted, 3u);
  EXPECT_EQ(response.journal_status.code(), StatusCode::kIOError);
  EXPECT_EQ(response.ingest.epoch, 2u);
  EXPECT_TRUE(response.ingest.flushed);
  EXPECT_EQ(response.ingest.rows_emitted, 10u);
  EXPECT_EQ(response.ingest.rows_suppressed, 1u);
  EXPECT_EQ(response.ingest.rows_buffered, 4u);
  EXPECT_EQ(response.ingest.emitted.num_rows(), 2u);
}

TEST(ConvertResponseTest, CloseRunsTheManifestFnPerEpoch) {
  ServiceResponse executed;
  executed.kind = RequestKind::kCloseSession;
  executed.stats.rows_ingested = 30;
  executed.stats.rows_emitted = 28;
  executed.stats.rows_suppressed = 2;
  EpochRecord epoch;
  epoch.epoch = 1;
  epoch.rows_emitted = 28;
  executed.stats.epochs.push_back(epoch);
  std::vector<uint64_t> seen;
  const WireResponse response = ToWireResponse(
      WireFrameType::kClose, Result<ServiceResponse>(std::move(executed)),
      [&seen](const EpochRecord& record) -> Result<std::string> {
        seen.push_back(record.epoch);
        return "manifest-for-" + std::to_string(record.epoch);
      });
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{1}));
  ASSERT_EQ(response.close.epochs.size(), 1u);
  EXPECT_EQ(response.close.epochs[0].manifest_text, "manifest-for-1");
  EXPECT_EQ(response.close.rows_ingested, 30u);
}

TEST(ConvertResponseTest, ManifestFailureBecomesAnErrorEnvelope) {
  ServiceResponse executed;
  executed.kind = RequestKind::kCloseSession;
  executed.threads_granted = 1;
  EpochRecord epoch;
  epoch.epoch = 0;
  executed.stats.epochs.push_back(epoch);
  const WireResponse response = ToWireResponse(
      WireFrameType::kClose, Result<ServiceResponse>(std::move(executed)),
      [](const EpochRecord&) -> Result<std::string> {
        return Status::IOError("manifest build failed");
      });
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.threads_granted, 0u);
  EXPECT_TRUE(response.close.epochs.empty());
}

}  // namespace
}  // namespace privmark
