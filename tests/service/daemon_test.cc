// Daemon robustness suite: the network front-end against well-formed
// clients, hostile peers (bad magic, oversized lengths, unknown tags,
// CRC damage, mid-frame disconnects), injected socket faults, and
// overload (typed retry_after_ms shedding over the wire). A protocol
// error must be fatal to the offending connection only — the daemon
// keeps serving everyone else.

#include "service/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "service/client.h"

namespace privmark {
namespace {

constexpr size_t kRows = 1200;

struct Env {
  std::unique_ptr<MedicalDataset> dataset;
  std::unique_ptr<PrivmarkDaemon> daemon;
};

// A daemon on an ephemeral loopback port, serving the medical schema
// with the suite's ontologies.
Env StartDaemon(ServiceConfig service_config = ServiceConfig()) {
  Env env;
  MedicalDataSpec spec;
  spec.num_rows = kRows;
  spec.seed = 515151;
  env.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  MedicalDataset* ontologies = env.dataset.get();
  DaemonConfig config;
  config.service = std::move(service_config);
  config.schema = MedicalSchema();
  config.metrics_for_config =
      [ontologies](const FrameworkConfig& fc) -> Result<UsageMetrics> {
    if (fc.binning.enforce_joint) {
      return UnconstrainedMetrics(ontologies->trees());
    }
    return MetricsFromDepthCuts(ontologies->trees(), {2, 1, 2, 1, 1});
  };
  env.daemon = std::make_unique<PrivmarkDaemon>(std::move(config));
  EXPECT_TRUE(env.daemon->Start(0).ok());
  return env;
}

WireRequest OpenRequest(const std::string& session) {
  WireRequest request;
  request.type = WireFrameType::kOpen;
  request.session = session;
  request.open.k = 10;
  request.open.passphrase = session + "-pass";
  request.open.k1 = session + "-k1";
  request.open.k2 = session + "-k2";
  request.open.eta = 10;
  return request;
}

// Raw loopback socket for hostile-peer tests; -1 on failure.
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends `bytes` verbatim, then waits for the daemon to hang up (recv
// returning 0/-1 rather than more protocol bytes beyond `expect_back`).
void ExpectDisconnectAfter(int fd, const std::string& bytes,
                           size_t expect_back) {
  ASSERT_TRUE(WriteFullySocket(fd, bytes.data(), bytes.size()));
  std::string sink(expect_back + 1, '\0');
  size_t got = 0;
  while (got < sink.size()) {
    const ssize_t n = ::recv(fd, sink.data() + got, sink.size() - got, 0);
    if (n <= 0) break;  // daemon hung up — the expected outcome
    got += static_cast<size_t>(n);
  }
  EXPECT_LE(got, expect_back) << "daemon kept talking past the expected "
                                 "echo instead of hanging up";
  ::close(fd);
}

// The daemon must still serve a well-formed client (proof that a
// hostile connection did not take the process down with it).
void ExpectStillServing(PrivmarkDaemon* daemon, const std::string& session) {
  DaemonClient client(MedicalSchema());
  ASSERT_TRUE(client.Connect("127.0.0.1", daemon->port()).ok());
  auto open = client.Call(OpenRequest(session));
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_TRUE(open->status.ok()) << open->status.ToString();
  WireRequest close;
  close.type = WireFrameType::kClose;
  close.session = session;
  auto closed = client.Call(close);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed->status.ok());
}

// ---- happy path -----------------------------------------------------------

TEST(DaemonTest, FullLifecycleOverTheWire) {
  Env env = StartDaemon();
  DaemonClient client(MedicalSchema());
  ASSERT_TRUE(client.Connect("127.0.0.1", env.daemon->port()).ok());

  auto open = client.Call(OpenRequest("ward"));
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_TRUE(open->status.ok()) << open->status.ToString();
  EXPECT_FALSE(open->open.recovered);

  WireRequest ingest;
  ingest.type = WireFrameType::kIngest;
  ingest.session = "ward";
  ingest.table = env.dataset->table.Clone();
  auto ingested = client.Call(ingest);
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  ASSERT_TRUE(ingested->status.ok()) << ingested->status.ToString();
  EXPECT_EQ(ingested->ingest.rows_buffered, kRows);

  WireRequest flush;
  flush.type = WireFrameType::kFlush;
  flush.session = "ward";
  auto flushed = client.Call(flush);
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  ASSERT_TRUE(flushed->status.ok()) << flushed->status.ToString();
  EXPECT_EQ(flushed->flush.emitted.num_rows(), kRows);

  WireRequest detect;
  detect.type = WireFrameType::kDetect;
  detect.session = "ward";
  detect.table = flushed->flush.emitted.Clone();
  auto detected = client.Call(detect);
  ASSERT_TRUE(detected.ok()) << detected.status().ToString();
  ASSERT_TRUE(detected->status.ok()) << detected->status.ToString();
  ASSERT_EQ(detected->reports.size(), 1u);
  EXPECT_GT(detected->reports[0].tuples_selected, 0u);

  WireRequest close;
  close.type = WireFrameType::kClose;
  close.session = "ward";
  auto closed = client.Call(close);
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  ASSERT_TRUE(closed->status.ok()) << closed->status.ToString();
  EXPECT_EQ(closed->close.rows_ingested, kRows);
  ASSERT_EQ(closed->close.epochs.size(), 1u);
  // The manifest crossed the wire serialized; it must parse back.
  EXPECT_FALSE(closed->close.epochs[0].manifest_text.empty());

  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonTest, ServiceErrorsTravelAsResponsesNotDisconnects) {
  Env env = StartDaemon();
  DaemonClient client(MedicalSchema());
  ASSERT_TRUE(client.Connect("127.0.0.1", env.daemon->port()).ok());
  // Ingest into a session that was never opened: a service-level error.
  WireRequest ingest;
  ingest.type = WireFrameType::kIngest;
  ingest.session = "nobody";
  auto response = client.Call(ingest);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->status.ok());
  // The connection survived the error; the client can keep using it.
  auto open = client.Call(OpenRequest("ward"));
  ASSERT_TRUE(open.ok());
  EXPECT_TRUE(open->status.ok());
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

// ---- hostile peers --------------------------------------------------------

TEST(DaemonTest, BadMagicIsFatalToTheConnectionOnly) {
  Env env = StartDaemon();
  const int fd = RawConnect(env.daemon->port());
  ASSERT_GE(fd, 0);
  ExpectDisconnectAfter(fd, "HTTP/1.1 GET / please", /*expect_back=*/0);
  ExpectStillServing(env.daemon.get(), "after-bad-magic");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonTest, OversizedLengthFrameIsFatalToTheConnectionOnly) {
  Env env = StartDaemon();
  const int fd = RawConnect(env.daemon->port());
  ASSERT_GE(fd, 0);
  std::string bytes(kWireMagic, kWireMagicSize);
  // A frame header claiming a 4GiB-1 payload. The daemon must refuse
  // from the header alone (no allocation) and hang up after the echo.
  const uint32_t huge = 0xffffffffu;
  bytes.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  bytes.append(4, '\0');
  ExpectDisconnectAfter(fd, bytes, /*expect_back=*/kWireMagicSize);
  ExpectStillServing(env.daemon.get(), "after-oversized");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonTest, UnknownFrameTagIsFatalToTheConnectionOnly) {
  Env env = StartDaemon();
  const int fd = RawConnect(env.daemon->port());
  ASSERT_GE(fd, 0);
  std::string bytes(kWireMagic, kWireMagicSize);
  auto frame = EncodeWireFrame(static_cast<WireFrameType>(0x2a), "payload");
  ASSERT_TRUE(frame.ok());
  bytes += *frame;
  ExpectDisconnectAfter(fd, bytes, /*expect_back=*/kWireMagicSize);
  ExpectStillServing(env.daemon.get(), "after-unknown-tag");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonTest, CorruptCrcIsFatalToTheConnectionOnly) {
  Env env = StartDaemon();
  const int fd = RawConnect(env.daemon->port());
  ASSERT_GE(fd, 0);
  std::string bytes(kWireMagic, kWireMagicSize);
  WireTableEncoder encoder;
  auto frame = EncodeWireFrame(
      WireFrameType::kClose,
      EncodeWireRequest(
          [] {
            WireRequest request;
            request.type = WireFrameType::kClose;
            request.session = "x";
            return request;
          }(),
          &encoder));
  ASSERT_TRUE(frame.ok());
  (*frame)[frame->size() - 1] ^= 0x40;  // damage the payload, not the CRC
  bytes += *frame;
  ExpectDisconnectAfter(fd, bytes, /*expect_back=*/kWireMagicSize);
  ExpectStillServing(env.daemon.get(), "after-crc");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonTest, MidFrameDisconnectLeavesTheDaemonServing) {
  Env env = StartDaemon();
  const int fd = RawConnect(env.daemon->port());
  ASSERT_GE(fd, 0);
  std::string bytes(kWireMagic, kWireMagicSize);
  WireTableEncoder encoder;
  auto frame =
      EncodeWireFrame(WireFrameType::kOpen,
                      EncodeWireRequest(OpenRequest("torn"), &encoder));
  ASSERT_TRUE(frame.ok());
  // Half the frame, then hang up mid-read.
  bytes += frame->substr(0, frame->size() / 2);
  ASSERT_TRUE(WriteFullySocket(fd, bytes.data(), bytes.size()));
  char echo[kWireMagicSize];
  ASSERT_TRUE(ReadFullySocket(fd, echo, sizeof(echo)));
  ::close(fd);
  ExpectStillServing(env.daemon.get(), "after-torn-frame");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

// ---- injected socket faults -----------------------------------------------

#if defined(PRIVMARK_FAILPOINTS_ENABLED)

TEST(DaemonFailpointTest, InjectedReadFaultFailsTheCallNotTheProcess) {
  Env env = StartDaemon();
  {
    DaemonClient client(MedicalSchema());
    ASSERT_TRUE(client.Connect("127.0.0.1", env.daemon->port()).ok());
    // Arm after the handshake (which itself runs through the failpointed
    // helpers): the next read — client or daemon side — fails.
    ASSERT_TRUE(FailpointRegistry::Instance()
                    .Configure("wire.read", "once:1")
                    .ok());
    auto response = client.Call(OpenRequest("faulty"));
    FailpointRegistry::Instance().Reset();
    EXPECT_FALSE(response.ok());
    EXPECT_FALSE(client.connected());
  }
  ExpectStillServing(env.daemon.get(), "after-read-fault");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonFailpointTest, InjectedWriteFaultFailsTheCallNotTheProcess) {
  Env env = StartDaemon();
  {
    DaemonClient client(MedicalSchema());
    ASSERT_TRUE(client.Connect("127.0.0.1", env.daemon->port()).ok());
    ASSERT_TRUE(FailpointRegistry::Instance()
                    .Configure("wire.write", "once:1")
                    .ok());
    auto response = client.Call(OpenRequest("faulty"));
    FailpointRegistry::Instance().Reset();
    EXPECT_FALSE(response.ok());
    EXPECT_FALSE(client.connected());
  }
  ExpectStillServing(env.daemon.get(), "after-write-fault");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

#endif  // PRIVMARK_FAILPOINTS_ENABLED

// ---- overload: typed backpressure over the wire ---------------------------

TEST(DaemonTest, ShedRequestsCarryTypedRetryAfterMs) {
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  service_config.max_queue_depth = 1;
  Env env = StartDaemon(service_config);

  // One connection opens the session and keeps its strand busy with
  // full-pipeline flushes; rival connections hammer the same session
  // until the depth cap sheds one of them. The assertion is on the
  // *typed* field — a client never parses message text.
  DaemonClient owner(MedicalSchema());
  ASSERT_TRUE(owner.Connect("127.0.0.1", env.daemon->port()).ok());
  auto open = owner.Call(OpenRequest("ward"));
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(open->status.ok());

  std::atomic<bool> shed_seen{false};
  std::atomic<int64_t> shed_hint{-1};
  std::atomic<bool> hard_failure{false};
  constexpr int kRivals = 3;
  constexpr int kAttempts = 120;
  std::vector<std::thread> rivals;
  for (int i = 0; i < kRivals; ++i) {
    rivals.emplace_back([&env, &shed_seen, &shed_hint, &hard_failure, i] {
      DaemonClient rival(MedicalSchema());
      if (!rival.Connect("127.0.0.1", env.daemon->port()).ok()) {
        hard_failure.store(true);
        return;
      }
      MedicalDataSpec spec;
      spec.num_rows = 400;
      spec.seed = 9000 + i;
      MedicalDataset data =
          std::move(GenerateMedicalDataset(spec)).ValueOrDie();
      for (int attempt = 0; attempt < kAttempts && !shed_seen.load();
           ++attempt) {
        WireRequest ingest;
        ingest.type = WireFrameType::kIngest;
        ingest.session = "ward";
        ingest.table = data.table.Clone();
        auto response = rival.Call(ingest);
        if (!response.ok()) {
          hard_failure.store(true);  // transport must never break here
          return;
        }
        if (response->status.code() == StatusCode::kResourceExhausted) {
          shed_hint.store(response->status.retry_after_ms());
          shed_seen.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& rival : rivals) rival.join();
  EXPECT_FALSE(hard_failure.load());
  ASSERT_TRUE(shed_seen.load()) << "queue never filled across "
                                << kRivals * kAttempts << " attempts";
  EXPECT_GT(shed_hint.load(), 0) << "shed response lacked the typed hint";

  WireRequest close;
  close.type = WireFrameType::kClose;
  close.session = "ward";
  auto closed = owner.Call(close);
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed->status.ok());  // close is exempt from shedding
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

// ---- version negotiation ---------------------------------------------------

// Runs one full session lifecycle over `client` and checks the daemon
// answers correctly — the body is version-agnostic on purpose: the same
// exchanges must work over v1 lock-step and v2 multiplexing.
void ExpectLifecycleWorks(DaemonClient* client, const Table& rows,
                          const std::string& session) {
  auto open = client->Call(OpenRequest(session));
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_TRUE(open->status.ok()) << open->status.ToString();
  WireRequest ingest;
  ingest.type = WireFrameType::kIngest;
  ingest.session = session;
  ingest.table = rows.Clone();
  auto ingested = client->Call(ingest);
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  ASSERT_TRUE(ingested->status.ok()) << ingested->status.ToString();
  WireRequest close;
  close.type = WireFrameType::kClose;
  close.session = session;
  auto closed = client->Call(close);
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  ASSERT_TRUE(closed->status.ok()) << closed->status.ToString();
  EXPECT_EQ(closed->close.rows_ingested, rows.num_rows());
}

TEST(DaemonNegotiationTest, V2PeersNegotiateV2) {
  Env env = StartDaemon();
  DaemonClient client(MedicalSchema());
  ASSERT_TRUE(client.Connect("127.0.0.1", env.daemon->port()).ok());
  EXPECT_EQ(client.protocol_version(), kWireProtocolV2);
  ExpectLifecycleWorks(&client, env.dataset->table, "v2v2");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonNegotiationTest, V1ClientAgainstV2ServerStaysLockStep) {
  Env env = StartDaemon();
  DaemonClient client(MedicalSchema(), kWireProtocolV1);
  ASSERT_TRUE(client.Connect("127.0.0.1", env.daemon->port()).ok());
  EXPECT_EQ(client.protocol_version(), kWireProtocolV1);
  ExpectLifecycleWorks(&client, env.dataset->table, "v1v2");
  // CallAsync is a v2 surface; a v1 connection refuses it rather than
  // desynchronizing the lock-step exchange.
  EXPECT_FALSE(client.CallAsync(OpenRequest("nope")).ok());
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonNegotiationTest, V2ClientAgainstV1PinnedServerDowngrades) {
  Env env;
  MedicalDataSpec spec;
  spec.num_rows = kRows;
  spec.seed = 515151;
  env.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  MedicalDataset* ontologies = env.dataset.get();
  DaemonConfig config;
  config.schema = MedicalSchema();
  config.max_protocol_version = kWireProtocolV1;  // a pre-v2 daemon
  config.metrics_for_config =
      [ontologies](const FrameworkConfig& fc) -> Result<UsageMetrics> {
    if (fc.binning.enforce_joint) {
      return UnconstrainedMetrics(ontologies->trees());
    }
    return MetricsFromDepthCuts(ontologies->trees(), {2, 1, 2, 1, 1});
  };
  env.daemon = std::make_unique<PrivmarkDaemon>(std::move(config));
  ASSERT_TRUE(env.daemon->Start(0).ok());

  DaemonClient client(MedicalSchema());  // offers v2
  ASSERT_TRUE(client.Connect("127.0.0.1", env.daemon->port()).ok());
  EXPECT_EQ(client.protocol_version(), kWireProtocolV1);
  ExpectLifecycleWorks(&client, env.dataset->table, "v2v1");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonNegotiationTest, MixedMagicIsFatal) {
  Env env = StartDaemon();
  // Right prefix, unknown version byte: the daemon must hang up without
  // echoing anything (there is no version to agree on).
  const int fd = RawConnect(env.daemon->port());
  ASSERT_GE(fd, 0);
  ExpectDisconnectAfter(fd, "PRVMNET9", /*expect_back=*/0);
  ExpectStillServing(env.daemon.get(), "after-mixed-magic");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonNegotiationTest, UnknownFrameTypeUnderV2ClosesConnection) {
  Env env = StartDaemon();
  const int fd = RawConnect(env.daemon->port());
  ASSERT_GE(fd, 0);
  char magic[kWireMagicSize];
  ASSERT_TRUE(WireMagicFor(kWireProtocolV2, magic));
  std::string bytes(magic, kWireMagicSize);
  WireFrame frame;
  frame.type = static_cast<WireFrameType>(0x2a);
  frame.request_id = 1;
  frame.payload = "payload";
  auto encoded = EncodeWireFrame(frame, kWireProtocolV2);
  ASSERT_TRUE(encoded.ok());  // encode is by-construction trusted
  bytes += *encoded;
  ExpectDisconnectAfter(fd, bytes, /*expect_back=*/kWireMagicSize);
  ExpectStillServing(env.daemon.get(), "after-v2-unknown-tag");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

TEST(DaemonNegotiationTest, ResponseTypedFrameFromClientIsFatal) {
  Env env = StartDaemon();
  const int fd = RawConnect(env.daemon->port());
  ASSERT_GE(fd, 0);
  char magic[kWireMagicSize];
  ASSERT_TRUE(WireMagicFor(kWireProtocolV2, magic));
  std::string bytes(magic, kWireMagicSize);
  WireFrame frame;
  frame.type = WireFrameType::kResponse;  // clients never send this
  frame.request_id = 1;
  auto encoded = EncodeWireFrame(frame, kWireProtocolV2);
  ASSERT_TRUE(encoded.ok());
  bytes += *encoded;
  ExpectDisconnectAfter(fd, bytes, /*expect_back=*/kWireMagicSize);
  ExpectStillServing(env.daemon.get(), "after-response-frame");
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

// ---- multiplexing ----------------------------------------------------------

TEST(DaemonMultiplexTest, PipelinedCallsCompleteAndMatchTheirIds) {
  Env env = StartDaemon();
  DaemonClient client(MedicalSchema());
  ASSERT_TRUE(client.Connect("127.0.0.1", env.daemon->port()).ok());
  ASSERT_EQ(client.protocol_version(), kWireProtocolV2);

  // Pipeline open + ingest + flush + close on one session without
  // waiting in between: same-session order is FIFO by send order, so
  // the whole batch must succeed exactly as a lock-step run would.
  std::vector<DaemonClient::PendingCall> calls;
  auto push = [&calls, &client](const WireRequest& request) {
    auto call = client.CallAsync(request);
    ASSERT_TRUE(call.ok()) << call.status().ToString();
    calls.push_back(*std::move(call));
  };
  push(OpenRequest("pipe"));
  WireRequest ingest;
  ingest.type = WireFrameType::kIngest;
  ingest.session = "pipe";
  ingest.table = env.dataset->table.Clone();
  push(ingest);
  WireRequest flush;
  flush.type = WireFrameType::kFlush;
  flush.session = "pipe";
  push(flush);
  WireRequest close;
  close.type = WireFrameType::kClose;
  close.session = "pipe";
  push(close);

  // Wait in reverse order: the demux must route each response to its
  // id no matter which future the caller collects first.
  for (size_t i = calls.size(); i-- > 0;) {
    auto response = calls[i].Wait();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->status.ok())
        << "call " << i << ": " << response->status.ToString();
    EXPECT_EQ(response->request_id, calls[i].request_id());
  }
  EXPECT_TRUE(env.daemon->Shutdown().ok());
}

// ---- shutdown -------------------------------------------------------------

TEST(DaemonTest, ShutdownDisconnectsIdleClientsAndIsIdempotent) {
  Env env = StartDaemon();
  DaemonClient client(MedicalSchema());
  ASSERT_TRUE(client.Connect("127.0.0.1", env.daemon->port()).ok());
  EXPECT_TRUE(env.daemon->Shutdown().ok());
  EXPECT_TRUE(env.daemon->Shutdown().ok());  // idempotent
  // The daemon hung up; the next call reports the lost connection.
  auto response = client.Call(OpenRequest("late"));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(env.daemon->connections_accepted(), 1u);
}

}  // namespace
}  // namespace privmark
