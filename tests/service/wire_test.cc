// Wire-protocol codec suite: framing and payload round-trips, the
// columnar table codec's losslessness (bit-exact doubles, Null vs "",
// NUL-safe strings, incremental dictionaries), and — the half that
// matters for a network daemon — rejection of every malformed-frame
// shape: truncation at each byte, trailing bytes, unknown tags,
// oversized lengths, CRC damage, and out-of-range dictionary ids.

#include "service/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/journal.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "service/admission.h"

namespace privmark {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnRole::kIdentifying, ValueType::kString},
                 {"age", ColumnRole::kQuasiNumeric, ValueType::kInt64},
                 {"score", ColumnRole::kOther, ValueType::kDouble},
                 {"city", ColumnRole::kQuasiCategorical,
                  ValueType::kString}});
}

Table TestTable() {
  Table table(TestSchema());
  std::string with_nul("a\0b", 3);
  EXPECT_TRUE(table
                  .AppendRow({Value::String("s-1"), Value::Int64(-42),
                              Value::Double(-0.0), Value::String("rome")})
                  .ok());
  EXPECT_TRUE(table
                  .AppendRow({Value::String(with_nul),
                              Value::Int64(std::numeric_limits<int64_t>::min()),
                              Value::Double(1e-300), Value::String("")})
                  .ok());
  EXPECT_TRUE(table
                  .AppendRow({Value::Null(), Value::Int64(7),
                              Value::Double(0.0), Value::String("rome")})
                  .ok());
  return table;
}

std::string EncodeTable(WireTableEncoder* encoder, const Table& table) {
  std::string out;
  encoder->Encode(table, &out);
  return out;
}

Result<Table> DecodeTable(WireTableDecoder* decoder,
                          const std::string& block) {
  BinReader reader(block);
  auto table = decoder->Decode(&reader);
  if (table.ok() && !reader.Exhausted()) {
    return Status::InvalidArgument("trailing bytes after table block");
  }
  return table;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.at(r, c), b.at(r, c)) << "row " << r << " col " << c;
    }
  }
}

// ---- framing -------------------------------------------------------------

TEST(WireFrameTest, RoundTrip) {
  auto frame = EncodeWireFrame(WireFrameType::kIngest, "payload");
  ASSERT_TRUE(frame.ok());
  ASSERT_GE(frame->size(), kWireFrameHeaderBytes + 1);
  auto body_length = WireFrameBodyLength(frame->data());
  ASSERT_TRUE(body_length.ok());
  EXPECT_EQ(*body_length, frame->size() - kWireFrameHeaderBytes);
  auto decoded = DecodeWireFrameBody(
      frame->data(), frame->data() + kWireFrameHeaderBytes, *body_length);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, WireFrameType::kIngest);
  EXPECT_EQ(decoded->payload, "payload");
}

TEST(WireFrameTest, EmptyPayloadRoundTrips) {
  auto frame = EncodeWireFrame(WireFrameType::kClose, "");
  ASSERT_TRUE(frame.ok());
  auto body_length = WireFrameBodyLength(frame->data());
  ASSERT_TRUE(body_length.ok());
  EXPECT_EQ(*body_length, 1u);  // just the type byte
  auto decoded = DecodeWireFrameBody(
      frame->data(), frame->data() + kWireFrameHeaderBytes, *body_length);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->payload, "");
}

TEST(WireFrameTest, OversizedEncodeRefused) {
  std::string huge(kMaxWireFrameBytes + 1, 'x');
  auto frame = EncodeWireFrame(WireFrameType::kIngest, huge);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, OversizedLengthHeaderRefusedBeforeAllocation) {
  // A hostile peer claims a 4GiB-1 payload; the reader must refuse from
  // the 8 header bytes alone, never allocating the claimed size.
  char header[kWireFrameHeaderBytes];
  const uint32_t huge = std::numeric_limits<uint32_t>::max();
  std::memcpy(header, &huge, sizeof(huge));
  std::memset(header + 4, 0, 4);
  auto body_length = WireFrameBodyLength(header);
  EXPECT_FALSE(body_length.ok());
  EXPECT_EQ(body_length.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, CrcDamageDetected) {
  auto frame = EncodeWireFrame(WireFrameType::kDetect, "abcdef");
  ASSERT_TRUE(frame.ok());
  // Flip one payload bit.
  std::string bent = *frame;
  bent[kWireFrameHeaderBytes + 3] ^= 0x01;
  auto body_length = WireFrameBodyLength(bent.data());
  ASSERT_TRUE(body_length.ok());
  auto decoded = DecodeWireFrameBody(
      bent.data(), bent.data() + kWireFrameHeaderBytes, *body_length);
  EXPECT_FALSE(decoded.ok());
}

TEST(WireFrameTest, UnknownTypeTagRefused) {
  for (const uint8_t tag : {uint8_t{0}, uint8_t{255}}) {
    auto frame = EncodeWireFrame(static_cast<WireFrameType>(tag), "x");
    ASSERT_TRUE(frame.ok());  // encode is by-construction trusted
    auto body_length = WireFrameBodyLength(frame->data());
    ASSERT_TRUE(body_length.ok());
    auto decoded = DecodeWireFrameBody(
        frame->data(), frame->data() + kWireFrameHeaderBytes, *body_length);
    EXPECT_FALSE(decoded.ok()) << "tag " << int{tag};
  }
  // kPartial (tag 8) is a v2-only continuation: a v1 peer neither
  // encodes nor accepts it.
  auto partial = EncodeWireFrame(WireFrameType::kPartial, "x");
  EXPECT_FALSE(partial.ok());
}

// ---- v2 framing ----------------------------------------------------------

TEST(WireFrameV2Test, EnvelopeRoundTripsIdAndFlags) {
  WireFrame frame;
  frame.type = WireFrameType::kFingerprint;
  frame.request_id = 0x0123456789abcdefULL;
  frame.final_frame = true;
  frame.streamed = true;
  frame.payload = "payload";
  auto encoded = EncodeWireFrame(frame, kWireProtocolV2);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto body_length = WireFrameBodyLength(encoded->data(), kWireProtocolV2);
  ASSERT_TRUE(body_length.ok());
  EXPECT_EQ(*body_length, encoded->size() - kWireFrameHeaderBytes);
  auto decoded = DecodeWireFrameBody(encoded->data(),
                                     encoded->data() + kWireFrameHeaderBytes,
                                     *body_length, kWireProtocolV2);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, WireFrameType::kFingerprint);
  EXPECT_EQ(decoded->request_id, 0x0123456789abcdefULL);
  EXPECT_TRUE(decoded->final_frame);
  EXPECT_TRUE(decoded->streamed);
  EXPECT_EQ(decoded->payload, "payload");
}

TEST(WireFrameV2Test, PartialFrameRoundTrips) {
  WireFrame frame;
  frame.type = WireFrameType::kPartial;
  frame.request_id = 7;
  frame.final_frame = false;
  frame.streamed = true;
  frame.payload = "shard";
  auto encoded = EncodeWireFrame(frame, kWireProtocolV2);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto body_length = WireFrameBodyLength(encoded->data(), kWireProtocolV2);
  ASSERT_TRUE(body_length.ok());
  auto decoded = DecodeWireFrameBody(encoded->data(),
                                     encoded->data() + kWireFrameHeaderBytes,
                                     *body_length, kWireProtocolV2);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, WireFrameType::kPartial);
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_FALSE(decoded->final_frame);
  EXPECT_TRUE(decoded->streamed);
}

TEST(WireFrameV2Test, FinalPartialRefusedAtBothEnds) {
  WireFrame frame;
  frame.type = WireFrameType::kPartial;
  frame.final_frame = true;
  frame.streamed = true;
  EXPECT_FALSE(EncodeWireFrame(frame, kWireProtocolV2).ok());
  // Hand-craft the same contradiction for the decoder: splice the
  // kFinal bit into a legally encoded partial.
  frame.final_frame = false;
  auto encoded = EncodeWireFrame(frame, kWireProtocolV2);
  ASSERT_TRUE(encoded.ok());
  std::string bent = *encoded;
  bent[kWireFrameHeaderBytes + 9] |= static_cast<char>(kWireFlagFinal);
  // Re-stamp the CRC over the bent body.
  const uint32_t crc = JournalCrc32(bent.data() + kWireFrameHeaderBytes,
                                    bent.size() - kWireFrameHeaderBytes);
  std::memcpy(bent.data() + 4, &crc, sizeof(crc));
  auto body_length = WireFrameBodyLength(bent.data(), kWireProtocolV2);
  ASSERT_TRUE(body_length.ok());
  auto decoded = DecodeWireFrameBody(bent.data(),
                                     bent.data() + kWireFrameHeaderBytes,
                                     *body_length, kWireProtocolV2);
  EXPECT_FALSE(decoded.ok());
}

TEST(WireFrameV2Test, UnknownFlagBitsRefused) {
  WireFrame frame;
  frame.type = WireFrameType::kIngest;
  frame.request_id = 3;
  frame.payload = "x";
  auto encoded = EncodeWireFrame(frame, kWireProtocolV2);
  ASSERT_TRUE(encoded.ok());
  std::string bent = *encoded;
  bent[kWireFrameHeaderBytes + 9] |= 0x40;  // a flag v2 never defined
  const uint32_t crc = JournalCrc32(bent.data() + kWireFrameHeaderBytes,
                                    bent.size() - kWireFrameHeaderBytes);
  std::memcpy(bent.data() + 4, &crc, sizeof(crc));
  auto body_length = WireFrameBodyLength(bent.data(), kWireProtocolV2);
  ASSERT_TRUE(body_length.ok());
  auto decoded = DecodeWireFrameBody(bent.data(),
                                     bent.data() + kWireFrameHeaderBytes,
                                     *body_length, kWireProtocolV2);
  EXPECT_FALSE(decoded.ok());
}

TEST(WireFrameV2Test, V1EncoderRefusesV2Envelope) {
  WireFrame frame;
  frame.type = WireFrameType::kIngest;
  frame.payload = "x";
  frame.request_id = 1;  // v1 has nowhere to put this
  EXPECT_FALSE(EncodeWireFrame(frame, kWireProtocolV1).ok());
  frame.request_id = 0;
  frame.streamed = true;
  EXPECT_FALSE(EncodeWireFrame(frame, kWireProtocolV1).ok());
}

TEST(WireMagicTest, VersionParseAndFormat) {
  char magic[kWireMagicSize];
  ASSERT_TRUE(WireMagicFor(kWireProtocolV1, magic));
  EXPECT_EQ(WireMagicVersion(magic), kWireProtocolV1);
  ASSERT_TRUE(WireMagicFor(kWireProtocolV2, magic));
  EXPECT_EQ(WireMagicVersion(magic), kWireProtocolV2);
  EXPECT_FALSE(WireMagicFor(0, magic));
  EXPECT_FALSE(WireMagicFor(3, magic));
  // A foreign magic (wrong prefix or unknown version byte) parses as 0.
  EXPECT_EQ(WireMagicVersion("NOTMAGIC"), 0);
  EXPECT_EQ(WireMagicVersion("PRVMNET9"), 0);
}

// ---- table codec ---------------------------------------------------------

TEST(WireTableCodecTest, LosslessRoundTrip) {
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  const Table table = TestTable();
  auto decoded = DecodeTable(&decoder, EncodeTable(&encoder, table));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectTablesEqual(table, *decoded);
  // -0.0 must survive as -0.0, not 0.0.
  EXPECT_TRUE(std::signbit(decoded->at(0, 2).AsDouble()));
}

TEST(WireTableCodecTest, EmptyAndDefaultTablesRoundTrip) {
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  // Zero rows of the schema.
  auto empty = DecodeTable(&decoder, EncodeTable(&encoder, Table(TestSchema())));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);
  EXPECT_EQ(empty->num_columns(), TestSchema().num_columns());
  // A default-constructed Table (0x0) decodes as an empty schema table.
  auto zero = DecodeTable(&decoder, EncodeTable(&encoder, Table()));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->num_rows(), 0u);
  EXPECT_EQ(zero->num_columns(), TestSchema().num_columns());
}

TEST(WireTableCodecTest, DictionaryShipsEachStringOnce) {
  Schema narrow({{"subject", ColumnRole::kOther, ValueType::kString}});
  WireTableEncoder encoder;
  WireTableDecoder decoder(narrow);
  Table batch(narrow);
  for (int r = 0; r < 64; ++r) {
    ASSERT_TRUE(
        batch.AppendRow({Value::String("subject-" + std::to_string(r))})
            .ok());
  }
  const std::string first = EncodeTable(&encoder, batch);
  const std::string second = EncodeTable(&encoder, batch);
  // The second block reuses the column's dictionary: it carries only
  // u32 ids, so it is much smaller than the first (which shipped every
  // string's bytes).
  EXPECT_LT(second.size(), first.size() / 2);
  auto first_decoded = DecodeTable(&decoder, first);
  ASSERT_TRUE(first_decoded.ok());
  ExpectTablesEqual(batch, *first_decoded);
  auto second_decoded = DecodeTable(&decoder, second);
  ASSERT_TRUE(second_decoded.ok());
  ExpectTablesEqual(batch, *second_decoded);
}

TEST(WireTableCodecTest, ColumnCountMismatchRefused) {
  WireTableEncoder encoder;
  Schema narrow({{"only", ColumnRole::kOther, ValueType::kString}});
  Table table(narrow);
  ASSERT_TRUE(table.AppendRow({Value::String("x")}).ok());
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeTable(&decoder, EncodeTable(&encoder, table));
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTableCodecTest, TruncationAtEveryByteRefused) {
  WireTableEncoder encoder;
  const std::string block = EncodeTable(&encoder, TestTable());
  for (size_t cut = 0; cut < block.size(); ++cut) {
    WireTableDecoder decoder(TestSchema());
    auto decoded = DecodeTable(&decoder, block.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut << " of " << block.size();
  }
}

TEST(WireTableCodecTest, TrailingBytesRefused) {
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded =
      DecodeTable(&decoder, EncodeTable(&encoder, TestTable()) + "x");
  EXPECT_FALSE(decoded.ok());
}

TEST(WireTableCodecTest, UnknownColumnEncodingRefused) {
  WireTableEncoder encoder;
  std::string block = EncodeTable(&encoder, TestTable());
  block[8] = static_cast<char>(0x7f);  // first column's encoding byte
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeTable(&decoder, block);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTableCodecTest, OutOfRangeDictionaryIdRefused) {
  // One string column, one row: block is [rows][cols][enc][new=1]
  // [len]["city"][id]. Corrupt the trailing id.
  Schema narrow({{"city", ColumnRole::kOther, ValueType::kString}});
  Table table(narrow);
  ASSERT_TRUE(table.AppendRow({Value::String("rome")}).ok());
  WireTableEncoder encoder;
  std::string block = EncodeTable(&encoder, table);
  ASSERT_GE(block.size(), 4u);
  block[block.size() - 4] = 9;  // id 9 into a 1-entry dictionary
  WireTableDecoder decoder(narrow);
  auto decoded = DecodeTable(&decoder, block);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// ---- request / response payloads -----------------------------------------

TEST(WireRequestTest, OpenRoundTripsEveryField) {
  WireRequest request;
  request.type = WireFrameType::kOpen;
  request.session = "hospital-7";
  request.open.k = 12;
  request.open.enforce_joint = true;
  request.open.auto_epsilon = true;
  request.open.num_threads = 3;
  request.open.passphrase = "pp";
  request.open.k1 = "key-one";
  request.open.k2 = "key-two";
  request.open.eta = 77;
  request.open.key_id = "recipient-a";
  request.open.on_unbinnable = 1;
  request.open.policy = 1;
  request.open.drift_threshold = 0.25;

  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeWireRequest(
      request.type, EncodeWireRequest(request, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->session, "hospital-7");
  EXPECT_EQ(decoded->open.k, 12u);
  EXPECT_TRUE(decoded->open.enforce_joint);
  EXPECT_TRUE(decoded->open.auto_epsilon);
  EXPECT_EQ(decoded->open.num_threads, 3u);
  EXPECT_EQ(decoded->open.passphrase, "pp");
  EXPECT_EQ(decoded->open.k1, "key-one");
  EXPECT_EQ(decoded->open.k2, "key-two");
  EXPECT_EQ(decoded->open.eta, 77u);
  EXPECT_EQ(decoded->open.key_id, "recipient-a");
  EXPECT_EQ(decoded->open.on_unbinnable, 1);
  EXPECT_EQ(decoded->open.policy, 1);
  EXPECT_EQ(decoded->open.drift_threshold, 0.25);
}

TEST(WireRequestTest, IngestCarriesTableAskAndDeadline) {
  WireRequest request;
  request.type = WireFrameType::kIngest;
  request.session = "s";
  request.ask = 4;
  request.deadline_ms = 1500;
  request.table = TestTable();
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeWireRequest(
      request.type, EncodeWireRequest(request, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->ask, 4u);
  EXPECT_EQ(decoded->deadline_ms, 1500);
  ExpectTablesEqual(request.table, decoded->table);
}

TEST(WireRequestTest, FingerprintCarriesRegistryText) {
  WireRequest request;
  request.type = WireFrameType::kFingerprint;
  request.session = "s";
  request.registry_text = "REGISTRYv1\n[key]\nname = a\n";
  request.table = TestTable();
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeWireRequest(
      request.type, EncodeWireRequest(request, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->registry_text, request.registry_text);
}

TEST(WireRequestTest, TrailingBytesRefused) {
  WireRequest request;
  request.type = WireFrameType::kClose;
  request.session = "s";
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeWireRequest(
      request.type, EncodeWireRequest(request, &encoder) + "!", &decoder);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireRequestTest, TruncationAtEveryByteRefused) {
  WireRequest request;
  request.type = WireFrameType::kIngest;
  request.session = "session-name";
  request.table = TestTable();
  WireTableEncoder encoder;
  const std::string payload = EncodeWireRequest(request, &encoder);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireTableDecoder decoder(TestSchema());
    auto decoded =
        DecodeWireRequest(request.type, payload.substr(0, cut), &decoder);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(WireResponseTest, ErrorResponseCarriesStatusAndRetryHint) {
  // The shed-response envelope contract: the status (with its typed
  // retry hint) travels; threads_granted is pinned to 0; the journal
  // status stays OK.
  WireResponse response;
  response.kind = WireFrameType::kIngest;
  response.status =
      Status::ResourceExhausted("queue full").WithRetryAfterMs(250);
  response.threads_granted = 0;  // the non-OK envelope convention
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded =
      DecodeWireResponse(EncodeWireResponse(response, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, WireFrameType::kIngest);
  EXPECT_EQ(decoded->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->status.message(), "queue full");
  EXPECT_EQ(decoded->status.retry_after_ms(), 250);
  EXPECT_EQ(decoded->threads_granted, 0u);
  EXPECT_TRUE(decoded->journal_status.ok());
}

TEST(WireResponseTest, ShedResponseRoundTripsThreadsGranted) {
  // A shed response never granted threads; a served one reports its
  // grant. Both values must survive the wire exactly.
  for (const uint64_t granted : {uint64_t{0}, uint64_t{3}}) {
    WireResponse response;
    response.kind = WireFrameType::kFlush;
    response.threads_granted = granted;
    if (granted == 0) {
      response.status =
          Status::ResourceExhausted("shed").WithRetryAfterMs(40);
    }
    WireTableEncoder encoder;
    WireTableDecoder decoder(TestSchema());
    auto decoded =
        DecodeWireResponse(EncodeWireResponse(response, &encoder), &decoder);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->threads_granted, granted);
    EXPECT_EQ(decoded->status.retry_after_ms(), granted == 0 ? 40 : -1);
  }
}

TEST(WireResponseTest, IngestRoundTrip) {
  WireResponse response;
  response.kind = WireFrameType::kIngest;
  response.journal_status = Status::IOError("disk gone");
  response.threads_granted = 3;
  response.ingest.epoch = 2;
  response.ingest.flushed = true;
  response.ingest.rows_emitted = 10;
  response.ingest.rows_suppressed = 1;
  response.ingest.rows_buffered = 5;
  response.ingest.emitted = TestTable();
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded =
      DecodeWireResponse(EncodeWireResponse(response, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->journal_status.code(), StatusCode::kIOError);
  EXPECT_EQ(decoded->threads_granted, 3u);
  EXPECT_EQ(decoded->ingest.epoch, 2u);
  EXPECT_TRUE(decoded->ingest.flushed);
  EXPECT_EQ(decoded->ingest.rows_emitted, 10u);
  EXPECT_EQ(decoded->ingest.rows_suppressed, 1u);
  EXPECT_EQ(decoded->ingest.rows_buffered, 5u);
  ExpectTablesEqual(response.ingest.emitted, decoded->ingest.emitted);
}

TEST(WireResponseTest, DetectRoundTripPreservesExactMargins) {
  WireResponse response;
  response.kind = WireFrameType::kDetect;
  DetectReport report;
  report.recovered = BitVector::FromString("1011").ValueOrDie();
  report.tuples_selected = 100;
  report.slots_read = 400;
  report.slots_skipped = 3;
  report.vote_margin = {0.1, -0.0, 1e-17, 12345.6789};
  report.bit_voted = {true, false, true, true};
  response.reports.push_back(report);
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded =
      DecodeWireResponse(EncodeWireResponse(response, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->reports.size(), 1u);
  const DetectReport& out = decoded->reports[0];
  EXPECT_EQ(out.recovered.ToString(), "1011");
  EXPECT_EQ(out.tuples_selected, 100u);
  EXPECT_EQ(out.slots_read, 400u);
  EXPECT_EQ(out.slots_skipped, 3u);
  EXPECT_EQ(out.vote_margin, report.vote_margin);  // exact doubles
  EXPECT_EQ(out.bit_voted, report.bit_voted);
}

TEST(WireResponseTest, CloseRoundTripCarriesManifestText) {
  WireResponse response;
  response.kind = WireFrameType::kClose;
  response.close.rows_ingested = 30;
  response.close.rows_emitted = 28;
  response.close.rows_suppressed = 2;
  WireEpochSummary epoch;
  epoch.epoch = 1;
  epoch.rows_emitted = 28;
  epoch.wmd_size = 160;
  epoch.identifier_statistic = 3.75;
  epoch.manifest_text = "PRIVMARK-MANIFESTv1\nversion = 1\n";
  response.close.epochs.push_back(epoch);
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded =
      DecodeWireResponse(EncodeWireResponse(response, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->close.epochs.size(), 1u);
  EXPECT_EQ(decoded->close.rows_ingested, 30u);
  EXPECT_EQ(decoded->close.epochs[0].manifest_text, epoch.manifest_text);
  EXPECT_EQ(decoded->close.epochs[0].identifier_statistic, 3.75);
}

TEST(WireResponseTest, TruncationAtEveryByteRefused) {
  WireResponse response;
  response.kind = WireFrameType::kFlush;
  response.flush.epoch = 1;
  response.flush.identifier_statistic = 2.5;
  response.flush.emitted = TestTable();
  WireTableEncoder encoder;
  const std::string payload = EncodeWireResponse(response, &encoder);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireTableDecoder decoder(TestSchema());
    auto decoded = DecodeWireResponse(payload.substr(0, cut), &decoder);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

// ---- typed backpressure hint ---------------------------------------------

TEST(RetryAfterTest, TypedHintTravelsOnTheStatus) {
  const Status shed =
      Status::ResourceExhausted("queue full").WithRetryAfterMs(350);
  EXPECT_EQ(shed.retry_after_ms(), 350);
  EXPECT_EQ(RetryAfterMsFromStatus(shed), 350);
  EXPECT_EQ(RetryAfterMsFromStatus(
                Status::ResourceExhausted("shed now").WithRetryAfterMs(0)),
            0);
  // The hint participates in equality: two otherwise-identical statuses
  // with different hints are different.
  EXPECT_FALSE(shed == Status::ResourceExhausted("queue full"));
}

TEST(RetryAfterTest, AbsentHintYieldsMinusOne) {
  EXPECT_EQ(RetryAfterMsFromStatus(Status::OK()), -1);
  EXPECT_EQ(RetryAfterMsFromStatus(Status::ResourceExhausted("no hint")), -1);
  // Message text mentioning the old convention is just text now.
  EXPECT_EQ(RetryAfterMsFromStatus(
                Status::ResourceExhausted("retry_after_ms=10")),
            -1);
}

// ---- streamed fingerprint frames -----------------------------------------

FingerprintShard TestShard() {
  FingerprintShard shard;
  shard.epoch = 1;
  shard.shard = 4;
  shard.first_key = 96;
  KeyVerdict a;
  a.key_name = "recipient-a";
  a.detected = true;
  a.score = 0.875;
  a.margin_ratio = 1.5;
  a.mark_match = 0.5;
  a.p_value = 1e-9;
  KeyVerdict b;
  b.key_name = "recipient-b";
  b.detected = false;
  b.score = -0.0;  // sign bit must survive
  shard.verdicts = {a, b};
  return shard;
}

TEST(WireFingerprintShardTest, RoundTripsEveryField) {
  const FingerprintShard shard = TestShard();
  auto decoded = DecodeWireFingerprintShard(EncodeWireFingerprintShard(shard));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 1u);
  EXPECT_EQ(decoded->shard, 4u);
  EXPECT_EQ(decoded->first_key, 96u);
  ASSERT_EQ(decoded->verdicts.size(), 2u);
  EXPECT_EQ(decoded->verdicts[0].key_name, "recipient-a");
  EXPECT_TRUE(decoded->verdicts[0].detected);
  EXPECT_EQ(decoded->verdicts[0].score, 0.875);
  EXPECT_EQ(decoded->verdicts[0].margin_ratio, 1.5);
  EXPECT_EQ(decoded->verdicts[0].mark_match, 0.5);
  EXPECT_EQ(decoded->verdicts[0].p_value, 1e-9);
  EXPECT_EQ(decoded->verdicts[1].key_name, "recipient-b");
  EXPECT_TRUE(std::signbit(decoded->verdicts[1].score));
}

TEST(WireFingerprintShardTest, TruncationAtEveryByteRefused) {
  const std::string payload = EncodeWireFingerprintShard(TestShard());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeWireFingerprintShard(payload.substr(0, cut)).ok())
        << "cut at " << cut;
  }
  EXPECT_FALSE(DecodeWireFingerprintShard(payload + "x").ok());
}

// Builds a small fingerprint response whose verdicts are consistent
// with its ranking (the tails codec leans on that invariant).
WireResponse TestFingerprintResponse() {
  WireResponse response;
  response.kind = WireFrameType::kFingerprint;
  response.threads_granted = 2;
  FingerprintReport report;
  for (int i = 0; i < 3; ++i) {
    KeyVerdict v;
    v.key_name = "key-" + std::to_string(i);
    v.detected = i == 1;
    v.score = 0.25 * i;
    report.verdicts.push_back(v);
  }
  report.ranking = {1, 2, 0};
  report.keys_detected = 1;
  report.collusion = false;
  response.fingerprints.push_back(report);
  return response;
}

TEST(WireStreamedTailsTest, TailsRoundTripWithoutVerdicts) {
  const WireResponse response = TestFingerprintResponse();
  auto decoded =
      DecodeWireResponseStreamedTails(EncodeWireResponseStreamedTails(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, WireFrameType::kFingerprint);
  EXPECT_EQ(decoded->threads_granted, 2u);
  ASSERT_EQ(decoded->fingerprints.size(), 1u);
  const FingerprintReport& tail = decoded->fingerprints[0];
  // The tails deliberately omit the verdicts (they crossed in the
  // partial frames); the ranking still states how many there were.
  EXPECT_TRUE(tail.verdicts.empty());
  EXPECT_EQ(tail.ranking, (std::vector<size_t>{1, 2, 0}));
  EXPECT_EQ(tail.keys_detected, 1u);
  EXPECT_FALSE(tail.collusion);
}

TEST(WireStreamedTailsTest, ErrorTailsCarryStatus) {
  WireResponse response;
  response.kind = WireFrameType::kFingerprint;
  response.status = Status::InvalidArgument("bad registry");
  auto decoded =
      DecodeWireResponseStreamedTails(EncodeWireResponseStreamedTails(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(decoded->fingerprints.empty());
}

TEST(WireStreamedTailsTest, TruncationAtEveryByteRefused) {
  const std::string payload =
      EncodeWireResponseStreamedTails(TestFingerprintResponse());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeWireResponseStreamedTails(payload.substr(0, cut)).ok())
        << "cut at " << cut;
  }
  EXPECT_FALSE(DecodeWireResponseStreamedTails(payload + "x").ok());
}

}  // namespace
}  // namespace privmark
