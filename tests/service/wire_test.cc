// Wire-protocol codec suite: framing and payload round-trips, the
// columnar table codec's losslessness (bit-exact doubles, Null vs "",
// NUL-safe strings, incremental dictionaries), and — the half that
// matters for a network daemon — rejection of every malformed-frame
// shape: truncation at each byte, trailing bytes, unknown tags,
// oversized lengths, CRC damage, and out-of-range dictionary ids.

#include "service/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "relation/schema.h"
#include "relation/table.h"
#include "service/admission.h"

namespace privmark {
namespace {

Schema TestSchema() {
  return Schema({{"id", ColumnRole::kIdentifying, ValueType::kString},
                 {"age", ColumnRole::kQuasiNumeric, ValueType::kInt64},
                 {"score", ColumnRole::kOther, ValueType::kDouble},
                 {"city", ColumnRole::kQuasiCategorical,
                  ValueType::kString}});
}

Table TestTable() {
  Table table(TestSchema());
  std::string with_nul("a\0b", 3);
  EXPECT_TRUE(table
                  .AppendRow({Value::String("s-1"), Value::Int64(-42),
                              Value::Double(-0.0), Value::String("rome")})
                  .ok());
  EXPECT_TRUE(table
                  .AppendRow({Value::String(with_nul),
                              Value::Int64(std::numeric_limits<int64_t>::min()),
                              Value::Double(1e-300), Value::String("")})
                  .ok());
  EXPECT_TRUE(table
                  .AppendRow({Value::Null(), Value::Int64(7),
                              Value::Double(0.0), Value::String("rome")})
                  .ok());
  return table;
}

std::string EncodeTable(WireTableEncoder* encoder, const Table& table) {
  std::string out;
  encoder->Encode(table, &out);
  return out;
}

Result<Table> DecodeTable(WireTableDecoder* decoder,
                          const std::string& block) {
  BinReader reader(block);
  auto table = decoder->Decode(&reader);
  if (table.ok() && !reader.Exhausted()) {
    return Status::InvalidArgument("trailing bytes after table block");
  }
  return table;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.at(r, c), b.at(r, c)) << "row " << r << " col " << c;
    }
  }
}

// ---- framing -------------------------------------------------------------

TEST(WireFrameTest, RoundTrip) {
  auto frame = EncodeWireFrame(WireFrameType::kIngest, "payload");
  ASSERT_TRUE(frame.ok());
  ASSERT_GE(frame->size(), kWireFrameHeaderBytes + 1);
  auto body_length = WireFrameBodyLength(frame->data());
  ASSERT_TRUE(body_length.ok());
  EXPECT_EQ(*body_length, frame->size() - kWireFrameHeaderBytes);
  auto decoded = DecodeWireFrameBody(
      frame->data(), frame->data() + kWireFrameHeaderBytes, *body_length);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, WireFrameType::kIngest);
  EXPECT_EQ(decoded->payload, "payload");
}

TEST(WireFrameTest, EmptyPayloadRoundTrips) {
  auto frame = EncodeWireFrame(WireFrameType::kClose, "");
  ASSERT_TRUE(frame.ok());
  auto body_length = WireFrameBodyLength(frame->data());
  ASSERT_TRUE(body_length.ok());
  EXPECT_EQ(*body_length, 1u);  // just the type byte
  auto decoded = DecodeWireFrameBody(
      frame->data(), frame->data() + kWireFrameHeaderBytes, *body_length);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->payload, "");
}

TEST(WireFrameTest, OversizedEncodeRefused) {
  std::string huge(kMaxWireFrameBytes + 1, 'x');
  auto frame = EncodeWireFrame(WireFrameType::kIngest, huge);
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, OversizedLengthHeaderRefusedBeforeAllocation) {
  // A hostile peer claims a 4GiB-1 payload; the reader must refuse from
  // the 8 header bytes alone, never allocating the claimed size.
  char header[kWireFrameHeaderBytes];
  const uint32_t huge = std::numeric_limits<uint32_t>::max();
  std::memcpy(header, &huge, sizeof(huge));
  std::memset(header + 4, 0, 4);
  auto body_length = WireFrameBodyLength(header);
  EXPECT_FALSE(body_length.ok());
  EXPECT_EQ(body_length.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, CrcDamageDetected) {
  auto frame = EncodeWireFrame(WireFrameType::kDetect, "abcdef");
  ASSERT_TRUE(frame.ok());
  // Flip one payload bit.
  std::string bent = *frame;
  bent[kWireFrameHeaderBytes + 3] ^= 0x01;
  auto body_length = WireFrameBodyLength(bent.data());
  ASSERT_TRUE(body_length.ok());
  auto decoded = DecodeWireFrameBody(
      bent.data(), bent.data() + kWireFrameHeaderBytes, *body_length);
  EXPECT_FALSE(decoded.ok());
}

TEST(WireFrameTest, UnknownTypeTagRefused) {
  for (const uint8_t tag : {uint8_t{0}, uint8_t{8}, uint8_t{255}}) {
    auto frame = EncodeWireFrame(static_cast<WireFrameType>(tag), "x");
    ASSERT_TRUE(frame.ok());  // encode is by-construction trusted
    auto body_length = WireFrameBodyLength(frame->data());
    ASSERT_TRUE(body_length.ok());
    auto decoded = DecodeWireFrameBody(
        frame->data(), frame->data() + kWireFrameHeaderBytes, *body_length);
    EXPECT_FALSE(decoded.ok()) << "tag " << int{tag};
  }
}

// ---- table codec ---------------------------------------------------------

TEST(WireTableCodecTest, LosslessRoundTrip) {
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  const Table table = TestTable();
  auto decoded = DecodeTable(&decoder, EncodeTable(&encoder, table));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectTablesEqual(table, *decoded);
  // -0.0 must survive as -0.0, not 0.0.
  EXPECT_TRUE(std::signbit(decoded->at(0, 2).AsDouble()));
}

TEST(WireTableCodecTest, EmptyAndDefaultTablesRoundTrip) {
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  // Zero rows of the schema.
  auto empty = DecodeTable(&decoder, EncodeTable(&encoder, Table(TestSchema())));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);
  EXPECT_EQ(empty->num_columns(), TestSchema().num_columns());
  // A default-constructed Table (0x0) decodes as an empty schema table.
  auto zero = DecodeTable(&decoder, EncodeTable(&encoder, Table()));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->num_rows(), 0u);
  EXPECT_EQ(zero->num_columns(), TestSchema().num_columns());
}

TEST(WireTableCodecTest, DictionaryShipsEachStringOnce) {
  Schema narrow({{"subject", ColumnRole::kOther, ValueType::kString}});
  WireTableEncoder encoder;
  WireTableDecoder decoder(narrow);
  Table batch(narrow);
  for (int r = 0; r < 64; ++r) {
    ASSERT_TRUE(
        batch.AppendRow({Value::String("subject-" + std::to_string(r))})
            .ok());
  }
  const std::string first = EncodeTable(&encoder, batch);
  const std::string second = EncodeTable(&encoder, batch);
  // The second block reuses the column's dictionary: it carries only
  // u32 ids, so it is much smaller than the first (which shipped every
  // string's bytes).
  EXPECT_LT(second.size(), first.size() / 2);
  auto first_decoded = DecodeTable(&decoder, first);
  ASSERT_TRUE(first_decoded.ok());
  ExpectTablesEqual(batch, *first_decoded);
  auto second_decoded = DecodeTable(&decoder, second);
  ASSERT_TRUE(second_decoded.ok());
  ExpectTablesEqual(batch, *second_decoded);
}

TEST(WireTableCodecTest, ColumnCountMismatchRefused) {
  WireTableEncoder encoder;
  Schema narrow({{"only", ColumnRole::kOther, ValueType::kString}});
  Table table(narrow);
  ASSERT_TRUE(table.AppendRow({Value::String("x")}).ok());
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeTable(&decoder, EncodeTable(&encoder, table));
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTableCodecTest, TruncationAtEveryByteRefused) {
  WireTableEncoder encoder;
  const std::string block = EncodeTable(&encoder, TestTable());
  for (size_t cut = 0; cut < block.size(); ++cut) {
    WireTableDecoder decoder(TestSchema());
    auto decoded = DecodeTable(&decoder, block.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut << " of " << block.size();
  }
}

TEST(WireTableCodecTest, TrailingBytesRefused) {
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded =
      DecodeTable(&decoder, EncodeTable(&encoder, TestTable()) + "x");
  EXPECT_FALSE(decoded.ok());
}

TEST(WireTableCodecTest, UnknownColumnEncodingRefused) {
  WireTableEncoder encoder;
  std::string block = EncodeTable(&encoder, TestTable());
  block[8] = static_cast<char>(0x7f);  // first column's encoding byte
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeTable(&decoder, block);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTableCodecTest, OutOfRangeDictionaryIdRefused) {
  // One string column, one row: block is [rows][cols][enc][new=1]
  // [len]["city"][id]. Corrupt the trailing id.
  Schema narrow({{"city", ColumnRole::kOther, ValueType::kString}});
  Table table(narrow);
  ASSERT_TRUE(table.AppendRow({Value::String("rome")}).ok());
  WireTableEncoder encoder;
  std::string block = EncodeTable(&encoder, table);
  ASSERT_GE(block.size(), 4u);
  block[block.size() - 4] = 9;  // id 9 into a 1-entry dictionary
  WireTableDecoder decoder(narrow);
  auto decoded = DecodeTable(&decoder, block);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// ---- request / response payloads -----------------------------------------

TEST(WireRequestTest, OpenRoundTripsEveryField) {
  WireRequest request;
  request.type = WireFrameType::kOpen;
  request.session = "hospital-7";
  request.open.k = 12;
  request.open.enforce_joint = true;
  request.open.auto_epsilon = true;
  request.open.num_threads = 3;
  request.open.passphrase = "pp";
  request.open.k1 = "key-one";
  request.open.k2 = "key-two";
  request.open.eta = 77;
  request.open.key_id = "recipient-a";
  request.open.on_unbinnable = 1;
  request.open.policy = 1;
  request.open.drift_threshold = 0.25;

  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeWireRequest(
      request.type, EncodeWireRequest(request, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->session, "hospital-7");
  EXPECT_EQ(decoded->open.k, 12u);
  EXPECT_TRUE(decoded->open.enforce_joint);
  EXPECT_TRUE(decoded->open.auto_epsilon);
  EXPECT_EQ(decoded->open.num_threads, 3u);
  EXPECT_EQ(decoded->open.passphrase, "pp");
  EXPECT_EQ(decoded->open.k1, "key-one");
  EXPECT_EQ(decoded->open.k2, "key-two");
  EXPECT_EQ(decoded->open.eta, 77u);
  EXPECT_EQ(decoded->open.key_id, "recipient-a");
  EXPECT_EQ(decoded->open.on_unbinnable, 1);
  EXPECT_EQ(decoded->open.policy, 1);
  EXPECT_EQ(decoded->open.drift_threshold, 0.25);
}

TEST(WireRequestTest, IngestCarriesTableAskAndDeadline) {
  WireRequest request;
  request.type = WireFrameType::kIngest;
  request.session = "s";
  request.ask = 4;
  request.deadline_ms = 1500;
  request.table = TestTable();
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeWireRequest(
      request.type, EncodeWireRequest(request, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->ask, 4u);
  EXPECT_EQ(decoded->deadline_ms, 1500);
  ExpectTablesEqual(request.table, decoded->table);
}

TEST(WireRequestTest, FingerprintCarriesRegistryText) {
  WireRequest request;
  request.type = WireFrameType::kFingerprint;
  request.session = "s";
  request.registry_text = "REGISTRYv1\n[key]\nname = a\n";
  request.table = TestTable();
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeWireRequest(
      request.type, EncodeWireRequest(request, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->registry_text, request.registry_text);
}

TEST(WireRequestTest, TrailingBytesRefused) {
  WireRequest request;
  request.type = WireFrameType::kClose;
  request.session = "s";
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded = DecodeWireRequest(
      request.type, EncodeWireRequest(request, &encoder) + "!", &decoder);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireRequestTest, TruncationAtEveryByteRefused) {
  WireRequest request;
  request.type = WireFrameType::kIngest;
  request.session = "session-name";
  request.table = TestTable();
  WireTableEncoder encoder;
  const std::string payload = EncodeWireRequest(request, &encoder);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireTableDecoder decoder(TestSchema());
    auto decoded =
        DecodeWireRequest(request.type, payload.substr(0, cut), &decoder);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(WireResponseTest, ErrorResponseCarriesStatusAndRetryHint) {
  WireResponse response;
  response.kind = WireFrameType::kIngest;
  response.status = Status::ResourceExhausted("queue full");
  response.retry_after_ms = 250;
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded =
      DecodeWireResponse(EncodeWireResponse(response, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->kind, WireFrameType::kIngest);
  EXPECT_EQ(decoded->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->status.message(), "queue full");
  EXPECT_EQ(decoded->retry_after_ms, 250);
}

TEST(WireResponseTest, IngestRoundTrip) {
  WireResponse response;
  response.kind = WireFrameType::kIngest;
  response.journal_status = Status::IOError("disk gone");
  response.threads_granted = 3;
  response.ingest.epoch = 2;
  response.ingest.flushed = true;
  response.ingest.rows_emitted = 10;
  response.ingest.rows_suppressed = 1;
  response.ingest.rows_buffered = 5;
  response.ingest.emitted = TestTable();
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded =
      DecodeWireResponse(EncodeWireResponse(response, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->journal_status.code(), StatusCode::kIOError);
  EXPECT_EQ(decoded->threads_granted, 3u);
  EXPECT_EQ(decoded->ingest.epoch, 2u);
  EXPECT_TRUE(decoded->ingest.flushed);
  EXPECT_EQ(decoded->ingest.rows_emitted, 10u);
  EXPECT_EQ(decoded->ingest.rows_suppressed, 1u);
  EXPECT_EQ(decoded->ingest.rows_buffered, 5u);
  ExpectTablesEqual(response.ingest.emitted, decoded->ingest.emitted);
}

TEST(WireResponseTest, DetectRoundTripPreservesExactMargins) {
  WireResponse response;
  response.kind = WireFrameType::kDetect;
  DetectReport report;
  report.recovered = BitVector::FromString("1011").ValueOrDie();
  report.tuples_selected = 100;
  report.slots_read = 400;
  report.slots_skipped = 3;
  report.vote_margin = {0.1, -0.0, 1e-17, 12345.6789};
  report.bit_voted = {true, false, true, true};
  response.reports.push_back(report);
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded =
      DecodeWireResponse(EncodeWireResponse(response, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->reports.size(), 1u);
  const DetectReport& out = decoded->reports[0];
  EXPECT_EQ(out.recovered.ToString(), "1011");
  EXPECT_EQ(out.tuples_selected, 100u);
  EXPECT_EQ(out.slots_read, 400u);
  EXPECT_EQ(out.slots_skipped, 3u);
  EXPECT_EQ(out.vote_margin, report.vote_margin);  // exact doubles
  EXPECT_EQ(out.bit_voted, report.bit_voted);
}

TEST(WireResponseTest, CloseRoundTripCarriesManifestText) {
  WireResponse response;
  response.kind = WireFrameType::kClose;
  response.close.rows_ingested = 30;
  response.close.rows_emitted = 28;
  response.close.rows_suppressed = 2;
  WireEpochSummary epoch;
  epoch.epoch = 1;
  epoch.rows_emitted = 28;
  epoch.wmd_size = 160;
  epoch.identifier_statistic = 3.75;
  epoch.manifest_text = "PRIVMARK-MANIFESTv1\nversion = 1\n";
  response.close.epochs.push_back(epoch);
  WireTableEncoder encoder;
  WireTableDecoder decoder(TestSchema());
  auto decoded =
      DecodeWireResponse(EncodeWireResponse(response, &encoder), &decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->close.epochs.size(), 1u);
  EXPECT_EQ(decoded->close.rows_ingested, 30u);
  EXPECT_EQ(decoded->close.epochs[0].manifest_text, epoch.manifest_text);
  EXPECT_EQ(decoded->close.epochs[0].identifier_statistic, 3.75);
}

TEST(WireResponseTest, TruncationAtEveryByteRefused) {
  WireResponse response;
  response.kind = WireFrameType::kFlush;
  response.flush.epoch = 1;
  response.flush.identifier_statistic = 2.5;
  response.flush.emitted = TestTable();
  WireTableEncoder encoder;
  const std::string payload = EncodeWireResponse(response, &encoder);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireTableDecoder decoder(TestSchema());
    auto decoded = DecodeWireResponse(payload.substr(0, cut), &decoder);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

// ---- typed backpressure hint ---------------------------------------------

TEST(RetryAfterTest, ExtractsTypedHint) {
  EXPECT_EQ(RetryAfterMsFromStatus(Status::ResourceExhausted(
                "queue full; retry_after_ms=350")),
            350);
  EXPECT_EQ(RetryAfterMsFromStatus(Status::ResourceExhausted(
                "retry_after_ms=0 trailing words")),
            0);
}

TEST(RetryAfterTest, AbsentOrForeignHintsYieldMinusOne) {
  EXPECT_EQ(RetryAfterMsFromStatus(Status::OK()), -1);
  EXPECT_EQ(RetryAfterMsFromStatus(Status::ResourceExhausted("no hint")), -1);
  EXPECT_EQ(RetryAfterMsFromStatus(Status::ResourceExhausted(
                "retry_after_ms=")),
            -1);
  // Only ResourceExhausted carries the hint; other codes never do.
  EXPECT_EQ(RetryAfterMsFromStatus(
                Status::InvalidArgument("retry_after_ms=10")),
            -1);
  // Overflowing digits are not a hint.
  EXPECT_EQ(RetryAfterMsFromStatus(Status::ResourceExhausted(
                "retry_after_ms=99999999999999999999999")),
            -1);
}

}  // namespace
}  // namespace privmark
