// Streamed-fingerprint equivalence suite — the protocol-v2 guarantee
// that streaming is an ordering of the one-shot scan, never a different
// computation:
//
//  1. In process: DetectFingerprintStreamed over a 300+-key registry,
//     across thread counts, must emit shards whose concatenation is
//     byte-identical (exact doubles, full DetectReports) to the one-shot
//     DetectFingerprint response — and the streamed call's own terminal
//     response must equal it too (verdicts, ranking, margins, collusion).
//  2. Over the wire: a v2 streamed scan's kPartial shards and reassembled
//     terminal response must equal the same connection's non-streamed
//     Call() for the same suspect table and registry.
//
// Shard sequencing (epoch monotonic without gaps, shard ordinals
// sequential, first_key contiguous) is validated while reassembling.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "datagen/medical_data.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/service.h"
#include "watermark/key_registry.h"

namespace privmark {
namespace {

constexpr size_t kRows = 1800;
constexpr size_t kDecoyKeys = 300;  // registry = 1 owner + 300 decoys
constexpr uint64_t kSeed = 20050405;

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<size_t>(hw);
}

// Thread counts the acceptance bar names: serial, minimal parallelism,
// and whatever the host actually has.
std::vector<size_t> ThreadCounts() {
  std::vector<size_t> counts = {1, 2};
  if (HardwareThreads() > 2) counts.push_back(HardwareThreads());
  return counts;
}

void ExpectDetectReportsEqual(const DetectReport& a, const DetectReport& b,
                              const std::string& what) {
  EXPECT_EQ(a.recovered.ToString(), b.recovered.ToString()) << what;
  EXPECT_EQ(a.bit_voted, b.bit_voted) << what;
  EXPECT_EQ(a.tuples_selected, b.tuples_selected) << what;
  EXPECT_EQ(a.slots_read, b.slots_read) << what;
  EXPECT_EQ(a.slots_skipped, b.slots_skipped) << what;
  ASSERT_EQ(a.vote_margin.size(), b.vote_margin.size()) << what;
  for (size_t j = 0; j < a.vote_margin.size(); ++j) {
    // Exact double equality: tallies sum whole 1.0 votes, so margins
    // must match bit for bit.
    EXPECT_EQ(a.vote_margin[j], b.vote_margin[j]) << what << " bit " << j;
  }
}

void ExpectKeyVerdictsEqual(const KeyVerdict& a, const KeyVerdict& b,
                            const std::string& what) {
  EXPECT_EQ(a.key_name, b.key_name) << what;
  ExpectDetectReportsEqual(a.detection, b.detection, what);
  EXPECT_EQ(a.margin_ratio, b.margin_ratio) << what;
  EXPECT_EQ(a.mark_match, b.mark_match) << what;
  EXPECT_EQ(a.p_value, b.p_value) << what;
  EXPECT_EQ(a.score, b.score) << what;
  EXPECT_EQ(a.detected, b.detected) << what;
}

void ExpectReportsEqual(const FingerprintReport& a, const FingerprintReport& b,
                        const std::string& what) {
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size()) << what;
  for (size_t i = 0; i < a.verdicts.size(); ++i) {
    ExpectKeyVerdictsEqual(a.verdicts[i], b.verdicts[i],
                           what + " key " + std::to_string(i));
  }
  EXPECT_EQ(a.ranking, b.ranking) << what;
  EXPECT_EQ(a.keys_detected, b.keys_detected) << what;
  EXPECT_EQ(a.collusion, b.collusion) << what;
}

// Validates the shard sequence invariants while concatenating each
// epoch's verdicts back together: epochs arrive monotonically without
// gaps, shard ordinals count up from 0 per epoch, and first_key makes
// every run contiguous with its predecessor.
template <typename Shard>
std::vector<std::vector<KeyVerdict>> Reassemble(
    const std::vector<Shard>& shards, const std::string& what) {
  std::vector<std::vector<KeyVerdict>> epochs;
  std::vector<uint64_t> next_shard;
  for (const Shard& shard : shards) {
    if (shard.epoch == epochs.size()) {
      epochs.emplace_back();
      next_shard.push_back(0);
    }
    EXPECT_FALSE(epochs.empty()) << what;
    EXPECT_EQ(shard.epoch, epochs.size() - 1)
        << what << ": epochs must arrive in order without gaps";
    EXPECT_EQ(shard.shard, next_shard.back()++) << what;
    EXPECT_EQ(shard.first_key, epochs.back().size())
        << what << ": shards must cover contiguous key runs";
    EXPECT_FALSE(shard.verdicts.empty()) << what;
    epochs.back().insert(epochs.back().end(), shard.verdicts.begin(),
                         shard.verdicts.end());
  }
  return epochs;
}

// ---- in-process: service seam ---------------------------------------------

struct Fixture {
  std::unique_ptr<MedicalDataset> dataset;
  FrameworkConfig config;
  std::shared_ptr<const KeyRegistry> registry;
  std::unique_ptr<PrivmarkService> service;  // session "audit" stays open
  Table suspect;                  // both epochs' emitted rows, in order
  ServiceResponse baseline;       // one-shot fingerprint at 1 thread
};

// Built once: a two-epoch protected stream, a 301-key registry (the
// embedding key + 300 decoys), and the serial one-shot scan every other
// run is measured against.
Fixture& SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    MedicalDataSpec spec;
    spec.num_rows = kRows;
    spec.seed = kSeed;
    f->dataset = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());

    f->config.binning.k = 10;
    f->config.binning.enforce_joint = false;
    f->config.binning.mono.on_unbinnable = UnbinnablePolicy::kSuppress;
    f->config.binning.num_threads = 1;
    f->config.watermark.num_threads = 1;
    f->config.key = {"owner-k1", "owner-k2", /*eta=*/10};

    KeyRegistry registry;
    EXPECT_TRUE(registry.Add(NamedKey{"owner", f->config.key}).ok());
    Random keygen(4242);
    for (size_t i = 0; i < kDecoyKeys; ++i) {
      EXPECT_TRUE(
          registry
              .Add(GenerateKey("decoy-" + std::to_string(i), 10, &keygen))
              .ok());
    }
    f->registry = std::make_shared<const KeyRegistry>(std::move(registry));

    ServiceConfig service_config;
    service_config.thread_cap = HardwareThreads();
    f->service = std::make_unique<PrivmarkService>(service_config);
    const UsageMetrics metrics =
        MetricsFromDepthCuts(f->dataset->trees(), {2, 1, 2, 1, 1})
            .ValueOrDie();
    // Drift policy with a threshold nothing crosses: each half stays
    // buffered until its flush, giving the two sealed epochs the epoch
    // dimension of the streaming contract needs.
    SessionConfig session_config;
    session_config.policy = RebinPolicy::kRebinOnDrift;
    session_config.drift_threshold = 1.5;
    EXPECT_TRUE(
        f->service->OpenSession("audit", metrics, f->config, session_config)
            .ok());

    // Two epochs: first half, flush, second half, flush.
    f->suspect = Table(f->dataset->table.schema());
    for (const size_t boundary : {kRows / 2, kRows}) {
      const size_t begin = boundary == kRows / 2 ? 0 : kRows / 2;
      auto ingested =
          f->service
              ->ProtectBatch("audit",
                             f->dataset->table.Slice(begin, boundary))
              .get();
      EXPECT_TRUE(ingested.ok()) << ingested.status().ToString();
      auto flushed = f->service->Flush("audit").get();
      EXPECT_TRUE(flushed.ok()) << flushed.status().ToString();
      const Table& emitted = flushed->epoch.outcome.watermarked;
      for (size_t r = 0; r < emitted.num_rows(); ++r) {
        Row row;
        for (size_t c = 0; c < emitted.num_columns(); ++c) {
          row.push_back(emitted.at(r, c));
        }
        EXPECT_TRUE(f->suspect.AppendRow(std::move(row)).ok());
      }
    }

    auto baseline = f->service
                        ->DetectFingerprint("audit", f->suspect.Clone(),
                                            f->registry, /*num_threads=*/1)
                        .get();
    EXPECT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_EQ(baseline->fingerprints.size(), 2u);
    f->baseline = *std::move(baseline);
    return f;
  }();
  return *fixture;
}

TEST(StreamedFingerprintTest, BaselineDetectsTheOwnerInBothEpochs) {
  Fixture& f = SharedFixture();
  ASSERT_EQ(f.baseline.fingerprints.size(), 2u);
  for (size_t e = 0; e < f.baseline.fingerprints.size(); ++e) {
    const FingerprintReport& report = f.baseline.fingerprints[e];
    ASSERT_EQ(report.verdicts.size(), 1 + kDecoyKeys) << e;
    EXPECT_EQ(report.verdicts[report.ranking[0]].key_name, "owner") << e;
    EXPECT_TRUE(report.verdicts[report.ranking[0]].detected) << e;
    EXPECT_EQ(report.keys_detected, 1u) << e;
    EXPECT_FALSE(report.collusion) << e;
  }
}

TEST(StreamedFingerprintTest, ShardsConcatenateToTheOneShotScan) {
  Fixture& f = SharedFixture();
  for (const size_t threads : ThreadCounts()) {
    const std::string what = std::to_string(threads) + " threads";
    std::vector<FingerprintShard> shards;
    auto streamed =
        f.service
            ->DetectFingerprintStreamed(
                "audit", f.suspect.Clone(), f.registry,
                [&shards](const FingerprintShard& shard) {
                  shards.push_back(shard);
                },
                threads)
            .get();
    ASSERT_TRUE(streamed.ok()) << what << ": " << streamed.status().ToString();

    // The sink's concatenation IS the one-shot scan's verdict list.
    const auto epochs = Reassemble(shards, what);
    ASSERT_EQ(epochs.size(), f.baseline.fingerprints.size()) << what;
    for (size_t e = 0; e < epochs.size(); ++e) {
      const auto& expected = f.baseline.fingerprints[e].verdicts;
      ASSERT_EQ(epochs[e].size(), expected.size()) << what;
      for (size_t i = 0; i < expected.size(); ++i) {
        ExpectKeyVerdictsEqual(
            epochs[e][i], expected[i],
            what + ", epoch " + std::to_string(e) + ", key " +
                std::to_string(i));
      }
    }

    // The streamed call's own terminal response equals the one-shot
    // response too — ranking, margins, collusion, everything.
    ASSERT_EQ(streamed->fingerprints.size(), f.baseline.fingerprints.size())
        << what;
    for (size_t e = 0; e < streamed->fingerprints.size(); ++e) {
      ExpectReportsEqual(streamed->fingerprints[e], f.baseline.fingerprints[e],
                         what + ", epoch " + std::to_string(e));
    }
    EXPECT_TRUE(streamed->journal_status.ok()) << what;
  }
}

TEST(StreamedFingerprintTest, NullSinkIsExactlyTheOneShotCall) {
  Fixture& f = SharedFixture();
  auto scanned = f.service
                     ->DetectFingerprintStreamed("audit", f.suspect.Clone(),
                                                 f.registry, nullptr,
                                                 /*num_threads=*/2)
                     .get();
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  ASSERT_EQ(scanned->fingerprints.size(), f.baseline.fingerprints.size());
  for (size_t e = 0; e < scanned->fingerprints.size(); ++e) {
    ExpectReportsEqual(scanned->fingerprints[e], f.baseline.fingerprints[e],
                       "null sink, epoch " + std::to_string(e));
  }
}

// ---- over the wire: daemon + v2 client ------------------------------------

struct WireEnv {
  std::unique_ptr<MedicalDataset> dataset;
  std::unique_ptr<PrivmarkDaemon> daemon;
};

WireEnv StartDaemon() {
  WireEnv env;
  MedicalDataSpec spec;
  spec.num_rows = 1200;
  spec.seed = 515151;
  env.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  MedicalDataset* ontologies = env.dataset.get();
  DaemonConfig config;
  config.schema = MedicalSchema();
  config.metrics_for_config =
      [ontologies](const FrameworkConfig&) -> Result<UsageMetrics> {
    return MetricsFromDepthCuts(ontologies->trees(), {2, 1, 2, 1, 1});
  };
  env.daemon = std::make_unique<PrivmarkDaemon>(std::move(config));
  EXPECT_TRUE(env.daemon->Start(0).ok());
  return env;
}

TEST(StreamedFingerprintTest, WireStreamMatchesTheOneShotCall) {
  WireEnv env = StartDaemon();
  DaemonClient client(MedicalSchema());
  ASSERT_TRUE(client.Connect("127.0.0.1", env.daemon->port()).ok());
  ASSERT_EQ(client.protocol_version(), kWireProtocolV2);

  WireRequest open;
  open.type = WireFrameType::kOpen;
  open.session = "audit-wire";
  open.open.k = 10;
  open.open.passphrase = "audit-wire-pass";
  open.open.k1 = "audit-wire-k1";
  open.open.k2 = "audit-wire-k2";
  open.open.eta = 10;
  open.open.on_unbinnable = 1;  // suppress: half-size windows may thin out
  open.open.policy = 1;         // drift policy, threshold never crossed:
  open.open.drift_threshold = 1.5;  // each half seals as its own epoch
  auto opened = client.Call(open);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(opened->status.ok()) << opened->status.ToString();

  // Two epochs' worth of protected output, concatenated.
  Table suspect(env.dataset->table.schema());
  const size_t rows = env.dataset->table.num_rows();
  for (const size_t boundary : {rows / 2, rows}) {
    WireRequest ingest;
    ingest.type = WireFrameType::kIngest;
    ingest.session = "audit-wire";
    ingest.table = env.dataset->table.Slice(
        boundary == rows / 2 ? 0 : rows / 2, boundary);
    auto ingested = client.Call(ingest);
    ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
    ASSERT_TRUE(ingested->status.ok()) << ingested->status.ToString();
    WireRequest flush;
    flush.type = WireFrameType::kFlush;
    flush.session = "audit-wire";
    auto flushed = client.Call(flush);
    ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
    ASSERT_TRUE(flushed->status.ok()) << flushed->status.ToString();
    const Table& emitted = flushed->flush.emitted;
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      Row row;
      for (size_t c = 0; c < emitted.num_columns(); ++c) {
        row.push_back(emitted.at(r, c));
      }
      ASSERT_TRUE(suspect.AppendRow(std::move(row)).ok());
    }
  }

  KeyRegistry registry;
  ASSERT_TRUE(
      registry.Add(NamedKey{"owner", {"audit-wire-k1", "audit-wire-k2", 10}})
          .ok());
  Random keygen(99);
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        registry.Add(GenerateKey("decoy-" + std::to_string(i), 10, &keygen))
            .ok());
  }

  WireRequest scan;
  scan.type = WireFrameType::kFingerprint;
  scan.session = "audit-wire";
  scan.table = suspect.Clone();
  scan.registry_text = registry.Serialize();
  auto one_shot = client.Call(scan);
  ASSERT_TRUE(one_shot.ok()) << one_shot.status().ToString();
  ASSERT_TRUE(one_shot->status.ok()) << one_shot->status.ToString();
  ASSERT_EQ(one_shot->fingerprints.size(), 2u);

  // Same scan, streamed: drain every kPartial shard, then Wait() for the
  // reassembled terminal response.
  scan.table = suspect.Clone();
  scan.stream = true;
  auto pending = client.CallAsync(scan);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  std::vector<WireFingerprintShard> shards;
  WireFingerprintShard shard;
  while (true) {
    auto more = pending->NextShard(&shard);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    shards.push_back(std::move(shard));
  }
  auto streamed = pending->Wait();
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_TRUE(streamed->status.ok()) << streamed->status.ToString();

  const auto epochs = Reassemble(shards, "wire stream");
  ASSERT_EQ(epochs.size(), one_shot->fingerprints.size());
  for (size_t e = 0; e < epochs.size(); ++e) {
    const auto& expected = one_shot->fingerprints[e].verdicts;
    ASSERT_EQ(epochs[e].size(), expected.size()) << e;
    for (size_t i = 0; i < expected.size(); ++i) {
      ExpectKeyVerdictsEqual(epochs[e][i], expected[i],
                             "wire shard, epoch " + std::to_string(e) +
                                 ", key " + std::to_string(i));
    }
  }
  ASSERT_EQ(streamed->fingerprints.size(), one_shot->fingerprints.size());
  for (size_t e = 0; e < streamed->fingerprints.size(); ++e) {
    ExpectReportsEqual(streamed->fingerprints[e], one_shot->fingerprints[e],
                       "wire terminal, epoch " + std::to_string(e));
  }
  EXPECT_EQ(streamed->request_id, pending->request_id());

  WireRequest close;
  close.type = WireFrameType::kClose;
  close.session = "audit-wire";
  ASSERT_TRUE(client.Call(close).ok());
  client.Disconnect();
}

}  // namespace
}  // namespace privmark
