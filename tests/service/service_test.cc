// Unit tests for the async service front-end (service/service.h):
// queue semantics, session lifecycle, admission-control edges (asks
// above the cap, zero-thread asks, partial grants), same-session
// serialization (Detect racing Flush), and the shutdown drain
// guarantee. The byte-identity claims against serial replay live in
// tests/properties/service_equivalence_test.cc.

#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/framework.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "service/admission.h"
#include "watermark/key_registry.h"

namespace privmark {
namespace {

constexpr size_t kRows = 1800;
constexpr size_t kBatch = 600;
constexpr uint64_t kSeed = 515151;

struct Env {
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  FrameworkConfig config;
};

// OpenSession never blocks on a draining predecessor — it returns
// AlreadyExists until the retired strand is reaped — so name reuse in
// tests retries with a bounded wait.
Status OpenRetrying(PrivmarkService* service, const std::string& name,
                    const UsageMetrics& metrics,
                    const FrameworkConfig& config) {
  Status status = Status::OK();
  for (int spin = 0; spin < 2000; ++spin) {
    status = service->OpenSession(name, metrics, config);
    if (status.ok()) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return status;
}

Env MakeEnv(size_t num_threads = 1) {
  Env env;
  MedicalDataSpec spec;
  spec.num_rows = kRows;
  spec.seed = kSeed;
  env.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  env.metrics =
      MetricsFromDepthCuts(env.dataset->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  env.config.binning.k = 10;
  env.config.binning.enforce_joint = false;
  env.config.binning.num_threads = num_threads;
  env.config.watermark.num_threads = num_threads;
  env.config.key = {"svc-k1", "svc-k2", /*eta=*/10};
  return env;
}

// ---- AdmissionController --------------------------------------------------

TEST(AdmissionControllerTest, NormalizesAndClampsAsks) {
  AdmissionController admission(4);
  EXPECT_EQ(admission.capacity(), 4u);
  // Demand above the cap is clamped, never rejected.
  const size_t over = admission.Acquire(64);
  EXPECT_EQ(over, 4u);
  admission.Release(over);
  // A zero ask means "all of it" (the hardware-concurrency convention).
  const size_t all = admission.Acquire(0);
  EXPECT_EQ(all, 4u);
  admission.Release(all);
  EXPECT_EQ(admission.in_use(), 0u);
}

TEST(AdmissionControllerTest, ZeroCapacityMeansHardware) {
  AdmissionController admission(0);
  EXPECT_GE(admission.capacity(), 1u);
}

TEST(AdmissionControllerTest, PartialGrantWhenCapacityIsShort) {
  AdmissionController admission(4);
  const size_t first = admission.Acquire(3);
  EXPECT_EQ(first, 3u);
  // Work-conserving: one worker is free, so a wide ask takes the partial
  // grant instead of idling it.
  const size_t second = admission.Acquire(3);
  EXPECT_EQ(second, 1u);
  EXPECT_EQ(admission.in_use(), 4u);
  admission.Release(first);
  admission.Release(second);
}

TEST(AdmissionControllerTest, BlocksWhileSaturatedAndWakesOnRelease) {
  AdmissionController admission(2);
  const size_t held = admission.Acquire(2);
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    const size_t grant = admission.Acquire(1);
    granted.store(true);
    admission.Release(grant);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());  // saturated: the waiter queues
  admission.Release(held);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(admission.in_use(), 0u);
}

// ---- ServiceQueue ---------------------------------------------------------

TEST(ServiceQueueTest, FifoAndDrainAfterClose) {
  ServiceQueue queue;
  for (size_t i = 0; i < 3; ++i) {
    ServiceQueue::Item item;
    item.request.session = "s" + std::to_string(i);
    ASSERT_TRUE(queue.Push(std::move(item)));
  }
  queue.Close();
  ServiceQueue::Item rejected;
  EXPECT_FALSE(queue.Push(std::move(rejected)));  // intake closed...
  ServiceQueue::Item item;
  for (size_t i = 0; i < 3; ++i) {  // ...but accepted items drain, FIFO
    ASSERT_TRUE(queue.Pop(&item));
    EXPECT_EQ(item.request.session, "s" + std::to_string(i));
  }
  EXPECT_FALSE(queue.Pop(&item));  // closed and drained
}

// ---- PrivmarkService ------------------------------------------------------

TEST(PrivmarkServiceTest, LifecycleAndRegistryErrors) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 2;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());
  EXPECT_EQ(service.num_sessions(), 1u);

  const Status duplicate =
      service.OpenSession("ward", env.metrics, env.config);
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);

  auto unknown = service.Flush("nowhere").get();
  EXPECT_EQ(unknown.status().code(), StatusCode::kKeyError);

  auto closed = service.CloseSession("ward").get();
  ASSERT_TRUE(closed.ok());
  auto after_close = service.Flush("ward").get();
  // Before the retired strand is reaped the name reads as closed
  // (InvalidArgument); afterwards it is simply unknown (KeyError).
  // Either way the submit fails without being accepted.
  EXPECT_FALSE(after_close.ok());
  EXPECT_TRUE(after_close.status().code() == StatusCode::kInvalidArgument ||
              after_close.status().code() == StatusCode::kKeyError)
      << after_close.status().ToString();

  // A closed name is reusable once its strand is reaped (retry until
  // the drain finishes — OpenSession refuses to block on it).
  EXPECT_TRUE(OpenRetrying(&service, "ward", env.metrics, env.config).ok());

  service.Shutdown();
  auto after_shutdown = service.Flush("ward").get();
  EXPECT_EQ(after_shutdown.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      service.OpenSession("other", env.metrics, env.config).ok());
}

TEST(PrivmarkServiceTest, ProtectFlushDetectMatchesDirectSession) {
  Env env = MakeEnv();
  // Serial reference: the same request sequence straight on a session.
  ProtectionSession reference(env.metrics, env.config);
  ASSERT_TRUE(reference.Ingest(env.dataset->table).ok());
  const auto reference_flush = reference.Flush();
  ASSERT_TRUE(reference_flush.ok());
  const Table& reference_table = reference_flush->outcome.watermarked;

  ServiceConfig service_config;
  service_config.thread_cap = 2;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());
  auto ingest = service.ProtectBatch("ward", env.dataset->table.Clone());
  auto flush = service.Flush("ward");
  auto flushed = flush.get();
  ASSERT_TRUE(ingest.get().ok());
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(TableToCsv(flushed->epoch.outcome.watermarked),
            TableToCsv(reference_table));

  auto detect = service.Detect("ward", reference_table.Clone()).get();
  ASSERT_TRUE(detect.ok());
  ASSERT_EQ(detect->reports.size(), 1u);
  EXPECT_EQ(detect->reports[0].recovered.ToString(),
            reference_flush->outcome.mark.ToString());
}

TEST(PrivmarkServiceTest, DetectFingerprintScansRegistryUnderAGrant) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 2;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());
  ASSERT_TRUE(
      service.ProtectBatch("ward", env.dataset->table.Clone()).get().ok());
  auto flushed = service.Flush("ward").get();
  ASSERT_TRUE(flushed.ok());
  const Table& emitted = flushed->epoch.outcome.watermarked;

  auto registry = std::make_shared<KeyRegistry>();
  ASSERT_TRUE(registry->Add(NamedKey{"owner", env.config.key}).ok());
  Random rng(5);
  ASSERT_TRUE(registry->Add(GenerateKey("decoy", 10, &rng)).ok());

  auto scanned =
      service.DetectFingerprint("ward", emitted.Clone(), registry).get();
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(scanned->kind, RequestKind::kDetectFingerprint);
  EXPECT_GE(scanned->threads_granted, 1u);
  ASSERT_EQ(scanned->fingerprints.size(), 1u);  // one emitted epoch
  const FingerprintReport& report = scanned->fingerprints[0];
  ASSERT_EQ(report.verdicts.size(), 2u);
  EXPECT_EQ(report.verdicts[report.ranking[0]].key_name, "owner");
  EXPECT_TRUE(report.verdicts[report.ranking[0]].detected);
  EXPECT_FALSE(report.verdicts[report.ranking[1]].detected);
  EXPECT_FALSE(report.collusion);

  // A missing registry fails the request without killing the strand.
  auto missing =
      service.DetectFingerprint("ward", emitted.Clone(), nullptr).get();
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(service.Detect("ward", emitted.Clone()).get().ok());
}

TEST(PrivmarkServiceTest, AdmissionClampsDemandAboveTheCap) {
  Env env = MakeEnv(/*num_threads=*/64);  // session demands 64 threads
  ServiceConfig service_config;
  service_config.thread_cap = 2;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("greedy", env.metrics, env.config).ok());
  auto ingest =
      service.ProtectBatch("greedy", env.dataset->table.Clone()).get();
  ASSERT_TRUE(ingest.ok());
  EXPECT_LE(ingest->threads_granted, 2u);
  EXPECT_GE(ingest->threads_granted, 1u);
  auto flush = service.Flush("greedy", /*num_threads=*/64).get();
  ASSERT_TRUE(flush.ok());
  EXPECT_LE(flush->threads_granted, 2u);
}

TEST(PrivmarkServiceTest, ZeroThreadAskMeansWholeCap) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 3;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());
  auto ingest = service
                    .ProtectBatch("ward", env.dataset->table.Clone(),
                                  /*num_threads=*/0)
                    .get();
  ASSERT_TRUE(ingest.ok());
  // Alone on the service, a zero ask gets everything.
  EXPECT_EQ(ingest->threads_granted, 3u);
}

TEST(PrivmarkServiceTest, DetectRacingFlushSerializesInArrivalOrder) {
  Env env = MakeEnv();
  // Deterministic pipeline: an identical serial replay predicts the
  // epoch-0 output byte for byte.
  ProtectionSession reference(env.metrics, env.config);
  ASSERT_TRUE(reference.Ingest(env.dataset->table).ok());
  const auto reference_flush = reference.Flush();
  ASSERT_TRUE(reference_flush.ok());
  const Table& epoch0 = reference_flush->outcome.watermarked;

  // Submit ingest + flush + detect back to back, waiting on nothing.
  // Had Detect overtaken Flush it would see a session with no epochs and
  // fail (row-count mismatch); serialized in arrival order it sees the
  // freshly flushed epoch and recovers its mark.
  ServiceConfig service_config;
  service_config.thread_cap = 2;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());
  auto ingest = service.ProtectBatch("ward", env.dataset->table.Clone());
  auto flush = service.Flush("ward");
  auto detect = service.Detect("ward", epoch0.Clone());
  auto report = detect.get();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->reports.size(), 1u);
  EXPECT_EQ(report->reports[0].recovered.ToString(),
            reference_flush->outcome.mark.ToString());
  ASSERT_TRUE(ingest.get().ok());
  ASSERT_TRUE(flush.get().ok());
}

TEST(PrivmarkServiceTest, ShutdownDrainsEveryAcceptedRequest) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  auto service = std::make_unique<PrivmarkService>(service_config);
  ASSERT_TRUE(service->OpenSession("ward", env.metrics, env.config).ok());
  // Queue a full stream and shut down immediately: everything accepted
  // must still execute (futures complete OK), nothing may hang or drop.
  std::vector<ServiceFuture> futures;
  for (size_t begin = 0; begin < kRows; begin += kBatch) {
    futures.push_back(service->ProtectBatch(
        "ward", env.dataset->table.Slice(begin, begin + kBatch)));
  }
  futures.push_back(service->Flush("ward"));
  service->Shutdown();
  size_t emitted = 0;
  for (ServiceFuture& future : futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    if (result->kind == RequestKind::kFlush) {
      emitted += result->epoch.outcome.watermarked.num_rows();
    }
  }
  EXPECT_GT(emitted, 0u);
  service.reset();  // double-shutdown via the destructor is harmless
}

TEST(PrivmarkServiceTest, ClosedSessionsAreReclaimed) {
  // A long-lived service must not accumulate retired sessions' state:
  // closed strands (session epochs, lease, exited thread) are reaped on
  // the next OpenSession/Submit once their strand has finished.
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  PrivmarkService service(service_config);
  const Table batch = env.dataset->table.Slice(0, kBatch);
  for (size_t i = 0; i < 8; ++i) {
    const std::string name = "stream-" + std::to_string(i);
    ASSERT_TRUE(OpenRetrying(&service, name, env.metrics, env.config).ok());
    ASSERT_TRUE(service.ProtectBatch(name, batch.Clone()).get().ok());
    ASSERT_TRUE(service.CloseSession(name).get().ok());
  }
  // The close futures resolved, so every strand is finished (or is
  // about to set its flag); the next registry operation reaps. Allow a
  // bounded wait for the last strand's flag.
  size_t strands = service.num_strands();
  for (int spin = 0; spin < 200 && strands > 1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(OpenRetrying(&service, "probe", env.metrics, env.config).ok());
    ASSERT_TRUE(service.CloseSession("probe").get().ok());
    strands = service.num_strands();
  }
  EXPECT_LE(strands, 2u);  // at most the last probe + one laggard
  EXPECT_EQ(service.num_sessions(), 0u);
}

TEST(PrivmarkServiceTest, ConcurrentSessionsShareThePoolUnderTheCap) {
  Env env_a = MakeEnv(/*num_threads=*/2);
  Env env_b = MakeEnv(/*num_threads=*/2);
  ServiceConfig service_config;
  service_config.thread_cap = 2;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("a", env_a.metrics, env_a.config).ok());
  ASSERT_TRUE(service.OpenSession("b", env_b.metrics, env_b.config).ok());
  std::vector<ServiceFuture> futures;
  for (size_t begin = 0; begin < kRows; begin += kBatch) {
    futures.push_back(service.ProtectBatch(
        "a", env_a.dataset->table.Slice(begin, begin + kBatch)));
    futures.push_back(service.ProtectBatch(
        "b", env_b.dataset->table.Slice(begin, begin + kBatch)));
  }
  futures.push_back(service.Flush("a"));
  futures.push_back(service.Flush("b"));
  for (ServiceFuture& future : futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok());
    // The cap is a hard aggregate bound on every grant.
    EXPECT_LE(result->threads_granted, 2u);
    EXPECT_GE(result->threads_granted, 1u);
  }
}

}  // namespace
}  // namespace privmark
