// Durability and overload-control tests for the service front-end:
// timed admission (AcquireWithin), queue abandonment, per-request
// deadlines, queue-depth shedding, journal-backed OpenSession recovery,
// and the deadline-bounded Shutdown. The crash-under-kill acceptance
// suite lives in tests/integration/crash_recovery_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/framework.h"
#include "core/journal.h"
#include "core/session.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "service/admission.h"
#include "service/service.h"

namespace privmark {
namespace {

constexpr size_t kRows = 1800;
constexpr size_t kBatch = 600;
constexpr uint64_t kSeed = 626262;

struct Env {
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  FrameworkConfig config;
};

Env MakeEnv() {
  Env env;
  MedicalDataSpec spec;
  spec.num_rows = kRows;
  spec.seed = kSeed;
  env.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  env.metrics =
      MetricsFromDepthCuts(env.dataset->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  env.config.binning.k = 10;
  env.config.binning.enforce_joint = false;
  env.config.binning.num_threads = 1;
  env.config.watermark.num_threads = 1;
  env.config.key = {"dur-k1", "dur-k2", /*eta=*/10};
  env.config.key_id = "dur-owner";
  return env;
}

// A per-test journal directory (flat; the service requires it to exist).
std::string FreshJournalDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "privmark_dur_" + tag;
  std::remove((dir + "/ward.wal").c_str());
  ::system(("mkdir -p '" + dir + "'").c_str());
  return dir;
}

void AppendAll(Table* all, const Table& rows) {
  if (rows.num_rows() == 0) return;
  if (all->schema().num_columns() == 0) *all = Table(rows.schema());
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    ASSERT_TRUE(all->AppendRow(rows.row(r)).ok());
  }
}

// ---- AdmissionController::AcquireWithin -----------------------------------

TEST(AdmissionTimeoutTest, TimesOutWhileSaturated) {
  AdmissionController admission(2);
  const size_t held = admission.Acquire(2);
  const auto start = std::chrono::steady_clock::now();
  auto late = admission.AcquireWithin(1, /*timeout_ms=*/20);
  const auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            20);
  admission.Release(held);
  EXPECT_EQ(admission.in_use(), 0u);
}

TEST(AdmissionTimeoutTest, AbandonedTicketDoesNotStallTheFifo) {
  AdmissionController admission(1);
  const size_t held = admission.Acquire(1);
  // This waiter's ticket is between `held` and the acquire below; when
  // it times out, the cursor must skip it or the queue deadlocks.
  auto dead = admission.AcquireWithin(1, /*timeout_ms=*/10);
  ASSERT_FALSE(dead.ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    const size_t grant = admission.Acquire(1);
    granted.store(true);
    admission.Release(grant);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  admission.Release(held);
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(admission.in_use(), 0u);
}

TEST(AdmissionTimeoutTest, ShedsBehindTooManyWaiters) {
  AdmissionController admission(1);
  const size_t held = admission.Acquire(1);
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    const size_t grant = admission.Acquire(1);
    granted.store(true);
    admission.Release(grant);
  });
  // Wait for the waiter to be queued, then a max_waiters=1 acquire must
  // shed instead of joining behind it.
  while (admission.waiters() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto shed = admission.AcquireWithin(1, /*timeout_ms=*/1000,
                                      /*max_waiters=*/1);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(shed.status().retry_after_ms(), 0)
      << "shed status lacked the typed backpressure hint";
  admission.Release(held);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(AdmissionTimeoutTest, UnboundedTimeoutAndZeroWaiterCapNeverShed) {
  AdmissionController admission(2);
  auto grant = admission.AcquireWithin(1, /*timeout_ms=*/-1,
                                       /*max_waiters=*/0);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(*grant, 1u);
  admission.Release(*grant);
}

// ---- ServiceQueue::Abandon ------------------------------------------------

TEST(ServiceQueueAbandonTest, FailsQueuedPromisesAndClosesIntake) {
  ServiceQueue queue;
  std::vector<ServiceFuture> futures;
  for (size_t i = 0; i < 3; ++i) {
    ServiceQueue::Item item;
    item.request.session = "s";
    futures.push_back(item.done.get_future());
    ASSERT_TRUE(queue.Push(std::move(item)));
  }
  const size_t abandoned =
      queue.Abandon(Status::DeadlineExceeded("shutdown deadline"));
  EXPECT_EQ(abandoned, 3u);
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.size(), 0u);
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
  ServiceQueue::Item rejected;
  EXPECT_FALSE(queue.Push(std::move(rejected)));
  // Idempotent on an empty closed queue.
  EXPECT_EQ(queue.Abandon(Status::DeadlineExceeded("again")), 0u);
}

// ---- Per-request deadlines ------------------------------------------------

TEST(ServiceDeadlineTest, QueuedPastDeadlineFailsWithoutExecuting) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());

  // A full-pipeline flush keeps the strand busy for far longer than the
  // 1ms deadline of the flush queued behind it.
  auto ingest = service.ProtectBatch("ward", env.dataset->table);
  auto slow_flush = service.Flush("ward");
  ServiceRequest late;
  late.kind = RequestKind::kFlush;
  late.session = "ward";
  late.deadline_ms = 1;
  auto expired = service.Submit(std::move(late));

  ASSERT_TRUE(ingest.get().ok());
  ASSERT_TRUE(slow_flush.get().ok());
  auto result = expired.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // The expired flush never executed: the session still holds exactly
  // the one epoch the slow flush sealed.
  auto stats = service.CloseSession("ward").get();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.epochs.size(), 1u);
}

TEST(ServiceDeadlineTest, DefaultDeadlineComesFromConfig) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  service_config.default_deadline_ms = 1;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());

  auto ingest = service.ProtectBatch("ward", env.dataset->table);
  auto slow_flush = service.Flush("ward");
  // Inherits the 1ms service default...
  auto expired = service.Flush("ward");
  // ...while an explicit 0 opts out of any deadline.
  ServiceRequest unbounded;
  unbounded.kind = RequestKind::kFlush;
  unbounded.session = "ward";
  unbounded.deadline_ms = 0;
  auto no_deadline = service.Submit(std::move(unbounded));

  // The first two requests carry the 1ms default too, so accept either
  // outcome for them; the contract under test is the tail pair.
  (void)ingest.get();
  (void)slow_flush.get();
  auto expired_result = expired.get();
  if (!expired_result.ok()) {
    EXPECT_EQ(expired_result.status().code(),
              StatusCode::kDeadlineExceeded);
  }
  auto unbounded_result = no_deadline.get();
  if (!unbounded_result.ok()) {
    // Never a deadline error: 0 means none. (It may legitimately fail
    // with "nothing to flush" if every earlier flush expired.)
    EXPECT_NE(unbounded_result.status().code(),
              StatusCode::kDeadlineExceeded);
  }
}

// ---- Queue-depth shedding -------------------------------------------------

TEST(ServiceSheddingTest, FullQueueShedsWithRetryHintButCloseStillLands) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  service_config.max_queue_depth = 1;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());

  // Keep the strand busy (full-pipeline flush), then stack requests
  // until the depth cap sheds one. The strand drains concurrently, so
  // submit until we observe a shed rather than asserting on exact
  // positions.
  auto ingest = service.ProtectBatch("ward", env.dataset->table);
  auto flush = service.Flush("ward");
  std::vector<ServiceFuture> extras;
  Status shed_status = Status::OK();
  for (int i = 0; i < 64 && shed_status.ok(); ++i) {
    auto future = service.Flush("ward");
    if (future.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      auto result = future.get();
      if (!result.ok() &&
          result.status().code() == StatusCode::kResourceExhausted) {
        shed_status = result.status();
        break;
      }
      continue;
    }
    extras.push_back(std::move(future));
  }
  ASSERT_FALSE(shed_status.ok()) << "queue never filled";
  EXPECT_GT(shed_status.retry_after_ms(), 0)
      << "shed status lacked the typed backpressure hint";

  // CloseSession is exempt from shedding: an overloaded session must
  // still be closable.
  auto close = service.CloseSession("ward");
  (void)ingest.get();
  (void)flush.get();
  for (auto& future : extras) (void)future.get();
  EXPECT_TRUE(close.get().ok());
}

// ---- Journal-backed OpenSession -------------------------------------------

TEST(ServiceJournalTest, FreshOpenStartsAJournalAndReportsNoRecovery) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  service_config.journal_dir = FreshJournalDir("fresh");
  PrivmarkService service(service_config);
  SessionRecovery recovery;
  recovery.recovered = true;  // must be overwritten
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config,
                                  SessionConfig(), &recovery)
                  .ok());
  EXPECT_FALSE(recovery.recovered);
  EXPECT_EQ(recovery.batches_applied, 0u);
  // The journal file exists from the moment the session opens.
  auto contents =
      SessionJournal::ReadAll(service_config.journal_dir + "/ward.wal");
  ASSERT_TRUE(contents.ok());
}

TEST(ServiceJournalTest, ReopenRecoversTheStreamByteIdentically) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  service_config.journal_dir = FreshJournalDir("reopen");

  // Reference: one uninterrupted, unjournaled session over all three
  // batches — flush once after the first batch; under the default
  // freeze-bins policy the later batches then emit directly at ingest.
  Table ref_emitted;
  {
    Env ref_env = MakeEnv();
    ProtectionSession reference(ref_env.metrics, ref_env.config);
    for (size_t begin = 0; begin < kRows; begin += kBatch) {
      auto ingest =
          reference.Ingest(env.dataset->table.Slice(begin, begin + kBatch));
      ASSERT_TRUE(ingest.ok()) << ingest.status().message();
      AppendAll(&ref_emitted, ingest->emitted);
      if (begin == 0) {
        auto flush = reference.Flush();
        ASSERT_TRUE(flush.ok()) << flush.status().message();
        AppendAll(&ref_emitted, flush->outcome.watermarked);
      }
    }
  }

  // Phase 1: journaled service ingests the first two batches, then the
  // whole service goes away (clean shutdown here; the kill-mid-write
  // variant lives in the crash suite).
  Table live_emitted;
  {
    PrivmarkService service(service_config);
    ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());
    for (size_t begin = 0; begin < 2 * kBatch; begin += kBatch) {
      auto ingest = service
                        .ProtectBatch("ward",
                                      env.dataset->table.Slice(begin, begin + kBatch))
                        .get();
      ASSERT_TRUE(ingest.ok()) << ingest.status().message();
      AppendAll(&live_emitted, ingest->ingest.emitted);
      if (begin == 0) {
        auto flush = service.Flush("ward").get();
        ASSERT_TRUE(flush.ok()) << flush.status().message();
        AppendAll(&live_emitted, flush->epoch.outcome.watermarked);
      }
    }
  }

  // Phase 2: a new service over the same journal_dir recovers the
  // stream, replays the identical emissions, and continues it.
  PrivmarkService service(service_config);
  SessionRecovery recovery;
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config,
                                  SessionConfig(), &recovery)
                  .ok());
  EXPECT_TRUE(recovery.recovered);
  EXPECT_EQ(recovery.batches_applied, 2u);
  EXPECT_EQ(recovery.epochs_sealed, 1u);
  EXPECT_FALSE(recovery.tail_truncated);
  EXPECT_EQ(TableToCsv(recovery.emitted), TableToCsv(live_emitted));

  Table resumed = recovery.emitted;
  auto ingest = service
                    .ProtectBatch("ward",
                                  env.dataset->table.Slice(2 * kBatch, 3 * kBatch))
                    .get();
  ASSERT_TRUE(ingest.ok()) << ingest.status().message();
  AppendAll(&resumed, ingest->ingest.emitted);
  EXPECT_EQ(TableToCsv(resumed), TableToCsv(ref_emitted));

  // The recovered stream still detects its own marks: one report per
  // epoch, each recovering the epoch's embedded mark exactly.
  auto reports = service.Detect("ward", resumed).get();
  ASSERT_TRUE(reports.ok()) << reports.status().message();
  auto stats = service.CloseSession("ward").get();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->stats.epochs.size(), reports->reports.size());
  ASSERT_GE(reports->reports.size(), 1u);
  for (size_t e = 0; e < reports->reports.size(); ++e) {
    EXPECT_EQ(reports->reports[e].recovered.ToString(),
              stats->stats.epochs[e].mark.ToString())
        << "epoch " << e;
  }
}

TEST(ServiceJournalTest, RecoveryRejectsAMismatchedConfig) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  service_config.journal_dir = FreshJournalDir("mismatch");
  {
    PrivmarkService service(service_config);
    ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());
    ASSERT_TRUE(
        service.ProtectBatch("ward", env.dataset->table.Slice(0, kBatch))
            .get()
            .ok());
  }
  PrivmarkService service(service_config);
  Env other = MakeEnv();
  other.config.binning.k = 20;  // not the journaled stream's config
  const Status status =
      service.OpenSession("ward", other.metrics, other.config);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("config"), std::string::npos);
}

TEST(ServiceJournalTest, SessionNamesAreEscapedToJournalBasenames) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  service_config.journal_dir = FreshJournalDir("sanitize");
  PrivmarkService service(service_config);
  ASSERT_TRUE(
      service.OpenSession("ward/../x", env.metrics, env.config).ok());
  auto contents = SessionJournal::ReadAll(service_config.journal_dir +
                                          "/ward%2F..%2Fx.wal");
  EXPECT_TRUE(contents.ok()) << contents.status().message();
}

TEST(ServiceJournalTest, DistinctNamesNeverShareAJournal) {
  // "a b" and "a_b" collided under the old '_'-replacement scheme: the
  // second open would silently Resume — and corrupt — the first
  // session's live WAL. The injective escaping gives each its own file.
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  service_config.journal_dir = FreshJournalDir("collide");
  std::remove((service_config.journal_dir + "/a%20b.wal").c_str());
  std::remove((service_config.journal_dir + "/a_b.wal").c_str());
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("a b", env.metrics, env.config).ok());
  ASSERT_TRUE(service.OpenSession("a_b", env.metrics, env.config).ok());
  auto first = service.ProtectBatch("a b", env.dataset->table.Slice(0, kBatch))
                   .get();
  ASSERT_TRUE(first.ok()) << first.status().message();
  auto second =
      service.ProtectBatch("a_b", env.dataset->table.Slice(0, kBatch)).get();
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_TRUE(
      SessionJournal::ReadAll(service_config.journal_dir + "/a%20b.wal").ok());
  EXPECT_TRUE(
      SessionJournal::ReadAll(service_config.journal_dir + "/a_b.wal").ok());
}

// ---- Deadline-bounded Shutdown --------------------------------------------

TEST(ServiceShutdownTest, DeadlineShutdownAbandonsQueuedWorkVisibly) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());

  // Queue several full-pipeline cycles, then shut down with no grace:
  // whatever is still queued must fail DeadlineExceeded promptly rather
  // than executing or hanging.
  std::vector<ServiceFuture> futures;
  for (size_t begin = 0; begin < kRows; begin += kBatch) {
    futures.push_back(service.ProtectBatch(
        "ward", env.dataset->table.Slice(begin, begin + kBatch)));
    futures.push_back(service.Flush("ward"));
  }
  const Status status = service.Shutdown(0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("abandoned"), std::string::npos);

  size_t abandoned = 0;
  for (auto& future : futures) {
    auto result = future.get();  // every future completes either way
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
      ++abandoned;
    }
  }
  EXPECT_GT(abandoned, 0u);
  // Idempotent afterwards.
  EXPECT_TRUE(service.Shutdown(0).ok());
}

TEST(ServiceShutdownTest, GenerousDeadlineDrainsCleanly) {
  Env env = MakeEnv();
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", env.metrics, env.config).ok());
  auto ingest =
      service.ProtectBatch("ward", env.dataset->table.Slice(0, kBatch));
  auto flush = service.Flush("ward");
  EXPECT_TRUE(service.Shutdown(60'000).ok());
  EXPECT_TRUE(ingest.get().ok());
  EXPECT_TRUE(flush.get().ok());
}

}  // namespace
}  // namespace privmark
