// Crash-recovery acceptance suite: a protection session killed mid-write
// by a kill-mode failpoint (simulated power cut — no destructors, no
// flushes) must recover from its write-ahead journal to byte-identical
// state and finish the stream byte-identically to a run that never
// crashed — at every worker count.
//
// Each scenario forks: the CHILD arms one kill failpoint, runs the
// journaled stream, and dies with FailpointRegistry::kKillExitCode at
// the armed write; the PARENT waitpid()s for exactly that exit code,
// recovers the session from the torn journal, replays the remaining
// batches, and compares the full emission against an uncrashed serial
// reference. Scenarios cover the three distinct crash windows: before a
// batch is journaled (write-ahead: the batch is simply lost and gets
// re-submitted), after an epoch committed but before its seal record,
// and inside the seal's fsync.
//
// The whole suite skips in builds without PRIVMARK_FAILPOINTS_ENABLED
// (Release), where failpoints compile to nothing.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/framework.h"
#include "core/journal.h"
#include "core/session.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"

namespace privmark {
namespace {

// The 20k fixed-seed acceptance set (the bench fixture's shape).
constexpr size_t kRows = 20000;
constexpr size_t kBatch = 4000;
constexpr uint64_t kSeed = 20050405;

struct CrashEnv {
  UsageMetrics metrics;
  FrameworkConfig config;
};

// The dataset is generated once per process; children inherit it via
// fork and never regenerate.
const MedicalDataset& SharedDataset() {
  static const MedicalDataset* dataset = [] {
    MedicalDataSpec spec;
    spec.num_rows = kRows;
    spec.seed = kSeed;
    return new MedicalDataset(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  }();
  return *dataset;
}

CrashEnv MakeEnv(size_t num_threads) {
  CrashEnv env;
  env.metrics = MetricsFromDepthCuts(SharedDataset().trees(), {2, 1, 2, 1, 1})
                    .ValueOrDie();
  env.config.binning.k = 20;
  env.config.binning.enforce_joint = false;
  env.config.binning.encryption_passphrase = "bench-owner-passphrase";
  env.config.binning.num_threads = num_threads;
  env.config.watermark.num_threads = num_threads;
  env.config.key = {"bench-k1", "bench-k2", /*eta=*/75};
  env.config.key_id = "bench-owner";
  return env;
}

std::string FreshPath(const std::string& tag) {
  const std::string path =
      ::testing::TempDir() + "privmark_crash_" + tag + ".wal";
  std::remove(path.c_str());
  return path;
}

void AppendAll(Table* all, const Table& rows) {
  if (rows.num_rows() == 0) return;
  if (all->schema().num_columns() == 0) *all = Table(rows.schema());
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    ASSERT_TRUE(all->AppendRow(rows.row(r)).ok());
  }
}

// One full uninterrupted run at `num_threads`: flush after batch 0,
// frozen ingest for the rest. Returns the concatenated emission.
Table ReferenceRun(size_t num_threads) {
  CrashEnv env = MakeEnv(num_threads);
  ProtectionSession session(std::move(env.metrics), std::move(env.config));
  Table emitted;
  for (size_t begin = 0; begin < kRows; begin += kBatch) {
    auto ingest = session.Ingest(SharedDataset().table.Slice(begin, begin + kBatch));
    EXPECT_TRUE(ingest.ok()) << ingest.status().ToString();
    if (!ingest.ok()) return emitted;
    AppendAll(&emitted, ingest->emitted);
    if (begin == 0) {
      auto flush = session.Flush();
      EXPECT_TRUE(flush.ok()) << flush.status().ToString();
      if (!flush.ok()) return emitted;
      AppendAll(&emitted, flush->outcome.watermarked);
    }
  }
  return emitted;
}

// Child-side workload: journaled run that the armed failpoint kills.
// Non-87 exit codes mark which step unexpectedly failed (or that the
// failpoint never fired) so the parent's assertion message is useful.
[[noreturn]] void CrashingChild(const std::string& journal_path,
                                size_t num_threads, const char* failpoint,
                                const char* trigger) {
  if (!FailpointRegistry::Instance().Configure(failpoint, trigger).ok()) {
    std::_Exit(3);
  }
  CrashEnv env = MakeEnv(num_threads);
  auto journal = SessionJournal::Create(journal_path);
  if (!journal.ok()) std::_Exit(4);
  ProtectionSession session(std::move(env.metrics), std::move(env.config));
  if (!session.AttachJournal(std::move(*journal)).ok()) std::_Exit(5);
  for (size_t begin = 0; begin < kRows; begin += kBatch) {
    if (!session.Ingest(SharedDataset().table.Slice(begin, begin + kBatch))
             .ok()) {
      std::_Exit(6);
    }
    if (begin == 0 && !session.Flush().ok()) std::_Exit(7);
  }
  std::_Exit(0);  // the failpoint never fired — the parent flags this
}

struct CrashOutcome {
  Table emitted;          // recovered prefix + replayed remainder
  size_t batches_applied = 0;
  size_t epochs_sealed = 0;
};

// Forks the crashing child, then recovers in the parent and finishes
// the stream: re-submits the batch the crash lost (write-ahead journal
// => a batch is either fully journaled or was never applied) and every
// batch after it.
void CrashAndRecover(const std::string& tag, size_t num_threads,
                     const char* failpoint, const char* trigger,
                     CrashOutcome* outcome) {
  const std::string path = FreshPath(tag);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    CrashingChild(path, num_threads, failpoint, trigger);
  }
  int wait_status = 0;
  ASSERT_EQ(waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFEXITED(wait_status));
  ASSERT_EQ(WEXITSTATUS(wait_status), FailpointRegistry::kKillExitCode)
      << "child did not die at failpoint " << failpoint << "=" << trigger;

  CrashEnv env = MakeEnv(num_threads);
  auto recovered = ProtectionSession::Recover(path, std::move(env.metrics),
                                              std::move(env.config));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  outcome->batches_applied = recovered->batches_applied;
  outcome->epochs_sealed = recovered->epochs_sealed;
  outcome->emitted = std::move(recovered->emitted);

  ProtectionSession& session = *recovered->session;
  for (size_t begin = recovered->batches_applied * kBatch; begin < kRows;
       begin += kBatch) {
    auto ingest =
        session.Ingest(SharedDataset().table.Slice(begin, begin + kBatch));
    ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
    AppendAll(&outcome->emitted, ingest->emitted);
    if (session.epochs().empty()) {
      // The crash predated epoch 0's flush: re-issue it right after the
      // first resubmitted batch, exactly as the original schedule did.
      auto flush = session.Flush();
      ASSERT_TRUE(flush.ok()) << flush.status().ToString();
      AppendAll(&outcome->emitted, flush->outcome.watermarked);
    }
  }
  ASSERT_EQ(session.rows_ingested(), kRows);
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !defined(PRIVMARK_FAILPOINTS_ENABLED)
    GTEST_SKIP() << "failpoints compiled out (Release); crash suite runs "
                    "in PRIVMARK_FAILPOINTS=ON builds";
#endif
  }

  // Worker counts the acceptance bar demands: serial, two, hardware.
  static std::vector<size_t> ThreadCounts() {
    std::vector<size_t> counts = {1, 2};
    const size_t hw = std::thread::hardware_concurrency();
    if (hw > 2) counts.push_back(hw);
    return counts;
  }
};

// Crash window 1: killed at the top of a batch append — the batch was
// never journaled, so recovery sees a clean prefix and the batch is
// simply re-submitted. Hit order of "journal.append" in this schedule:
// config(1), key-id(2), schema(3), batch0(4), flush marker(5), epoch-0
// seal(6), batch1(7) — kill:7 dies losing batch 1.
TEST_F(CrashRecoveryTest, KilledBeforeABatchAppendLosesOnlyThatBatch) {
  const Table reference = ReferenceRun(1);
  for (size_t threads : ThreadCounts()) {
    CrashOutcome outcome;
    CrashAndRecover("append_t" + std::to_string(threads), threads,
                    "journal.append", "kill:7", &outcome);
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_EQ(outcome.batches_applied, 1u) << threads;
    EXPECT_EQ(outcome.epochs_sealed, 1u) << threads;
    EXPECT_EQ(TableToCsv(outcome.emitted), TableToCsv(reference))
        << "not byte-identical to the uncrashed serial run at "
        << threads << " thread(s)";
  }
}

// Crash window 2: killed inside the flush, after the epoch committed to
// session state but before its seal record — the journal holds the
// flush marker, so replay re-derives the identical epoch.
TEST_F(CrashRecoveryTest, KilledAtTheSealReplaysTheCommittedEpoch) {
  const Table reference = ReferenceRun(1);
  for (size_t threads : ThreadCounts()) {
    CrashOutcome outcome;
    CrashAndRecover("seal_t" + std::to_string(threads), threads,
                    "session.seal", "kill:1", &outcome);
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_EQ(outcome.batches_applied, 1u) << threads;
    // The seal never made it to the journal; replaying the flush marker
    // reconstructs the epoch all the same.
    EXPECT_EQ(outcome.epochs_sealed, 0u) << threads;
    EXPECT_EQ(TableToCsv(outcome.emitted), TableToCsv(reference))
        << "not byte-identical to the uncrashed serial run at "
        << threads << " thread(s)";
  }
}

// Crash window 3: killed inside the seal's fsync — the durability
// barrier itself. The seal record's bytes may or may not have reached
// the file; recovery must accept both shapes and land on the same
// state.
TEST_F(CrashRecoveryTest, KilledInsideTheSealFsyncStillRecovers) {
  const Table reference = ReferenceRun(1);
  for (size_t threads : ThreadCounts()) {
    CrashOutcome outcome;
    CrashAndRecover("fsync_t" + std::to_string(threads), threads,
                    "journal.fsync", "kill:1", &outcome);
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_EQ(outcome.batches_applied, 1u) << threads;
    EXPECT_LE(outcome.epochs_sealed, 1u) << threads;
    EXPECT_EQ(TableToCsv(outcome.emitted), TableToCsv(reference))
        << "not byte-identical to the uncrashed serial run at "
        << threads << " thread(s)";
  }
}

// The parallel acceptance bar head-on: for every crash window, the
// recovered-and-finished stream is one byte string, independent of
// worker count — crashing at width 2 and recovering at width hw must
// equal serial end to end.
TEST_F(CrashRecoveryTest, RecoveryIsByteIdenticalAcrossThreadCounts) {
  const Table reference = ReferenceRun(1);
  const std::string serial_csv = TableToCsv(reference);
  // Crash at one width, recover at another: the journal carries no
  // trace of either.
  CrashOutcome outcome;
  {
    const std::string path = FreshPath("cross_width");
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      CrashingChild(path, /*num_threads=*/2, "journal.append", "kill:7");
    }
    int wait_status = 0;
    ASSERT_EQ(waitpid(pid, &wait_status, 0), pid);
    ASSERT_TRUE(WIFEXITED(wait_status));
    ASSERT_EQ(WEXITSTATUS(wait_status), FailpointRegistry::kKillExitCode);

    CrashEnv env = MakeEnv(1);  // recover serial, continue serial
    auto recovered = ProtectionSession::Recover(path, std::move(env.metrics),
                                                std::move(env.config));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    outcome.emitted = std::move(recovered->emitted);
    ProtectionSession& session = *recovered->session;
    for (size_t begin = recovered->batches_applied * kBatch; begin < kRows;
         begin += kBatch) {
      auto ingest =
          session.Ingest(SharedDataset().table.Slice(begin, begin + kBatch));
      ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
      AppendAll(&outcome.emitted, ingest->emitted);
    }
  }
  EXPECT_EQ(TableToCsv(outcome.emitted), serial_csv)
      << "crash at width 2, recovery at width 1 diverged from serial";
}

}  // namespace
}  // namespace privmark
