// Multiplexed-connection soak: many sessions pipelined over ONE v2
// connection from many threads at once — request ids interleave on the
// wire, streamed fingerprint kPartial shards interleave with other
// sessions' responses, and the leader/follower pump hands every frame to
// the right PendingCall. The bar is the same byte-identity claim the
// per-connection soak makes: emitted tables (CSV), per-epoch fingerprint
// verdicts (exact doubles), and rankings must equal a serial in-process
// replay on a bare ProtectionSession. Runs in the TSan lane (ci.sh) —
// the demux path, not just the strands, must be race-free.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/session.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "service/client.h"
#include "service/daemon.h"
#include "watermark/key_registry.h"

namespace privmark {
namespace {

constexpr size_t kSessions = 8;
constexpr size_t kRows = 300;
constexpr size_t kBatch = 150;
constexpr size_t kDecoys = 12;

struct Stream {
  std::string name;
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  FrameworkConfig config;
  std::shared_ptr<const KeyRegistry> registry;

  // Serial in-process reference.
  std::string reference_csv;
  std::vector<FingerprintReport> reference_reports;

  // What the multiplexed run produced, filled by the driver thread.
  std::string daemon_csv;
  std::vector<FingerprintReport> daemon_reports;
  std::vector<WireFingerprintShard> daemon_shards;
  std::string failure;  // non-empty = this stream's run broke
};

Stream MakeStream(size_t index) {
  Stream stream;
  stream.name = "tenant-" + std::to_string(index);
  MedicalDataSpec spec;
  spec.num_rows = kRows;
  spec.seed = 70000 + index;
  stream.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  stream.metrics =
      MetricsFromDepthCuts(stream.dataset->trees(), {2, 1, 2, 1, 1})
          .ValueOrDie();
  stream.config.binning.k = 5;
  stream.config.binning.enforce_joint = false;
  stream.config.binning.mono.on_unbinnable = UnbinnablePolicy::kSuppress;
  stream.config.binning.encryption_passphrase = stream.name + "-pass";
  stream.config.binning.num_threads = 1;
  stream.config.watermark.num_threads = 1;
  stream.config.key = {stream.name + "-k1", stream.name + "-k2", /*eta=*/10};

  KeyRegistry registry;
  EXPECT_TRUE(registry.Add(NamedKey{stream.name, stream.config.key}).ok());
  Random keygen(9000 + index);
  for (size_t i = 0; i < kDecoys; ++i) {
    EXPECT_TRUE(
        registry.Add(GenerateKey("decoy-" + std::to_string(i), 10, &keygen))
            .ok());
  }
  stream.registry =
      std::make_shared<const KeyRegistry>(std::move(registry));
  return stream;
}

void ExpectReportsEqual(const FingerprintReport& a, const FingerprintReport& b,
                        const std::string& what) {
  ASSERT_EQ(a.verdicts.size(), b.verdicts.size()) << what;
  for (size_t i = 0; i < a.verdicts.size(); ++i) {
    const KeyVerdict& x = a.verdicts[i];
    const KeyVerdict& y = b.verdicts[i];
    EXPECT_EQ(x.key_name, y.key_name) << what << " key " << i;
    EXPECT_EQ(x.margin_ratio, y.margin_ratio) << what << " key " << i;
    EXPECT_EQ(x.mark_match, y.mark_match) << what << " key " << i;
    EXPECT_EQ(x.p_value, y.p_value) << what << " key " << i;
    EXPECT_EQ(x.score, y.score) << what << " key " << i;
    EXPECT_EQ(x.detected, y.detected) << what << " key " << i;
    ASSERT_EQ(x.detection.vote_margin.size(), y.detection.vote_margin.size())
        << what << " key " << i;
    for (size_t j = 0; j < x.detection.vote_margin.size(); ++j) {
      EXPECT_EQ(x.detection.vote_margin[j], y.detection.vote_margin[j])
          << what << " key " << i << " bit " << j;
    }
  }
  EXPECT_EQ(a.ranking, b.ranking) << what;
  EXPECT_EQ(a.keys_detected, b.keys_detected) << what;
  EXPECT_EQ(a.collusion, b.collusion) << what;
}

void BuildReference(Stream* stream) {
  ProtectionSession session(stream->metrics, stream->config, SessionConfig());
  Table concat(stream->dataset->table.schema());
  auto append = [&concat](const Table& emitted) {
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      (void)concat.AppendRow(emitted.row(r));
    }
  };
  for (size_t begin = 0; begin < kRows; begin += kBatch) {
    auto ingested =
        session.Ingest(stream->dataset->table.Slice(begin, begin + kBatch));
    ASSERT_TRUE(ingested.ok())
        << stream->name << ": " << ingested.status().ToString();
    append(ingested->emitted);
  }
  auto flushed = session.Flush();
  ASSERT_TRUE(flushed.ok())
      << stream->name << ": " << flushed.status().ToString();
  append(flushed->outcome.watermarked);
  stream->reference_csv = TableToCsv(concat);
  auto reports = session.FingerprintAcrossEpochs(concat, *stream->registry);
  ASSERT_TRUE(reports.ok())
      << stream->name << ": " << reports.status().ToString();
  stream->reference_reports = *std::move(reports);
}

// One stream's lifecycle over the SHARED client: every request is
// pipelined via CallAsync, the batch of handles waited only after the
// last send, and the closing fingerprint is streamed so this stream's
// kPartial frames interleave with its co-tenants' traffic. gtest
// assertions are not thread-safe, so failures travel as strings.
void DriveStream(DaemonClient* client, Stream* stream) {
  auto fail = [stream](const std::string& what, const Status& status) {
    stream->failure = what + ": " + status.ToString();
  };

  WireRequest open;
  open.type = WireFrameType::kOpen;
  open.session = stream->name;
  open.open.k = stream->config.binning.k;
  open.open.enforce_joint = stream->config.binning.enforce_joint;
  open.open.passphrase = stream->config.binning.encryption_passphrase;
  open.open.k1 = stream->config.key.k1;
  open.open.k2 = stream->config.key.k2;
  open.open.eta = stream->config.key.eta;
  open.open.on_unbinnable = 1;

  // Pipeline the whole lifecycle prefix: open, both ingests, the flush —
  // four requests on the wire before the first response is waited on.
  std::vector<DaemonClient::PendingCall> calls;
  auto send = [&](const WireRequest& request) -> bool {
    auto pending = client->CallAsync(request);
    if (!pending.ok()) {
      fail("send " + std::string(WireFrameTypeToString(request.type)),
           pending.status());
      return false;
    }
    calls.push_back(*std::move(pending));
    return true;
  };
  if (!send(open)) return;
  for (size_t begin = 0; begin < kRows; begin += kBatch) {
    WireRequest ingest;
    ingest.type = WireFrameType::kIngest;
    ingest.session = stream->name;
    ingest.table = stream->dataset->table.Slice(begin, begin + kBatch);
    if (!send(ingest)) return;
  }
  WireRequest flush;
  flush.type = WireFrameType::kFlush;
  flush.session = stream->name;
  if (!send(flush)) return;

  Table concat(stream->dataset->table.schema());
  auto append = [&concat](const Table& emitted) {
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      (void)concat.AppendRow(emitted.row(r));
    }
  };
  for (DaemonClient::PendingCall& call : calls) {
    auto response = call.Wait();
    if (!response.ok()) return fail("wait transport", response.status());
    if (!response->status.ok()) return fail("wait", response->status);
    if (response->kind == WireFrameType::kIngest) {
      append(response->ingest.emitted);
    } else if (response->kind == WireFrameType::kFlush) {
      append(response->flush.emitted);
    }
  }
  stream->daemon_csv = TableToCsv(concat);

  WireRequest scan;
  scan.type = WireFrameType::kFingerprint;
  scan.session = stream->name;
  scan.table = concat.Clone();
  scan.registry_text = stream->registry->Serialize();
  scan.stream = true;
  auto pending = client->CallAsync(scan);
  if (!pending.ok()) return fail("fingerprint send", pending.status());
  WireFingerprintShard shard;
  while (true) {
    auto more = pending->NextShard(&shard);
    if (!more.ok()) return fail("shard", more.status());
    if (!*more) break;
    stream->daemon_shards.push_back(std::move(shard));
  }
  auto scanned = pending->Wait();
  if (!scanned.ok()) return fail("fingerprint transport", scanned.status());
  if (!scanned->status.ok()) return fail("fingerprint", scanned->status);
  stream->daemon_reports = std::move(scanned->fingerprints);

  WireRequest close;
  close.type = WireFrameType::kClose;
  close.session = stream->name;
  auto closed = client->Call(close);
  if (!closed.ok()) return fail("close transport", closed.status());
  if (!closed->status.ok()) return fail("close", closed->status);
}

TEST(DaemonMultiplexSoakTest, PipelinedSessionsOnOneConnectionMatchReplay) {
  std::vector<Stream> streams;
  streams.reserve(kSessions);
  for (size_t i = 0; i < kSessions; ++i) streams.push_back(MakeStream(i));
  for (Stream& stream : streams) {
    BuildReference(&stream);
    if (::testing::Test::HasFatalFailure()) return;
  }

  DaemonConfig config;
  config.schema = MedicalSchema();
  config.metrics_for_config =
      [&streams](const FrameworkConfig& fc) -> Result<UsageMetrics> {
    for (const Stream& stream : streams) {
      if (stream.config.binning.encryption_passphrase ==
          fc.binning.encryption_passphrase) {
        return MetricsFromDepthCuts(stream.dataset->trees(), {2, 1, 2, 1, 1});
      }
    }
    return Status::InvalidArgument("no stream for this config");
  };
  PrivmarkDaemon daemon(std::move(config));
  ASSERT_TRUE(daemon.Start(0).ok());

  // ONE connection, one driver thread per session, all multiplexed.
  DaemonClient client(MedicalSchema());
  ASSERT_TRUE(client.Connect("127.0.0.1", daemon.port()).ok());
  ASSERT_EQ(client.protocol_version(), kWireProtocolV2);
  {
    std::vector<std::thread> drivers;
    drivers.reserve(streams.size());
    for (Stream& stream : streams) {
      drivers.emplace_back(DriveStream, &client, &stream);
    }
    for (std::thread& driver : drivers) driver.join();
  }
  EXPECT_EQ(daemon.connections_accepted(), 1u);
  EXPECT_TRUE(client.connected());

  for (Stream& stream : streams) {
    ASSERT_TRUE(stream.failure.empty())
        << stream.name << ": " << stream.failure;
    EXPECT_EQ(stream.daemon_csv, stream.reference_csv) << stream.name;

    ASSERT_EQ(stream.daemon_reports.size(), stream.reference_reports.size())
        << stream.name;
    for (size_t e = 0; e < stream.daemon_reports.size(); ++e) {
      ExpectReportsEqual(stream.daemon_reports[e],
                         stream.reference_reports[e],
                         stream.name + " epoch " + std::to_string(e));
    }

    // The interleaved shards, reassembled, are the reference verdicts.
    std::vector<std::vector<KeyVerdict>> epochs;
    std::vector<uint64_t> next_shard;
    for (const WireFingerprintShard& shard : stream.daemon_shards) {
      if (shard.epoch == epochs.size()) {
        epochs.emplace_back();
        next_shard.push_back(0);
      }
      ASSERT_FALSE(epochs.empty()) << stream.name;
      ASSERT_EQ(shard.epoch, epochs.size() - 1) << stream.name;
      EXPECT_EQ(shard.shard, next_shard.back()++) << stream.name;
      EXPECT_EQ(shard.first_key, epochs.back().size()) << stream.name;
      epochs.back().insert(epochs.back().end(), shard.verdicts.begin(),
                           shard.verdicts.end());
    }
    ASSERT_EQ(epochs.size(), stream.reference_reports.size()) << stream.name;
    for (size_t e = 0; e < epochs.size(); ++e) {
      const auto& expected = stream.reference_reports[e].verdicts;
      ASSERT_EQ(epochs[e].size(), expected.size())
          << stream.name << " epoch " << e;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(epochs[e][i].key_name, expected[i].key_name);
        EXPECT_EQ(epochs[e][i].score, expected[i].score)
            << stream.name << " epoch " << e << " key " << i;
        EXPECT_EQ(epochs[e][i].detected, expected[i].detected);
      }
    }
  }
  client.Disconnect();
}

}  // namespace
}  // namespace privmark
