// Failure-injection suite: every component must reject malformed inputs
// with a clean Status instead of crashing or silently mis-protecting.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "binning/binning_engine.h"
#include "common/failpoint.h"
#include "core/framework.h"
#include "core/journal.h"
#include "core/manifest.h"
#include "core/session.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "service/service.h"
#include "watermark/ownership.h"

namespace privmark {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MedicalDataSpec spec;
    spec.num_rows = 800;
    spec.seed = 55;
    dataset_ = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  }
  std::unique_ptr<MedicalDataset> dataset_;
};

TEST_F(FailureInjectionTest, SchemaWithoutIdentifierRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"age", ColumnRole::kQuasiNumeric,
                                ValueType::kInt64}).ok());
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value::Int64(30)}).ok());
  BinningAgent agent(UnconstrainedMetrics({dataset_->age.get()}),
                     BinningConfig{});
  EXPECT_EQ(agent.Run(t).status().code(), StatusCode::kKeyError);
}

TEST_F(FailureInjectionTest, OutOfDomainValueFailsBinningCleanly) {
  Table t = dataset_->table.Clone();
  t.Set(17, 1, Value::Int64(9999));  // age way outside [0,150)
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  BinningAgent agent(UnconstrainedMetrics(dataset_->trees()), config);
  const Status status = agent.Run(t).status();
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_NE(status.message().find("age"), std::string::npos);
}

TEST_F(FailureInjectionTest, UnknownCategoricalValueFailsBinningCleanly) {
  Table t = dataset_->table.Clone();
  t.Set(3, 3, Value::String("Dr. Nobody"));
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  BinningAgent agent(UnconstrainedMetrics(dataset_->trees()), config);
  EXPECT_EQ(agent.Run(t).status().code(), StatusCode::kKeyError);
}

TEST_F(FailureInjectionTest, EmbedOnRawTableFailsCleanly) {
  // Watermarking expects a *binned* table (labels from the ultimate
  // generalization); feeding the raw table must error, not corrupt.
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  HierarchicalWatermarker wm = framework.MakeWatermarker(outcome.binning);
  Table raw = dataset_->table.Clone();
  const BitVector mark = BitVector::FromString("1010").ValueOrDie();
  EXPECT_FALSE(wm.Embed(&raw, mark).ok());
}

TEST_F(FailureInjectionTest, DetectOnForeignTableYieldsNoVotesNotCrash) {
  // Detection on a completely unrelated table (all labels unknown) must
  // succeed structurally and report zero read slots.
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  HierarchicalWatermarker wm = framework.MakeWatermarker(outcome.binning);

  Table foreign = outcome.watermarked.Clone();
  for (size_t r = 0; r < foreign.num_rows(); ++r) {
    for (size_t c : outcome.binning.qi_columns) {
      foreign.Set(r, c, Value::String("junk-" + std::to_string(r % 7)));
    }
  }
  auto detect = wm.Detect(foreign, 20, outcome.embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->slots_read, 0u);
  for (bool voted : detect->bit_voted) EXPECT_FALSE(voted);
}

TEST_F(FailureInjectionTest, CsvWithWrongSchemaRejected) {
  const std::string csv = "colA,colB\n1,2\n";
  EXPECT_FALSE(TableFromCsv(csv, MedicalSchema()).ok());
}

TEST_F(FailureInjectionTest, ManifestAgainstWrongTreesRejected) {
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  auto manifest = BuildManifest(outcome, metrics, fw_config).ValueOrDie();

  // Swap two trees: labels will not resolve -> KeyError.
  auto trees = dataset_->trees();
  std::swap(trees[0], trees[1]);
  EXPECT_FALSE(WatermarkerFromManifest(manifest, outcome.watermarked, trees,
                                       fw_config.key, fw_config.watermark)
                   .ok());
}

// --- Failures under num_threads > 1 -------------------------------------
// Injected mid-pipeline failures must behave identically with a thread
// pool in play: a clean deterministic Status, no hang, and no partial
// writes into the table being transformed.

TEST_F(FailureInjectionTest, ParallelOutOfDomainValueFailsBinningCleanly) {
  Table t = dataset_->table.Clone();
  t.Set(17, 1, Value::Int64(9999));  // age way outside [0,150)
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  for (size_t threads : {size_t{2}, size_t{4}, size_t{7}}) {
    config.num_threads = threads;
    BinningAgent agent(UnconstrainedMetrics(dataset_->trees()), config);
    const Status status = agent.Run(t).status();
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange) << threads;
    EXPECT_NE(status.message().find("age"), std::string::npos) << threads;
  }
}

TEST_F(FailureInjectionTest, ParallelFailureStatusMatchesSerial) {
  // The surfaced error must be *the same one* serial scanning reports
  // (lowest-row failure), not whichever shard lost the race.
  Table t = dataset_->table.Clone();
  t.Set(5, 3, Value::String("Dr. Nobody"));
  t.Set(700, 3, Value::String("Dr. Nemo"));
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  BinningAgent serial_agent(UnconstrainedMetrics(dataset_->trees()), config);
  const Status serial = serial_agent.Run(t).status();
  ASSERT_EQ(serial.code(), StatusCode::kKeyError);
  for (size_t threads : {size_t{2}, size_t{4}, size_t{7}}) {
    config.num_threads = threads;
    BinningAgent agent(UnconstrainedMetrics(dataset_->trees()), config);
    EXPECT_EQ(agent.Run(t).status(), serial) << threads;
  }
}

TEST_F(FailureInjectionTest, ParallelEmbedFailureLeavesTableUntouched) {
  // Embed resolves every slot in pass 1 and writes only in pass 2, so a
  // resolve failure — injected mid-table — must leave the table byte-for-
  // byte unchanged for any worker count (no partial writes).
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  const BitVector mark = BitVector::FromString("1010").ValueOrDie();

  Status serial_status;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    WatermarkOptions options;
    options.num_threads = threads;
    HierarchicalWatermarker wm(
        outcome.binning.qi_columns,
        *outcome.binning.binned.schema().IdentifyingColumn(),
        metrics.maximal, outcome.binning.ultimate, fw_config.key, options);
    Table poisoned = outcome.binning.binned.Clone();
    // Out-of-domain labels across the whole second half: the first half
    // resolves fine, then some selected tuple's cell fails pass 1.
    for (size_t r = poisoned.num_rows() / 2; r < poisoned.num_rows(); ++r) {
      poisoned.Set(r, outcome.binning.qi_columns[0],
                   Value::String("no-such-label"));
    }
    const Table before = poisoned.Clone();
    const auto embed = wm.Embed(&poisoned, mark);
    ASSERT_FALSE(embed.ok()) << threads;
    if (threads == 1) {
      serial_status = embed.status();
    } else {
      // Same failure as serial, not whichever shard lost the race.
      EXPECT_EQ(embed.status(), serial_status) << threads;
    }
    for (size_t r = 0; r < before.num_rows(); ++r) {
      for (size_t c = 0; c < before.num_columns(); ++c) {
        ASSERT_EQ(before.at(r, c).ToString(), poisoned.at(r, c).ToString())
            << "partial write at (" << r << ", " << c << ") with "
            << threads << " threads";
      }
    }
  }
}

TEST_F(FailureInjectionTest, ParallelEmbedOnRawTableFailsCleanly) {
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  fw_config.watermark.num_threads = 4;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  HierarchicalWatermarker wm = framework.MakeWatermarker(outcome.binning);
  Table raw = dataset_->table.Clone();
  const BitVector mark = BitVector::FromString("1010").ValueOrDie();
  EXPECT_FALSE(wm.Embed(&raw, mark).ok());
}

TEST_F(FailureInjectionTest, ParallelDetectOnForeignTableYieldsNoVotes) {
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  config.num_threads = 4;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  fw_config.watermark.num_threads = 4;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  HierarchicalWatermarker wm = framework.MakeWatermarker(outcome.binning);

  Table foreign = outcome.watermarked.Clone();
  for (size_t r = 0; r < foreign.num_rows(); ++r) {
    for (size_t c : outcome.binning.qi_columns) {
      foreign.Set(r, c, Value::String("junk-" + std::to_string(r % 7)));
    }
  }
  auto detect = wm.Detect(foreign, 20, outcome.embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->slots_read, 0u);
  for (bool voted : detect->bit_voted) EXPECT_FALSE(voted);
}

// --- Journal IO failures -------------------------------------------------
// Injected journal-write failures must surface as clean, retryable
// Status without corrupting the session: the write-ahead discipline
// journals a batch BEFORE applying it, so a failed append costs nothing
// but the retry.

#if defined(PRIVMARK_FAILPOINTS_ENABLED)

class JournalFaultTest : public FailureInjectionTest {
 protected:
  void TearDown() override { FailpointRegistry::Instance().Reset(); }

  FrameworkConfig Config() const {
    FrameworkConfig config;
    config.binning.k = 5;
    config.binning.enforce_joint = false;
    config.key = {"fi-k1", "fi-k2", /*eta=*/10};
    return config;
  }

  UsageMetrics Metrics() const {
    return MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1})
        .ValueOrDie();
  }

  std::string FreshPath(const std::string& tag) const {
    const std::string path =
        ::testing::TempDir() + "privmark_fi_" + tag + ".wal";
    std::remove(path.c_str());
    return path;
  }
};

TEST_F(JournalFaultTest, AppendErrorFailsIngestCleanlyAndRetries) {
  ProtectionSession session(Metrics(), Config());
  ASSERT_TRUE(session
                  .AttachJournal(std::move(
                      SessionJournal::Create(FreshPath("append")).ValueOrDie()))
                  .ok());
  ASSERT_TRUE(session.Ingest(dataset_->table.Slice(0, 400)).ok());

  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.Configure("journal.append", "always").ok());
  const Status failed =
      session.Ingest(dataset_->table.Slice(400, 800)).status();
  ASSERT_EQ(failed.code(), StatusCode::kIOError);
  EXPECT_NE(failed.message().find("journal.append"), std::string::npos);
  // Write-ahead: the failed batch was never applied...
  EXPECT_EQ(session.rows_ingested(), 400u);

  // ...so after the fault clears, the same batch lands normally and the
  // stream completes as if the fault never happened.
  ASSERT_TRUE(registry.Configure("journal.append", "off").ok());
  ASSERT_TRUE(session.Ingest(dataset_->table.Slice(400, 800)).ok());
  EXPECT_EQ(session.rows_ingested(), 800u);
  EXPECT_TRUE(session.Flush().ok());
  EXPECT_TRUE(session.journal_status().ok());
}

TEST_F(JournalFaultTest, ShortWriteRollsBackToAValidJournal) {
  const std::string path = FreshPath("short");
  ProtectionSession session(Metrics(), Config());
  ASSERT_TRUE(
      session.AttachJournal(std::move(SessionJournal::Create(path).ValueOrDie()))
          .ok());
  ASSERT_TRUE(session.Ingest(dataset_->table.Slice(0, 400)).ok());

  // The next append writes only half its record and must roll the file
  // back — a crashed retry reader would otherwise see a torn record.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("journal.short_write", "once:1")
                  .ok());
  const Status failed =
      session.Ingest(dataset_->table.Slice(400, 800)).status();
  ASSERT_EQ(failed.code(), StatusCode::kIOError);
  EXPECT_EQ(session.rows_ingested(), 400u);

  auto contents = SessionJournal::ReadAll(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->tail_truncated)
      << "rollback left a torn record behind";

  ASSERT_TRUE(session.Ingest(dataset_->table.Slice(400, 800)).ok());
  EXPECT_TRUE(session.Flush().ok());
}

TEST_F(JournalFaultTest, SealFsyncFailureIsStickyButTheFlushCommits) {
  ProtectionSession session(Metrics(), Config());
  ASSERT_TRUE(session
                  .AttachJournal(std::move(
                      SessionJournal::Create(FreshPath("fsync")).ValueOrDie()))
                  .ok());
  ASSERT_TRUE(session.Ingest(dataset_->table.Slice(0, 800)).ok());

  // The seal's fsync is post-commit: the flush itself must succeed, the
  // lost durability barrier lands in the sticky journal_status.
  ASSERT_TRUE(
      FailpointRegistry::Instance().Configure("journal.fsync", "once:1").ok());
  auto flush = session.Flush();
  ASSERT_TRUE(flush.ok()) << flush.status().ToString();
  EXPECT_EQ(session.epochs().size(), 1u);
  EXPECT_FALSE(session.journal_status().ok());
  EXPECT_EQ(session.journal_status().code(), StatusCode::kIOError);
}

TEST_F(JournalFaultTest, ServiceResponsesSurfaceSealDegradation) {
  // A post-commit seal failure must reach service clients: every later
  // ServiceResponse carries the session's sticky journal_status, so the
  // degraded durability barrier is visible, not silent.
  const std::string dir = ::testing::TempDir() + "privmark_fi_seal_dir";
  ::system(("mkdir -p '" + dir + "'").c_str());
  std::remove((dir + "/ward.wal").c_str());
  ServiceConfig service_config;
  service_config.thread_cap = 1;
  service_config.journal_dir = dir;
  PrivmarkService service(service_config);
  ASSERT_TRUE(service.OpenSession("ward", Metrics(), Config()).ok());

  auto ingest =
      service.ProtectBatch("ward", dataset_->table.Slice(0, 800)).get();
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  EXPECT_TRUE(ingest->journal_status.ok());

  ASSERT_TRUE(
      FailpointRegistry::Instance().Configure("journal.fsync", "once:1").ok());
  auto flush = service.Flush("ward").get();
  ASSERT_TRUE(flush.ok()) << flush.status().ToString();
  EXPECT_FALSE(flush->journal_status.ok());
  EXPECT_EQ(flush->journal_status.code(), StatusCode::kIOError);

  // Sticky: the close's terminal response still reports it.
  auto close = service.CloseSession("ward").get();
  ASSERT_TRUE(close.ok());
  EXPECT_FALSE(close->journal_status.ok());
}

TEST_F(JournalFaultTest, SeededFaultStormLeavesAByteIdenticalStream) {
  // A probabilistic storm of journal-append failures — seeded, so every
  // run of one seed replays the same fault pattern. CI sweeps several
  // seeds via PRIVMARK_FAULT_SEED; the invariants hold for all of them:
  // every failure is clean and retryable, and the finished journal
  // recovers to the exact bytes the faulted live run emitted.
  uint64_t seed = 7;
  if (const char* env_seed = std::getenv("PRIVMARK_FAULT_SEED")) {
    seed = std::strtoull(env_seed, nullptr, 10);
  }
  const std::string path =
      FreshPath("storm_" + std::to_string(seed));
  ProtectionSession session(Metrics(), Config());
  ASSERT_TRUE(
      session.AttachJournal(std::move(SessionJournal::Create(path).ValueOrDie()))
          .ok());
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("journal.append",
                             "prob:0.3:" + std::to_string(seed))
                  .ok());

  Table emitted;
  size_t injected = 0;
  for (size_t begin = 0; begin < 800; begin += 200) {
    for (int attempt = 0;; ++attempt) {
      ASSERT_LT(attempt, 64) << "fault storm never let batch through";
      auto ingest = session.Ingest(dataset_->table.Slice(begin, begin + 200));
      if (ingest.ok()) {
        if (emitted.schema().num_columns() == 0 &&
            ingest->emitted.num_rows() > 0) {
          emitted = Table(ingest->emitted.schema());
        }
        for (size_t r = 0; r < ingest->emitted.num_rows(); ++r) {
          ASSERT_TRUE(emitted.AppendRow(ingest->emitted.row(r)).ok());
        }
        break;
      }
      ASSERT_EQ(ingest.status().code(), StatusCode::kIOError);
      ++injected;
    }
    if (begin == 0) {
      for (int attempt = 0;; ++attempt) {
        ASSERT_LT(attempt, 64);
        auto flush = session.Flush();
        if (flush.ok()) {
          if (emitted.schema().num_columns() == 0) {
            emitted = Table(flush->outcome.watermarked.schema());
          }
          for (size_t r = 0; r < flush->outcome.watermarked.num_rows(); ++r) {
            ASSERT_TRUE(
                emitted.AppendRow(flush->outcome.watermarked.row(r)).ok());
          }
          break;
        }
        ASSERT_EQ(flush.status().code(), StatusCode::kIOError);
        ++injected;
      }
    }
  }
  FailpointRegistry::Instance().Reset();
  EXPECT_EQ(session.rows_ingested(), 800u);

  auto recovered = ProtectionSession::Recover(path, Metrics(), Config());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(TableToCsv(recovered->emitted), TableToCsv(emitted))
      << "seed " << seed << " (" << injected << " injected faults)";
}

#endif  // PRIVMARK_FAILPOINTS_ENABLED

TEST_F(FailureInjectionTest, DisputeWithCorruptedIdentifiersRejectsClaim) {
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  config.encryption_passphrase = "fi-pass";
  FrameworkConfig fw_config;
  fw_config.binning = config;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();

  // Attacker re-encrypts/corrupts the whole identifying column.
  Table corrupted = outcome.watermarked.Clone();
  for (size_t r = 0; r < corrupted.num_rows(); ++r) {
    corrupted.Set(r, 0, Value::String("feedfacefeedface"));
  }
  HierarchicalWatermarker wm = framework.MakeWatermarker(outcome.binning);
  OwnershipConfig oc;
  auto verdict = ResolveDispute(corrupted, wm,
                                Aes128::FromPassphrase("fi-pass"),
                                outcome.identifier_statistic,
                                outcome.embed.wmd_size, oc);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->statistic_consistent);
  EXPECT_FALSE(verdict->ownership_established);
}

}  // namespace
}  // namespace privmark
