// Failure-injection suite: every component must reject malformed inputs
// with a clean Status instead of crashing or silently mis-protecting.

#include <gtest/gtest.h>

#include <memory>

#include "binning/binning_engine.h"
#include "core/framework.h"
#include "core/manifest.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "watermark/ownership.h"

namespace privmark {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MedicalDataSpec spec;
    spec.num_rows = 800;
    spec.seed = 55;
    dataset_ = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  }
  std::unique_ptr<MedicalDataset> dataset_;
};

TEST_F(FailureInjectionTest, SchemaWithoutIdentifierRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"age", ColumnRole::kQuasiNumeric,
                                ValueType::kInt64}).ok());
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value::Int64(30)}).ok());
  BinningAgent agent(UnconstrainedMetrics({dataset_->age.get()}),
                     BinningConfig{});
  EXPECT_EQ(agent.Run(t).status().code(), StatusCode::kKeyError);
}

TEST_F(FailureInjectionTest, OutOfDomainValueFailsBinningCleanly) {
  Table t = dataset_->table.Clone();
  t.Set(17, 1, Value::Int64(9999));  // age way outside [0,150)
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  BinningAgent agent(UnconstrainedMetrics(dataset_->trees()), config);
  const Status status = agent.Run(t).status();
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_NE(status.message().find("age"), std::string::npos);
}

TEST_F(FailureInjectionTest, UnknownCategoricalValueFailsBinningCleanly) {
  Table t = dataset_->table.Clone();
  t.Set(3, 3, Value::String("Dr. Nobody"));
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  BinningAgent agent(UnconstrainedMetrics(dataset_->trees()), config);
  EXPECT_EQ(agent.Run(t).status().code(), StatusCode::kKeyError);
}

TEST_F(FailureInjectionTest, EmbedOnRawTableFailsCleanly) {
  // Watermarking expects a *binned* table (labels from the ultimate
  // generalization); feeding the raw table must error, not corrupt.
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  HierarchicalWatermarker wm = framework.MakeWatermarker(outcome.binning);
  Table raw = dataset_->table.Clone();
  const BitVector mark = BitVector::FromString("1010").ValueOrDie();
  EXPECT_FALSE(wm.Embed(&raw, mark).ok());
}

TEST_F(FailureInjectionTest, DetectOnForeignTableYieldsNoVotesNotCrash) {
  // Detection on a completely unrelated table (all labels unknown) must
  // succeed structurally and report zero read slots.
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  HierarchicalWatermarker wm = framework.MakeWatermarker(outcome.binning);

  Table foreign = outcome.watermarked.Clone();
  for (size_t r = 0; r < foreign.num_rows(); ++r) {
    for (size_t c : outcome.binning.qi_columns) {
      foreign.Set(r, c, Value::String("junk-" + std::to_string(r % 7)));
    }
  }
  auto detect = wm.Detect(foreign, 20, outcome.embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->slots_read, 0u);
  for (bool voted : detect->bit_voted) EXPECT_FALSE(voted);
}

TEST_F(FailureInjectionTest, CsvWithWrongSchemaRejected) {
  const std::string csv = "colA,colB\n1,2\n";
  EXPECT_FALSE(TableFromCsv(csv, MedicalSchema()).ok());
}

TEST_F(FailureInjectionTest, ManifestAgainstWrongTreesRejected) {
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  auto manifest = BuildManifest(outcome, metrics, fw_config).ValueOrDie();

  // Swap two trees: labels will not resolve -> KeyError.
  auto trees = dataset_->trees();
  std::swap(trees[0], trees[1]);
  EXPECT_FALSE(WatermarkerFromManifest(manifest, outcome.watermarked, trees,
                                       fw_config.key, fw_config.watermark)
                   .ok());
}

// --- Failures under num_threads > 1 -------------------------------------
// Injected mid-pipeline failures must behave identically with a thread
// pool in play: a clean deterministic Status, no hang, and no partial
// writes into the table being transformed.

TEST_F(FailureInjectionTest, ParallelOutOfDomainValueFailsBinningCleanly) {
  Table t = dataset_->table.Clone();
  t.Set(17, 1, Value::Int64(9999));  // age way outside [0,150)
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  for (size_t threads : {size_t{2}, size_t{4}, size_t{7}}) {
    config.num_threads = threads;
    BinningAgent agent(UnconstrainedMetrics(dataset_->trees()), config);
    const Status status = agent.Run(t).status();
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange) << threads;
    EXPECT_NE(status.message().find("age"), std::string::npos) << threads;
  }
}

TEST_F(FailureInjectionTest, ParallelFailureStatusMatchesSerial) {
  // The surfaced error must be *the same one* serial scanning reports
  // (lowest-row failure), not whichever shard lost the race.
  Table t = dataset_->table.Clone();
  t.Set(5, 3, Value::String("Dr. Nobody"));
  t.Set(700, 3, Value::String("Dr. Nemo"));
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  BinningAgent serial_agent(UnconstrainedMetrics(dataset_->trees()), config);
  const Status serial = serial_agent.Run(t).status();
  ASSERT_EQ(serial.code(), StatusCode::kKeyError);
  for (size_t threads : {size_t{2}, size_t{4}, size_t{7}}) {
    config.num_threads = threads;
    BinningAgent agent(UnconstrainedMetrics(dataset_->trees()), config);
    EXPECT_EQ(agent.Run(t).status(), serial) << threads;
  }
}

TEST_F(FailureInjectionTest, ParallelEmbedFailureLeavesTableUntouched) {
  // Embed resolves every slot in pass 1 and writes only in pass 2, so a
  // resolve failure — injected mid-table — must leave the table byte-for-
  // byte unchanged for any worker count (no partial writes).
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  const BitVector mark = BitVector::FromString("1010").ValueOrDie();

  Status serial_status;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    WatermarkOptions options;
    options.num_threads = threads;
    HierarchicalWatermarker wm(
        outcome.binning.qi_columns,
        *outcome.binning.binned.schema().IdentifyingColumn(),
        metrics.maximal, outcome.binning.ultimate, fw_config.key, options);
    Table poisoned = outcome.binning.binned.Clone();
    // Out-of-domain labels across the whole second half: the first half
    // resolves fine, then some selected tuple's cell fails pass 1.
    for (size_t r = poisoned.num_rows() / 2; r < poisoned.num_rows(); ++r) {
      poisoned.Set(r, outcome.binning.qi_columns[0],
                   Value::String("no-such-label"));
    }
    const Table before = poisoned.Clone();
    const auto embed = wm.Embed(&poisoned, mark);
    ASSERT_FALSE(embed.ok()) << threads;
    if (threads == 1) {
      serial_status = embed.status();
    } else {
      // Same failure as serial, not whichever shard lost the race.
      EXPECT_EQ(embed.status(), serial_status) << threads;
    }
    for (size_t r = 0; r < before.num_rows(); ++r) {
      for (size_t c = 0; c < before.num_columns(); ++c) {
        ASSERT_EQ(before.at(r, c).ToString(), poisoned.at(r, c).ToString())
            << "partial write at (" << r << ", " << c << ") with "
            << threads << " threads";
      }
    }
  }
}

TEST_F(FailureInjectionTest, ParallelEmbedOnRawTableFailsCleanly) {
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  fw_config.watermark.num_threads = 4;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  HierarchicalWatermarker wm = framework.MakeWatermarker(outcome.binning);
  Table raw = dataset_->table.Clone();
  const BitVector mark = BitVector::FromString("1010").ValueOrDie();
  EXPECT_FALSE(wm.Embed(&raw, mark).ok());
}

TEST_F(FailureInjectionTest, ParallelDetectOnForeignTableYieldsNoVotes) {
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  config.num_threads = 4;
  FrameworkConfig fw_config;
  fw_config.binning = config;
  fw_config.watermark.num_threads = 4;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();
  HierarchicalWatermarker wm = framework.MakeWatermarker(outcome.binning);

  Table foreign = outcome.watermarked.Clone();
  for (size_t r = 0; r < foreign.num_rows(); ++r) {
    for (size_t c : outcome.binning.qi_columns) {
      foreign.Set(r, c, Value::String("junk-" + std::to_string(r % 7)));
    }
  }
  auto detect = wm.Detect(foreign, 20, outcome.embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->slots_read, 0u);
  for (bool voted : detect->bit_voted) EXPECT_FALSE(voted);
}

TEST_F(FailureInjectionTest, DisputeWithCorruptedIdentifiersRejectsClaim) {
  BinningConfig config;
  config.k = 5;
  config.enforce_joint = false;
  config.encryption_passphrase = "fi-pass";
  FrameworkConfig fw_config;
  fw_config.binning = config;
  auto metrics =
      MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  ProtectionFramework framework(metrics, fw_config);
  auto outcome = std::move(framework.Protect(dataset_->table)).ValueOrDie();

  // Attacker re-encrypts/corrupts the whole identifying column.
  Table corrupted = outcome.watermarked.Clone();
  for (size_t r = 0; r < corrupted.num_rows(); ++r) {
    corrupted.Set(r, 0, Value::String("feedfacefeedface"));
  }
  HierarchicalWatermarker wm = framework.MakeWatermarker(outcome.binning);
  OwnershipConfig oc;
  auto verdict = ResolveDispute(corrupted, wm,
                                Aes128::FromPassphrase("fi-pass"),
                                outcome.identifier_statistic,
                                outcome.embed.wmd_size, oc);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->statistic_consistent);
  EXPECT_FALSE(verdict->ownership_established);
}

}  // namespace
}  // namespace privmark
