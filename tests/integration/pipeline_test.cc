// End-to-end integration: generate -> bin -> watermark -> attack -> detect
// -> dispute, plus persistence through CSV, on one shared protected data
// set (the full Fig. 2 pipeline exercised the way the paper's Sec. 7
// evaluation uses it).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "attack/attacks.h"
#include "core/framework.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "watermark/ownership.h"

namespace privmark {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MedicalDataSpec spec;
    spec.num_rows = 6000;
    spec.seed = 20050405;
    dataset_ = new MedicalDataset(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());

    FrameworkConfig config;
    config.binning.k = 20;
    config.binning.enforce_joint = false;
    config.binning.encryption_passphrase = "integration-pass";
    config.key.k1 = "int-k1";
    config.key.k2 = "int-k2";
    config.key.eta = 20;
    framework_ = new ProtectionFramework(
        MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie(),
        config);
    outcome_ = new ProtectionOutcome(
        std::move(framework_->Protect(dataset_->table)).ValueOrDie());
  }

  static void TearDownTestSuite() {
    delete outcome_;
    delete framework_;
    delete dataset_;
    outcome_ = nullptr;
    framework_ = nullptr;
    dataset_ = nullptr;
  }

  static MedicalDataset* dataset_;
  static ProtectionFramework* framework_;
  static ProtectionOutcome* outcome_;
};

MedicalDataset* PipelineTest::dataset_ = nullptr;
ProtectionFramework* PipelineTest::framework_ = nullptr;
ProtectionOutcome* PipelineTest::outcome_ = nullptr;

TEST_F(PipelineTest, EveryAttributeIsKAnonymous) {
  for (size_t col : outcome_->binning.qi_columns) {
    EXPECT_GE(outcome_->binning.binned.MinBinSize({col}), 20u);
  }
}

TEST_F(PipelineTest, NoOriginalQiValueLeaksIntoBinnedTable) {
  // Every binned quasi-identifier cell must be a generalization-node label,
  // and every identifier must be unlinkable ciphertext.
  const size_t ident = *dataset_->table.schema().IdentifyingColumn();
  for (size_t r = 0; r < 200; ++r) {
    EXPECT_NE(outcome_->binning.binned.at(r, ident).ToString(),
              dataset_->table.at(r, ident).ToString());
  }
}

TEST_F(PipelineTest, CleanDetectionIsExact) {
  HierarchicalWatermarker wm = framework_->MakeWatermarker(outcome_->binning);
  auto detect = wm.Detect(outcome_->watermarked, outcome_->mark.size(),
                          outcome_->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->recovered, outcome_->mark);
}

TEST_F(PipelineTest, SurvivesModerateDeletion) {
  HierarchicalWatermarker wm = framework_->MakeWatermarker(outcome_->binning);
  Table attacked = outcome_->watermarked.Clone();
  Random rng(77);
  ASSERT_TRUE(SubsetDeletionAttack(&attacked, 0.5, &rng).ok());
  auto detect = wm.Detect(attacked, outcome_->mark.size(),
                          outcome_->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_LE(*MarkLossAgainst(outcome_->mark, detect->recovered), 0.15);
}

TEST_F(PipelineTest, SurvivesModerateAlteration) {
  HierarchicalWatermarker wm = framework_->MakeWatermarker(outcome_->binning);
  Table attacked = outcome_->watermarked.Clone();
  Random rng(78);
  ASSERT_TRUE(SubsetAlterationAttack(&attacked, outcome_->binning.qi_columns,
                                     0.4, &rng)
                  .ok());
  auto detect = wm.Detect(attacked, outcome_->mark.size(),
                          outcome_->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_LE(*MarkLossAgainst(outcome_->mark, detect->recovered), 0.15);
}

TEST_F(PipelineTest, SurvivesMassiveAddition) {
  HierarchicalWatermarker wm = framework_->MakeWatermarker(outcome_->binning);
  Table attacked = outcome_->watermarked.Clone();
  Random rng(79);
  ASSERT_TRUE(SubsetAdditionAttack(&attacked, 1.0, &rng).ok());
  auto detect = wm.Detect(attacked, outcome_->mark.size(),
                          outcome_->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_LE(*MarkLossAgainst(outcome_->mark, detect->recovered), 0.15);
}

TEST_F(PipelineTest, SurvivesGeneralizationAttack) {
  HierarchicalWatermarker wm = framework_->MakeWatermarker(outcome_->binning);
  Table attacked = outcome_->watermarked.Clone();
  auto report = GeneralizationAttack(&attacked, outcome_->binning.qi_columns,
                                     framework_->metrics().maximal, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->cells_changed, 0u);
  auto detect = wm.Detect(attacked, outcome_->mark.size(),
                          outcome_->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_LE(*MarkLossAgainst(outcome_->mark, detect->recovered), 0.05);
}

TEST_F(PipelineTest, SurvivesCombinedAttack) {
  HierarchicalWatermarker wm = framework_->MakeWatermarker(outcome_->binning);
  Table attacked = outcome_->watermarked.Clone();
  Random rng(80);
  ASSERT_TRUE(SubsetDeletionAttack(&attacked, 0.2, &rng).ok());
  ASSERT_TRUE(SubsetAdditionAttack(&attacked, 0.2, &rng).ok());
  ASSERT_TRUE(SubsetAlterationAttack(&attacked, outcome_->binning.qi_columns,
                                     0.2, &rng)
                  .ok());
  ASSERT_TRUE(GeneralizationAttack(&attacked, outcome_->binning.qi_columns,
                                   framework_->metrics().maximal, 1)
                  .ok());
  auto detect = wm.Detect(attacked, outcome_->mark.size(),
                          outcome_->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_LE(*MarkLossAgainst(outcome_->mark, detect->recovered), 0.25);
}

TEST_F(PipelineTest, OwnershipSurvivesAttackedTable) {
  HierarchicalWatermarker wm = framework_->MakeWatermarker(outcome_->binning);
  Table attacked = outcome_->watermarked.Clone();
  Random rng(81);
  ASSERT_TRUE(SubsetDeletionAttack(&attacked, 0.3, &rng).ok());
  const Aes128 cipher = Aes128::FromPassphrase("integration-pass");
  OwnershipConfig oc;
  oc.match_threshold = 0.75;
  oc.tau = 0.03;  // 30% deletion drifts the SSN mean by ~1%
  auto verdict = ResolveDispute(attacked, wm, cipher,
                                outcome_->identifier_statistic,
                                outcome_->embed.wmd_size, oc);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->statistic_consistent);
  EXPECT_TRUE(verdict->ownership_established);
}

TEST_F(PipelineTest, ProtectedTableRoundTripsThroughCsv) {
  const std::string path = ::testing::TempDir() + "/privmark_pipeline.csv";
  ASSERT_TRUE(WriteTableCsv(outcome_->watermarked, path).ok());
  auto loaded = ReadTableCsv(path, outcome_->watermarked.schema());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_rows(), outcome_->watermarked.num_rows());
  // Detection works identically on the reloaded table.
  HierarchicalWatermarker wm = framework_->MakeWatermarker(outcome_->binning);
  auto detect = wm.Detect(*loaded, outcome_->mark.size(),
                          outcome_->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->recovered, outcome_->mark);
  std::remove(path.c_str());
}

TEST_F(PipelineTest, DeterministicEndToEnd) {
  // Re-running the whole pipeline reproduces the identical watermarked
  // table (keys, data and attacks are all seeded).
  auto again = framework_->Protect(dataset_->table);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->watermarked.num_rows(), outcome_->watermarked.num_rows());
  for (size_t r = 0; r < again->watermarked.num_rows(); ++r) {
    for (size_t c = 0; c < again->watermarked.num_columns(); ++c) {
      ASSERT_EQ(again->watermarked.at(r, c), outcome_->watermarked.at(r, c))
          << r << "," << c;
    }
  }
}

}  // namespace
}  // namespace privmark
