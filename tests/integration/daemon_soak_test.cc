// Daemon soak: 100 concurrent client streams over real loopback
// sockets, each driving its own session through open → ingest → flush →
// detect → close, byte-compared against the same stream replayed
// serially on a bare ProtectionSession. This is the service-equivalence
// determinism claim extended across the wire: the columnar table codec,
// the framing, and the daemon's thread-per-connection scheduling must
// all be invisible in the bytes — emitted tables, per-epoch manifest
// text, and detection vote margins (exact doubles) identical to the
// in-process serial run.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/manifest.h"
#include "core/session.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "service/client.h"
#include "service/daemon.h"

namespace privmark {
namespace {

constexpr size_t kStreams = 100;
constexpr size_t kRows = 300;
constexpr size_t kBatch = 150;

struct Stream {
  std::string name;
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  FrameworkConfig config;
  SessionConfig session_config;

  // Serial in-process reference.
  std::string reference_csv;
  std::vector<std::string> reference_manifests;
  std::vector<std::vector<double>> reference_margins;

  // What the daemon run produced, filled by the client thread.
  std::string daemon_csv;
  std::vector<std::string> daemon_manifests;
  std::vector<std::vector<double>> daemon_margins;
  std::string failure;  // non-empty = the stream's run broke
};

// Heterogeneous co-tenants: data, keys, and k vary per stream, and every
// tenth stream runs the drift policy (multi-epoch output plus the
// suppression fallback must also survive the wire).
Stream MakeStream(size_t index) {
  Stream stream;
  stream.name = "hospital-" + std::to_string(index);
  MedicalDataSpec spec;
  spec.num_rows = kRows;
  spec.seed = 40000 + index;
  stream.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  stream.metrics =
      MetricsFromDepthCuts(stream.dataset->trees(), {2, 1, 2, 1, 1})
          .ValueOrDie();
  stream.config.binning.k = index % 3 == 0 ? 10 : 5;
  stream.config.binning.enforce_joint = false;
  // 150-row windows can leave maximal subtrees thinner than k, so every
  // stream runs the paper's suppression fallback rather than erroring —
  // the wire run must reproduce the suppressions byte for byte too.
  stream.config.binning.mono.on_unbinnable = UnbinnablePolicy::kSuppress;
  stream.config.binning.encryption_passphrase = stream.name + "-pass";
  stream.config.binning.num_threads = 1;
  stream.config.watermark.num_threads = 1;
  stream.config.key = {stream.name + "-k1", stream.name + "-k2",
                       /*eta=*/10};
  if (index % 10 == 7) {
    stream.session_config.policy = RebinPolicy::kRebinOnDrift;
    // Above 1.0 so the second (final) batch stays buffered and the
    // closing flush seals it as epoch 1 rather than re-binning mid-ingest
    // and leaving the flush with nothing.
    stream.session_config.drift_threshold = 1.5;
  }
  return stream;
}

bool IsDriftStream(const Stream& stream) {
  return stream.session_config.policy == RebinPolicy::kRebinOnDrift;
}

// The scripted request sequence, identical for the serial replay and the
// wire-driven run: every batch, then one final flush (drift streams also
// flush epoch 0 after the first batch so later batches stream live).
struct Request {
  bool flush = false;
  size_t begin = 0;
};

std::vector<Request> Script(const Stream& stream) {
  std::vector<Request> script;
  bool first = true;
  for (size_t begin = 0; begin < kRows; begin += kBatch) {
    script.push_back({false, begin});
    if (first && IsDriftStream(stream)) script.push_back({true, 0});
    first = false;
  }
  script.push_back({true, 0});
  return script;
}

void BuildReference(Stream* stream) {
  ProtectionSession session(stream->metrics, stream->config,
                            stream->session_config);
  Table concat(stream->dataset->table.schema());
  auto append = [&concat](const Table& emitted) {
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      (void)concat.AppendRow(emitted.row(r));
    }
  };
  for (const Request& request : Script(*stream)) {
    if (request.flush) {
      auto flushed = session.Flush();
      ASSERT_TRUE(flushed.ok())
          << stream->name << ": " << flushed.status().ToString();
      append(flushed->outcome.watermarked);
    } else {
      auto ingested = session.Ingest(
          stream->dataset->table.Slice(request.begin, request.begin + kBatch));
      ASSERT_TRUE(ingested.ok())
          << stream->name << ": " << ingested.status().ToString();
      append(ingested->emitted);
    }
  }
  stream->reference_csv = TableToCsv(concat);
  for (const EpochRecord& epoch : session.epochs()) {
    stream->reference_manifests.push_back(SerializeManifest(
        std::move(ManifestFromEpoch(epoch, stream->dataset->table.schema(),
                                    stream->metrics, stream->config))
            .ValueOrDie()));
  }
  auto reports = session.DetectAcrossEpochs(concat);
  ASSERT_TRUE(reports.ok()) << stream->name;
  for (const DetectReport& report : *reports) {
    stream->reference_margins.push_back(report.vote_margin);
  }
}

// One stream's full wire-driven lifecycle; records results (gtest
// assertions are not safe off the main thread, so failures are strings).
void DriveStream(uint16_t port, Stream* stream) {
  auto fail = [stream](const std::string& what, const Status& status) {
    stream->failure = what + ": " + status.ToString();
  };
  DaemonClient client(MedicalSchema());
  if (auto st = client.Connect("127.0.0.1", port); !st.ok()) {
    return fail("connect", st);
  }

  WireRequest open;
  open.type = WireFrameType::kOpen;
  open.session = stream->name;
  open.open.k = stream->config.binning.k;
  open.open.enforce_joint = stream->config.binning.enforce_joint;
  open.open.passphrase = stream->config.binning.encryption_passphrase;
  open.open.k1 = stream->config.key.k1;
  open.open.k2 = stream->config.key.k2;
  open.open.eta = stream->config.key.eta;
  open.open.on_unbinnable = 1;
  if (IsDriftStream(*stream)) {
    open.open.policy = 1;
    open.open.drift_threshold = stream->session_config.drift_threshold;
  }
  auto opened = client.Call(open);
  if (!opened.ok()) return fail("open transport", opened.status());
  if (!opened->status.ok()) return fail("open", opened->status);

  Table concat(stream->dataset->table.schema());
  auto append = [&concat](const Table& emitted) {
    for (size_t r = 0; r < emitted.num_rows(); ++r) {
      (void)concat.AppendRow(emitted.row(r));
    }
  };
  for (const Request& scripted : Script(*stream)) {
    WireRequest request;
    request.session = stream->name;
    if (scripted.flush) {
      request.type = WireFrameType::kFlush;
    } else {
      request.type = WireFrameType::kIngest;
      request.table =
          stream->dataset->table.Slice(scripted.begin, scripted.begin + kBatch);
    }
    auto response = client.Call(request);
    if (!response.ok()) return fail("request transport", response.status());
    if (!response->status.ok()) return fail("request", response->status);
    append(scripted.flush ? response->flush.emitted
                          : response->ingest.emitted);
  }
  stream->daemon_csv = TableToCsv(concat);

  WireRequest detect;
  detect.type = WireFrameType::kDetect;
  detect.session = stream->name;
  detect.table = concat.Clone();
  auto detected = client.Call(detect);
  if (!detected.ok()) return fail("detect transport", detected.status());
  if (!detected->status.ok()) return fail("detect", detected->status);
  for (const DetectReport& report : detected->reports) {
    stream->daemon_margins.push_back(report.vote_margin);
  }

  WireRequest close;
  close.type = WireFrameType::kClose;
  close.session = stream->name;
  auto closed = client.Call(close);
  if (!closed.ok()) return fail("close transport", closed.status());
  if (!closed->status.ok()) return fail("close", closed->status);
  for (const WireEpochSummary& epoch : closed->close.epochs) {
    stream->daemon_manifests.push_back(epoch.manifest_text);
  }
}

TEST(DaemonSoakTest, HundredConcurrentStreamsMatchSerialReplay) {
  std::vector<Stream> streams;
  streams.reserve(kStreams);
  for (size_t i = 0; i < kStreams; ++i) streams.push_back(MakeStream(i));
  for (Stream& stream : streams) {
    BuildReference(&stream);
    if (::testing::Test::HasFatalFailure()) return;
  }

  DaemonConfig config;
  config.schema = MedicalSchema();
  // Each stream's metrics come from its own dataset's trees, found by
  // passphrase (unique per stream) — the daemon-side analogue of keying
  // per-tenant metrics, and it guarantees the wire run bins against the
  // very trees the serial reference used.
  config.metrics_for_config =
      [&streams](const FrameworkConfig& fc) -> Result<UsageMetrics> {
    for (const Stream& stream : streams) {
      if (stream.config.binning.encryption_passphrase ==
          fc.binning.encryption_passphrase) {
        return MetricsFromDepthCuts(stream.dataset->trees(),
                                    {2, 1, 2, 1, 1});
      }
    }
    return Status::InvalidArgument("no stream for this config");
  };
  PrivmarkDaemon daemon(std::move(config));
  ASSERT_TRUE(daemon.Start(0).ok());

  // 100 live connections, one client thread each, all in flight at once.
  {
    std::vector<std::thread> clients;
    clients.reserve(streams.size());
    for (Stream& stream : streams) {
      clients.emplace_back(DriveStream, daemon.port(), &stream);
    }
    for (std::thread& client : clients) client.join();
  }
  EXPECT_EQ(daemon.connections_accepted(), kStreams);
  EXPECT_TRUE(daemon.Shutdown().ok());

  size_t multi_epoch_streams = 0;
  for (const Stream& stream : streams) {
    ASSERT_TRUE(stream.failure.empty())
        << stream.name << ": " << stream.failure;
    // Byte-identical emitted rows...
    EXPECT_EQ(stream.daemon_csv, stream.reference_csv) << stream.name;
    // ...byte-identical per-epoch manifests (serialized server-side;
    // SerializeManifest is deterministic)...
    ASSERT_EQ(stream.daemon_manifests.size(),
              stream.reference_manifests.size())
        << stream.name;
    for (size_t e = 0; e < stream.daemon_manifests.size(); ++e) {
      EXPECT_EQ(stream.daemon_manifests[e], stream.reference_manifests[e])
          << stream.name << " epoch " << e;
    }
    // ...and exact detection vote margins, double for double.
    ASSERT_EQ(stream.daemon_margins.size(), stream.reference_margins.size())
        << stream.name;
    for (size_t e = 0; e < stream.daemon_margins.size(); ++e) {
      EXPECT_EQ(stream.daemon_margins[e], stream.reference_margins[e])
          << stream.name << " epoch " << e;
    }
    if (stream.daemon_manifests.size() > 1) ++multi_epoch_streams;
  }
  // The drift streams must actually have exercised multi-epoch output.
  EXPECT_GE(multi_epoch_streams, kStreams / 10);
}

}  // namespace
}  // namespace privmark
