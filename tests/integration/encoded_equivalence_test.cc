// Equivalence suite for the NodeId-encoded substrate: the encoded hot
// paths must produce byte-identical tables and reports to the pre-refactor
// string path on the standard 20k-tuple dataset (fixed seed). The
// reference implementations below deliberately re-materialize every cell
// as a std::string and resolve it through the label index per row, per
// column, per stage — exactly what the pipeline did before the encoded
// columns existed — using only public APIs, so any divergence in the
// optimized kernels shows up as a table or report mismatch.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "attack/attacks.h"
#include "binning/binning_engine.h"
#include "crypto/aes128.h"
#include "datagen/medical_data.h"
#include "hierarchy/encoded_view.h"
#include "metrics/info_loss.h"
#include "metrics/usage_metrics.h"
#include "watermark/hierarchical.h"

namespace privmark {
namespace {

constexpr size_t kRows = 20000;
constexpr uint64_t kSeed = 20050405;
constexpr size_t kK = 20;
constexpr uint64_t kEta = 75;
constexpr char kPassphrase[] = "bench-owner-passphrase";

struct PipelineFixture {
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  BinningConfig binning_config;
  WatermarkKey key;
  WatermarkOptions options;
  BinningOutcome outcome;
  std::unique_ptr<HierarchicalWatermarker> watermarker;
  BitVector mark;
};

PipelineFixture& Fixture() {
  static PipelineFixture* fixture = [] {
    auto* f = new PipelineFixture;
    MedicalDataSpec spec;
    spec.num_rows = kRows;
    spec.seed = kSeed;
    f->dataset = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
    f->metrics =
        MetricsFromDepthCuts(f->dataset->trees(), {2, 1, 2, 1, 1})
            .ValueOrDie();
    f->binning_config.k = kK;
    f->binning_config.enforce_joint = false;
    f->binning_config.encryption_passphrase = kPassphrase;
    f->key.k1 = "bench-k1";
    f->key.k2 = "bench-k2";
    f->key.eta = kEta;
    BinningAgent agent(f->metrics, f->binning_config);
    f->outcome = std::move(agent.Run(f->dataset->table)).ValueOrDie();
    f->watermarker = std::make_unique<HierarchicalWatermarker>(
        f->outcome.qi_columns,
        *f->outcome.binned.schema().IdentifyingColumn(), f->metrics.maximal,
        f->outcome.ultimate, f->key, f->options);
    f->mark = BitVector::FromString("10110010011010111001").ValueOrDie();
    return f;
  }();
  return *fixture;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.at(r, c).type(), b.at(r, c).type())
          << "type mismatch at (" << r << ", " << c << ")";
      ASSERT_EQ(a.at(r, c).ToString(), b.at(r, c).ToString())
          << "cell mismatch at (" << r << ", " << c << ")";
    }
  }
}

// Pre-refactor binning phase 3: clone, encrypt the identifying column,
// generalize each quasi-identifier cell through the per-Value string path.
Table ReferenceBinnedTable(const PipelineFixture& f) {
  Table working = f.dataset->table.Clone();
  const size_t ident_col = *working.schema().IdentifyingColumn();
  const Aes128 cipher = Aes128::FromPassphrase(kPassphrase);
  for (size_t r = 0; r < working.num_rows(); ++r) {
    working.Set(
        r, ident_col,
        Value::String(
            cipher.EncryptValue(working.at(r, ident_col).ToString())
                .ValueOrDie()));
  }
  for (size_t r = 0; r < working.num_rows(); ++r) {
    for (size_t c = 0; c < f.outcome.qi_columns.size(); ++c) {
      const size_t col = f.outcome.qi_columns[c];
      working.Set(
          r, col,
          f.outcome.ultimate[c].Generalize(f.dataset->table.at(r, col))
              .ValueOrDie());
    }
  }
  return working;
}

NodeId ReferenceMaximalAbove(const GeneralizationSet& maximal, NodeId node) {
  const DomainHierarchy& tree = *maximal.tree();
  for (NodeId cur = node; cur != kInvalidNode; cur = tree.Parent(cur)) {
    if (maximal.Contains(cur)) return cur;
  }
  return kInvalidNode;
}

// Pre-refactor Embed: a full bandwidth pre-pass (one selection hash per
// tuple) followed by the embedding pass (a second selection hash per
// tuple, per-slot ToString + NodeForLabel resolution, fresh message
// strings per hash).
EmbedReport ReferenceEmbed(const PipelineFixture& f, Table* table,
                           const BitVector& wm) {
  const size_t ident_col = *table->schema().IdentifyingColumn();
  EmbedReport report;

  size_t bandwidth = 0;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    const std::string ident = table->at(r, ident_col).ToString();
    if (!IsTupleSelected(f.key, f.options.hash, ident)) continue;
    for (size_t c = 0; c < f.outcome.qi_columns.size(); ++c) {
      auto node = f.outcome.ultimate[c].NodeForLabel(
          table->at(r, f.outcome.qi_columns[c]).ToString());
      if (!node.ok()) continue;
      const NodeId max_node =
          ReferenceMaximalAbove(f.metrics.maximal[c], *node);
      if (max_node == kInvalidNode || max_node == *node) continue;
      ++bandwidth;
    }
  }
  size_t copies = bandwidth / wm.size();
  if (copies == 0) copies = 1;
  report.copies = copies;
  const BitVector wmd = wm.Duplicate(copies);
  report.wmd_size = wmd.size();

  for (size_t r = 0; r < table->num_rows(); ++r) {
    const std::string ident = table->at(r, ident_col).ToString();
    if (!IsTupleSelected(f.key, f.options.hash, ident)) continue;
    ++report.tuples_selected;
    for (size_t c = 0; c < f.outcome.qi_columns.size(); ++c) {
      const size_t col = f.outcome.qi_columns[c];
      const std::string& column_name = table->schema().column(col).name;
      const std::string label = table->at(r, col).ToString();
      const NodeId node = *f.outcome.ultimate[c].NodeForLabel(label);
      const NodeId max_node =
          ReferenceMaximalAbove(f.metrics.maximal[c], node);
      if (max_node == kInvalidNode || max_node == node) {
        ++report.slots_skipped_no_gap;
        continue;
      }
      const bool bit = wmd.Get(
          WmdPosition(f.key, f.options.hash, ident, column_name, wmd.size()));
      const DomainHierarchy& tree = *f.outcome.ultimate[c].tree();
      NodeId cur = max_node;
      bool encoded_any = false;
      while (!f.outcome.ultimate[c].Contains(cur)) {
        const std::vector<NodeId>& children = tree.Children(cur);
        if (children.size() == 1) {
          cur = children[0];
          continue;
        }
        size_t idx =
            PermutationIndex(f.key, f.options.hash, ident, column_name,
                             tree.Depth(cur), children.size());
        idx = (idx & ~size_t{1}) | static_cast<size_t>(bit);
        if (idx >= children.size()) idx -= 2;
        cur = children[idx];
        encoded_any = true;
      }
      if (encoded_any) ++report.slots_embedded;
      const std::string& new_label = tree.node(cur).label;
      if (new_label != label) {
        table->Set(r, col, Value::String(new_label));
        ++report.cells_changed;
      }
    }
  }
  return report;
}

// Pre-refactor Detect: per-row ToString + FindByLabel, Siblings() vector
// materialization and linear SiblingIndex per level.
DetectReport ReferenceDetect(const PipelineFixture& f, const Table& table,
                             size_t wm_size, size_t wmd_size) {
  const size_t ident_col = *table.schema().IdentifyingColumn();
  DetectReport report;
  std::vector<double> zeros(wmd_size, 0.0);
  std::vector<double> ones(wmd_size, 0.0);

  for (size_t r = 0; r < table.num_rows(); ++r) {
    const std::string ident = table.at(r, ident_col).ToString();
    if (!IsTupleSelected(f.key, f.options.hash, ident)) continue;
    ++report.tuples_selected;
    for (size_t c = 0; c < f.outcome.qi_columns.size(); ++c) {
      const size_t col = f.outcome.qi_columns[c];
      const std::string& column_name = table.schema().column(col).name;
      const DomainHierarchy& tree = *f.outcome.ultimate[c].tree();
      auto node_result = tree.FindByLabel(table.at(r, col).ToString());
      if (!node_result.ok()) {
        ++report.slots_skipped;
        continue;
      }
      NodeId cur = *node_result;
      if (f.metrics.maximal[c].Contains(cur)) {
        ++report.slots_skipped;
        continue;
      }
      double zero_weight = 0.0;
      double one_weight = 0.0;
      bool reached_maximal = false;
      std::vector<std::pair<bool, int>> level_bits;
      while (cur != kInvalidNode) {
        const NodeId parent = tree.Parent(cur);
        if (parent == kInvalidNode) break;
        const std::vector<NodeId> sibs = tree.Siblings(cur);
        if (sibs.size() >= 2) {
          size_t index = 0;
          for (size_t i = 0; i < sibs.size(); ++i) {
            if (sibs[i] == cur) index = i;
          }
          level_bits.push_back({(index & 1) != 0, tree.Depth(cur)});
        }
        if (f.metrics.maximal[c].Contains(parent)) {
          reached_maximal = true;
          break;
        }
        cur = parent;
      }
      if (!reached_maximal || level_bits.empty()) {
        ++report.slots_skipped;
        continue;
      }
      for (const auto& [bit, depth] : level_bits) {
        (void)depth;
        (bit ? one_weight : zero_weight) += 1.0;
      }
      if (one_weight == zero_weight) {
        ++report.slots_skipped;
        continue;
      }
      const bool slot_bit = one_weight > zero_weight;
      const size_t pos =
          WmdPosition(f.key, f.options.hash, ident, column_name, wmd_size);
      (slot_bit ? ones[pos] : zeros[pos]) += 1.0;
      ++report.slots_read;
    }
  }

  report.recovered = BitVector(wm_size);
  report.vote_margin.assign(wm_size, 0.0);
  report.bit_voted.assign(wm_size, false);
  for (size_t j = 0; j < wm_size; ++j) {
    double zero_total = 0.0;
    double one_total = 0.0;
    for (size_t pos = j; pos < wmd_size; pos += wm_size) {
      zero_total += zeros[pos];
      one_total += ones[pos];
    }
    report.vote_margin[j] = one_total - zero_total;
    report.bit_voted[j] = (zero_total + one_total) > 0.0;
    report.recovered.Set(j, one_total > zero_total);
  }
  return report;
}

TEST(EncodedEquivalenceTest, BinnedTableMatchesStringPath) {
  PipelineFixture& f = Fixture();
  const Table reference = ReferenceBinnedTable(f);
  ExpectTablesIdentical(f.outcome.binned, reference);
}

TEST(EncodedEquivalenceTest, MinimalNodesMatchValuePath) {
  PipelineFixture& f = Fixture();
  MonoBinningOptions options;
  options.k = kK;
  for (size_t c = 0; c < f.outcome.qi_columns.size(); ++c) {
    const auto values =
        f.dataset->table.ColumnValues(f.outcome.qi_columns[c]);
    const auto by_values =
        MonoAttributeBin(f.metrics.maximal[c], values, options).ValueOrDie();
    EXPECT_EQ(by_values.minimal.nodes(), f.outcome.minimal[c].nodes())
        << "column " << c;
  }
}

TEST(EncodedEquivalenceTest, InfoLossMatchesValuePath) {
  PipelineFixture& f = Fixture();
  for (size_t c = 0; c < f.outcome.qi_columns.size(); ++c) {
    const auto values =
        f.dataset->table.ColumnValues(f.outcome.qi_columns[c]);
    const double by_values =
        ColumnInfoLoss(values, f.outcome.ultimate[c]).ValueOrDie();
    const auto encoded =
        EncodedColumn::Leaves(f.dataset->table, f.outcome.qi_columns[c],
                              f.outcome.ultimate[c].tree())
            .ValueOrDie();
    const double by_ids =
        ColumnInfoLossEncoded(encoded, f.outcome.ultimate[c]).ValueOrDie();
    EXPECT_EQ(by_values, by_ids) << "column " << c;  // bit-identical
    EXPECT_EQ(f.outcome.multi_column_loss[c], by_values) << "column " << c;
  }
}

TEST(EncodedEquivalenceTest, MarkedTableMatchesStringPath) {
  PipelineFixture& f = Fixture();
  Table optimized = f.outcome.binned.Clone();
  const EmbedReport report =
      f.watermarker->Embed(&optimized, f.mark).ValueOrDie();

  Table reference = f.outcome.binned.Clone();
  const EmbedReport ref_report = ReferenceEmbed(f, &reference, f.mark);

  ExpectTablesIdentical(optimized, reference);
  EXPECT_EQ(report.tuples_selected, ref_report.tuples_selected);
  EXPECT_EQ(report.slots_embedded, ref_report.slots_embedded);
  EXPECT_EQ(report.slots_skipped_no_gap, ref_report.slots_skipped_no_gap);
  EXPECT_EQ(report.copies, ref_report.copies);
  EXPECT_EQ(report.wmd_size, ref_report.wmd_size);
  EXPECT_EQ(report.cells_changed, ref_report.cells_changed);
  EXPECT_GT(report.slots_embedded, 0u);
}

TEST(EncodedEquivalenceTest, DetectionMatchesStringPath) {
  PipelineFixture& f = Fixture();
  Table marked = f.outcome.binned.Clone();
  const EmbedReport embed = f.watermarker->Embed(&marked, f.mark).ValueOrDie();

  // Detect on the marked table and on a table attacked beyond recognition
  // in places (generalization attack plus out-of-domain junk).
  Table attacked = marked.Clone();
  ASSERT_TRUE(GeneralizationAttack(&attacked, f.outcome.qi_columns,
                                   f.metrics.maximal, 1)
                  .ok());
  for (size_t r = 0; r < attacked.num_rows(); r += 997) {
    attacked.Set(r, f.outcome.qi_columns[0], Value::String("junk-label"));
  }

  for (const Table* table : {&marked, &attacked}) {
    const DetectReport optimized =
        f.watermarker->Detect(*table, f.mark.size(), embed.wmd_size)
            .ValueOrDie();
    const DetectReport reference =
        ReferenceDetect(f, *table, f.mark.size(), embed.wmd_size);
    EXPECT_EQ(optimized.recovered.ToString(), reference.recovered.ToString());
    EXPECT_EQ(optimized.tuples_selected, reference.tuples_selected);
    EXPECT_EQ(optimized.slots_read, reference.slots_read);
    EXPECT_EQ(optimized.slots_skipped, reference.slots_skipped);
    EXPECT_EQ(optimized.vote_margin, reference.vote_margin);
    EXPECT_EQ(optimized.bit_voted, reference.bit_voted);
  }
}

TEST(EncodedEquivalenceTest, NumTupleCountsReuseMatchesRecount) {
  PipelineFixture& f = Fixture();
  const size_t col = f.outcome.qi_columns[0];
  const DomainHierarchy& tree = *f.metrics.maximal[0].tree();
  const auto values = f.dataset->table.ColumnValues(col);
  const auto counts = CountPerNode(tree, values).ValueOrDie();
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    EXPECT_EQ(*NumTuple(tree, id, values), *NumTupleFromCounts(tree, id, counts));
  }
  EXPECT_EQ(NumTupleFromCounts(tree, 1, {1, 2}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace privmark
