#include "relation/schema.h"

#include <gtest/gtest.h>

namespace privmark {
namespace {

Schema MakeTestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"ssn", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"age", ColumnRole::kQuasiNumeric,
                                ValueType::kInt64}).ok());
  EXPECT_TRUE(schema.AddColumn({"doctor", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"notes", ColumnRole::kOther,
                                ValueType::kString}).ok());
  return schema;
}

TEST(SchemaTest, ColumnCountAndAccess) {
  const Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.num_columns(), 4u);
  EXPECT_EQ(schema.column(0).name, "ssn");
  EXPECT_EQ(schema.column(1).role, ColumnRole::kQuasiNumeric);
  EXPECT_EQ(schema.column(3).role, ColumnRole::kOther);
}

TEST(SchemaTest, DuplicateNameRejected) {
  Schema schema = MakeTestSchema();
  const Status st =
      schema.AddColumn({"age", ColumnRole::kOther, ValueType::kInt64});
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ColumnIndexLookup) {
  const Schema schema = MakeTestSchema();
  ASSERT_TRUE(schema.ColumnIndex("doctor").ok());
  EXPECT_EQ(*schema.ColumnIndex("doctor"), 2u);
  EXPECT_EQ(schema.ColumnIndex("nope").status().code(), StatusCode::kKeyError);
}

TEST(SchemaTest, ColumnsWithRole) {
  const Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.ColumnsWithRole(ColumnRole::kIdentifying),
            (std::vector<size_t>{0}));
  EXPECT_EQ(schema.ColumnsWithRole(ColumnRole::kOther),
            (std::vector<size_t>{3}));
}

TEST(SchemaTest, QuasiIdentifyingColumnsInSchemaOrder) {
  const Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.QuasiIdentifyingColumns(), (std::vector<size_t>{1, 2}));
}

TEST(SchemaTest, IdentifyingColumnExactlyOne) {
  const Schema schema = MakeTestSchema();
  ASSERT_TRUE(schema.IdentifyingColumn().ok());
  EXPECT_EQ(*schema.IdentifyingColumn(), 0u);
}

TEST(SchemaTest, IdentifyingColumnMissing) {
  Schema schema;
  ASSERT_TRUE(
      schema.AddColumn({"a", ColumnRole::kOther, ValueType::kString}).ok());
  EXPECT_EQ(schema.IdentifyingColumn().status().code(), StatusCode::kKeyError);
}

TEST(SchemaTest, IdentifyingColumnDuplicatedIsError) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"id1", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  ASSERT_TRUE(schema.AddColumn({"id2", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_EQ(schema.IdentifyingColumn().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, EqualityIsStructural) {
  EXPECT_EQ(MakeTestSchema(), MakeTestSchema());
  Schema other = MakeTestSchema();
  ASSERT_TRUE(
      other.AddColumn({"extra", ColumnRole::kOther, ValueType::kString}).ok());
  EXPECT_FALSE(MakeTestSchema() == other);
}

TEST(ColumnRoleTest, Names) {
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kIdentifying), "identifying");
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kQuasiCategorical),
               "quasi-categorical");
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kQuasiNumeric),
               "quasi-numeric");
  EXPECT_STREQ(ColumnRoleToString(ColumnRole::kOther), "other");
}

}  // namespace
}  // namespace privmark
