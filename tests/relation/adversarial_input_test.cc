// Adversarial-input hardening for the two untrusted text readers: CSV
// tables and key files. Every case here must fail with a clean Status —
// no exceptions, no UB, no unbounded allocation — because both readers
// sit on the trust boundary (suspect tables and key material arrive from
// outside the process).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "relation/csv.h"
#include "relation/table.h"
#include "watermark/key_registry.h"

namespace privmark {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  ASSERT_TRUE(out.good()) << path;
}

Schema TwoColumnSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"age", ColumnRole::kQuasiNumeric,
                                ValueType::kInt64}).ok());
  return schema;
}

// ---------------------------------------------------------------------------
// CSV parsing.

TEST(AdversarialCsvTest, EmbeddedNulByteIsRejected) {
  std::string csv = "id,age\nalice,30\n";
  csv[4] = '\0';
  auto table = TableFromCsv(csv, TwoColumnSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(table.status().message().find("NUL"), std::string::npos)
      << table.status().message();
}

TEST(AdversarialCsvTest, NulInsideQuotedFieldIsAlsoRejected) {
  const std::string csv = std::string("id,age\n\"al") + '\0' + "ce\",30\n";
  auto table = TableFromCsv(csv, TwoColumnSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdversarialCsvTest, OversizedFieldIsCappedNotBuffered) {
  // A single unterminated-looking field far past the 16 MiB cap must fail
  // with InvalidArgument once the cap trips, not grow without bound.
  std::string csv = "id,age\n";
  csv += std::string((16u << 20) + 4096, 'x');
  auto table = TableFromCsv(csv, TwoColumnSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(table.status().message().find("exceeds"), std::string::npos)
      << table.status().message();
}

TEST(AdversarialCsvTest, UnterminatedQuoteFailsCleanly) {
  auto table = TableFromCsv("id,age\n\"alice,30\n", TwoColumnSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(table.status().message().find("unterminated"), std::string::npos);
}

TEST(AdversarialCsvTest, QuoteInsideUnquotedFieldFailsCleanly) {
  auto table = TableFromCsv("id,age\nal\"ice,30\n", TwoColumnSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdversarialCsvTest, ArityMismatchesAreRejectedRowByRow) {
  // Short record.
  auto short_row = TableFromCsv("id,age\nalice\n", TwoColumnSchema());
  ASSERT_FALSE(short_row.ok());
  EXPECT_EQ(short_row.status().code(), StatusCode::kInvalidArgument);
  // Long record.
  auto long_row = TableFromCsv("id,age\nalice,30,extra\n", TwoColumnSchema());
  ASSERT_FALSE(long_row.ok());
  EXPECT_EQ(long_row.status().code(), StatusCode::kInvalidArgument);
  // Wrong header name.
  auto bad_header = TableFromCsv("id,years\nalice,30\n", TwoColumnSchema());
  ASSERT_FALSE(bad_header.ok());
  EXPECT_EQ(bad_header.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdversarialCsvTest, BinaryGarbageFileFailsWithStatus) {
  const std::string path = TempPath("adversarial_garbage.csv");
  std::string garbage = "id,age\n";
  for (int i = 0; i < 512; ++i) {
    garbage.push_back(static_cast<char>(i % 256));
  }
  WriteText(path, garbage);
  auto table = ReadTableCsv(path, TwoColumnSchema());
  ASSERT_FALSE(table.ok());
}

TEST(AdversarialCsvTest, MissingFileIsIOErrorNotCrash) {
  auto table = ReadTableCsv(TempPath("definitely_absent.csv"),
                            TwoColumnSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIOError);
}

TEST(AdversarialCsvTest, WellFormedInputStillRoundTrips) {
  // The hardening must not reject legitimate data: quoted commas, escaped
  // quotes, and generalized labels all still parse.
  Table t(TwoColumnSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("a,\"b\""),
                           Value::String("[25,50)")}).ok());
  auto back = TableFromCsv(TableToCsv(t), TwoColumnSchema());
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->at(0, 0).AsString(), "a,\"b\"");
  EXPECT_EQ(back->at(0, 1).ToString(), "[25,50)");
}

// ---------------------------------------------------------------------------
// Key files.

std::string OneKeyText(const std::string& eta) {
  return
      "privmark-keys v1\n"
      "[key]\n"
      "name = clinic\n"
      "k1 = 00112233445566778899aabbccddeeff\n"
      "k2 = ffeeddccbbaa99887766554433221100\n"
      "eta = " + eta + "\n";
}

TEST(AdversarialKeyFileTest, EtaOverflowIsInvalidArgumentNotAnException) {
  // 2^64 == 18446744073709551616 — all digits, so the old digits-only check
  // passed it straight into std::stoull, which throws std::out_of_range.
  auto registry = KeyRegistry::Parse(OneKeyText("18446744073709551616"));
  ASSERT_FALSE(registry.ok());
  EXPECT_EQ(registry.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(registry.status().message().find("overflow"), std::string::npos)
      << registry.status().message();
}

TEST(AdversarialKeyFileTest, MaximumEtaStillParses) {
  auto registry = KeyRegistry::Parse(OneKeyText("18446744073709551615"));
  ASSERT_TRUE(registry.ok()) << registry.status().message();
  EXPECT_EQ(registry->keys()[0].key.eta, UINT64_MAX);
}

TEST(AdversarialKeyFileTest, NonNumericAndEmptyEtaAreRejected) {
  EXPECT_EQ(KeyRegistry::Parse(OneKeyText("fifty")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(KeyRegistry::Parse(OneKeyText("-1")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(KeyRegistry::Parse(OneKeyText("")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AdversarialKeyFileTest, EmbeddedNulIsRejected) {
  std::string text = OneKeyText("50");
  text[3] = '\0';
  auto registry = KeyRegistry::Parse(text);
  ASSERT_FALSE(registry.ok());
  EXPECT_EQ(registry.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(registry.status().message().find("NUL"), std::string::npos);
}

TEST(AdversarialKeyFileTest, BinaryGarbageFileFailsWithStatus) {
  const std::string path = TempPath("adversarial_garbage.keys");
  std::string garbage;
  for (int i = 0; i < 1024; ++i) {
    garbage.push_back(static_cast<char>((i * 37) % 256));
  }
  WriteText(path, garbage);
  auto registry = KeyRegistry::ReadFile(path);
  ASSERT_FALSE(registry.ok());
}

TEST(AdversarialKeyFileTest, OversizedKeyFileIsRejectedBeforeBuffering) {
  const std::string path = TempPath("adversarial_huge.keys");
  // Valid prefix followed by padding past the 1 MiB cap.
  std::string text = OneKeyText("50");
  text += std::string((1u << 20) + 1024, '\n');
  WriteText(path, text);
  auto registry = KeyRegistry::ReadFile(path);
  ASSERT_FALSE(registry.ok());
  EXPECT_EQ(registry.status().code(), StatusCode::kIOError);
  EXPECT_NE(registry.status().message().find("capped"), std::string::npos)
      << registry.status().message();
}

TEST(AdversarialKeyFileTest, TruncatedEntryAndUnknownKeysFail) {
  EXPECT_FALSE(KeyRegistry::Parse(
      "privmark-keys v1\n[key]\nname = a\n").ok());
  EXPECT_FALSE(KeyRegistry::Parse(
      OneKeyText("50") + "color = blue\n").ok());
  EXPECT_FALSE(KeyRegistry::Parse("MZ\x90\x00not a key file").ok());
}

TEST(AdversarialKeyFileTest, ReadKeyFileStillAcceptsAHealthyFile) {
  const std::string path = TempPath("adversarial_healthy.keys");
  Random rng(99);
  const NamedKey key = GenerateKey("clinic", 50, &rng);
  ASSERT_TRUE(WriteKeyFile(key, path).ok());
  auto back = ReadKeyFile(path);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->name, "clinic");
  EXPECT_EQ(back->key.k1, key.key.k1);
  EXPECT_EQ(back->key.eta, 50u);
}

}  // namespace
}  // namespace privmark
