#include "relation/table.h"

#include <gtest/gtest.h>

namespace privmark {
namespace {

Schema TwoColumnSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"grp", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

Table MakeGroupedTable() {
  Table t(TwoColumnSchema());
  const char* groups[] = {"a", "a", "b", "b", "b", "c"};
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(t.AppendRow({Value::String("id" + std::to_string(i)),
                             Value::String(groups[i])}).ok());
  }
  return t;
}

TEST(TableTest, AppendChecksArity) {
  Table t(TwoColumnSchema());
  EXPECT_TRUE(t.AppendRow({Value::String("x"), Value::String("y")}).ok());
  EXPECT_EQ(t.AppendRow({Value::String("x")}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, CellAccessAndSet) {
  Table t = MakeGroupedTable();
  EXPECT_EQ(t.at(2, 1).AsString(), "b");
  t.Set(2, 1, Value::String("z"));
  EXPECT_EQ(t.at(2, 1).AsString(), "z");
}

TEST(TableTest, ColumnValues) {
  const Table t = MakeGroupedTable();
  const std::vector<Value> grp = t.ColumnValues(1);
  ASSERT_EQ(grp.size(), 6u);
  EXPECT_EQ(grp[0].AsString(), "a");
  EXPECT_EQ(grp[5].AsString(), "c");
}

TEST(TableTest, GroupByCountsAndOrder) {
  const Table t = MakeGroupedTable();
  const std::vector<Bin> bins = t.GroupBy({1});
  ASSERT_EQ(bins.size(), 3u);
  // Bins come back in ascending key order.
  EXPECT_EQ(bins[0].key[0].AsString(), "a");
  EXPECT_EQ(bins[0].size(), 2u);
  EXPECT_EQ(bins[1].key[0].AsString(), "b");
  EXPECT_EQ(bins[1].size(), 3u);
  EXPECT_EQ(bins[2].key[0].AsString(), "c");
  EXPECT_EQ(bins[2].size(), 1u);
}

TEST(TableTest, GroupByMultipleColumns) {
  Table t(TwoColumnSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("x"), Value::String("g")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::String("x"), Value::String("g")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::String("y"), Value::String("g")}).ok());
  const std::vector<Bin> bins = t.GroupBy({0, 1});
  EXPECT_EQ(bins.size(), 2u);
}

TEST(TableTest, MinBinSizeAndKAnonymity) {
  const Table t = MakeGroupedTable();
  EXPECT_EQ(t.MinBinSize({1}), 1u);
  EXPECT_TRUE(t.IsKAnonymous({1}, 1));
  EXPECT_FALSE(t.IsKAnonymous({1}, 2));
}

TEST(TableTest, MinBinSizeEmptyTable) {
  Table t(TwoColumnSchema());
  EXPECT_EQ(t.MinBinSize({1}), 0u);
}

TEST(TableTest, RemoveRowsDropsAndPreservesOrder) {
  Table t = MakeGroupedTable();
  t.RemoveRows({1, 3});
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.at(0, 0).AsString(), "id0");
  EXPECT_EQ(t.at(1, 0).AsString(), "id2");
  EXPECT_EQ(t.at(2, 0).AsString(), "id4");
  EXPECT_EQ(t.at(3, 0).AsString(), "id5");
}

TEST(TableTest, RemoveRowsHandlesDuplicatesAndUnsorted) {
  Table t = MakeGroupedTable();
  t.RemoveRows({5, 0, 5, 0});
  ASSERT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.at(0, 0).AsString(), "id1");
  EXPECT_EQ(t.at(3, 0).AsString(), "id4");
}

TEST(TableTest, RemoveNoRowsIsNoop) {
  Table t = MakeGroupedTable();
  t.RemoveRows({});
  EXPECT_EQ(t.num_rows(), 6u);
}

TEST(TableTest, CloneIsDeep) {
  Table t = MakeGroupedTable();
  Table copy = t.Clone();
  copy.Set(0, 1, Value::String("mutated"));
  EXPECT_EQ(t.at(0, 1).AsString(), "a");
  EXPECT_EQ(copy.at(0, 1).AsString(), "mutated");
  EXPECT_EQ(copy.num_rows(), t.num_rows());
  EXPECT_EQ(copy.schema(), t.schema());
}

TEST(TableTest, SliceCopiesRowRangeAndClampsEnd) {
  const Table t = MakeGroupedTable();
  const Table middle = t.Slice(2, 5);
  ASSERT_EQ(middle.num_rows(), 3u);
  EXPECT_EQ(middle.at(0, 0).AsString(), "id2");
  EXPECT_EQ(middle.at(2, 0).AsString(), "id4");
  EXPECT_EQ(middle.schema().num_columns(), t.schema().num_columns());
  // End past the table clamps; an empty range yields an empty table.
  EXPECT_EQ(t.Slice(4, 100).num_rows(), 2u);
  EXPECT_EQ(t.Slice(6, 10).num_rows(), 0u);
  EXPECT_EQ(t.Slice(3, 3).num_rows(), 0u);
}

TEST(BinTest, SizeReportsMemberCount) {
  Bin bin{{Value::String("k")}, {0, 3, 4}};
  EXPECT_EQ(bin.size(), 3u);
}

}  // namespace
}  // namespace privmark
