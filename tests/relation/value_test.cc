#include "relation/value.h"

#include <gtest/gtest.h>

namespace privmark {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "");
}

TEST(ValueTest, Int64Accessors) {
  const Value v = Value::Int64(-42);
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt64(), -42);
  EXPECT_DOUBLE_EQ(v.AsDouble(), -42.0);
  EXPECT_EQ(v.ToString(), "-42");
}

TEST(ValueTest, DoubleAccessors) {
  const Value v = Value::Double(2.5);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST(ValueTest, StringAccessors) {
  const Value v = Value::String("Pharmacist");
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.AsString(), "Pharmacist");
  EXPECT_EQ(v.ToString(), "Pharmacist");
}

TEST(ValueTest, EqualityWithinTypes) {
  EXPECT_EQ(Value::Int64(5), Value::Int64(5));
  EXPECT_NE(Value::Int64(5), Value::Int64(6));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_NE(Value::String("a"), Value::String("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, CrossTypeInequality) {
  // Int64(5) and Double(5.0) are distinct values (distinct types).
  EXPECT_NE(Value::Int64(5), Value::Double(5.0));
  EXPECT_NE(Value::Int64(5), Value::String("5"));
}

TEST(ValueTest, OrderingIsTotalAndTypeFirst) {
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  // Null sorts before typed values; int before double before string (by
  // variant index).
  EXPECT_LT(Value::Null(), Value::Int64(0));
  EXPECT_LT(Value::Int64(999), Value::Double(0.0));
  EXPECT_LT(Value::Double(999.0), Value::String(""));
}

TEST(ValueParseTest, Int64) {
  auto v = Value::Parse("123", ValueType::kInt64);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 123);
  EXPECT_FALSE(Value::Parse("12x", ValueType::kInt64).ok());
  EXPECT_FALSE(Value::Parse("[25,50)", ValueType::kInt64).ok());
}

TEST(ValueParseTest, Double) {
  auto v = Value::Parse("2.75", ValueType::kDouble);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 2.75);
  EXPECT_FALSE(Value::Parse("abc", ValueType::kDouble).ok());
}

TEST(ValueParseTest, EmptyBecomesNullForNumerics) {
  EXPECT_TRUE(Value::Parse("", ValueType::kInt64)->is_null());
  EXPECT_TRUE(Value::Parse("", ValueType::kDouble)->is_null());
  // But an empty string cell stays a string.
  EXPECT_EQ(Value::Parse("", ValueType::kString)->type(), ValueType::kString);
}

TEST(ValueParseTest, StringPassthrough) {
  auto v = Value::Parse("anything at all", ValueType::kString);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "anything at all");
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeToString(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "string");
}

}  // namespace
}  // namespace privmark
