#include "relation/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace privmark {
namespace {

Schema MixedSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"ssn", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"age", ColumnRole::kQuasiNumeric,
                                ValueType::kInt64}).ok());
  EXPECT_TRUE(schema.AddColumn({"note", ColumnRole::kOther,
                                ValueType::kString}).ok());
  return schema;
}

TEST(CsvTest, SerializeBasicTable) {
  Table t(MixedSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("123"), Value::Int64(42),
                           Value::String("ok")}).ok());
  EXPECT_EQ(TableToCsv(t), "ssn,age,note\n123,42,ok\n");
}

TEST(CsvTest, RoundTripTypedCells) {
  Table t(MixedSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::Int64(1),
                           Value::String("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::String("b"), Value::Int64(2),
                           Value::String("y")}).ok());
  auto back = TableFromCsv(TableToCsv(t), MixedSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->at(0, 1).AsInt64(), 1);
  EXPECT_EQ(back->at(1, 0).AsString(), "b");
}

TEST(CsvTest, GeneralizedLabelsSurviveInNumericColumns) {
  // A binned age cell holds "[25,50)"; it must round-trip as a string even
  // though the column is declared int64.
  Table t(MixedSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::String("[25,50)"),
                           Value::String("x")}).ok());
  auto back = TableFromCsv(TableToCsv(t), MixedSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0, 1).ToString(), "[25,50)");
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  Table t(MixedSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("a,b"), Value::Int64(1),
                           Value::String("say \"hi\"")}).ok());
  const std::string csv = TableToCsv(t);
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  auto back = TableFromCsv(csv, MixedSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0, 0).AsString(), "a,b");
  EXPECT_EQ(back->at(0, 2).AsString(), "say \"hi\"");
}

TEST(CsvTest, EmbeddedNewlineRoundTrips) {
  Table t(MixedSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("line1\nline2"), Value::Int64(5),
                           Value::String("z")}).ok());
  auto back = TableFromCsv(TableToCsv(t), MixedSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->at(0, 0).AsString(), "line1\nline2");
}

TEST(CsvTest, HeaderMismatchRejected) {
  EXPECT_FALSE(TableFromCsv("wrong,age,note\n", MixedSchema()).ok());
  EXPECT_FALSE(TableFromCsv("ssn,age\n", MixedSchema()).ok());
}

TEST(CsvTest, FieldCountMismatchRejected) {
  EXPECT_FALSE(TableFromCsv("ssn,age,note\na,1\n", MixedSchema()).ok());
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  EXPECT_FALSE(TableFromCsv("ssn,age,note\n\"abc,1,x\n", MixedSchema()).ok());
}

TEST(CsvTest, FileRoundTrip) {
  Table t(MixedSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("s1"), Value::Int64(30),
                           Value::String("n1")}).ok());
  const std::string path = ::testing::TempDir() + "/privmark_csv_test.csv";
  ASSERT_TRUE(WriteTableCsv(t, path).ok());
  auto back = ReadTableCsv(path, MixedSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 1u);
  EXPECT_EQ(back->at(0, 2).AsString(), "n1");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadTableCsv("/nonexistent/nope.csv", MixedSchema())
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(CsvTest, CrLfLineEndingsAccepted) {
  auto back = TableFromCsv("ssn,age,note\r\na,1,x\r\n", MixedSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 1u);
  EXPECT_EQ(back->at(0, 1).AsInt64(), 1);
}

}  // namespace
}  // namespace privmark
