// Additional AES-128 known-answer tests from NIST SP 800-38A (ECB mode,
// F.1.1/F.1.2) — four blocks encrypt + decrypt under one key.

#include <gtest/gtest.h>

#include <cstring>

#include "common/strings.h"
#include "crypto/aes128.h"

namespace privmark {
namespace {

struct EcbVector {
  const char* plaintext_hex;
  const char* ciphertext_hex;
};

// SP 800-38A, key 2b7e151628aed2a6abf7158809cf4f3c.
constexpr EcbVector kVectors[] = {
    {"6bc1bee22e409f96e93d7e117393172a",
     "3ad77bb40d7a3660a89ecaf32466ef97"},
    {"ae2d8a571e03ac9c9eb76fac45af8e51",
     "f5d3d58503b9699de785895a96fdbaaf"},
    {"30c81c46a35ce411e5fbc1191a0a52ef",
     "43b1cd7f598ece23881b00e3ed030688"},
    {"f69f2445df4f9b17ad2b417be66c3710",
     "7b0c785e27e8ad3f8223207104725dd4"},
};

Aes128 Sp800Cipher() {
  const std::vector<uint8_t> key_bytes =
      HexDecode("2b7e151628aed2a6abf7158809cf4f3c").ValueOrDie();
  std::array<uint8_t, 16> key;
  std::memcpy(key.data(), key_bytes.data(), 16);
  return Aes128(key);
}

TEST(Aes128VectorsTest, Sp80038aEcbEncrypt) {
  const Aes128 cipher = Sp800Cipher();
  for (const EcbVector& vec : kVectors) {
    const std::vector<uint8_t> pt = HexDecode(vec.plaintext_hex).ValueOrDie();
    uint8_t block[16];
    std::memcpy(block, pt.data(), 16);
    cipher.EncryptBlock(block);
    EXPECT_EQ(HexEncode(std::vector<uint8_t>(block, block + 16)),
              vec.ciphertext_hex);
  }
}

TEST(Aes128VectorsTest, Sp80038aEcbDecrypt) {
  const Aes128 cipher = Sp800Cipher();
  for (const EcbVector& vec : kVectors) {
    const std::vector<uint8_t> ct =
        HexDecode(vec.ciphertext_hex).ValueOrDie();
    uint8_t block[16];
    std::memcpy(block, ct.data(), 16);
    cipher.DecryptBlock(block);
    EXPECT_EQ(HexEncode(std::vector<uint8_t>(block, block + 16)),
              vec.plaintext_hex);
  }
}

TEST(Aes128VectorsTest, EncryptDecryptManyRandomBlocks) {
  const Aes128 cipher = Aes128::FromPassphrase("sweep");
  uint8_t block[16];
  uint8_t original[16];
  // Deterministic pseudo-random block contents.
  uint32_t state = 0x12345678;
  for (int round = 0; round < 200; ++round) {
    for (auto& b : block) {
      state = state * 1664525u + 1013904223u;
      b = static_cast<uint8_t>(state >> 24);
    }
    std::memcpy(original, block, 16);
    cipher.EncryptBlock(block);
    cipher.DecryptBlock(block);
    EXPECT_EQ(std::memcmp(block, original, 16), 0) << round;
  }
}

}  // namespace
}  // namespace privmark
