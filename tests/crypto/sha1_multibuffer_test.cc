// Boundary suite for the multi-buffer SHA-1 kernel: every compiled backend
// must be byte-identical to the scalar Sha1 for every lane count and every
// padding-relevant message length, including lanes with mixed block counts
// (where some lanes fall out of lock-step and finish scalarly).

#include "crypto/sha1_multibuffer.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/sha1.h"

namespace privmark {
namespace {

// Padding boundaries: 55 is the most that fits one padded block, 56 is the
// first length needing a second block, 64 is exactly one data block, 65
// starts a second data block, 119/120 repeat the padding boundary in the
// second block, 128 is two full data blocks.
const size_t kBoundaryLengths[] = {0, 1, 3, 55, 56, 57, 63, 64, 65, 119, 120, 128};

std::string MessageOfLength(size_t len, size_t salt) {
  std::string msg;
  msg.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    msg.push_back(static_cast<char>('a' + (i + 7 * salt) % 26));
  }
  return msg;
}

std::vector<uint8_t> ScalarDigest(std::string_view msg) {
  return Sha1::Hash(msg);
}

class Sha1MultiBufferBackendTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Sha1MultiBuffer::ForceBackend(GetParam()))
        << "backend unavailable: " << GetParam();
  }
  void TearDown() override { Sha1MultiBuffer::ForceBackend("auto"); }
};

TEST_P(Sha1MultiBufferBackendTest, LaneCountsTimesBoundaryLengths) {
  // Every lane count 1..8 with every uniform boundary length.
  for (size_t lanes = 1; lanes <= Sha1MultiBuffer::kMaxLanes; ++lanes) {
    for (size_t len : kBoundaryLengths) {
      std::vector<std::string> storage;
      std::vector<std::string_view> views;
      for (size_t l = 0; l < lanes; ++l) {
        storage.push_back(MessageOfLength(len, l));
      }
      for (const std::string& s : storage) views.push_back(s);
      std::vector<uint8_t> out(lanes * Sha1MultiBuffer::kDigestSize);
      Sha1MultiBuffer::Hash(views.data(), lanes, out.data());
      for (size_t l = 0; l < lanes; ++l) {
        EXPECT_EQ(0, std::memcmp(
                         ScalarDigest(views[l]).data(),
                         out.data() + l * Sha1MultiBuffer::kDigestSize,
                         Sha1MultiBuffer::kDigestSize))
            << "backend=" << GetParam() << " lanes=" << lanes
            << " len=" << len << " lane=" << l;
      }
    }
  }
}

TEST_P(Sha1MultiBufferBackendTest, MixedLengthsFallOutOfLockStep) {
  // Rotate the boundary lengths through the lanes so every group mixes
  // one-block and multi-block messages — the stragglers exercise the
  // scalar strided-state fallback.
  const size_t num_lens = sizeof(kBoundaryLengths) / sizeof(size_t);
  for (size_t lanes = 1; lanes <= Sha1MultiBuffer::kMaxLanes; ++lanes) {
    for (size_t rot = 0; rot < num_lens; ++rot) {
      std::vector<std::string> storage;
      std::vector<std::string_view> views;
      for (size_t l = 0; l < lanes; ++l) {
        storage.push_back(
            MessageOfLength(kBoundaryLengths[(rot + l) % num_lens], l));
      }
      for (const std::string& s : storage) views.push_back(s);
      std::vector<uint8_t> out(lanes * Sha1MultiBuffer::kDigestSize);
      Sha1MultiBuffer::Hash(views.data(), lanes, out.data());
      for (size_t l = 0; l < lanes; ++l) {
        EXPECT_EQ(0, std::memcmp(
                         ScalarDigest(views[l]).data(),
                         out.data() + l * Sha1MultiBuffer::kDigestSize,
                         Sha1MultiBuffer::kDigestSize))
            << "backend=" << GetParam() << " lanes=" << lanes
            << " rot=" << rot << " lane=" << l;
      }
    }
  }
}

TEST_P(Sha1MultiBufferBackendTest, LargeBatchWithRaggedTail) {
  // Batches far past one lane group, with sizes that leave every possible
  // tail remainder (0..kMaxLanes-1 messages after the full groups).
  for (size_t n = 17; n <= 17 + Sha1MultiBuffer::kMaxLanes; ++n) {
    std::vector<std::string> storage;
    std::vector<std::string_view> views;
    for (size_t i = 0; i < n; ++i) {
      storage.push_back(MessageOfLength(i % 70, i));
    }
    for (const std::string& s : storage) views.push_back(s);
    std::vector<uint8_t> out(n * Sha1MultiBuffer::kDigestSize);
    Sha1MultiBuffer::Hash(views.data(), n, out.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(0, std::memcmp(ScalarDigest(views[i]).data(),
                               out.data() + i * Sha1MultiBuffer::kDigestSize,
                               Sha1MultiBuffer::kDigestSize))
          << "backend=" << GetParam() << " n=" << n << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, Sha1MultiBufferBackendTest,
                         ::testing::ValuesIn(
                             Sha1MultiBuffer::AvailableBackends()),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(Sha1MultiBufferTest, PortableBackendAlwaysAvailable) {
  const std::vector<const char*> backends =
      Sha1MultiBuffer::AvailableBackends();
  ASSERT_FALSE(backends.empty());
  bool has_portable = false;
  for (const char* name : backends) {
    has_portable = has_portable || std::strcmp(name, "portable") == 0;
  }
  EXPECT_TRUE(has_portable);
  // The auto-selected backend is the first (most preferred) available one.
  ASSERT_TRUE(Sha1MultiBuffer::ForceBackend("auto"));
  EXPECT_STREQ(Sha1MultiBuffer::Backend(), backends.front());
}

TEST(Sha1MultiBufferTest, ForceBackendRejectsUnknownNames) {
  const char* before = Sha1MultiBuffer::Backend();
  EXPECT_FALSE(Sha1MultiBuffer::ForceBackend("sha512-quantum"));
  EXPECT_STREQ(Sha1MultiBuffer::Backend(), before);
}

TEST(Sha1MultiBufferTest, PreferredLanesMatchesBackendWidth) {
  const size_t lanes = Sha1MultiBuffer::PreferredLanes();
  EXPECT_TRUE(lanes == 4 || lanes == 8);
  EXPECT_LE(lanes, Sha1MultiBuffer::kMaxLanes);
}

TEST(Sha1MultiBufferTest, ZeroMessagesIsANoOp) {
  uint8_t sentinel[Sha1MultiBuffer::kDigestSize];
  std::memset(sentinel, 0xAB, sizeof(sentinel));
  Sha1MultiBuffer::Hash(nullptr, 0, sentinel);
  for (uint8_t byte : sentinel) EXPECT_EQ(byte, 0xAB);
}

}  // namespace
}  // namespace privmark
