#include "crypto/md5.h"

#include <gtest/gtest.h>

#include "common/strings.h"

namespace privmark {
namespace {

std::string HashHex(const std::string& input) {
  return HexEncode(Md5::Hash(input));
}

// RFC 1321 Appendix A.5 test suite.
TEST(Md5Test, EmptyString) {
  EXPECT_EQ(HashHex(""), "d41d8cd98f00b204e9800998ecf8427e");
}

TEST(Md5Test, A) {
  EXPECT_EQ(HashHex("a"), "0cc175b9c0f1b6a831c399e269772661");
}

TEST(Md5Test, Abc) {
  EXPECT_EQ(HashHex("abc"), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, MessageDigest) {
  EXPECT_EQ(HashHex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
}

TEST(Md5Test, Alphabet) {
  EXPECT_EQ(HashHex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Md5Test, AlphaNumeric) {
  EXPECT_EQ(
      HashHex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(Md5Test, RepeatedDigits) {
  EXPECT_EQ(HashHex("1234567890123456789012345678901234567890123456789012345678"
                    "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalEqualsOneShot) {
  Md5 hasher;
  hasher.Update("message ");
  hasher.Update("digest");
  EXPECT_EQ(HexEncode(hasher.Finish()), "f96b697d7cb7938d525a2f31aaf161d0");
}

TEST(Md5Test, ResetRestoresInitialState) {
  Md5 hasher;
  hasher.Update("junk");
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(HexEncode(hasher.Finish()), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5Test, DigestSizeIsSixteenBytes) {
  EXPECT_EQ(Md5::Hash("x").size(), Md5::kDigestSize);
  EXPECT_EQ(Md5::kDigestSize, 16u);
}

}  // namespace
}  // namespace privmark
