#include "crypto/keyed_hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "crypto/sha1_multibuffer.h"

namespace privmark {
namespace {

TEST(KeyedHashTest, Deterministic) {
  EXPECT_EQ(KeyedHash64(HashAlgorithm::kSha1, "k", "m"),
            KeyedHash64(HashAlgorithm::kSha1, "k", "m"));
  EXPECT_EQ(KeyedHash64(HashAlgorithm::kMd5, "k", "m"),
            KeyedHash64(HashAlgorithm::kMd5, "k", "m"));
}

TEST(KeyedHashTest, KeySeparation) {
  EXPECT_NE(KeyedHash64(HashAlgorithm::kSha1, "k1", "m"),
            KeyedHash64(HashAlgorithm::kSha1, "k2", "m"));
}

TEST(KeyedHashTest, MessageSeparation) {
  EXPECT_NE(KeyedHash64(HashAlgorithm::kSha1, "k", "m1"),
            KeyedHash64(HashAlgorithm::kSha1, "k", "m2"));
}

TEST(KeyedHashTest, BoundarySeparator) {
  // ("ab", "c") and ("a", "bc") must hash differently thanks to the \0
  // separator between key and message.
  EXPECT_NE(KeyedHash64(HashAlgorithm::kSha1, "ab", "c"),
            KeyedHash64(HashAlgorithm::kSha1, "a", "bc"));
}

TEST(KeyedHashTest, AlgorithmsDiffer) {
  EXPECT_NE(KeyedHash64(HashAlgorithm::kSha1, "k", "m"),
            KeyedHash64(HashAlgorithm::kMd5, "k", "m"));
}

TEST(KeyedHashTest, DigestSizesMatchAlgorithm) {
  EXPECT_EQ(KeyedDigest(HashAlgorithm::kSha1, "k", "m").size(), 20u);
  EXPECT_EQ(KeyedDigest(HashAlgorithm::kMd5, "k", "m").size(), 16u);
}

TEST(KeyedHashTest, Hash64UsesLeadingDigestBytes) {
  const auto digest = KeyedDigest(HashAlgorithm::kSha1, "k", "m");
  uint64_t expected = 0;
  for (int i = 0; i < 8; ++i) expected = (expected << 8) | digest[i];
  EXPECT_EQ(KeyedHash64(HashAlgorithm::kSha1, "k", "m"), expected);
}

TEST(KeyedHashTest, ModuloSelectionRateApproximatesOneOverEta) {
  // Eq. (5)'s selection rate over many identifiers should be ~1/eta.
  constexpr uint64_t kEta = 50;
  size_t selected = 0;
  constexpr size_t kIdents = 20000;
  for (size_t i = 0; i < kIdents; ++i) {
    const std::string ident = "ident-" + std::to_string(i);
    if (KeyedHash64(HashAlgorithm::kSha1, "secret", ident) % kEta == 0) {
      ++selected;
    }
  }
  const double rate = static_cast<double>(selected) / kIdents;
  EXPECT_NEAR(rate, 1.0 / kEta, 0.006);
}

TEST(KeyedHashTest, OutputsSpreadAcrossRange) {
  // Sanity check against gross bias: bucket the top byte.
  std::set<uint8_t> top_bytes;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t h =
        KeyedHash64(HashAlgorithm::kSha1, "k", "msg" + std::to_string(i));
    top_bytes.insert(static_cast<uint8_t>(h >> 56));
  }
  EXPECT_GT(top_bytes.size(), 200u);
}

// --- KeyedHash64Batch equivalence -----------------------------------------
//
// The batch entry points route through Sha1MultiBuffer and the stack-buffer
// assembly paths; every one of them must produce exactly the values the
// scalar KeyedHash64 produces, for every batch size (full lane groups plus
// every tail remainder) and for messages past the 192-byte stack threshold.

std::string BatchMessage(size_t i, size_t len) {
  std::string msg = "msg-" + std::to_string(i) + "-";
  while (msg.size() < len) {
    msg.push_back(static_cast<char>('A' + (msg.size() + i) % 26));
  }
  msg.resize(len);
  return msg;
}

TEST(KeyedHashBatchTest, SingleKeyMatchesScalarAcrossBatchSizes) {
  // 0..40 covers the empty batch, partial groups, full 8/16-lane groups,
  // and every tail remainder past them.
  for (size_t n = 0; n <= 40; ++n) {
    std::vector<std::string> storage;
    std::vector<std::string_view> messages;
    for (size_t i = 0; i < n; ++i) {
      storage.push_back(BatchMessage(i, 8 + (i * 13) % 48));
    }
    for (const std::string& s : storage) messages.push_back(s);
    std::vector<uint64_t> out(n, 0);
    KeyedHash64Batch(HashAlgorithm::kSha1, "batch-key", messages.data(), n,
                     out.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], KeyedHash64(HashAlgorithm::kSha1, "batch-key",
                                    messages[i]))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(KeyedHashBatchTest, MixedKeyPairsMatchScalar) {
  // The general (key, message) pair form with a different key per element,
  // as MultiKeyTally issues it.
  constexpr size_t kN = 37;
  std::vector<std::string> keys;
  std::vector<std::string> msgs;
  for (size_t i = 0; i < kN; ++i) {
    keys.push_back("key-" + std::to_string(i % 5));
    msgs.push_back(BatchMessage(i, 4 + (i * 7) % 60));
  }
  std::vector<KeyedHashInput> inputs;
  for (size_t i = 0; i < kN; ++i) {
    inputs.push_back({keys[i], msgs[i]});
  }
  std::vector<uint64_t> out(kN, 0);
  KeyedHash64Batch(HashAlgorithm::kSha1, inputs.data(), kN, out.data());
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], KeyedHash64(HashAlgorithm::kSha1, keys[i], msgs[i]))
        << "i=" << i;
  }
}

TEST(KeyedHashBatchTest, LongMessagesUseHeapAssemblyAndStillMatch) {
  // key + separator + message beyond the 192-byte stack assembly buffer
  // forces the std::string overflow path inside the batch.
  const size_t lengths[] = {150, 191, 192, 193, 400, 5000};
  std::vector<std::string> storage;
  std::vector<std::string_view> messages;
  for (size_t i = 0; i < 6; ++i) {
    storage.push_back(BatchMessage(i, lengths[i]));
  }
  for (const std::string& s : storage) messages.push_back(s);
  std::vector<uint64_t> out(6, 0);
  KeyedHash64Batch(HashAlgorithm::kSha1, "long-key", messages.data(), 6,
                   out.data());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(out[i],
              KeyedHash64(HashAlgorithm::kSha1, "long-key", messages[i]))
        << "len=" << lengths[i];
  }
}

TEST(KeyedHashBatchTest, Md5FallbackMatchesScalar) {
  // MD5 has no multi-buffer kernel; the batch must still give exact scalar
  // values through its fallback loop.
  std::vector<std::string> storage;
  std::vector<std::string_view> messages;
  for (size_t i = 0; i < 11; ++i) {
    storage.push_back(BatchMessage(i, 3 + i * 20));
  }
  for (const std::string& s : storage) messages.push_back(s);
  std::vector<uint64_t> out(11, 0);
  KeyedHash64Batch(HashAlgorithm::kMd5, "md5-key", messages.data(), 11,
                   out.data());
  for (size_t i = 0; i < 11; ++i) {
    EXPECT_EQ(out[i], KeyedHash64(HashAlgorithm::kMd5, "md5-key", messages[i]))
        << "i=" << i;
  }
}

TEST(KeyedHashBatchTest, IdenticalAcrossBackends) {
  // Forcing each compiled SHA-1 backend must not change a single value.
  std::vector<std::string> storage;
  std::vector<std::string_view> messages;
  for (size_t i = 0; i < 23; ++i) {
    storage.push_back(BatchMessage(i, 10 + (i * 17) % 220));
  }
  for (const std::string& s : storage) messages.push_back(s);
  std::vector<uint64_t> reference(23, 0);
  for (size_t i = 0; i < 23; ++i) {
    reference[i] = KeyedHash64(HashAlgorithm::kSha1, "bk", messages[i]);
  }
  for (const char* backend : Sha1MultiBuffer::AvailableBackends()) {
    ASSERT_TRUE(Sha1MultiBuffer::ForceBackend(backend));
    std::vector<uint64_t> out(23, 0);
    KeyedHash64Batch(HashAlgorithm::kSha1, "bk", messages.data(), 23,
                     out.data());
    EXPECT_EQ(out, reference) << "backend=" << backend;
  }
  Sha1MultiBuffer::ForceBackend("auto");
}

TEST(HashAlgorithmTest, Names) {
  EXPECT_STREQ(HashAlgorithmToString(HashAlgorithm::kSha1), "SHA1");
  EXPECT_STREQ(HashAlgorithmToString(HashAlgorithm::kMd5), "MD5");
}

}  // namespace
}  // namespace privmark
