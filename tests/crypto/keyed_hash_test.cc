#include "crypto/keyed_hash.h"

#include <gtest/gtest.h>

#include <set>

namespace privmark {
namespace {

TEST(KeyedHashTest, Deterministic) {
  EXPECT_EQ(KeyedHash64(HashAlgorithm::kSha1, "k", "m"),
            KeyedHash64(HashAlgorithm::kSha1, "k", "m"));
  EXPECT_EQ(KeyedHash64(HashAlgorithm::kMd5, "k", "m"),
            KeyedHash64(HashAlgorithm::kMd5, "k", "m"));
}

TEST(KeyedHashTest, KeySeparation) {
  EXPECT_NE(KeyedHash64(HashAlgorithm::kSha1, "k1", "m"),
            KeyedHash64(HashAlgorithm::kSha1, "k2", "m"));
}

TEST(KeyedHashTest, MessageSeparation) {
  EXPECT_NE(KeyedHash64(HashAlgorithm::kSha1, "k", "m1"),
            KeyedHash64(HashAlgorithm::kSha1, "k", "m2"));
}

TEST(KeyedHashTest, BoundarySeparator) {
  // ("ab", "c") and ("a", "bc") must hash differently thanks to the \0
  // separator between key and message.
  EXPECT_NE(KeyedHash64(HashAlgorithm::kSha1, "ab", "c"),
            KeyedHash64(HashAlgorithm::kSha1, "a", "bc"));
}

TEST(KeyedHashTest, AlgorithmsDiffer) {
  EXPECT_NE(KeyedHash64(HashAlgorithm::kSha1, "k", "m"),
            KeyedHash64(HashAlgorithm::kMd5, "k", "m"));
}

TEST(KeyedHashTest, DigestSizesMatchAlgorithm) {
  EXPECT_EQ(KeyedDigest(HashAlgorithm::kSha1, "k", "m").size(), 20u);
  EXPECT_EQ(KeyedDigest(HashAlgorithm::kMd5, "k", "m").size(), 16u);
}

TEST(KeyedHashTest, Hash64UsesLeadingDigestBytes) {
  const auto digest = KeyedDigest(HashAlgorithm::kSha1, "k", "m");
  uint64_t expected = 0;
  for (int i = 0; i < 8; ++i) expected = (expected << 8) | digest[i];
  EXPECT_EQ(KeyedHash64(HashAlgorithm::kSha1, "k", "m"), expected);
}

TEST(KeyedHashTest, ModuloSelectionRateApproximatesOneOverEta) {
  // Eq. (5)'s selection rate over many identifiers should be ~1/eta.
  constexpr uint64_t kEta = 50;
  size_t selected = 0;
  constexpr size_t kIdents = 20000;
  for (size_t i = 0; i < kIdents; ++i) {
    const std::string ident = "ident-" + std::to_string(i);
    if (KeyedHash64(HashAlgorithm::kSha1, "secret", ident) % kEta == 0) {
      ++selected;
    }
  }
  const double rate = static_cast<double>(selected) / kIdents;
  EXPECT_NEAR(rate, 1.0 / kEta, 0.006);
}

TEST(KeyedHashTest, OutputsSpreadAcrossRange) {
  // Sanity check against gross bias: bucket the top byte.
  std::set<uint8_t> top_bytes;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t h =
        KeyedHash64(HashAlgorithm::kSha1, "k", "msg" + std::to_string(i));
    top_bytes.insert(static_cast<uint8_t>(h >> 56));
  }
  EXPECT_GT(top_bytes.size(), 200u);
}

TEST(HashAlgorithmTest, Names) {
  EXPECT_STREQ(HashAlgorithmToString(HashAlgorithm::kSha1), "SHA1");
  EXPECT_STREQ(HashAlgorithmToString(HashAlgorithm::kMd5), "MD5");
}

}  // namespace
}  // namespace privmark
