#include "crypto/aes128.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/strings.h"

namespace privmark {
namespace {

// FIPS-197 Appendix C.1 vector.
TEST(Aes128Test, Fips197KnownAnswer) {
  std::array<uint8_t, 16> key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                                 0x0e, 0x0f};
  uint8_t block[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                       0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  Aes128 cipher(key);
  cipher.EncryptBlock(block);
  const std::vector<uint8_t> got(block, block + 16);
  EXPECT_EQ(HexEncode(got), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128Test, DecryptInvertsEncrypt) {
  std::array<uint8_t, 16> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                                 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                                 0x4f, 0x3c};
  Aes128 cipher(key);
  uint8_t block[16];
  for (int i = 0; i < 16; ++i) block[i] = static_cast<uint8_t>(i * 17);
  uint8_t original[16];
  std::memcpy(original, block, 16);
  cipher.EncryptBlock(block);
  EXPECT_NE(std::memcmp(block, original, 16), 0);
  cipher.DecryptBlock(block);
  EXPECT_EQ(std::memcmp(block, original, 16), 0);
}

TEST(Aes128Test, ValueRoundTrip) {
  const Aes128 cipher = Aes128::FromPassphrase("hospital-secret");
  for (const std::string& value :
       {std::string(""), std::string("123456789"), std::string("short"),
        std::string("a-longer-identifier-spanning-multiple-aes-blocks-xyz"),
        std::string(255, 'z')}) {
    auto encrypted = cipher.EncryptValue(value);
    ASSERT_TRUE(encrypted.ok()) << value.size();
    auto decrypted = cipher.DecryptValue(*encrypted);
    ASSERT_TRUE(decrypted.ok());
    EXPECT_EQ(*decrypted, value);
  }
}

TEST(Aes128Test, EncryptValueRejectsOverlong) {
  const Aes128 cipher = Aes128::FromPassphrase("p");
  EXPECT_FALSE(cipher.EncryptValue(std::string(256, 'a')).ok());
}

TEST(Aes128Test, EncryptionIsDeterministicAndInjective) {
  const Aes128 cipher = Aes128::FromPassphrase("p");
  std::set<std::string> ciphertexts;
  for (int i = 0; i < 500; ++i) {
    const std::string ssn = std::to_string(100000000 + i * 7);
    auto a = cipher.EncryptValue(ssn);
    auto b = cipher.EncryptValue(ssn);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(*a, *b);  // deterministic: one-to-one replacement (Fig. 8)
    ciphertexts.insert(*a);
  }
  EXPECT_EQ(ciphertexts.size(), 500u);  // injective
}

TEST(Aes128Test, SamePlaintextDifferentKeyDiffers) {
  const Aes128 a = Aes128::FromPassphrase("alpha");
  const Aes128 b = Aes128::FromPassphrase("beta");
  EXPECT_NE(*a.EncryptValue("123456789"), *b.EncryptValue("123456789"));
}

TEST(Aes128Test, WrongKeyDecryptionFailsOrGarbles) {
  const Aes128 owner = Aes128::FromPassphrase("owner");
  const Aes128 thief = Aes128::FromPassphrase("thief");
  auto encrypted = owner.EncryptValue("987654321");
  ASSERT_TRUE(encrypted.ok());
  auto decrypted = thief.DecryptValue(*encrypted);
  if (decrypted.ok()) {
    EXPECT_NE(*decrypted, "987654321");
  } else {
    EXPECT_EQ(decrypted.status().code(), StatusCode::kVerificationFailed);
  }
}

TEST(Aes128Test, DecryptValueRejectsMalformedInput) {
  const Aes128 cipher = Aes128::FromPassphrase("p");
  EXPECT_FALSE(cipher.DecryptValue("").ok());
  EXPECT_FALSE(cipher.DecryptValue("abcd").ok());     // not a block multiple
  EXPECT_FALSE(cipher.DecryptValue("zz").ok());       // not hex
}

TEST(Aes128Test, DistinctValuesNeverCollide) {
  // Values of different lengths sharing prefixes must stay distinct: the
  // length header guarantees injectivity.
  const Aes128 cipher = Aes128::FromPassphrase("p");
  const std::string a = *cipher.EncryptValue("1234");
  const std::string b = *cipher.EncryptValue("12340");
  EXPECT_NE(a, b);
}

TEST(Aes128Test, PassphraseDerivationIsDeterministic) {
  const Aes128 a = Aes128::FromPassphrase("same");
  const Aes128 b = Aes128::FromPassphrase("same");
  EXPECT_EQ(*a.EncryptValue("v"), *b.EncryptValue("v"));
}

}  // namespace
}  // namespace privmark
