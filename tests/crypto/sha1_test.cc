#include "crypto/sha1.h"

#include <gtest/gtest.h>

#include "common/strings.h"

namespace privmark {
namespace {

std::string HashHex(const std::string& input) {
  return HexEncode(Sha1::Hash(input));
}

// FIPS 180-1 / RFC 3174 test vectors.
TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(HashHex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(HashHex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(HexEncode(hasher.Finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalEqualsOneShot) {
  Sha1 hasher;
  hasher.Update("hello ");
  hasher.Update("world");
  EXPECT_EQ(hasher.Finish(), Sha1::Hash("hello world"));
}

TEST(Sha1Test, ByteBoundarySplitDoesNotMatter) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, until the "
      "block boundary at 64 bytes has certainly been crossed.";
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha1 hasher;
    hasher.Update(msg.substr(0, split));
    hasher.Update(msg.substr(split));
    EXPECT_EQ(hasher.Finish(), Sha1::Hash(msg)) << "split=" << split;
  }
}

TEST(Sha1Test, ResetRestoresInitialState) {
  Sha1 hasher;
  hasher.Update("garbage");
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(HexEncode(hasher.Finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, DigestSizeIsTwentyBytes) {
  EXPECT_EQ(Sha1::Hash("x").size(), Sha1::kDigestSize);
  EXPECT_EQ(Sha1::kDigestSize, 20u);
}

TEST(Sha1Test, ExactBlockLengthMessage) {
  // 64-byte message exercises the padding-into-new-block path.
  const std::string msg(64, 'q');
  Sha1 a;
  a.Update(msg);
  const auto digest = a.Finish();
  EXPECT_EQ(digest.size(), 20u);
  // Deterministic.
  EXPECT_EQ(digest, Sha1::Hash(msg));
}

}  // namespace
}  // namespace privmark
