#include "metrics/usage_metrics.h"

#include <gtest/gtest.h>

namespace privmark {
namespace {

DomainHierarchy RoleTree() {
  return HierarchyBuilder::FromOutline("role", R"(Person
  Medical Practitioner
    GP
    Specialist
  Paramedic
    Pharmacist
    Nurse
    Consultant)").ValueOrDie();
}

std::vector<Value> Strings(const std::vector<std::string>& values) {
  std::vector<Value> out;
  for (const auto& v : values) out.push_back(Value::String(v));
  return out;
}

TEST(DeriveMaximalNodesTest, LooseBoundKeepsRoot) {
  DomainHierarchy tree = RoleTree();
  auto gs = DeriveMaximalNodes(&tree, Strings({"GP", "Nurse"}), 0.9);
  ASSERT_TRUE(gs.ok());
  EXPECT_EQ(gs->nodes(), std::vector<NodeId>{tree.root()});
}

TEST(DeriveMaximalNodesTest, TightBoundDescends) {
  DomainHierarchy tree = RoleTree();
  // Root loss for any data = 0.8; bound 0.5 forces a split below the root.
  auto gs = DeriveMaximalNodes(&tree, Strings({"GP", "Nurse"}), 0.5);
  ASSERT_TRUE(gs.ok());
  EXPECT_GT(gs->size(), 1u);
  // The result must actually satisfy the bound.
  auto loss = ColumnInfoLoss(Strings({"GP", "Nurse"}), *gs);
  ASSERT_TRUE(loss.ok());
  EXPECT_LE(*loss, 0.5);
}

TEST(DeriveMaximalNodesTest, ZeroBoundGoesToLeaves) {
  DomainHierarchy tree = RoleTree();
  auto gs = DeriveMaximalNodes(&tree, Strings({"GP", "Nurse", "Consultant"}),
                               0.0);
  ASSERT_TRUE(gs.ok());
  EXPECT_EQ(gs->size(), tree.Leaves().size());
  EXPECT_DOUBLE_EQ(gs->SpecificityLoss(), 0.0);
}

TEST(DeriveMaximalNodesTest, ResultIsAlwaysValidCover) {
  DomainHierarchy tree = RoleTree();
  for (double bound : {0.0, 0.1, 0.3, 0.5, 0.8, 1.0}) {
    auto gs = DeriveMaximalNodes(&tree, Strings({"GP", "GP", "Nurse"}), bound);
    ASSERT_TRUE(gs.ok()) << bound;
    EXPECT_TRUE(GeneralizationSet::ValidateCover(tree, gs->nodes()).ok())
        << bound;
  }
}

TEST(DeriveMaximalNodesTest, NumericTree) {
  auto tree = BuildNumericHierarchy("age", {0, 25, 50, 75, 100}).ValueOrDie();
  std::vector<Value> values = {Value::Int64(10), Value::Int64(30),
                               Value::Int64(60), Value::Int64(90)};
  // Bound 0.5: intervals of width <= 50 are fine.
  auto gs = DeriveMaximalNodes(&tree, values, 0.5);
  ASSERT_TRUE(gs.ok());
  auto loss = ColumnInfoLoss(values, *gs);
  EXPECT_LE(*loss, 0.5);
  EXPECT_GT(gs->size(), 1u);
}

TEST(UnconstrainedMetricsTest, EveryColumnAtRoot) {
  DomainHierarchy role = RoleTree();
  auto age = BuildNumericHierarchy("age", {0, 50, 100}).ValueOrDie();
  const UsageMetrics metrics = UnconstrainedMetrics({&role, &age});
  ASSERT_EQ(metrics.num_columns(), 2u);
  EXPECT_EQ(metrics.maximal[0].nodes(), std::vector<NodeId>{role.root()});
  EXPECT_EQ(metrics.maximal[1].nodes(), std::vector<NodeId>{age.root()});
}

TEST(MetricsFromDepthCutsTest, CutsPerColumn) {
  DomainHierarchy role = RoleTree();
  auto age = BuildNumericHierarchy("age", {0, 25, 50, 75, 100}).ValueOrDie();
  auto metrics = MetricsFromDepthCuts({&role, &age}, {1, 1});
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->maximal[0].size(), 2u);  // MP, Paramedic
  EXPECT_EQ(metrics->maximal[1].size(), 2u);  // [0,50), [50,100)
}

TEST(MetricsFromDepthCutsTest, MismatchRejected) {
  DomainHierarchy role = RoleTree();
  EXPECT_FALSE(MetricsFromDepthCuts({&role}, {1, 2}).ok());
  EXPECT_FALSE(MetricsFromDepthCuts({&role}, {-1}).ok());
}

TEST(MetricsFromBoundsTest, DerivesPerColumn) {
  DomainHierarchy role = RoleTree();
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"role", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  Table table(schema);
  for (const char* v : {"GP", "Specialist", "Nurse", "Pharmacist"}) {
    ASSERT_TRUE(table.AppendRow({Value::String(v)}).ok());
  }
  UsageBounds bounds;
  bounds.per_column = {0.5};
  auto metrics = MetricsFromBounds(table, {0}, {&role}, bounds);
  ASSERT_TRUE(metrics.ok());
  auto loss = ColumnInfoLoss(table.ColumnValues(0), metrics->maximal[0]);
  EXPECT_LE(*loss, 0.5);
}

}  // namespace
}  // namespace privmark
