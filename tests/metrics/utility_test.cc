#include "metrics/utility.h"

#include <gtest/gtest.h>

namespace privmark {
namespace {

Schema OneColumnSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"g", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

Table TableWithBins(const std::vector<std::pair<std::string, int>>& bins) {
  Table t(OneColumnSchema());
  for (const auto& [label, count] : bins) {
    for (int i = 0; i < count; ++i) {
      EXPECT_TRUE(t.AppendRow({Value::String(label)}).ok());
    }
  }
  return t;
}

TEST(TotalInfoLossTest, SumsPerColumnLosses) {
  EXPECT_DOUBLE_EQ(TotalInfoLoss({0.2, 0.4, 0.1}), 0.7);
  EXPECT_DOUBLE_EQ(TotalInfoLoss({}), 0.0);
}

TEST(DiscernibilityTest, SumOfSquaredBinSizes) {
  const Table t = TableWithBins({{"a", 3}, {"b", 2}, {"c", 5}});
  EXPECT_EQ(DiscernibilityMetric(t, {0}), 9u + 4u + 25u);
}

TEST(DiscernibilityTest, EmptyTableIsZero) {
  Table t(OneColumnSchema());
  EXPECT_EQ(DiscernibilityMetric(t, {0}), 0u);
}

TEST(DiscernibilityTest, SingleBinIsNSquared) {
  const Table t = TableWithBins({{"a", 10}});
  EXPECT_EQ(DiscernibilityMetric(t, {0}), 100u);
}

TEST(NormalizedAvgClassSizeTest, IdealIsOne) {
  // 3 bins of exactly k = 4 rows: C_avg = (12 / 3) / 4 = 1.
  const Table t = TableWithBins({{"a", 4}, {"b", 4}, {"c", 4}});
  auto c_avg = NormalizedAvgClassSize(t, {0}, 4);
  ASSERT_TRUE(c_avg.ok());
  EXPECT_DOUBLE_EQ(*c_avg, 1.0);
}

TEST(NormalizedAvgClassSizeTest, OverGeneralizationGrowsCavg) {
  // One bin of 12 at k = 4: C_avg = 3.
  const Table t = TableWithBins({{"a", 12}});
  EXPECT_DOUBLE_EQ(*NormalizedAvgClassSize(t, {0}, 4), 3.0);
}

TEST(NormalizedAvgClassSizeTest, Validation) {
  const Table t = TableWithBins({{"a", 4}});
  EXPECT_FALSE(NormalizedAvgClassSize(t, {0}, 0).ok());
  Table empty(OneColumnSchema());
  EXPECT_DOUBLE_EQ(*NormalizedAvgClassSize(empty, {0}, 5), 0.0);
}

}  // namespace
}  // namespace privmark
