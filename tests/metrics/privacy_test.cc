#include "metrics/privacy.h"

#include <gtest/gtest.h>

#include "binning/binning_engine.h"
#include "datagen/medical_data.h"

namespace privmark {
namespace {

Schema OneColumnSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"g", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

Table TableWithBins(const std::vector<std::pair<std::string, int>>& bins) {
  Table t(OneColumnSchema());
  for (const auto& [label, count] : bins) {
    for (int i = 0; i < count; ++i) {
      EXPECT_TRUE(t.AppendRow({Value::String(label)}).ok());
    }
  }
  return t;
}

TEST(EvaluatePrivacyTest, BasicProfile) {
  // Bins: 4, 2, 1 -> k-level 1, one unique record.
  const Table t = TableWithBins({{"a", 4}, {"b", 2}, {"c", 1}});
  auto report = EvaluatePrivacy(t, {0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->k_anonymity_level, 1u);
  EXPECT_EQ(report->num_bins, 3u);
  EXPECT_EQ(report->unique_records, 1u);
  EXPECT_DOUBLE_EQ(report->max_risk, 1.0);
  // Average risk: (4*(1/4) + 2*(1/2) + 1*1) / 7 = 3/7.
  EXPECT_DOUBLE_EQ(report->average_risk, 3.0 / 7.0);
}

TEST(EvaluatePrivacyTest, UniformBins) {
  const Table t = TableWithBins({{"a", 5}, {"b", 5}});
  auto report = EvaluatePrivacy(t, {0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->k_anonymity_level, 5u);
  EXPECT_DOUBLE_EQ(report->max_risk, 0.2);
  EXPECT_DOUBLE_EQ(report->average_risk, 0.2);
  EXPECT_EQ(report->unique_records, 0u);
}

TEST(EvaluatePrivacyTest, EmptyTable) {
  Table t(OneColumnSchema());
  auto report = EvaluatePrivacy(t, {0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->k_anonymity_level, 0u);
  EXPECT_EQ(report->num_bins, 0u);
}

TEST(EvaluatePrivacyTest, Validation) {
  const Table t = TableWithBins({{"a", 2}});
  EXPECT_FALSE(EvaluatePrivacy(t, {}).ok());
  EXPECT_FALSE(EvaluatePrivacy(t, {5}).ok());
}

TEST(RowsBelowKTest, FindsViolatingRows) {
  const Table t = TableWithBins({{"a", 3}, {"b", 1}, {"c", 2}});
  // Rows: a a a b c c (indices 0,1,2 = a; 3 = b; 4,5 = c).
  auto rows = RowsBelowK(t, {0}, 3);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<size_t>{3, 4, 5}));
  EXPECT_TRUE(RowsBelowK(t, {0}, 1)->empty());
  EXPECT_FALSE(RowsBelowK(t, {0}, 0).ok());
}

Schema TwoColumnSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"g", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"diag", ColumnRole::kOther,
                                ValueType::kString}).ok());
  return schema;
}

TEST(LDiversityTest, MinimumDistinctSensitiveValuesPerBin) {
  Table t(TwoColumnSchema());
  // Bin "a": diagnoses {flu, flu, cold} -> 2 distinct.
  // Bin "b": diagnoses {hiv} -> 1 distinct (homogeneity disclosure!).
  for (const char* d : {"flu", "flu", "cold"}) {
    ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::String(d)}).ok());
  }
  ASSERT_TRUE(t.AppendRow({Value::String("b"), Value::String("hiv")}).ok());
  auto level = LDiversityLevel(t, {0}, 1);
  ASSERT_TRUE(level.ok());
  EXPECT_EQ(*level, 1u);
}

TEST(LDiversityTest, DiverseTableScoresHigher) {
  Table t(TwoColumnSchema());
  for (const char* d : {"flu", "cold", "covid"}) {
    ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::String(d)}).ok());
    ASSERT_TRUE(t.AppendRow({Value::String("b"), Value::String(d)}).ok());
  }
  EXPECT_EQ(*LDiversityLevel(t, {0}, 1), 3u);
}

TEST(LDiversityTest, Validation) {
  Table t(TwoColumnSchema());
  ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::String("x")}).ok());
  EXPECT_FALSE(LDiversityLevel(t, {0}, 9).ok());
  EXPECT_FALSE(LDiversityLevel(t, {0, 1}, 1).ok());  // sensitive inside QI
  Table empty(TwoColumnSchema());
  EXPECT_EQ(*LDiversityLevel(empty, {0}, 1), 0u);
}

TEST(LDiversityTest, KAnonymityDoesNotImplyDiversity) {
  // The motivating gap: a 3-anonymous table can still be 1-diverse.
  Table t(TwoColumnSchema());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::String("hiv")}).ok());
  }
  auto privacy = EvaluatePrivacy(t, {0});
  ASSERT_TRUE(privacy.ok());
  EXPECT_EQ(privacy->k_anonymity_level, 3u);
  EXPECT_EQ(*LDiversityLevel(t, {0}, 1), 1u);
}

TEST(PrivacyPipelineTest, RawTableRiskyBinnedTableSafe) {
  MedicalDataSpec spec;
  spec.num_rows = 2000;
  spec.seed = 3;
  auto ds = std::move(GenerateMedicalDataset(spec)).ValueOrDie();
  const auto qi = ds.table.schema().QuasiIdentifyingColumns();

  auto raw = EvaluatePrivacy(ds.table, qi);
  ASSERT_TRUE(raw.ok());
  // Raw clinical data is nearly unique per quasi-identifier combination.
  EXPECT_EQ(raw->k_anonymity_level, 1u);
  EXPECT_GT(raw->unique_records, 1000u);

  BinningConfig config;
  config.k = 10;
  config.enforce_joint = true;
  BinningAgent agent(UnconstrainedMetrics(ds.trees()), config);
  auto outcome = std::move(agent.Run(ds.table)).ValueOrDie();
  auto binned = EvaluatePrivacy(outcome.binned, qi);
  ASSERT_TRUE(binned.ok());
  EXPECT_GE(binned->k_anonymity_level, 10u);
  EXPECT_LE(binned->max_risk, 0.1);
  EXPECT_EQ(binned->unique_records, 0u);
  EXPECT_TRUE(RowsBelowK(outcome.binned, qi, 10)->empty());
}

}  // namespace
}  // namespace privmark
