#include "metrics/info_loss.h"

#include <gtest/gtest.h>

namespace privmark {
namespace {

// Fig. 1-style tree: Person -> {Medical Practitioner -> {GP, Specialist},
// Paramedic -> {Pharmacist, Nurse, Consultant}}.
DomainHierarchy RoleTree() {
  return HierarchyBuilder::FromOutline("role", R"(Person
  Medical Practitioner
    GP
    Specialist
  Paramedic
    Pharmacist
    Nurse
    Consultant)").ValueOrDie();
}

std::vector<Value> Strings(const std::vector<std::string>& values) {
  std::vector<Value> out;
  for (const auto& v : values) out.push_back(Value::String(v));
  return out;
}

TEST(ColumnInfoLossTest, LeafGeneralizationHasZeroLoss) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet gs = GeneralizationSet::AllLeaves(&tree);
  auto loss = ColumnInfoLoss(
      Strings({"GP", "Nurse", "Nurse", "Pharmacist"}), gs);
  ASSERT_TRUE(loss.ok());
  EXPECT_DOUBLE_EQ(*loss, 0.0);
}

TEST(ColumnInfoLossTest, Eq1HandComputedExample) {
  // Generalization {Medical Practitioner, Paramedic}: |S| = 5 leaves.
  // Medical Practitioner: |S_i| = 2, Paramedic: |S_i| = 3.
  // Values: 2x GP (node MP), 2x Nurse (node P) ->
  // loss = (2*(2-1)/5 + 2*(3-1)/5) / 4 = (0.4 + 0.8)/4 = 0.3.
  DomainHierarchy tree = RoleTree();
  auto gs = GeneralizationSet::Create(
                &tree, {*tree.FindByLabel("Medical Practitioner"),
                        *tree.FindByLabel("Paramedic")})
                .ValueOrDie();
  auto loss = ColumnInfoLoss(Strings({"GP", "GP", "Nurse", "Nurse"}), gs);
  ASSERT_TRUE(loss.ok());
  EXPECT_DOUBLE_EQ(*loss, 0.3);
}

TEST(ColumnInfoLossTest, RootGeneralizationApproachesOne) {
  // Root: |S_i| = |S| = 5 -> every entry contributes (5-1)/5 = 0.8.
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet root = GeneralizationSet::RootOnly(&tree);
  auto loss = ColumnInfoLoss(Strings({"GP", "Nurse"}), root);
  ASSERT_TRUE(loss.ok());
  EXPECT_DOUBLE_EQ(*loss, 0.8);
}

TEST(ColumnInfoLossTest, MixedLevels) {
  // {Medical Practitioner, Pharmacist, Nurse, Consultant}: values at MP
  // contribute (2-1)/5, leaf values contribute 0.
  DomainHierarchy tree = RoleTree();
  auto gs = GeneralizationSet::Create(
                &tree, {*tree.FindByLabel("Medical Practitioner"),
                        *tree.FindByLabel("Pharmacist"),
                        *tree.FindByLabel("Nurse"),
                        *tree.FindByLabel("Consultant")})
                .ValueOrDie();
  auto loss = ColumnInfoLoss(Strings({"GP", "Nurse"}), gs);
  ASSERT_TRUE(loss.ok());
  EXPECT_DOUBLE_EQ(*loss, 0.5 * (1.0 / 5.0));
}

TEST(ColumnInfoLossTest, EmptyColumnIsZero) {
  DomainHierarchy tree = RoleTree();
  const GeneralizationSet gs = GeneralizationSet::RootOnly(&tree);
  EXPECT_DOUBLE_EQ(*ColumnInfoLoss({}, gs), 0.0);
}

TEST(ColumnInfoLossTest, Eq2NumericExample) {
  // Domain [0,100); generalization {[0,50), [50,100)}.
  // Values 10, 20 in [0,50): width fraction 0.5 each -> loss 0.5.
  auto tree = BuildNumericHierarchy("x", {0, 50, 100}).ValueOrDie();
  const GeneralizationSet gs = GeneralizationSet::RootOnly(&tree);
  auto leaves = GeneralizationSet::AllLeaves(&tree);
  auto loss_leaves =
      ColumnInfoLoss({Value::Int64(10), Value::Int64(20)}, leaves);
  ASSERT_TRUE(loss_leaves.ok());
  EXPECT_DOUBLE_EQ(*loss_leaves, 0.5);  // each leaf is half the domain
  auto loss_root = ColumnInfoLoss({Value::Int64(10), Value::Int64(20)}, gs);
  EXPECT_DOUBLE_EQ(*loss_root, 1.0);  // root spans the whole domain
}

TEST(ColumnInfoLossOfLabelsTest, MatchesValueBasedLoss) {
  DomainHierarchy tree = RoleTree();
  auto gs = GeneralizationSet::Create(
                &tree, {*tree.FindByLabel("Medical Practitioner"),
                        *tree.FindByLabel("Paramedic")})
                .ValueOrDie();
  const std::vector<Value> original =
      Strings({"GP", "GP", "Nurse", "Nurse"});
  // Binned labels.
  std::vector<Value> labels;
  for (const Value& v : original) {
    labels.push_back(gs.Generalize(v).ValueOrDie());
  }
  auto from_labels = ColumnInfoLossOfLabels(labels, tree);
  ASSERT_TRUE(from_labels.ok());
  EXPECT_DOUBLE_EQ(*from_labels, 0.3);
}

TEST(NormalizedInfoLossTest, Eq3Average) {
  EXPECT_DOUBLE_EQ(NormalizedInfoLoss({0.2, 0.4}), 0.3);
  EXPECT_DOUBLE_EQ(NormalizedInfoLoss({}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedInfoLoss({0.7}), 0.7);
}

TEST(CheckUsageBoundsTest, WithinBounds) {
  UsageBounds bounds;
  bounds.per_column = {0.5, 0.5};
  bounds.average = 0.4;
  EXPECT_TRUE(CheckUsageBounds({0.3, 0.45}, bounds).ok());
}

TEST(CheckUsageBoundsTest, PerColumnViolation) {
  UsageBounds bounds;
  bounds.per_column = {0.3, 0.5};
  bounds.average = 1.0;
  EXPECT_EQ(CheckUsageBounds({0.4, 0.2}, bounds).code(),
            StatusCode::kUnbinnable);
}

TEST(CheckUsageBoundsTest, AverageViolation) {
  UsageBounds bounds;
  bounds.average = 0.25;
  EXPECT_EQ(CheckUsageBounds({0.3, 0.3}, bounds).code(),
            StatusCode::kUnbinnable);
}

TEST(CheckUsageBoundsTest, CountMismatchRejected) {
  UsageBounds bounds;
  bounds.per_column = {0.5};
  EXPECT_EQ(CheckUsageBounds({0.1, 0.1}, bounds).code(),
            StatusCode::kInvalidArgument);
}

TEST(ColumnLossAgainstOriginalTest, CoveringLabelUsesSpecificityTerm) {
  DomainHierarchy tree = RoleTree();
  // Original GP; label "Medical Practitioner" covers it: (2-1)/5 = 0.2.
  auto loss = ColumnLossAgainstOriginal(
      Strings({"GP"}), Strings({"Medical Practitioner"}), tree);
  ASSERT_TRUE(loss.ok());
  EXPECT_DOUBLE_EQ(*loss, 0.2);
}

TEST(ColumnLossAgainstOriginalTest, NonCoveringLabelIsFullLoss) {
  DomainHierarchy tree = RoleTree();
  // Original GP but the label says Paramedic: the entry is wrong -> 1.0.
  auto loss =
      ColumnLossAgainstOriginal(Strings({"GP"}), Strings({"Paramedic"}), tree);
  ASSERT_TRUE(loss.ok());
  EXPECT_DOUBLE_EQ(*loss, 1.0);
}

TEST(ColumnLossAgainstOriginalTest, MixAverages) {
  DomainHierarchy tree = RoleTree();
  auto loss = ColumnLossAgainstOriginal(
      Strings({"GP", "Nurse"}),
      Strings({"Medical Practitioner", "Medical Practitioner"}), tree);
  ASSERT_TRUE(loss.ok());
  EXPECT_DOUBLE_EQ(*loss, (0.2 + 1.0) / 2.0);
}

TEST(ColumnLossAgainstOriginalTest, SizeMismatchRejected) {
  DomainHierarchy tree = RoleTree();
  EXPECT_FALSE(
      ColumnLossAgainstOriginal(Strings({"GP"}), Strings({}), tree).ok());
}

}  // namespace
}  // namespace privmark
