// Unit tests for the incremental protection session (core/session.h):
// lifecycle errors, freeze-mode emission and suppression semantics, drift
// auto-rebinning, per-epoch detection, and pool reuse. The heavyweight
// byte-identity claims against one-shot Protect live in
// tests/properties/streaming_equivalence_test.cc.

#include "core/session.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/framework.h"
#include "core/manifest.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"
#include "watermark/hierarchical.h"

namespace privmark {
namespace {

constexpr size_t kRows = 2400;
constexpr uint64_t kSeed = 424242;

struct Env {
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  FrameworkConfig config;
};

Env MakeEnv(size_t num_threads = 1) {
  Env env;
  MedicalDataSpec spec;
  spec.num_rows = kRows;
  spec.seed = kSeed;
  env.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  env.metrics =
      MetricsFromDepthCuts(env.dataset->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  env.config.binning.k = 10;
  env.config.binning.enforce_joint = false;
  env.config.binning.num_threads = num_threads;
  env.config.watermark.num_threads = num_threads;
  // Small eta: the drift test detects marks from 600-row epochs, which
  // needs enough selected tuples for every wm bit to receive votes.
  env.config.key = {"session-k1", "session-k2", /*eta=*/10};
  return env;
}

TEST(ProtectionSessionTest, SingleBatchFlushMatchesProtect) {
  Env env = MakeEnv();
  ProtectionFramework framework(env.metrics, env.config);
  const auto protect = framework.Protect(env.dataset->table);
  ASSERT_TRUE(protect.ok());

  ProtectionSession session(env.metrics, env.config);
  const auto ingest = session.Ingest(env.dataset->table);
  ASSERT_TRUE(ingest.ok());
  EXPECT_EQ(ingest->rows_buffered, kRows);
  EXPECT_EQ(ingest->rows_emitted, 0u);
  EXPECT_FALSE(session.frozen());
  const auto flush = session.Flush();
  ASSERT_TRUE(flush.ok());
  EXPECT_TRUE(session.frozen());
  EXPECT_EQ(flush->epoch, 0u);

  EXPECT_EQ(TableToCsv(flush->outcome.watermarked),
            TableToCsv(protect->watermarked));
  EXPECT_EQ(TableToCsv(flush->outcome.binning.binned),
            TableToCsv(protect->binning.binned));
  EXPECT_EQ(flush->outcome.mark.ToString(), protect->mark.ToString());
  EXPECT_EQ(flush->outcome.identifier_statistic,
            protect->identifier_statistic);
  EXPECT_EQ(flush->outcome.embed.wmd_size, protect->embed.wmd_size);
  EXPECT_EQ(flush->outcome.embed.cells_changed, protect->embed.cells_changed);
}

TEST(ProtectionSessionTest, BatchSplitFreezeFlushMatchesProtect) {
  Env env = MakeEnv();
  ProtectionFramework framework(env.metrics, env.config);
  const auto protect = framework.Protect(env.dataset->table);
  ASSERT_TRUE(protect.ok());

  ProtectionSession session(env.metrics, env.config);
  for (size_t begin = 0; begin < kRows; begin += 97) {
    const auto ingest =
        session.Ingest(env.dataset->table.Slice(begin, begin + 97));
    ASSERT_TRUE(ingest.ok());
    EXPECT_FALSE(ingest->flushed);
  }
  const auto flush = session.Flush();
  ASSERT_TRUE(flush.ok());
  EXPECT_EQ(TableToCsv(flush->outcome.watermarked),
            TableToCsv(protect->watermarked));
}

TEST(ProtectionSessionTest, FrozenIngestEmitsImmediately) {
  Env env = MakeEnv();
  ProtectionSession session(env.metrics, env.config);
  ASSERT_TRUE(session.Ingest(env.dataset->table.Slice(0, 2000)).ok());
  ASSERT_TRUE(session.Flush().ok());

  const auto result =
      session.Ingest(env.dataset->table.Slice(2000, 2200));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->epoch, 0u);
  EXPECT_EQ(result->rows_buffered, 0u);
  EXPECT_EQ(result->rows_emitted + result->rows_suppressed, 200u);
  EXPECT_EQ(result->emitted.num_rows(), result->rows_emitted);
  // Emission joined epoch 0's bookkeeping.
  ASSERT_EQ(session.epochs().size(), 1u);
  EXPECT_EQ(session.epochs()[0].rows_emitted,
            2000u + result->rows_emitted);

  // Emitted labels come from the frozen generalization: every QI cell
  // must resolve to an ultimate node of epoch 0.
  const EpochRecord& epoch = session.epochs()[0];
  const std::vector<size_t> qi =
      result->emitted.schema().QuasiIdentifyingColumns();
  for (size_t r = 0; r < result->emitted.num_rows(); ++r) {
    for (size_t c = 0; c < qi.size(); ++c) {
      EXPECT_TRUE(epoch.ultimate[c]
                      .NodeForLabel(result->emitted.at(r, qi[c]).AsString())
                      .ok());
    }
  }
}

TEST(ProtectionSessionTest, FreezeSuppressesRowsOfUnestablishedBins) {
  // Hand-built two-column stream where the first flush leaves one bin per
  // column empty: [50,100) ages and Nurses never occur in the initial
  // load, so their cover nodes are vacuous. Frozen ingest must emit rows
  // of established bins and suppress the rest — that is exactly what
  // keeps the concatenated output k-anonymous under a frozen
  // generalization.
  DomainHierarchy age =
      BuildNumericHierarchy("age", {0, 25, 50, 75, 100}).ValueOrDie();
  DomainHierarchy role = HierarchyBuilder::FromOutline("role", R"(Person
  Doctor
  Nurse)").ValueOrDie();
  Schema schema;
  ASSERT_TRUE(
      schema.AddColumn({"id", ColumnRole::kIdentifying, ValueType::kString})
          .ok());
  ASSERT_TRUE(
      schema.AddColumn({"age", ColumnRole::kQuasiNumeric, ValueType::kInt64})
          .ok());
  ASSERT_TRUE(schema
                  .AddColumn({"role", ColumnRole::kQuasiCategorical,
                              ValueType::kString})
                  .ok());
  UsageMetrics metrics;
  metrics.trees = {&age, &role};
  metrics.maximal = {CutAtDepth(&age, 1), CutAtDepth(&role, 1)};

  FrameworkConfig config;
  config.binning.k = 2;
  config.binning.enforce_joint = false;
  ProtectionSession session(metrics, config);

  int next_id = 0;
  const auto make_batch = [&](const std::vector<std::pair<int, std::string>>&
                                  rows) {
    Table batch(schema);
    for (const auto& [age_value, role_value] : rows) {
      EXPECT_TRUE(
          batch
              .AppendRow({Value::String("id" + std::to_string(next_id++)),
                          Value::Int64(age_value), Value::String(role_value)})
              .ok());
    }
    return batch;
  };

  ASSERT_TRUE(session
                  .Ingest(make_batch({{10, "Doctor"},
                                      {10, "Doctor"},
                                      {30, "Doctor"},
                                      {30, "Doctor"}}))
                  .ok());
  ASSERT_TRUE(session.Flush().ok());

  // One row per fate: established bin (young doctor), empty age bin,
  // empty role bin.
  const auto result = session.Ingest(
      make_batch({{20, "Doctor"}, {60, "Doctor"}, {20, "Nurse"}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_emitted, 1u);
  EXPECT_EQ(result->rows_suppressed, 2u);
  ASSERT_EQ(result->emitted.num_rows(), 1u);
  // The survivor is the young doctor, generalized under epoch 0's nodes.
  EXPECT_TRUE(session.epochs()[0]
                  .ultimate[0]
                  .NodeForLabel(result->emitted.at(0, 1).AsString())
                  .ok());
  EXPECT_EQ(session.rows_suppressed(), 2u);
}

TEST(ProtectionSessionTest, DriftPolicyAutoRebinsAndDetects) {
  Env env = MakeEnv();
  env.config.auto_epsilon = true;
  SessionConfig session_config;
  session_config.policy = RebinPolicy::kRebinOnDrift;
  session_config.drift_threshold = 0.5;
  ProtectionSession session(env.metrics, env.config, session_config);

  ASSERT_TRUE(session.Ingest(env.dataset->table.Slice(0, 1200)).ok());
  const auto first = session.Flush();
  ASSERT_TRUE(first.ok());
  Table concatenated = first->outcome.watermarked.Clone();

  size_t flushes = 0;
  for (size_t begin = 1200; begin < kRows; begin += 200) {
    const auto result =
        session.Ingest(env.dataset->table.Slice(begin, begin + 200));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->flushed) {
      ++flushes;
      for (size_t r = 0; r < result->emitted.num_rows(); ++r) {
        ASSERT_TRUE(concatenated.AppendRow(result->emitted.row(r)).ok());
      }
    }
  }
  // 1200 basis rows at threshold 0.5 -> a new epoch every 600 buffered.
  EXPECT_GE(flushes, 1u);
  ASSERT_EQ(session.epochs().size(), 1u + flushes);
  EXPECT_EQ(session.rows_buffered(), kRows - 1200 - flushes * 600);

  // Every epoch's emitted table is independently k-anonymous per
  // attribute and detects its own mark.
  const auto reports = session.DetectAcrossEpochs(concatenated);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  size_t offset = 0;
  for (const EpochRecord& epoch : session.epochs()) {
    const Table segment =
        concatenated.Slice(offset, offset + epoch.rows_emitted);
    offset += epoch.rows_emitted;
    for (size_t qi : segment.schema().QuasiIdentifyingColumns()) {
      EXPECT_TRUE(segment.IsKAnonymous({qi}, env.config.binning.k))
          << "epoch " << epoch.epoch << " column " << qi;
    }
    // Detection: every voted bit must match (no flips — a small epoch
    // may leave a rare wmd position unvoted, which is an erasure, not a
    // detection failure), and the agreement must be far beyond chance.
    const DetectReport& report = (*reports)[epoch.epoch];
    size_t voted = 0;
    size_t flips = 0;
    for (size_t j = 0; j < epoch.mark.size(); ++j) {
      if (!report.bit_voted[j]) continue;
      ++voted;
      if (report.recovered.Get(j) != epoch.mark.Get(j)) ++flips;
    }
    EXPECT_EQ(flips, 0u) << "epoch " << epoch.epoch;
    EXPECT_GE(voted, epoch.mark.size() - 2) << "epoch " << epoch.epoch;
    const auto p_value = DetectionPValue(epoch.mark, report);
    ASSERT_TRUE(p_value.ok());
    EXPECT_LT(*p_value, 1e-4) << "epoch " << epoch.epoch;
  }
}

TEST(ProtectionSessionTest, EpochManifestRoundTripsToDetection) {
  Env env = MakeEnv();
  ProtectionSession session(env.metrics, env.config);
  ASSERT_TRUE(session.Ingest(env.dataset->table).ok());
  const auto flush = session.Flush();
  ASSERT_TRUE(flush.ok());

  const auto manifest =
      ManifestFromEpoch(session.epochs()[0], env.dataset->table.schema(),
                        env.metrics, env.config);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->wmd_size, flush->outcome.embed.wmd_size);
  const auto watermarker = WatermarkerFromManifest(
      *manifest, flush->outcome.watermarked, env.dataset->trees(),
      env.config.key, env.config.watermark);
  ASSERT_TRUE(watermarker.ok());
  const auto report = watermarker->Detect(
      flush->outcome.watermarked, manifest->mark_bits, manifest->wmd_size);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->recovered.ToString(), flush->outcome.mark.ToString());
}

TEST(ProtectionSessionTest, LifecycleErrors) {
  Env env = MakeEnv();
  ProtectionSession session(env.metrics, env.config);
  // Flush before any ingest.
  EXPECT_FALSE(session.Flush().ok());
  ASSERT_TRUE(session.Ingest(env.dataset->table.Slice(0, 1200)).ok());
  ASSERT_TRUE(session.Flush().ok());
  // Frozen session with nothing buffered: nothing to flush.
  EXPECT_FALSE(session.Flush().ok());

  // A batch with a different schema is rejected.
  Schema other;
  ASSERT_TRUE(
      other.AddColumn({"id", ColumnRole::kIdentifying, ValueType::kString})
          .ok());
  const auto bad = session.Ingest(Table(other));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtectionSessionTest, EmptyBatchesAreHarmless) {
  Env env = MakeEnv();
  ProtectionSession session(env.metrics, env.config);
  ASSERT_TRUE(session.Ingest(Table(env.dataset->table.schema())).ok());
  ASSERT_TRUE(session.Ingest(env.dataset->table).ok());
  ASSERT_TRUE(session.Ingest(Table(env.dataset->table.schema())).ok());
  const auto flush = session.Flush();
  ASSERT_TRUE(flush.ok());
  EXPECT_EQ(flush->outcome.watermarked.num_rows(), kRows);
}

TEST(ProtectionSessionTest, DetectAcrossEpochsRejectsWrongRowCount) {
  Env env = MakeEnv();
  ProtectionSession session(env.metrics, env.config);
  ASSERT_TRUE(session.Ingest(env.dataset->table).ok());
  ASSERT_TRUE(session.Flush().ok());
  const auto bad = session.DetectAcrossEpochs(Table(env.dataset->table.schema()));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtectionSessionTest, SessionPoolIsReusedAcrossBatches) {
  Env env = MakeEnv(/*num_threads=*/2);
  ProtectionSession session(env.metrics, env.config);
  ASSERT_NE(session.pool(), nullptr);
  ThreadPool* const pool = session.pool();
  EXPECT_EQ(pool->num_threads(), 2u);
  ASSERT_TRUE(session.Ingest(env.dataset->table.Slice(0, 1200)).ok());
  ASSERT_TRUE(session.Flush().ok());
  ASSERT_TRUE(session.Ingest(env.dataset->table.Slice(1200, 2400)).ok());
  // The same pool object serves the whole session, and both agent configs
  // point at it.
  EXPECT_EQ(session.pool(), pool);
  EXPECT_EQ(session.config().binning.pool, pool);
  EXPECT_EQ(session.config().watermark.pool, pool);
}

TEST(ProtectionSessionTest, CallerOwnedPoolWins) {
  Env env = MakeEnv(/*num_threads=*/1);
  const auto pool = MakeThreadPool(3);
  env.config.binning.pool = pool.get();
  env.config.watermark.pool = pool.get();
  ProtectionSession session(env.metrics, env.config);
  EXPECT_EQ(session.pool(), pool.get());
  ASSERT_TRUE(session.Ingest(env.dataset->table).ok());
  ASSERT_TRUE(session.Flush().ok());
}

TEST(ProtectionSessionTest, InjectedPoolBackfillsTheOtherAgent) {
  // The admission-control contract: when a caller (the service) injects
  // a granted pool for one agent, the other agent must inherit that same
  // pool — never a fresh one built from the num_threads knobs, which
  // record the *requested* width, not the granted one.
  Env env = MakeEnv(/*num_threads=*/8);  // the request: 8 threads
  const auto granted = MakeThreadPool(2);  // the grant: 2 threads
  env.config.binning.pool = granted.get();
  env.config.watermark.pool = nullptr;
  ProtectionSession session(env.metrics, env.config);
  EXPECT_EQ(session.config().binning.pool, granted.get());
  EXPECT_EQ(session.config().watermark.pool, granted.get());
  EXPECT_EQ(session.pool()->num_threads(), 2u);
  ASSERT_TRUE(session.Ingest(env.dataset->table).ok());
  ASSERT_TRUE(session.Flush().ok());

  // Symmetric: a watermark-side injection governs the binning agent too.
  Env env2 = MakeEnv(/*num_threads=*/8);
  env2.config.watermark.pool = granted.get();
  ProtectionSession session2(env2.metrics, env2.config);
  EXPECT_EQ(session2.config().binning.pool, granted.get());
  EXPECT_EQ(session2.pool(), granted.get());
}

}  // namespace
}  // namespace privmark