// Unit tests for the write-ahead session journal (core/journal.h):
// record round-trips, torn-tail tolerance, payload codecs, and
// journal-backed session recovery (ProtectionSession::Recover). The
// crash-under-failpoint acceptance suite lives in
// tests/integration/crash_recovery_test.cc.

#include "core/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "datagen/medical_data.h"
#include "relation/csv.h"

namespace privmark {
namespace {

constexpr size_t kRows = 800;
constexpr uint64_t kSeed = 77;

struct Env {
  std::unique_ptr<MedicalDataset> dataset;
  UsageMetrics metrics;
  FrameworkConfig config;
};

Env MakeEnv() {
  Env env;
  MedicalDataSpec spec;
  spec.num_rows = kRows;
  spec.seed = kSeed;
  env.dataset = std::make_unique<MedicalDataset>(
      std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  env.metrics =
      MetricsFromDepthCuts(env.dataset->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
  env.config.binning.k = 10;
  env.config.binning.enforce_joint = false;
  env.config.key = {"journal-k1", "journal-k2", /*eta=*/10};
  env.config.key_id = "journal-owner";
  return env;
}

// A fresh path under the test temp dir; removes any previous run's file
// (SessionJournal::Create refuses to clobber).
std::string FreshPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(file));
  return std::string(std::istreambuf_iterator<char>(file),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(file));
}

// Appends `rows` to `*all` (adopting the schema on first use) so emitted
// output accumulates as one table, comparable byte-for-byte via CSV.
void AppendAll(Table* all, const Table& rows) {
  if (rows.num_rows() == 0) return;
  if (all->schema().num_columns() == 0) *all = Table(rows.schema());
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    ASSERT_TRUE(all->AppendRow(rows.row(r)).ok());
  }
}

TEST(SessionJournalTest, RecordsRoundTrip) {
  Env env = MakeEnv();
  const std::string path = FreshPath("journal_roundtrip.wal");
  auto journal = SessionJournal::Create(path);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_TRUE((*journal)->AppendConfig(env.config, SessionConfig()).ok());
  ASSERT_TRUE((*journal)->AppendKeyId("journal-owner").ok());
  ASSERT_TRUE(
      (*journal)->AppendSchema(env.dataset->table.schema()).ok());
  ASSERT_TRUE((*journal)->AppendBatch(env.dataset->table.Slice(0, 50)).ok());
  ASSERT_TRUE((*journal)->AppendFlushMarker().ok());
  EpochRecord epoch;
  epoch.epoch = 0;
  epoch.rows_emitted = 47;
  epoch.rows_suppressed = 3;
  ASSERT_TRUE((*journal)->AppendEpochSealed(epoch).ok());

  const auto contents = SessionJournal::ReadAll(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  ASSERT_EQ(contents->records.size(), 6u);
  EXPECT_FALSE(contents->tail_truncated);
  EXPECT_EQ(contents->records[0].type, JournalRecordType::kConfig);
  EXPECT_EQ(contents->records[1].type, JournalRecordType::kKeyId);
  EXPECT_EQ(contents->records[1].payload, "journal-owner");
  EXPECT_EQ(contents->records[2].type, JournalRecordType::kSchema);
  EXPECT_EQ(contents->records[3].type, JournalRecordType::kBatch);
  EXPECT_EQ(contents->records[3].payload,
            SessionJournal::EncodeBatch(env.dataset->table.Slice(0, 50)));
  EXPECT_EQ(contents->records[4].type, JournalRecordType::kFlushMarker);
  EXPECT_TRUE(contents->records[4].payload.empty());
  EXPECT_EQ(contents->records[5].type, JournalRecordType::kEpochSealed);
  const auto seal =
      SessionJournal::DecodeEpochSealed(contents->records[5].payload);
  ASSERT_TRUE(seal.ok());
  EXPECT_EQ(seal->epoch, 0u);
  EXPECT_EQ(seal->rows_emitted, 47u);
  EXPECT_EQ(seal->rows_suppressed, 3u);
}

TEST(SessionJournalTest, CreateRefusesToClobber) {
  const std::string path = FreshPath("journal_clobber.wal");
  ASSERT_TRUE(SessionJournal::Create(path).ok());
  const auto second = SessionJournal::Create(path);
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST(SessionJournalTest, RejectsForeignFiles) {
  const std::string path = FreshPath("journal_foreign.wal");
  WriteFileBytes(path, "not a journal at all");
  EXPECT_EQ(SessionJournal::ReadAll(path).status().code(),
            StatusCode::kInvalidArgument);
  WriteFileBytes(path, "PRVM");  // shorter than the magic
  EXPECT_EQ(SessionJournal::ReadAll(path).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SessionJournal::ReadAll(path + ".missing").status().code(),
            StatusCode::kIOError);
}

TEST(SessionJournalTest, TornTailEndsTheValidPrefix) {
  Env env = MakeEnv();
  const std::string path = FreshPath("journal_torn.wal");
  {
    auto journal = SessionJournal::Create(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->AppendConfig(env.config, SessionConfig()).ok());
    ASSERT_TRUE((*journal)->AppendBatch(env.dataset->table.Slice(0, 20)).ok());
  }
  const std::string bytes = ReadFileBytes(path);
  const auto intact = SessionJournal::ReadAll(path);
  ASSERT_TRUE(intact.ok());
  ASSERT_EQ(intact->records.size(), 2u);
  ASSERT_EQ(intact->valid_bytes, bytes.size());
  const size_t first_record_end =
      8 + 9 + intact->records[0].payload.size();

  // Truncate at every interesting cut inside the second record: header
  // cut short, payload cut short, one byte shy of complete.
  for (const size_t cut :
       {first_record_end + 3, first_record_end + 9 + 5, bytes.size() - 1}) {
    WriteFileBytes(path, bytes.substr(0, cut));
    const auto contents = SessionJournal::ReadAll(path);
    ASSERT_TRUE(contents.ok()) << "cut at " << cut;
    EXPECT_EQ(contents->records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(contents->valid_bytes, first_record_end) << "cut at " << cut;
    EXPECT_TRUE(contents->tail_truncated) << "cut at " << cut;
  }
}

TEST(SessionJournalTest, CorruptCrcEndsTheValidPrefixMidFile) {
  Env env = MakeEnv();
  const std::string path = FreshPath("journal_crc.wal");
  {
    auto journal = SessionJournal::Create(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->AppendConfig(env.config, SessionConfig()).ok());
    ASSERT_TRUE((*journal)->AppendBatch(env.dataset->table.Slice(0, 20)).ok());
    ASSERT_TRUE((*journal)->AppendFlushMarker().ok());
  }
  std::string bytes = ReadFileBytes(path);
  const auto intact = SessionJournal::ReadAll(path);
  ASSERT_TRUE(intact.ok());
  ASSERT_EQ(intact->records.size(), 3u);
  // Flip one payload byte of the *second* record: the first record must
  // survive, the corrupt one and everything after must be discarded.
  const size_t second_payload =
      8 + 9 + intact->records[0].payload.size() + 9 + 10;
  bytes[second_payload] = static_cast<char>(bytes[second_payload] ^ 0x40);
  WriteFileBytes(path, bytes);
  const auto contents = SessionJournal::ReadAll(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 1u);
  EXPECT_TRUE(contents->tail_truncated);
  EXPECT_EQ(contents->records[0].type, JournalRecordType::kConfig);
}

TEST(SessionJournalTest, ConfigFingerprintDetectsMismatches) {
  Env env = MakeEnv();
  SessionConfig session;
  const std::string payload = SessionJournal::EncodeConfig(env.config, session);
  EXPECT_TRUE(SessionJournal::CheckConfig(payload, env.config, session).ok());

  FrameworkConfig other = env.config;
  other.binning.k = 11;
  const Status mismatch = SessionJournal::CheckConfig(payload, other, session);
  EXPECT_EQ(mismatch.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mismatch.message().find("k = 10"), std::string::npos);
  EXPECT_NE(mismatch.message().find("k = 11"), std::string::npos);

  SessionConfig drift;
  drift.policy = RebinPolicy::kRebinOnDrift;
  drift.drift_threshold = 0.25;
  EXPECT_FALSE(SessionJournal::CheckConfig(payload, env.config, drift).ok());
  EXPECT_TRUE(
      SessionJournal::CheckConfig(SessionJournal::EncodeConfig(env.config,
                                                               drift),
                                  env.config, drift)
          .ok());
}

TEST(SessionJournalTest, SchemaCodecRoundTrips) {
  Env env = MakeEnv();
  const Schema& schema = env.dataset->table.schema();
  const std::string payload = SessionJournal::EncodeSchema(schema);
  const auto decoded = SessionJournal::DecodeSchema(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(*decoded == schema);

  EXPECT_FALSE(SessionJournal::DecodeSchema("").ok());
  EXPECT_FALSE(SessionJournal::DecodeSchema("no separators here").ok());
  EXPECT_FALSE(SessionJournal::DecodeSchema("bogus-role|int64|age").ok());
  EXPECT_FALSE(SessionJournal::DecodeSchema("other|bogus-type|age").ok());
  // Duplicate column names are rejected by Schema::AddColumn.
  EXPECT_FALSE(
      SessionJournal::DecodeSchema("other|int64|a\nother|int64|a").ok());
}

// The batch codec must round-trip *exactly* what Ingest saw: a lossy
// journal (e.g. "%.6f"-formatted doubles, Null collapsing to "") makes
// Recover rebuild a session from different values than the original,
// silently breaking the byte-identical replay guarantee.
TEST(SessionJournalTest, BatchCodecRoundTripsEveryValueLosslessly) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"ssn", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  ASSERT_TRUE(schema.AddColumn({"reading", ColumnRole::kQuasiNumeric,
                                ValueType::kDouble}).ok());
  ASSERT_TRUE(schema.AddColumn({"count", ColumnRole::kOther,
                                ValueType::kInt64}).ok());
  ASSERT_TRUE(schema.AddColumn({"note", ColumnRole::kOther,
                                ValueType::kString}).ok());
  Table t(schema);
  // More than 6 decimals, negative zero, and extremes: none survive a
  // decimal round-trip at fixed precision.
  ASSERT_TRUE(t.AppendRow({Value::String("a"),
                           Value::Double(0.12345678901234567),
                           Value::Int64(INT64_MIN),
                           Value::String("plain")}).ok());
  // Null vs empty string in the same column, and cells with bytes CSV
  // cannot carry (embedded NUL, newline, quote, comma).
  ASSERT_TRUE(t.AppendRow({Value::String(std::string("nu\0l", 4)),
                           Value::Double(-0.0), Value::Int64(INT64_MAX),
                           Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value::String(""),
                           Value::Double(1e-310),  // subnormal
                           Value::Int64(0),
                           Value::String("line\nbreak,\"q\"")}).ok());

  const std::string payload = SessionJournal::EncodeBatch(t);
  const auto back = SessionJournal::DecodeBatch(payload, schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      EXPECT_TRUE(back->at(r, c) == t.at(r, c)) << r << "," << c;
    }
  }
}

TEST(SessionJournalTest, BatchCodecRejectsMalformedPayloads) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"ssn", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  ASSERT_TRUE(schema.AddColumn({"age", ColumnRole::kQuasiNumeric,
                                ValueType::kInt64}).ok());
  Table t(schema);
  ASSERT_TRUE(t.AppendRow({Value::String("abc"), Value::Int64(30)}).ok());
  const std::string payload = SessionJournal::EncodeBatch(t);
  ASSERT_TRUE(SessionJournal::DecodeBatch(payload, schema).ok());

  // Truncations at every structural boundary.
  for (const size_t cut : {size_t{0}, size_t{4}, size_t{8}, size_t{9},
                           size_t{11}, payload.size() - 1}) {
    EXPECT_FALSE(
        SessionJournal::DecodeBatch(payload.substr(0, cut), schema).ok())
        << "cut at " << cut;
  }
  // Trailing garbage, unknown cell tag, and a schema arity mismatch.
  EXPECT_FALSE(SessionJournal::DecodeBatch(payload + "x", schema).ok());
  std::string bad_tag = payload;
  bad_tag[8] = 42;  // first cell's type tag
  EXPECT_FALSE(SessionJournal::DecodeBatch(bad_tag, schema).ok());
  Schema wider = schema;
  ASSERT_TRUE(wider.AddColumn({"extra", ColumnRole::kOther,
                               ValueType::kString}).ok());
  EXPECT_FALSE(SessionJournal::DecodeBatch(payload, wider).ok());
  // A string length pointing past the payload must not over-read.
  std::string bad_length = payload;
  bad_length[9] = static_cast<char>(0xff);  // first string's length field
  EXPECT_FALSE(SessionJournal::DecodeBatch(bad_length, schema).ok());
}

// Doubles that are lossy under decimal formatting must survive the
// on-disk journal round-trip (append, read back, decode) — the
// regression that motivated the binary batch codec.
TEST(SessionJournalTest, JournaledDoublesSurviveAtFullPrecision) {
  Env env = MakeEnv();
  const std::string path = FreshPath("journal_doubles.wal");
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"ssn", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  ASSERT_TRUE(schema.AddColumn({"reading", ColumnRole::kQuasiNumeric,
                                ValueType::kDouble}).ok());
  Table batch(schema);
  ASSERT_TRUE(batch.AppendRow({Value::String("p0"),
                               Value::Double(36.60000001)}).ok());
  ASSERT_TRUE(batch.AppendRow({Value::String("p1"),
                               Value::Double(36.600000004)}).ok());
  {
    auto journal = SessionJournal::Create(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->AppendConfig(env.config, SessionConfig()).ok());
    ASSERT_TRUE((*journal)->AppendSchema(schema).ok());
    ASSERT_TRUE((*journal)->AppendBatch(batch).ok());
  }
  const auto contents = SessionJournal::ReadAll(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 3u);
  const auto decoded =
      SessionJournal::DecodeBatch(contents->records[2].payload, schema);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // Bit-exact, where "%.6f" would have collapsed both rows to 36.600000.
  EXPECT_EQ(decoded->at(0, 1).AsDouble(), 36.60000001);
  EXPECT_EQ(decoded->at(1, 1).AsDouble(), 36.600000004);
  EXPECT_TRUE(decoded->at(0, 1) != decoded->at(1, 1));
}

TEST(SessionJournalTest, SealCodecRejectsMalformedPayloads) {
  EXPECT_FALSE(SessionJournal::DecodeEpochSealed("").ok());
  EXPECT_FALSE(SessionJournal::DecodeEpochSealed("epoch = x").ok());
  EXPECT_FALSE(SessionJournal::DecodeEpochSealed("rows_emitted = 4").ok());
  EXPECT_FALSE(
      SessionJournal::DecodeEpochSealed("epoch = 0\nbogus = 1").ok());
  const auto minimal = SessionJournal::DecodeEpochSealed("epoch = 2");
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->epoch, 2u);
  EXPECT_EQ(minimal->rows_emitted, 0u);
}

// The heart of the tentpole: a journaled session dies (here: simply
// abandoned mid-stream), Recover replays its journal, and the recovered
// session's past and future emissions are byte-identical to a session
// that never crashed.
TEST(SessionJournalTest, RecoveredSessionMatchesUncrashedRun) {
  Env env = MakeEnv();
  const std::string path = FreshPath("journal_recover.wal");

  // Reference: uncrashed run over the same batch sequence.
  ProtectionSession reference(env.metrics, env.config);
  Table reference_emitted;
  ASSERT_TRUE(reference.Ingest(env.dataset->table.Slice(0, 400)).ok());
  const auto ref_flush = reference.Flush();
  ASSERT_TRUE(ref_flush.ok());
  AppendAll(&reference_emitted, ref_flush->outcome.watermarked);
  const auto ref_mid = reference.Ingest(env.dataset->table.Slice(400, 600));
  ASSERT_TRUE(ref_mid.ok());
  AppendAll(&reference_emitted, ref_mid->emitted);
  const auto ref_tail = reference.Ingest(env.dataset->table.Slice(600, 800));
  ASSERT_TRUE(ref_tail.ok());
  AppendAll(&reference_emitted, ref_tail->emitted);

  // Journaled run: dies after the mid ingest (the object is destroyed
  // without any clean shutdown; the journal file is all that survives).
  Table crashed_emitted;
  {
    ProtectionSession session(env.metrics, env.config);
    auto journal = SessionJournal::Create(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(session.AttachJournal(std::move(*journal)).ok());
    ASSERT_TRUE(session.Ingest(env.dataset->table.Slice(0, 400)).ok());
    const auto flush = session.Flush();
    ASSERT_TRUE(flush.ok()) << flush.status().ToString();
    EXPECT_TRUE(session.journal_status().ok());
    AppendAll(&crashed_emitted, flush->outcome.watermarked);
    const auto mid = session.Ingest(env.dataset->table.Slice(400, 600));
    ASSERT_TRUE(mid.ok());
    AppendAll(&crashed_emitted, mid->emitted);
  }

  auto recovered = ProtectionSession::Recover(path, env.metrics, env.config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->batches_applied, 2u);
  EXPECT_EQ(recovered->epochs_sealed, 1u);
  EXPECT_FALSE(recovered->tail_truncated);
  // Replay reproduced everything the crashed session emitted, byte for
  // byte.
  EXPECT_EQ(TableToCsv(recovered->emitted), TableToCsv(crashed_emitted));
  ASSERT_EQ(recovered->session->epochs().size(), 1u);
  EXPECT_EQ(recovered->session->rows_ingested(), 600u);

  // And the future matches too: the tail batch emits the same bytes the
  // reference produced.
  const auto tail =
      recovered->session->Ingest(env.dataset->table.Slice(600, 800));
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  Table resumed = recovered->emitted.Clone();
  AppendAll(&resumed, tail->emitted);
  EXPECT_EQ(TableToCsv(resumed), TableToCsv(reference_emitted));

  // The resumed journal kept journaling: a second recovery sees the
  // tail batch as well.
  auto again = ProtectionSession::Recover(path, env.metrics, env.config);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->batches_applied, 3u);
  EXPECT_EQ(TableToCsv(again->emitted), TableToCsv(reference_emitted));
}

TEST(SessionJournalTest, RecoverValidatesConfigAndKeyId) {
  Env env = MakeEnv();
  const std::string path = FreshPath("journal_validate.wal");
  {
    ProtectionSession session(env.metrics, env.config);
    auto journal = SessionJournal::Create(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(session.AttachJournal(std::move(*journal)).ok());
    ASSERT_TRUE(session.Ingest(env.dataset->table.Slice(0, 200)).ok());
  }
  FrameworkConfig wrong_k = env.config;
  wrong_k.binning.k = 7;
  EXPECT_EQ(ProtectionSession::Recover(path, env.metrics, wrong_k)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  FrameworkConfig wrong_id = env.config;
  wrong_id.key_id = "someone-else";
  EXPECT_EQ(ProtectionSession::Recover(path, env.metrics, wrong_id)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  SessionConfig wrong_policy;
  wrong_policy.policy = RebinPolicy::kRebinOnDrift;
  EXPECT_EQ(ProtectionSession::Recover(path, env.metrics, env.config,
                                       wrong_policy)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionJournalTest, RecoverTruncatesTornTailAndResumes) {
  Env env = MakeEnv();
  const std::string path = FreshPath("journal_torn_resume.wal");
  {
    ProtectionSession session(env.metrics, env.config);
    auto journal = SessionJournal::Create(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(session.AttachJournal(std::move(*journal)).ok());
    ASSERT_TRUE(session.Ingest(env.dataset->table.Slice(0, 300)).ok());
    ASSERT_TRUE(session.Ingest(env.dataset->table.Slice(300, 400)).ok());
  }
  // Simulate a crash mid-append: shear the last record in half.
  const std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 40));

  auto recovered = ProtectionSession::Recover(path, env.metrics, env.config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->tail_truncated);
  EXPECT_EQ(recovered->batches_applied, 1u);
  EXPECT_EQ(recovered->session->rows_ingested(), 300u);

  // The torn bytes are gone from disk; re-ingesting the lost batch puts
  // the stream back on track and journals cleanly after the truncation.
  ASSERT_TRUE(
      recovered->session->Ingest(env.dataset->table.Slice(300, 400)).ok());
  auto again = ProtectionSession::Recover(path, env.metrics, env.config);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again->tail_truncated);
  EXPECT_EQ(again->batches_applied, 2u);
  EXPECT_EQ(again->session->rows_ingested(), 400u);
}

TEST(SessionJournalTest, EmptyJournalRecoversToFreshSession) {
  Env env = MakeEnv();
  const std::string path = FreshPath("journal_empty.wal");
  {
    auto journal = SessionJournal::Create(path);
    ASSERT_TRUE(journal.ok());
    // Crash before the config record was ever appended.
  }
  auto recovered = ProtectionSession::Recover(path, env.metrics, env.config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->batches_applied, 0u);
  EXPECT_EQ(recovered->session->rows_ingested(), 0u);
  // The resumed journal was re-initialized as fresh: ingest works and
  // the next recovery replays it.
  ASSERT_TRUE(
      recovered->session->Ingest(env.dataset->table.Slice(0, 100)).ok());
  auto again = ProtectionSession::Recover(path, env.metrics, env.config);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->batches_applied, 1u);
}

TEST(SessionJournalTest, AttachJournalLifecycleErrors) {
  Env env = MakeEnv();
  ProtectionSession session(env.metrics, env.config);
  EXPECT_FALSE(session.AttachJournal(nullptr).ok());
  ASSERT_TRUE(session.Ingest(env.dataset->table.Slice(0, 100)).ok());
  // Fresh journals must be attached before the first ingest.
  auto late = SessionJournal::Create(FreshPath("journal_late.wal"));
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(session.AttachJournal(std::move(*late)).code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionJournalTest, DriftEpochsJournalAndRecover) {
  Env env = MakeEnv();
  SessionConfig drift;
  drift.policy = RebinPolicy::kRebinOnDrift;
  drift.drift_threshold = 1.0;
  const std::string path = FreshPath("journal_drift.wal");

  ProtectionSession reference(env.metrics, env.config, drift);
  Table reference_emitted;
  {
    ProtectionSession session(env.metrics, env.config, drift);
    auto journal = SessionJournal::Create(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(session.AttachJournal(std::move(*journal)).ok());
    for (size_t begin = 0; begin < kRows; begin += 100) {
      const Table batch = env.dataset->table.Slice(begin, begin + 100);
      const auto ref = reference.Ingest(batch);
      ASSERT_TRUE(ref.ok()) << begin << " " << ref.status().ToString();
      AppendAll(&reference_emitted, ref->emitted);
      ASSERT_TRUE(session.Ingest(batch).ok());
      if (begin == 300) {
        const auto flush = session.Flush();
        ASSERT_TRUE(flush.ok());
        const auto ref_flush = reference.Flush();
        ASSERT_TRUE(ref_flush.ok());
        AppendAll(&reference_emitted, ref_flush->outcome.watermarked);
      }
    }
    ASSERT_GE(session.epochs().size(), 2u);  // drift re-binned at least once
  }
  auto recovered =
      ProtectionSession::Recover(path, env.metrics, env.config, drift);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->batches_applied, kRows / 100);
  EXPECT_EQ(recovered->epochs_sealed, recovered->session->epochs().size());
  EXPECT_EQ(TableToCsv(recovered->emitted), TableToCsv(reference_emitted));
}

}  // namespace
}  // namespace privmark
