// Golden-file coverage for the --json report emitters: hand-built
// reports with fixed values, byte-compared against checked-in golden
// files. Formatting here is a compatibility surface (scripts parse it),
// so any change must show up as a reviewed golden diff. Regenerate with
//   PRIVMARK_UPDATE_GOLDEN=1 ./core_report_json_test

#include "core/report_json.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace privmark {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(PRIVMARK_TEST_SOURCE_DIR) + "/core/golden/" + name;
}

void ExpectMatchesGolden(const std::string& actual, const std::string& name) {
  const std::string path = GoldenPath(name);
  if (std::getenv("PRIVMARK_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with PRIVMARK_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str()) << name;
}

DetectReport SampleDetection() {
  DetectReport report;
  report.recovered = BitVector::FromString("10110010").ValueOrDie();
  report.bit_voted = {true, true, true, true, true, false, true, true};
  report.vote_margin = {9.0, -14.0, 11.0, 3.0, -5.0, 0.0, 8.0, -6.0};
  report.tuples_selected = 42;
  report.slots_read = 164;
  report.slots_skipped = 7;
  return report;
}

KeyVerdict SampleVerdict(const std::string& name, double score,
                         bool detected) {
  KeyVerdict verdict;
  verdict.key_name = name;
  verdict.detection = SampleDetection();
  verdict.margin_ratio = 0.921875;
  verdict.mark_match = score;
  verdict.p_value = 9.5367431640625e-07;
  verdict.score = score;
  verdict.detected = detected;
  return verdict;
}

TEST(ReportJsonTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(ReportJsonTest, DetectReportMatchesGolden) {
  ExpectMatchesGolden(DetectReportJson("clinic \"east\"", SampleDetection()),
                      "detect_report.json");
}

TEST(ReportJsonTest, CmpReportMatchesGolden) {
  const BitVector expected = BitVector::FromString("10110011").ValueOrDie();
  ExpectMatchesGolden(
      CmpReportJson(SampleVerdict("clinic-east", 0.95, true), expected, 0.8),
      "cmp_report.json");
}

TEST(ReportJsonTest, FingerprintReportMatchesGolden) {
  FingerprintReport report;
  report.verdicts.push_back(SampleVerdict("decoy", 0.55, false));
  report.verdicts.push_back(SampleVerdict("clinic-east", 1.0, true));
  report.ranking = {1, 0};  // rank order, not registry order
  report.keys_detected = 1;
  report.collusion = false;
  ExpectMatchesGolden(FingerprintReportJson(report, 0.8),
                      "fingerprint_report.json");
}

TEST(ReportJsonTest, EmptyRegistryScanStillWellFormed) {
  FingerprintReport report;
  const std::string json = FingerprintReportJson(report, 0.8);
  EXPECT_NE(json.find("\"keys_scanned\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"keys\": ["), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

}  // namespace
}  // namespace privmark
