#include "core/framework.h"

#include <gtest/gtest.h>

#include <memory>

#include "datagen/medical_data.h"
#include "metrics/info_loss.h"

namespace privmark {
namespace {

class FrameworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MedicalDataSpec spec;
    spec.num_rows = 2500;
    spec.seed = 31;
    dataset_ = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
  }

  FrameworkConfig BaseConfig() const {
    FrameworkConfig config;
    config.binning.k = 12;
    config.binning.enforce_joint = false;
    config.key.k1 = "fw-k1";
    config.key.k2 = "fw-k2";
    config.key.eta = 8;
    return config;
  }

  UsageMetrics Metrics() const {
    return MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1})
        .ValueOrDie();
  }

  std::unique_ptr<MedicalDataset> dataset_;
};

TEST_F(FrameworkTest, ProtectProducesAllOutputs) {
  ProtectionFramework fw(Metrics(), BaseConfig());
  auto outcome = fw.Protect(dataset_->table);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->watermarked.num_rows(), dataset_->table.num_rows());
  EXPECT_EQ(outcome->mark.size(), 20u);
  EXPECT_GT(outcome->embed.slots_embedded, 0u);
  EXPECT_GT(outcome->identifier_statistic, 0.0);
  EXPECT_EQ(outcome->seamlessness.size(), 5u);
}

TEST_F(FrameworkTest, MarkIsDerivedFromIdentifierStatistic) {
  ProtectionFramework fw(Metrics(), BaseConfig());
  auto outcome = fw.Protect(dataset_->table);
  ASSERT_TRUE(outcome.ok());
  auto expected = DeriveOwnershipMark(outcome->identifier_statistic, 20,
                                      HashAlgorithm::kSha1);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(outcome->mark, *expected);
}

TEST_F(FrameworkTest, ExplicitMarkIsUsedWhenConfigured) {
  FrameworkConfig config = BaseConfig();
  config.derive_mark_from_identifiers = false;
  config.explicit_mark =
      BitVector::FromString("11110000111100001111").ValueOrDie();
  ProtectionFramework fw(Metrics(), config);
  auto outcome = fw.Protect(dataset_->table);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->mark, config.explicit_mark);
}

TEST_F(FrameworkTest, MissingExplicitMarkRejected) {
  FrameworkConfig config = BaseConfig();
  config.derive_mark_from_identifiers = false;
  ProtectionFramework fw(Metrics(), config);
  EXPECT_FALSE(fw.Protect(dataset_->table).ok());
}

TEST_F(FrameworkTest, DetectionRoundTripThroughFramework) {
  ProtectionFramework fw(Metrics(), BaseConfig());
  auto outcome = fw.Protect(dataset_->table);
  ASSERT_TRUE(outcome.ok());
  HierarchicalWatermarker wm = fw.MakeWatermarker(outcome->binning);
  auto detect = wm.Detect(outcome->watermarked, outcome->mark.size(),
                          outcome->embed.wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->recovered, outcome->mark);
}

TEST_F(FrameworkTest, WatermarkInterferenceIsMinorWithoutEpsilon) {
  // Sec. 6: without the k+epsilon adjustment, watermark permutation *can*
  // push a handful of size-k bins below k — the interference must stay
  // minor (a few bins at most, exactly what the paper's analysis predicts
  // for bins sitting at the threshold).
  ProtectionFramework fw(Metrics(), BaseConfig());
  auto outcome = fw.Protect(dataset_->table);
  ASSERT_TRUE(outcome.ok());
  for (const auto& row : outcome->seamlessness) {
    EXPECT_GT(row.total_bins, 0u);
    EXPECT_LE(row.bins_below_k, row.total_bins / 10) << row.attribute;
  }
}

TEST_F(FrameworkTest, EpsilonAdjustmentRestoresFig14ZeroViolations) {
  // The Fig. 14 property — zero bins below k after watermarking — holds
  // once the conservative k+epsilon adjustment is applied.
  FrameworkConfig config = BaseConfig();
  config.auto_epsilon = true;
  ProtectionFramework fw(Metrics(), config);
  auto outcome = fw.Protect(dataset_->table);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->epsilon_used, 0u);
  for (const auto& row : outcome->seamlessness) {
    EXPECT_EQ(row.bins_below_k, 0u) << row.attribute;
    EXPECT_GT(row.total_bins, 0u);
  }
}

TEST_F(FrameworkTest, WatermarkingChangesManyBinsButSizesOnly) {
  ProtectionFramework fw(Metrics(), BaseConfig());
  auto outcome = fw.Protect(dataset_->table);
  ASSERT_TRUE(outcome.ok());
  size_t total_changed = 0;
  for (const auto& row : outcome->seamlessness) {
    total_changed += row.bins_size_changed;
    EXPECT_LE(row.bins_size_changed, row.total_bins + 5);
  }
  EXPECT_GT(total_changed, 0u);
}

TEST_F(FrameworkTest, AutoEpsilonKeepsJointBinsAboveK) {
  FrameworkConfig config = BaseConfig();
  config.binning.k = 8;
  config.binning.enforce_joint = true;
  config.auto_epsilon = true;
  // Joint binning needs room to generalize.
  ProtectionFramework fw(UnconstrainedMetrics(dataset_->trees()), config);
  auto outcome = fw.Protect(dataset_->table);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->epsilon_used, 0u);
  // The conservative adjustment guarantees joint bins never fall below the
  // *configured* k even after watermark permutations.
  EXPECT_GE(outcome->watermarked.MinBinSize(outcome->binning.qi_columns),
            config.binning.k);
}

TEST_F(FrameworkTest, WatermarkInfoLossIsMinor) {
  // Fig. 13's qualitative claim: watermarking's extra information loss is
  // small (a few percent at most).
  ProtectionFramework fw(Metrics(), BaseConfig());
  auto outcome = fw.Protect(dataset_->table);
  ASSERT_TRUE(outcome.ok());
  const auto trees = Metrics().trees;
  double extra = 0.0;
  for (size_t c = 0; c < outcome->binning.qi_columns.size(); ++c) {
    const size_t col = outcome->binning.qi_columns[c];
    auto before = ColumnLossAgainstOriginal(
        dataset_->table.ColumnValues(col),
        outcome->binning.binned.ColumnValues(col), *trees[c]);
    auto after = ColumnLossAgainstOriginal(
        dataset_->table.ColumnValues(col),
        outcome->watermarked.ColumnValues(col), *trees[c]);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_GE(*after, *before - 1e-12);
    extra += (*after - *before);
  }
  EXPECT_LT(extra / 5.0, 0.10);
}

TEST(MeasureSeamlessnessTest, CountsChangedAndBelowK) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"g", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  Table before(schema);
  Table after(schema);
  // before: a x3, b x3 ; after: a x2, b x4 -> both changed, none < 2.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(before.AppendRow({Value::String("a")}).ok());
    ASSERT_TRUE(before.AppendRow({Value::String("b")}).ok());
  }
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(after.AppendRow({Value::String("a")}).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(after.AppendRow({Value::String("b")}).ok());
  auto rows = MeasureSeamlessness(before, after, {0}, 2);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].total_bins, 2u);
  EXPECT_EQ((*rows)[0].bins_size_changed, 2u);
  EXPECT_EQ((*rows)[0].bins_below_k, 0u);
}

TEST(MeasureSeamlessnessTest, DetectsBelowKBins) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"g", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  Table before(schema);
  Table after(schema);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(before.AppendRow({Value::String("a")}).ok());
  }
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(after.AppendRow({Value::String("a")}).ok());
  ASSERT_TRUE(after.AppendRow({Value::String("b")}).ok());
  auto rows = MeasureSeamlessness(before, after, {0}, 2);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].bins_below_k, 1u);  // the stray "b" bin of size 1
}

TEST(MeasureSeamlessnessTest, RowCountMismatchRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"g", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  Table a(schema);
  Table b(schema);
  ASSERT_TRUE(a.AppendRow({Value::String("x")}).ok());
  EXPECT_FALSE(MeasureSeamlessness(a, b, {0}, 2).ok());
}

TEST(ConservativeEpsilonTest, MatchesFormula) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"g", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  Table t(schema);
  // Bins: a x6, b x4 -> s = 6, S = 10.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(t.AppendRow({Value::String("a")}).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(t.AppendRow({Value::String("b")}).ok());
  // epsilon = ceil(6/10 * 100) = 60.
  auto eps = ConservativeEpsilon(t, {0}, 100);
  ASSERT_TRUE(eps.ok());
  EXPECT_EQ(*eps, 60u);
  // Empty table -> 0.
  Table empty(schema);
  EXPECT_EQ(*ConservativeEpsilon(empty, {0}, 100), 0u);
}

}  // namespace
}  // namespace privmark
