// Adversarial manifest suite: hostile or corrupted manifest text against
// the parser, oversized files against the read cap, and injected fsync
// faults against the durable writer. Each parser case is a regression
// test for a bug class the hardened parser closes: unchecked
// std::stoull overflow (an uncaught std::out_of_range), silently
// dropped dangling escapes (a *different* label list than the writer
// serialized), and last-one-wins duplicate keys (a file the writer
// never produced parsing cleanly).

#include "core/manifest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/durable_file.h"
#include "common/failpoint.h"

namespace privmark {
namespace {

// Smallest manifest the parser accepts; adversarial cases splice onto it.
constexpr char kValidHeader[] =
    "privmark-manifest-version = 1\n"
    "mark_bits = 8\n"
    "wmd_size = 16\n";

std::string WithColumn(const std::string& column_lines) {
  return std::string(kValidHeader) + "[column]\n" + column_lines;
}

TEST(ManifestAdversarialTest, BaselineHeaderParses) {
  auto parsed = ParseManifest(kValidHeader);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->mark_bits, 8u);
  EXPECT_EQ(parsed->wmd_size, 16u);
}

// ---- numeric fields -------------------------------------------------------

// Pre-fix, std::stoull threw std::out_of_range past 2^64-1 and the
// exception escaped ParseManifest — a crash any peer could trigger with
// one line of text.
TEST(ManifestAdversarialTest, OverflowingNumberIsAnErrorNotACrash) {
  const std::string text =
      "privmark-manifest-version = 1\n"
      "mark_bits = 99999999999999999999999999\n"
      "wmd_size = 16\n";
  auto parsed = ParseManifest(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().ToString().find("overflow"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ManifestAdversarialTest, ExactlySizeMaxStillParses) {
  // 2^64-1 itself fits in size_t; only the next digit overflows.
  const std::string max = std::to_string(SIZE_MAX);
  EXPECT_TRUE(ParseManifest("privmark-manifest-version = 1\nmark_bits = " +
                            max + "\nwmd_size = 16\n")
                  .ok());
  EXPECT_FALSE(ParseManifest("privmark-manifest-version = 1\nmark_bits = " +
                             max + "0\nwmd_size = 16\n")
                   .ok());
}

TEST(ManifestAdversarialTest, NonDigitNumbersAreRejected) {
  // (Trailing spaces are line-trimmed before parsing, so "12 " is legal;
  // an interior space is not.)
  for (const char* bad : {"-1", "+3", "0x10", "1e3", "1 2", "１２", ""}) {
    const std::string text =
        std::string("privmark-manifest-version = 1\nmark_bits = ") + bad +
        "\nwmd_size = 16\n";
    EXPECT_FALSE(ParseManifest(text).ok()) << "accepted: '" << bad << "'";
  }
}

// ---- label-list escapes ---------------------------------------------------

// Pre-fix, a dangling '\' at the end of a label list was silently
// dropped, so a truncated manifest parsed to a different label list
// than the writer serialized — and detection then ran against the
// wrong generalization.
TEST(ManifestAdversarialTest, DanglingBackslashInLabelsIsRejected) {
  auto parsed = ParseManifest(WithColumn(
      "name = age\nultimate = a|b\\\nmaximal = root\n"));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("dangling"), std::string::npos)
      << parsed.status().ToString();
  EXPECT_FALSE(ParseManifest(WithColumn(
                   "name = age\nultimate = a\nmaximal = root\\\n"))
                   .ok());
}

TEST(ManifestAdversarialTest, LabelThatIsABackslashRoundTrips) {
  ProtectionManifest manifest;
  manifest.mark_bits = 8;
  manifest.wmd_size = 16;
  ManifestColumn column;
  column.name = "weird";
  column.ultimate_labels = {"\\", "a\\b", "trailing\\"};
  column.maximal_labels = {"|"};
  manifest.columns.push_back(column);
  auto parsed = ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->columns[0].ultimate_labels,
            (std::vector<std::string>{"\\", "a\\b", "trailing\\"}));
  EXPECT_EQ(parsed->columns[0].maximal_labels,
            (std::vector<std::string>{"|"}));
}

// ---- duplicate and misplaced keys -----------------------------------------

TEST(ManifestAdversarialTest, DuplicateScalarKeyIsRejected) {
  const std::string text =
      "privmark-manifest-version = 1\n"
      "mark_bits = 8\n"
      "mark_bits = 9\n"
      "wmd_size = 16\n";
  auto parsed = ParseManifest(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("duplicate"), std::string::npos);
}

TEST(ManifestAdversarialTest, DuplicateColumnKeyIsRejected) {
  EXPECT_FALSE(ParseManifest(WithColumn("name = age\nname = sex\n"
                                        "ultimate = a\nmaximal = r\n"))
                   .ok());
  // The same key in *different* [column] sections is fine.
  EXPECT_TRUE(ParseManifest(WithColumn("name = age\nultimate = a\n"
                                       "maximal = r\n[column]\nname = sex\n"
                                       "ultimate = b\nmaximal = s\n"))
                  .ok());
}

TEST(ManifestAdversarialTest, ColumnSectionsWithoutNamesAreRejected) {
  // Trailing nameless section.
  EXPECT_FALSE(
      ParseManifest(WithColumn("ultimate = a\nmaximal = r\n")).ok());
  // Nameless section followed by another section.
  EXPECT_FALSE(ParseManifest(WithColumn("ultimate = a\n[column]\n"
                                        "name = sex\nultimate = b\n"
                                        "maximal = s\n"))
                   .ok());
  // Empty name.
  EXPECT_FALSE(ParseManifest(WithColumn("name = \nultimate = a\n")).ok());
}

TEST(ManifestAdversarialTest, ColumnKeysOutsideASectionAreRejected) {
  EXPECT_FALSE(ParseManifest(std::string(kValidHeader) + "ultimate = a\n")
                   .ok());
}

TEST(ManifestAdversarialTest, StructurallyMalformedLinesAreRejected) {
  EXPECT_FALSE(
      ParseManifest(std::string(kValidHeader) + "mark_bits=8\n").ok());
  EXPECT_FALSE(
      ParseManifest(std::string(kValidHeader) + "[colum]\n").ok());
  EXPECT_FALSE(
      ParseManifest(std::string(kValidHeader) + "surprise = 1\n").ok());
  EXPECT_FALSE(
      ParseManifest(std::string(kValidHeader) + "hash = CRC32\n").ok());
}

// ---- file-level caps and faults -------------------------------------------

TEST(ManifestAdversarialTest, OversizedManifestFileIsRefused) {
  const std::string path =
      ::testing::TempDir() + "/privmark_manifest_oversized.txt";
  // A syntactically valid manifest padded past the cap with comment-free
  // filler (empty lines are legal, so the size cap is what must refuse
  // it — not the parser).
  std::string text(kValidHeader);
  text.append(kMaxManifestBytes + 1 - text.size(), '\n');
  ASSERT_TRUE(WriteFileDurable(path, text).ok());
  auto loaded = ReadManifestFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().ToString().find("cap"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

#if defined(PRIVMARK_FAILPOINTS_ENABLED)

TEST(ManifestAdversarialTest, FsyncFaultSurfacesAsIOError) {
  ProtectionManifest manifest;
  manifest.mark_bits = 8;
  manifest.wmd_size = 16;
  const std::string path =
      ::testing::TempDir() + "/privmark_manifest_fsync.txt";
  for (const char* point : {"manifest.write", "manifest.fsync"}) {
    ASSERT_TRUE(FailpointRegistry::Instance().Configure(point, "once:1").ok());
    const Status status = WriteManifestFile(manifest, path);
    FailpointRegistry::Instance().Reset();
    EXPECT_EQ(status.code(), StatusCode::kIOError) << point;
    EXPECT_NE(status.ToString().find(point), std::string::npos) << point;
  }
  // With no fault armed the same write succeeds and reads back.
  ASSERT_TRUE(WriteManifestFile(manifest, path).ok());
  EXPECT_TRUE(ReadManifestFile(path).ok());
  std::remove(path.c_str());
}

#endif  // PRIVMARK_FAILPOINTS_ENABLED

}  // namespace
}  // namespace privmark
