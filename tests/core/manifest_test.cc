#include "core/manifest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "datagen/medical_data.h"

namespace privmark {
namespace {

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MedicalDataSpec spec;
    spec.num_rows = 1200;
    spec.seed = 77;
    dataset_ = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
    config_.binning.k = 10;
    config_.binning.enforce_joint = false;
    config_.key = {"m-k1", "m-k2", 10};
    metrics_ = std::make_unique<UsageMetrics>(
        MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1})
            .ValueOrDie());
    framework_ =
        std::make_unique<ProtectionFramework>(*metrics_, config_);
    outcome_ = std::make_unique<ProtectionOutcome>(
        std::move(framework_->Protect(dataset_->table)).ValueOrDie());
  }

  ProtectionManifest Build() const {
    return BuildManifest(*outcome_, *metrics_, config_).ValueOrDie();
  }

  std::unique_ptr<MedicalDataset> dataset_;
  FrameworkConfig config_;
  std::unique_ptr<UsageMetrics> metrics_;
  std::unique_ptr<ProtectionFramework> framework_;
  std::unique_ptr<ProtectionOutcome> outcome_;
};

TEST_F(ManifestTest, BuildCapturesEmbeddingParameters) {
  const ProtectionManifest manifest = Build();
  EXPECT_EQ(manifest.mark_bits, outcome_->mark.size());
  EXPECT_EQ(manifest.wmd_size, outcome_->embed.wmd_size);
  EXPECT_EQ(manifest.copies, outcome_->embed.copies);
  ASSERT_EQ(manifest.columns.size(), 5u);
  EXPECT_EQ(manifest.columns[0].name, "age");
  EXPECT_EQ(manifest.columns[4].name, "prescription");
  EXPECT_FALSE(manifest.columns[0].ultimate_labels.empty());
  EXPECT_FALSE(manifest.columns[0].maximal_labels.empty());
}

TEST_F(ManifestTest, SerializeParseRoundTrip) {
  const ProtectionManifest manifest = Build();
  auto parsed = ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->mark_bits, manifest.mark_bits);
  EXPECT_EQ(parsed->wmd_size, manifest.wmd_size);
  EXPECT_EQ(parsed->copies, manifest.copies);
  EXPECT_EQ(parsed->epsilon, manifest.epsilon);
  EXPECT_EQ(parsed->hash, manifest.hash);
  ASSERT_EQ(parsed->columns.size(), manifest.columns.size());
  for (size_t c = 0; c < manifest.columns.size(); ++c) {
    EXPECT_EQ(parsed->columns[c].name, manifest.columns[c].name);
    EXPECT_EQ(parsed->columns[c].ultimate_labels,
              manifest.columns[c].ultimate_labels);
    EXPECT_EQ(parsed->columns[c].maximal_labels,
              manifest.columns[c].maximal_labels);
  }
}

TEST_F(ManifestTest, LabelsWithSeparatorsSurvive) {
  ProtectionManifest manifest;
  manifest.mark_bits = 8;
  manifest.wmd_size = 16;
  ManifestColumn column;
  column.name = "weird";
  column.ultimate_labels = {"a|b", "c\\d", "plain"};
  column.maximal_labels = {"root|all"};
  manifest.columns.push_back(column);
  auto parsed = ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->columns[0].ultimate_labels,
            (std::vector<std::string>{"a|b", "c\\d", "plain"}));
  EXPECT_EQ(parsed->columns[0].maximal_labels,
            (std::vector<std::string>{"root|all"}));
}

TEST_F(ManifestTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseManifest("").ok());
  EXPECT_FALSE(ParseManifest("not a manifest").ok());
  EXPECT_FALSE(ParseManifest("privmark-manifest-version = 9\n").ok());
  EXPECT_FALSE(
      ParseManifest("privmark-manifest-version = 1\nmark_bits = x\n").ok());
  EXPECT_FALSE(
      ParseManifest("privmark-manifest-version = 1\nname = orphan\n").ok());
  // Missing mark_bits/wmd_size.
  EXPECT_FALSE(ParseManifest("privmark-manifest-version = 1\n").ok());
}

TEST_F(ManifestTest, WatermarkerFromManifestDetects) {
  const ProtectionManifest manifest = Build();
  // A fresh party with only: the manifest text, the trees, the secret key
  // and the protected table.
  auto parsed = ParseManifest(SerializeManifest(manifest));
  ASSERT_TRUE(parsed.ok());
  auto watermarker = WatermarkerFromManifest(
      *parsed, outcome_->watermarked, dataset_->trees(), config_.key,
      config_.watermark);
  ASSERT_TRUE(watermarker.ok());
  auto detect = watermarker->Detect(outcome_->watermarked,
                                    parsed->mark_bits, parsed->wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->recovered, outcome_->mark);
}

TEST_F(ManifestTest, WatermarkerFromManifestChecksTrees) {
  const ProtectionManifest manifest = Build();
  auto trees = dataset_->trees();
  trees.pop_back();
  EXPECT_FALSE(WatermarkerFromManifest(manifest, outcome_->watermarked,
                                       trees, config_.key, config_.watermark)
                   .ok());
}

TEST_F(ManifestTest, FileRoundTrip) {
  const ProtectionManifest manifest = Build();
  const std::string path = ::testing::TempDir() + "/privmark_manifest.txt";
  ASSERT_TRUE(WriteManifestFile(manifest, path).ok());
  auto loaded = ReadManifestFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->wmd_size, manifest.wmd_size);
  EXPECT_EQ(loaded->columns.size(), manifest.columns.size());
  std::remove(path.c_str());
  EXPECT_FALSE(ReadManifestFile("/nonexistent/manifest").ok());
}

}  // namespace
}  // namespace privmark
