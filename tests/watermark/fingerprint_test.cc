// Unit coverage for the key-parameterized detection engine: the
// DetectIndex split (index + tally == fused Detect, byte for byte), the
// sharded MultiKeyTally, and registry scans' verdicts, ranking, and
// collusion flag. The 20k-scale equivalence claims live in
// tests/properties/fingerprint_equivalence_test.cc.

#include "watermark/fingerprint.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "watermark/detect_index.h"
#include "watermark/hierarchical.h"
#include "watermark/ownership.h"
#include "watermark/single_level.h"

namespace privmark {
namespace {

// Three-level tree: 2 chapters x 2 blocks x 2 leaves = 8 leaves.
DomainHierarchy DeepTree() {
  return HierarchyBuilder::FromOutline("sym", R"(All
  C1
    B11
      s111
      s112
    B12
      s121
      s122
  C2
    B21
      s211
      s212
    B22
      s221
      s222)").ValueOrDie();
}

Schema OneQiSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"sym", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

Table MakeBinnedTable(const DomainHierarchy& tree, size_t rows,
                      uint64_t seed) {
  Table t(OneQiSchema());
  Random rng(seed);
  const auto& leaves = tree.Leaves();
  for (size_t r = 0; r < rows; ++r) {
    const NodeId leaf = leaves[rng.Uniform(leaves.size())];
    EXPECT_TRUE(t.AppendRow({Value::String("ident-" + std::to_string(r)),
                             Value::String(tree.node(leaf).label)}).ok());
  }
  return t;
}

struct Env {
  std::unique_ptr<DomainHierarchy> tree;
  Table table;
  WatermarkKey key;
  std::unique_ptr<HierarchicalWatermarker> watermarker;

  GeneralizationSet Ultimate() const {
    return GeneralizationSet::AllLeaves(tree.get());
  }
  GeneralizationSet Maximal() const { return CutAtDepth(tree.get(), 1); }
};

Env MakeSetup(size_t num_threads = 1, size_t rows = 400) {
  Env env;
  env.tree = std::make_unique<DomainHierarchy>(DeepTree());
  env.table = MakeBinnedTable(*env.tree, rows, 11);
  env.key.k1 = "secret-one";
  env.key.k2 = "secret-two";
  env.key.eta = 3;
  WatermarkOptions options;
  options.num_threads = num_threads;
  env.watermarker = std::make_unique<HierarchicalWatermarker>(
      std::vector<size_t>{1}, 0,
      std::vector<GeneralizationSet>{env.Maximal()},
      std::vector<GeneralizationSet>{env.Ultimate()}, env.key, options);
  return env;
}

BitVector TestMark() {
  return BitVector::FromString("10110010011010111001").ValueOrDie();
}

void ExpectSameReport(const DetectReport& a, const DetectReport& b,
                      const std::string& what) {
  EXPECT_EQ(a.recovered.ToString(), b.recovered.ToString()) << what;
  EXPECT_EQ(a.bit_voted, b.bit_voted) << what;
  EXPECT_EQ(a.tuples_selected, b.tuples_selected) << what;
  EXPECT_EQ(a.slots_read, b.slots_read) << what;
  EXPECT_EQ(a.slots_skipped, b.slots_skipped) << what;
  ASSERT_EQ(a.vote_margin.size(), b.vote_margin.size()) << what;
  for (size_t j = 0; j < a.vote_margin.size(); ++j) {
    // Exact, deliberately: margins are sums of whole 1.0s and must match
    // bit for bit.
    EXPECT_EQ(a.vote_margin[j], b.vote_margin[j]) << what << " bit " << j;
  }
}

TEST(DetectIndexTest, IndexTallyMatchesFusedDetectHierarchical) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  auto fused = env.watermarker->Detect(marked, wm.size(), embed->wmd_size);
  ASSERT_TRUE(fused.ok());

  auto index = BuildDetectIndex(*env.watermarker, marked);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->num_rows, marked.num_rows());
  EXPECT_EQ(index->num_columns(), 1u);
  auto tally = TallyDetect(*index, env.key, HashAlgorithm::kSha1, wm.size(),
                           embed->wmd_size, nullptr);
  ASSERT_TRUE(tally.ok()) << tally.status().ToString();
  ExpectSameReport(*fused, *tally, "hierarchical");
}

TEST(DetectIndexTest, IndexTallyMatchesFusedDetectSingleLevel) {
  Env env = MakeSetup();
  SingleLevelWatermarker single(std::vector<size_t>{1}, 0,
                                std::vector<GeneralizationSet>{env.Ultimate()},
                                env.key, {});
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = single.Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  auto fused = single.Detect(marked, wm.size(), embed->wmd_size);
  ASSERT_TRUE(fused.ok());

  auto index = BuildDetectIndex(single, marked);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  auto tally = TallyDetect(*index, env.key, HashAlgorithm::kSha1, wm.size(),
                           embed->wmd_size, nullptr);
  ASSERT_TRUE(tally.ok());
  ExpectSameReport(*fused, *tally, "single-level");
}

TEST(DetectIndexTest, TallyValidatesSizesLikeDetect) {
  Env env = MakeSetup();
  auto index = BuildDetectIndex(*env.watermarker, env.table);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(
      TallyDetect(*index, env.key, HashAlgorithm::kSha1, 0, 20, nullptr).ok());
  EXPECT_FALSE(
      TallyDetect(*index, env.key, HashAlgorithm::kSha1, 20, 0, nullptr).ok());
  EXPECT_FALSE(
      TallyDetect(*index, env.key, HashAlgorithm::kSha1, 20, 30, nullptr)
          .ok());
}

TEST(MultiKeyTallyTest, MatchesSerialTalliesAcrossThreadCounts) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  auto index = BuildDetectIndex(*env.watermarker, marked);
  ASSERT_TRUE(index.ok());

  // The embedded key among wrong keys of varying eta.
  std::vector<WatermarkKey> keys = {env.key};
  Random rng(23);
  for (size_t i = 0; i < 9; ++i) {
    keys.push_back(GenerateKey("decoy-" + std::to_string(i),
                               2 + i % 4, &rng).key);
  }

  std::vector<DetectReport> serial;
  for (const WatermarkKey& key : keys) {
    auto one = TallyDetect(*index, key, HashAlgorithm::kSha1, wm.size(),
                           embed->wmd_size, nullptr);
    ASSERT_TRUE(one.ok());
    serial.push_back(*std::move(one));
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{16}}) {
    auto pool = MakeThreadPool(threads);
    auto batch = MultiKeyTally(*index, keys, HashAlgorithm::kSha1, wm.size(),
                               embed->wmd_size, pool.get());
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      ExpectSameReport(serial[i], (*batch)[i],
                       "key " + std::to_string(i) + ", " +
                           std::to_string(threads) + " threads");
    }
  }
}

TEST(MultiKeyTallyTest, EmptyTableAndEmptyKeys) {
  Env env = MakeSetup();
  Table empty(env.table.schema());
  auto index = BuildDetectIndex(*env.watermarker, empty);
  ASSERT_TRUE(index.ok());
  auto pool = MakeThreadPool(3);
  auto batch = MultiKeyTally(*index, {env.key, env.key}, HashAlgorithm::kSha1,
                             20, 40, pool.get());
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ((*batch)[0].slots_read, 0u);
  EXPECT_EQ((*batch)[0].recovered.ToString(), BitVector(20).ToString());

  auto none = MultiKeyTally(*index, {}, HashAlgorithm::kSha1, 20, 40,
                            pool.get());
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

// Builds the standard scan setup: registry with the embedded key plus
// decoys, marked table, expected mark.
struct ScanEnv {
  Env env;
  Table marked;
  BitVector wm;
  size_t wmd_size = 0;
  KeyRegistry registry;
};

ScanEnv MakeScan(size_t num_threads = 1) {
  ScanEnv s;
  s.env = MakeSetup(num_threads);
  s.marked = s.env.table.Clone();
  s.wm = TestMark();
  auto embed = s.env.watermarker->Embed(&s.marked, s.wm);
  EXPECT_TRUE(embed.ok());
  s.wmd_size = embed->wmd_size;
  EXPECT_TRUE(s.registry.Add(NamedKey{"owner", s.env.key}).ok());
  Random rng(31);
  EXPECT_TRUE(s.registry.Add(GenerateKey("decoy-a", 3, &rng)).ok());
  EXPECT_TRUE(s.registry.Add(GenerateKey("decoy-b", 3, &rng)).ok());
  return s;
}

TEST(FingerprintScanTest, EmbeddedKeyRanksFirstWithExpectedMark) {
  ScanEnv s = MakeScan();
  FingerprintConfig config;
  config.wm_size = s.wm.size();
  config.wmd_size = s.wmd_size;
  config.expected_mark = s.wm;
  auto report = ScanForFingerprints(*s.env.watermarker, s.marked, s.registry,
                                    config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->verdicts.size(), 3u);
  ASSERT_EQ(report->ranking.size(), 3u);
  const KeyVerdict& best = report->verdicts[report->ranking[0]];
  EXPECT_EQ(best.key_name, "owner");
  EXPECT_TRUE(best.detected);
  EXPECT_DOUBLE_EQ(best.mark_match, 1.0);
  EXPECT_DOUBLE_EQ(best.score, best.mark_match);
  EXPECT_LT(best.p_value, 2e-6);
  EXPECT_EQ(report->keys_detected, 1u);
  EXPECT_FALSE(report->collusion);
  // The embedded key's verdict is byte-identical to a direct Detect run.
  auto direct = s.env.watermarker->Detect(s.marked, s.wm.size(), s.wmd_size);
  ASSERT_TRUE(direct.ok());
  ExpectSameReport(*direct, best.detection, "owner verdict");
}

TEST(FingerprintScanTest, WithoutExpectedMarkScoresByMarginRatio) {
  ScanEnv s = MakeScan();
  FingerprintConfig config;
  config.wm_size = s.wm.size();
  config.wmd_size = s.wmd_size;
  auto report = ScanForFingerprints(*s.env.watermarker, s.marked, s.registry,
                                    config);
  ASSERT_TRUE(report.ok());
  const KeyVerdict& best = report->verdicts[report->ranking[0]];
  EXPECT_EQ(best.key_name, "owner");
  EXPECT_DOUBLE_EQ(best.score, best.margin_ratio);
  EXPECT_DOUBLE_EQ(best.mark_match, 0.0);
  EXPECT_DOUBLE_EQ(best.p_value, 1.0);
  // A clean embed votes unanimously; wrong keys' votes largely cancel.
  EXPECT_GT(best.margin_ratio, 0.9);
  for (size_t i = 1; i < report->ranking.size(); ++i) {
    EXPECT_LT(report->verdicts[report->ranking[i]].margin_ratio,
              best.margin_ratio);
  }
}

TEST(FingerprintScanTest, CollusionFlagsBothContributors) {
  // Interleave rows from two copies of the same table embedded under two
  // different keys (same mark, same wmd size).
  Env env = MakeSetup();
  Random rng(37);
  const NamedKey east{"east", env.key};
  const NamedKey west = GenerateKey("west", 3, &rng);
  WatermarkOptions options;
  HierarchicalWatermarker west_wm(
      std::vector<size_t>{1}, 0,
      std::vector<GeneralizationSet>{env.Maximal()},
      std::vector<GeneralizationSet>{env.Ultimate()}, west.key, options);

  const BitVector wm = TestMark();
  Table east_copy = env.table.Clone();
  Table west_copy = env.table.Clone();
  auto east_embed = env.watermarker->Embed(&east_copy, wm, 2);
  auto west_embed = west_wm.Embed(&west_copy, wm, 2);
  ASSERT_TRUE(east_embed.ok());
  ASSERT_TRUE(west_embed.ok());
  ASSERT_EQ(east_embed->wmd_size, west_embed->wmd_size);

  Table mixed(env.table.schema());
  for (size_t r = 0; r < env.table.num_rows(); ++r) {
    const Table& source = (r % 2 == 0) ? east_copy : west_copy;
    ASSERT_TRUE(mixed.AppendRow(source.row(r)).ok());
  }

  KeyRegistry registry;
  ASSERT_TRUE(registry.Add(east).ok());
  ASSERT_TRUE(registry.Add(west).ok());
  ASSERT_TRUE(registry.Add(GenerateKey("decoy", 3, &rng)).ok());

  FingerprintConfig config;
  config.wm_size = wm.size();
  config.wmd_size = east_embed->wmd_size;
  config.expected_mark = wm;
  auto report =
      ScanForFingerprints(*env.watermarker, mixed, registry, config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->verdicts[0].detected);  // east
  EXPECT_TRUE(report->verdicts[1].detected);  // west
  EXPECT_FALSE(report->verdicts[2].detected);
  EXPECT_EQ(report->keys_detected, 2u);
  EXPECT_TRUE(report->collusion);
  // Both contributors outrank the decoy.
  EXPECT_NE(report->ranking[2], 0u);
  EXPECT_NE(report->ranking[2], 1u);
}

TEST(FingerprintScanTest, RankingTiesBreakByName) {
  // Two registry entries with identical key material tie on every
  // statistic; the ranking must fall back to the name.
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  KeyRegistry registry;
  ASSERT_TRUE(registry.Add(NamedKey{"zeta", env.key}).ok());
  ASSERT_TRUE(registry.Add(NamedKey{"alpha", env.key}).ok());
  FingerprintConfig config;
  config.wm_size = wm.size();
  config.wmd_size = embed->wmd_size;
  config.expected_mark = wm;
  auto report =
      ScanForFingerprints(*env.watermarker, marked, registry, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdicts[report->ranking[0]].key_name, "alpha");
  EXPECT_EQ(report->verdicts[report->ranking[1]].key_name, "zeta");
}

TEST(FingerprintScanTest, ValidatesRegistryAndExpectedMark) {
  Env env = MakeSetup();
  KeyRegistry empty_registry;
  FingerprintConfig config;
  config.wm_size = 20;
  config.wmd_size = 40;
  EXPECT_FALSE(ScanForFingerprints(*env.watermarker, env.table,
                                   empty_registry, config)
                   .ok());
  KeyRegistry registry;
  ASSERT_TRUE(registry.Add(NamedKey{"a", env.key}).ok());
  config.expected_mark = BitVector(7);  // wrong size vs wm_size = 20
  EXPECT_FALSE(
      ScanForFingerprints(*env.watermarker, env.table, registry, config)
          .ok());
}

TEST(FingerprintScanTest, SingleLevelScanDetectsEmbeddedKey) {
  Env env = MakeSetup();
  SingleLevelWatermarker single(std::vector<size_t>{1}, 0,
                                std::vector<GeneralizationSet>{env.Ultimate()},
                                env.key, {});
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = single.Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  KeyRegistry registry;
  ASSERT_TRUE(registry.Add(NamedKey{"owner", env.key}).ok());
  Random rng(41);
  ASSERT_TRUE(registry.Add(GenerateKey("decoy", 3, &rng)).ok());
  FingerprintConfig config;
  config.wm_size = wm.size();
  config.wmd_size = embed->wmd_size;
  config.expected_mark = wm;
  auto report = ScanForFingerprints(single, marked, registry, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdicts[report->ranking[0]].key_name, "owner");
  EXPECT_TRUE(report->verdicts[report->ranking[0]].detected);
}

TEST(ThresholdConstantTest, SharedByEveryConsumer) {
  // The one hoisted definition must be what both config structs default
  // to — the CLI's verdict lines read the same constant.
  EXPECT_DOUBLE_EQ(OwnershipConfig{}.match_threshold,
                   kDetectionMatchThreshold);
  EXPECT_DOUBLE_EQ(FingerprintConfig{}.match_threshold,
                   kDetectionMatchThreshold);
  EXPECT_DOUBLE_EQ(kDetectionMatchThreshold, 0.8);
}

}  // namespace
}  // namespace privmark
