#include "watermark/ownership.h"

#include <gtest/gtest.h>

#include "core/framework.h"
#include "datagen/medical_data.h"

namespace privmark {
namespace {

TEST(IdentifierStatisticTest, MeanOfDigits) {
  auto v = IdentifierStatistic({"100", "200", "300"});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 200.0);
}

TEST(IdentifierStatisticTest, StripsNonDigits) {
  auto v = IdentifierStatistic({"ssn-100", "id:300"});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 200.0);
}

TEST(IdentifierStatisticTest, RejectsDigitFreeIdentifier) {
  EXPECT_FALSE(IdentifierStatistic({"abc"}).ok());
  EXPECT_FALSE(IdentifierStatistic({}).ok());
}

TEST(DeriveOwnershipMarkTest, DeterministicAndLengthCorrect) {
  auto a = DeriveOwnershipMark(123.456, 20, HashAlgorithm::kSha1);
  auto b = DeriveOwnershipMark(123.456, 20, HashAlgorithm::kSha1);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->size(), 20u);
}

TEST(DeriveOwnershipMarkTest, SensitiveToStatistic) {
  auto a = DeriveOwnershipMark(123.456, 20, HashAlgorithm::kSha1);
  auto b = DeriveOwnershipMark(123.457, 20, HashAlgorithm::kSha1);
  EXPECT_FALSE(*a == *b);
}

TEST(DeriveOwnershipMarkTest, Validation) {
  EXPECT_FALSE(DeriveOwnershipMark(1.0, 0, HashAlgorithm::kSha1).ok());
  EXPECT_FALSE(DeriveOwnershipMark(1.0, 500, HashAlgorithm::kSha1).ok());
  EXPECT_TRUE(DeriveOwnershipMark(1.0, 128, HashAlgorithm::kMd5).ok());
}

// End-to-end dispute fixture: protect a data set, then resolve claims.
class OwnershipDisputeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MedicalDataSpec spec;
    spec.num_rows = 2000;
    spec.seed = 99;
    dataset_ = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
    config_.binning.k = 10;
    config_.binning.enforce_joint = false;
    config_.binning.encryption_passphrase = "owner-passphrase";
    config_.key.k1 = "owner-k1";
    config_.key.k2 = "owner-k2";
    config_.key.eta = 10;
    auto metrics =
        MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1}).ValueOrDie();
    framework_ =
        std::make_unique<ProtectionFramework>(std::move(metrics), config_);
    outcome_ = std::make_unique<ProtectionOutcome>(
        std::move(framework_->Protect(dataset_->table)).ValueOrDie());
  }

  std::unique_ptr<MedicalDataset> dataset_;
  FrameworkConfig config_;
  std::unique_ptr<ProtectionFramework> framework_;
  std::unique_ptr<ProtectionOutcome> outcome_;
};

TEST_F(OwnershipDisputeTest, LegitimateOwnerEstablishesOwnership) {
  const Aes128 cipher = Aes128::FromPassphrase("owner-passphrase");
  HierarchicalWatermarker wm = framework_->MakeWatermarker(outcome_->binning);
  OwnershipConfig oc;
  auto verdict =
      ResolveDispute(outcome_->watermarked, wm, cipher,
                     outcome_->identifier_statistic, outcome_->embed.wmd_size,
                     oc);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->statistic_consistent);
  EXPECT_GE(verdict->mark_match, 0.99);
  EXPECT_LT(verdict->p_value, 1e-5);
  EXPECT_TRUE(verdict->ownership_established);
}

TEST_F(OwnershipDisputeTest, WrongStatisticClaimFails) {
  const Aes128 cipher = Aes128::FromPassphrase("owner-passphrase");
  HierarchicalWatermarker wm = framework_->MakeWatermarker(outcome_->binning);
  OwnershipConfig oc;
  auto verdict = ResolveDispute(outcome_->watermarked, wm, cipher,
                                outcome_->identifier_statistic * 2.0,
                                outcome_->embed.wmd_size, oc);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->statistic_consistent);
  EXPECT_FALSE(verdict->ownership_established);
}

TEST_F(OwnershipDisputeTest, AttackerWithoutDecryptionKeyFails) {
  // Attack scenario: a thief claims the table with his own key material.
  const Aes128 thief_cipher = Aes128::FromPassphrase("thief-passphrase");
  WatermarkKey thief_key;
  thief_key.k1 = "thief-k1";
  thief_key.k2 = "thief-k2";
  thief_key.eta = 10;
  HierarchicalWatermarker thief_wm(
      outcome_->binning.qi_columns,
      *outcome_->binning.binned.schema().IdentifyingColumn(),
      framework_->metrics().maximal, outcome_->binning.ultimate, thief_key,
      WatermarkOptions{});
  OwnershipConfig oc;
  auto verdict = ResolveDispute(outcome_->watermarked, thief_wm, thief_cipher,
                                outcome_->identifier_statistic,
                                outcome_->embed.wmd_size, oc);
  ASSERT_TRUE(verdict.ok());
  // The thief cannot decrypt the identifiers, so the statistic check fails.
  EXPECT_FALSE(verdict->statistic_consistent);
  EXPECT_FALSE(verdict->ownership_established);
}

TEST_F(OwnershipDisputeTest, Attack1BogusMarkDoesNotDisplaceOwner) {
  // Rightful-ownership Attack 1: the attacker inserts his own mark into the
  // owner's published table. Both marks are then detectable, but only the
  // owner passes the statistic + F(v) binding.
  Table pirated = outcome_->watermarked.Clone();
  WatermarkKey attacker_key;
  attacker_key.k1 = "attacker-k1";
  attacker_key.k2 = "attacker-k2";
  attacker_key.eta = 10;
  HierarchicalWatermarker attacker_wm(
      outcome_->binning.qi_columns,
      *outcome_->binning.binned.schema().IdentifyingColumn(),
      framework_->metrics().maximal, outcome_->binning.ultimate, attacker_key,
      WatermarkOptions{});
  const BitVector attacker_mark =
      BitVector::FromString("01010101010101010101").ValueOrDie();
  auto attacker_embed = attacker_wm.Embed(&pirated, attacker_mark);
  ASSERT_TRUE(attacker_embed.ok());

  // The attacker's mark is present...
  auto attacker_detect = attacker_wm.Detect(pirated, attacker_mark.size(),
                                            attacker_embed->wmd_size);
  ASSERT_TRUE(attacker_detect.ok());
  EXPECT_LT(*MarkLossAgainst(attacker_mark, attacker_detect->recovered), 0.2);

  // ...but the owner still establishes ownership on the pirated table,
  const Aes128 owner_cipher = Aes128::FromPassphrase("owner-passphrase");
  HierarchicalWatermarker owner_wm =
      framework_->MakeWatermarker(outcome_->binning);
  OwnershipConfig oc;
  auto owner_verdict =
      ResolveDispute(pirated, owner_wm, owner_cipher,
                     outcome_->identifier_statistic, outcome_->embed.wmd_size,
                     oc);
  ASSERT_TRUE(owner_verdict.ok());
  EXPECT_TRUE(owner_verdict->ownership_established);

  // ...while the attacker cannot bind his mark to the encrypted
  // identifiers (he cannot decrypt them to produce a consistent v).
  auto attacker_verdict = ResolveDispute(
      pirated, attacker_wm, Aes128::FromPassphrase("attacker-passphrase"),
      4567.0, attacker_embed->wmd_size, oc);
  ASSERT_TRUE(attacker_verdict.ok());
  EXPECT_FALSE(attacker_verdict->ownership_established);
}

TEST_F(OwnershipDisputeTest, StatisticSurvivesDeletionWithinTolerance) {
  // The paper's rationale for a *statistical* binding: the disputed table
  // may have lost tuples; tau absorbs the drift.
  Table attacked = outcome_->watermarked.Clone();
  attacked.RemoveRows({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Aes128 cipher = Aes128::FromPassphrase("owner-passphrase");
  auto v = StatisticFromEncrypted(
      attacked, *attacked.schema().IdentifyingColumn(), cipher);
  ASSERT_TRUE(v.ok());
  // Mean of 9-digit SSNs drifts by much less than 1% of its magnitude.
  EXPECT_NEAR(*v, outcome_->identifier_statistic,
              0.01 * outcome_->identifier_statistic);
}

TEST(StatisticFromEncryptedTest, FailsWhenMostRowsUndecryptable) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  Table t(schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::String("nothexatall-" +
                                           std::to_string(i))}).ok());
  }
  const Aes128 cipher = Aes128::FromPassphrase("any");
  EXPECT_EQ(StatisticFromEncrypted(t, 0, cipher).status().code(),
            StatusCode::kVerificationFailed);
}

}  // namespace
}  // namespace privmark
