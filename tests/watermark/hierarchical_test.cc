#include "watermark/hierarchical.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/random.h"

namespace privmark {
namespace {

// Three-level tree: 2 chapters x 2 blocks x 2 leaves = 8 leaves.
DomainHierarchy DeepTree() {
  return HierarchyBuilder::FromOutline("sym", R"(All
  C1
    B11
      s111
      s112
    B12
      s121
      s122
  C2
    B21
      s211
      s212
    B22
      s221
      s222)").ValueOrDie();
}

Schema OneQiSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"sym", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

// A "binned" table whose cells are leaf labels (ultimate = all leaves).
Table MakeBinnedTable(const DomainHierarchy& tree, size_t rows,
                      uint64_t seed) {
  Table t(OneQiSchema());
  Random rng(seed);
  const auto& leaves = tree.Leaves();
  for (size_t r = 0; r < rows; ++r) {
    const NodeId leaf = leaves[rng.Uniform(leaves.size())];
    EXPECT_TRUE(t.AppendRow({Value::String("ident-" + std::to_string(r)),
                             Value::String(tree.node(leaf).label)}).ok());
  }
  return t;
}

struct Env {
  std::unique_ptr<DomainHierarchy> tree;
  Table table;
  WatermarkKey key;
  std::unique_ptr<HierarchicalWatermarker> watermarker;

  GeneralizationSet Ultimate() const {
    return GeneralizationSet::AllLeaves(tree.get());
  }
  GeneralizationSet Maximal() const { return CutAtDepth(tree.get(), 1); }
};

Env MakeSetup(uint64_t eta = 3, bool weighted = false) {
  Env env;
  env.tree = std::make_unique<DomainHierarchy>(DeepTree());
  env.table = MakeBinnedTable(*env.tree, 400, 11);
  env.key.k1 = "secret-one";
  env.key.k2 = "secret-two";
  env.key.eta = eta;
  WatermarkOptions options;
  options.weighted_voting = weighted;
  env.watermarker = std::make_unique<HierarchicalWatermarker>(
      std::vector<size_t>{1}, 0,
      std::vector<GeneralizationSet>{env.Maximal()},
      std::vector<GeneralizationSet>{env.Ultimate()}, env.key, options);
  return env;
}

BitVector TestMark() {
  return BitVector::FromString("10110010011010111001").ValueOrDie();
}

TEST(HierarchicalWatermarkTest, CleanRoundTripRecoversMark) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  EXPECT_GT(embed->slots_embedded, 0u);
  auto detect = env.watermarker->Detect(marked, wm.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->recovered, wm);
  EXPECT_DOUBLE_EQ(*MarkLossAgainst(wm, detect->recovered), 0.0);
}

TEST(HierarchicalWatermarkTest, MarkedValuesStayUnderTheirMaximalNode) {
  // The permutation must never cross a maximal generalization boundary —
  // that is the usage-metric guarantee of Sec. 5.1.
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  ASSERT_TRUE(env.watermarker->Embed(&marked, wm).ok());
  const GeneralizationSet maximal = env.Maximal();
  for (size_t r = 0; r < marked.num_rows(); ++r) {
    const NodeId before =
        *env.tree->FindByLabel(env.table.at(r, 1).ToString());
    const NodeId after = *env.tree->FindByLabel(marked.at(r, 1).ToString());
    const NodeId cover_before =
        *maximal.NodeForLeaf(env.tree->LeavesUnder(before).front());
    const NodeId cover_after =
        *maximal.NodeForLeaf(env.tree->LeavesUnder(after).front());
    EXPECT_EQ(cover_before, cover_after) << "row " << r;
  }
}

TEST(HierarchicalWatermarkTest, OnlySelectedTuplesChange) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  ASSERT_TRUE(env.watermarker->Embed(&marked, wm).ok());
  for (size_t r = 0; r < marked.num_rows(); ++r) {
    if (!IsTupleSelected(env.key, HashAlgorithm::kSha1,
                         marked.at(r, 0).ToString())) {
      EXPECT_EQ(marked.at(r, 1), env.table.at(r, 1)) << "row " << r;
    }
  }
}

TEST(HierarchicalWatermarkTest, WrongKeyDetectsGarbage) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());

  WatermarkKey wrong;
  wrong.k1 = "not-the-key";
  wrong.k2 = "also-wrong";
  wrong.eta = 3;
  HierarchicalWatermarker intruder(
      std::vector<size_t>{1}, 0,
      std::vector<GeneralizationSet>{env.Maximal()},
      std::vector<GeneralizationSet>{env.Ultimate()}, wrong, {});
  auto detect = intruder.Detect(marked, wm.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  // Without the key the recovered bits are uncorrelated: loss near 50%.
  const double loss = *MarkLossAgainst(wm, detect->recovered);
  EXPECT_GT(loss, 0.2);
}

TEST(HierarchicalWatermarkTest, BandwidthMatchesSlotAccounting) {
  Env env = MakeSetup();
  auto bandwidth = env.watermarker->EstimateBandwidth(env.table);
  ASSERT_TRUE(bandwidth.ok());
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  EXPECT_EQ(*bandwidth, embed->slots_embedded);
  EXPECT_EQ(embed->copies, *bandwidth / wm.size());
  EXPECT_EQ(embed->wmd_size, embed->copies * wm.size());
}

TEST(HierarchicalWatermarkTest, ExplicitCopiesRespected) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm, 2);
  ASSERT_TRUE(embed.ok());
  EXPECT_EQ(embed->copies, 2u);
  EXPECT_EQ(embed->wmd_size, 40u);
  auto detect = env.watermarker->Detect(marked, wm.size(), 40);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->recovered, wm);
}

TEST(HierarchicalWatermarkTest, EmptyMarkRejected) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  EXPECT_FALSE(env.watermarker->Embed(&marked, BitVector()).ok());
}

TEST(HierarchicalWatermarkTest, DetectValidatesSizes) {
  Env env = MakeSetup();
  EXPECT_FALSE(env.watermarker->Detect(env.table, 0, 20).ok());
  EXPECT_FALSE(env.watermarker->Detect(env.table, 20, 0).ok());
  EXPECT_FALSE(env.watermarker->Detect(env.table, 20, 30).ok());
}

TEST(HierarchicalWatermarkTest, ZeroGapSlotsAreSkippedAndUnchanged) {
  // Ultimate == maximal: no bandwidth anywhere; embedding must not alter
  // the table at all.
  auto tree = std::make_unique<DomainHierarchy>(DeepTree());
  Table table = MakeBinnedTable(*tree, 100, 5);
  const GeneralizationSet leaves = GeneralizationSet::AllLeaves(tree.get());
  WatermarkKey key;
  key.eta = 2;
  HierarchicalWatermarker wm(std::vector<size_t>{1}, 0,
                             std::vector<GeneralizationSet>{leaves},
                             std::vector<GeneralizationSet>{leaves}, key, {});
  Table marked = table.Clone();
  auto embed = wm.Embed(&marked, TestMark(), 1);
  ASSERT_TRUE(embed.ok());
  EXPECT_EQ(embed->slots_embedded, 0u);
  EXPECT_GT(embed->slots_skipped_no_gap, 0u);
  EXPECT_EQ(embed->cells_changed, 0u);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.at(r, 1), marked.at(r, 1));
  }
}

TEST(HierarchicalWatermarkTest, WeightedVotingAlsoRecoversCleanMark) {
  Env env = MakeSetup(3, /*weighted=*/true);
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  auto detect = env.watermarker->Detect(marked, wm.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->recovered, wm);
}

TEST(HierarchicalWatermarkTest, DetectOnUnmarkedTableIsUncorrelated) {
  Env env = MakeSetup();
  auto detect = env.watermarker->Detect(env.table, 20, 200);
  ASSERT_TRUE(detect.ok());
  const double loss = *MarkLossAgainst(TestMark(), detect->recovered);
  EXPECT_GT(loss, 0.15);  // essentially random agreement
}

TEST(HierarchicalWatermarkTest, VoteMarginsArePopulated) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  auto detect = env.watermarker->Detect(marked, wm.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  ASSERT_EQ(detect->vote_margin.size(), wm.size());
  for (size_t j = 0; j < wm.size(); ++j) {
    if (wm.Get(j)) {
      EXPECT_GT(detect->vote_margin[j], 0.0) << j;
    } else {
      EXPECT_LT(detect->vote_margin[j], 0.0) << j;
    }
  }
}

TEST(MarkLossTest, MatchesLossFraction) {
  auto a = BitVector::FromString("1100").ValueOrDie();
  auto b = BitVector::FromString("1000").ValueOrDie();
  EXPECT_DOUBLE_EQ(*MarkLossAgainst(a, b), 0.25);
}

TEST(MarkLossTest, StrictLossCountsUnvotedBits) {
  auto reference = BitVector::FromString("1100").ValueOrDie();
  DetectReport report;
  report.recovered = BitVector::FromString("1000").ValueOrDie();
  report.bit_voted = {true, true, true, false};
  // Bit 1 wrong + bit 3 unvoted (even though its recovered value matches).
  EXPECT_DOUBLE_EQ(*StrictMarkLoss(reference, report), 0.5);
}

TEST(MarkLossTest, StrictLossValidatesSizes) {
  auto reference = BitVector::FromString("11").ValueOrDie();
  DetectReport report;
  report.recovered = BitVector::FromString("1").ValueOrDie();
  report.bit_voted = {true};
  EXPECT_FALSE(StrictMarkLoss(reference, report).ok());
}

TEST(HierarchicalWatermarkTest, CleanDetectionHasAllBitsVoted) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  auto detect = env.watermarker->Detect(marked, wm.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  for (size_t j = 0; j < wm.size(); ++j) {
    EXPECT_TRUE(detect->bit_voted[j]) << j;
  }
  EXPECT_DOUBLE_EQ(*StrictMarkLoss(wm, *detect), 0.0);
}

TEST(DetectionPValueTest, PerfectMatchIsOverwhelming) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  auto detect = env.watermarker->Detect(marked, wm.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  auto p = DetectionPValue(wm, *detect);
  ASSERT_TRUE(p.ok());
  // 20 voted bits all matching: p = 2^-20 ~ 1e-6.
  EXPECT_LT(*p, 2e-6);
  EXPECT_GT(*p, 0.0);
}

TEST(DetectionPValueTest, WrongKeyIsInsignificant) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  WatermarkKey wrong{"w1", "w2", 3};
  HierarchicalWatermarker intruder(
      std::vector<size_t>{1}, 0,
      std::vector<GeneralizationSet>{env.Maximal()},
      std::vector<GeneralizationSet>{env.Ultimate()}, wrong, {});
  auto detect = intruder.Detect(marked, wm.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  auto p = DetectionPValue(wm, *detect);
  ASSERT_TRUE(p.ok());
  EXPECT_GT(*p, 0.01);  // chance-level agreement is not significant
}

TEST(DetectionPValueTest, NoVotesIsOne) {
  DetectReport report;
  report.recovered = BitVector(4);
  report.bit_voted = {false, false, false, false};
  auto p = DetectionPValue(BitVector(4), report);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 1.0);
}

TEST(DetectionPValueTest, HandComputedSmallCase) {
  // 4 voted bits, 3 matches: P[Bin(4, 1/2) >= 3] = (4 + 1)/16 = 0.3125.
  DetectReport report;
  report.recovered = BitVector::FromString("1100").ValueOrDie();
  report.bit_voted = {true, true, true, true};
  const BitVector reference = BitVector::FromString("1101").ValueOrDie();
  auto p = DetectionPValue(reference, report);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.3125, 1e-12);
}

TEST(DetectionPValueTest, SizeMismatchRejected) {
  DetectReport report;
  report.recovered = BitVector(3);
  report.bit_voted = {true, true, true};
  EXPECT_FALSE(DetectionPValue(BitVector(4), report).ok());
}

TEST(HierarchicalWatermarkTest, FullDeletionLosesEveryBitStrictly) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.watermarker->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  Table empty(marked.schema());
  auto detect = env.watermarker->Detect(empty, wm.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_DOUBLE_EQ(*StrictMarkLoss(wm, *detect), 1.0);
}

}  // namespace
}  // namespace privmark
