// Determinism and key-parameter sensitivity of the watermarking stack:
// embedding must be a pure function of (table, key, mark), and every key
// component — k1, k2, eta — must independently gate detection.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "watermark/hierarchical.h"

namespace privmark {
namespace {

DomainHierarchy Tree() {
  return HierarchyBuilder::FromOutline("sym", R"(All
  C1
    a1
    a2
    a3
  C2
    b1
    b2
    b3)").ValueOrDie();
}

Schema OneQiSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"sym", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

struct Env {
  std::unique_ptr<DomainHierarchy> tree;
  Table table;

  HierarchicalWatermarker Marker(const WatermarkKey& key) const {
    return HierarchicalWatermarker(
        std::vector<size_t>{1}, 0,
        std::vector<GeneralizationSet>{CutAtDepth(tree.get(), 1)},
        std::vector<GeneralizationSet>{
            GeneralizationSet::AllLeaves(tree.get())},
        key, WatermarkOptions{});
  }
};

Env MakeEnv() {
  Env env;
  env.tree = std::make_unique<DomainHierarchy>(Tree());
  Table t(OneQiSchema());
  Random rng(31337);
  const auto& leaves = env.tree->Leaves();
  for (size_t r = 0; r < 500; ++r) {
    EXPECT_TRUE(
        t.AppendRow(
             {Value::String("row-" + std::to_string(r)),
              Value::String(
                  env.tree->node(leaves[rng.Uniform(leaves.size())]).label)})
            .ok());
  }
  env.table = std::move(t);
  return env;
}

BitVector Mark() {
  return BitVector::FromString("11010011100101100011").ValueOrDie();
}

TEST(WatermarkDeterminismTest, EmbeddingIsAPureFunction) {
  Env env = MakeEnv();
  const WatermarkKey key{"det-k1", "det-k2", 4};
  Table a = env.table.Clone();
  Table b = env.table.Clone();
  auto marker = env.Marker(key);
  auto report_a = marker.Embed(&a, Mark());
  auto report_b = marker.Embed(&b, Mark());
  ASSERT_TRUE(report_a.ok());
  ASSERT_TRUE(report_b.ok());
  EXPECT_EQ(report_a->slots_embedded, report_b->slots_embedded);
  EXPECT_EQ(report_a->cells_changed, report_b->cells_changed);
  for (size_t r = 0; r < a.num_rows(); ++r) {
    ASSERT_EQ(a.at(r, 1), b.at(r, 1)) << r;
  }
}

TEST(WatermarkDeterminismTest, DoubleEmbeddingSameKeyIsIdempotent) {
  // Re-embedding the same mark with the same key must leave the table
  // unchanged: every selected slot already sits at its target node.
  Env env = MakeEnv();
  const WatermarkKey key{"det-k1", "det-k2", 4};
  auto marker = env.Marker(key);
  Table once = env.table.Clone();
  auto first = marker.Embed(&once, Mark());
  ASSERT_TRUE(first.ok());
  Table twice = once.Clone();
  auto second = marker.Embed(&twice, Mark(), first->copies);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cells_changed, 0u);
  for (size_t r = 0; r < once.num_rows(); ++r) {
    ASSERT_EQ(once.at(r, 1), twice.at(r, 1)) << r;
  }
}

TEST(WatermarkDeterminismTest, EtaMismatchBreaksDetection) {
  // eta is part of the secret: detecting with the right k1/k2 but the
  // wrong eta selects a different tuple population and degrades recovery
  // (bits lose their votes or pick up unrelated ones).
  Env env = MakeEnv();
  const WatermarkKey key{"det-k1", "det-k2", 3};
  auto marker = env.Marker(key);
  Table marked = env.table.Clone();
  auto embed = marker.Embed(&marked, Mark());
  ASSERT_TRUE(embed.ok());

  WatermarkKey wrong_eta = key;
  wrong_eta.eta = 7;
  auto detect =
      env.Marker(wrong_eta).Detect(marked, Mark().size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  // Some eta-7-selected tuples were never embedded: strict loss appears.
  EXPECT_GT(*StrictMarkLoss(Mark(), *detect), 0.1);

  // The correct eta still recovers exactly.
  auto correct = marker.Detect(marked, Mark().size(), embed->wmd_size);
  ASSERT_TRUE(correct.ok());
  EXPECT_EQ(correct->recovered, Mark());
}

TEST(WatermarkDeterminismTest, DetectionInvariantToWmdMultiple) {
  // A robustness property of multiple embedding: since wmd is the mark
  // duplicated, a slot's wm-bit index is (H mod |wmd|) mod |wm| =
  // H mod |wm| for ANY |wmd| that is a multiple of |wm|. Detection with a
  // different multiple therefore still recovers the mark exactly — the
  // recorded wmd_size is a convenience, not a secret, and losing it is
  // survivable as long as a multiple of |wm| is used.
  Env env = MakeEnv();
  const WatermarkKey key{"det-k1", "det-k2", 2};
  auto marker = env.Marker(key);
  Table marked = env.table.Clone();
  auto embed = marker.Embed(&marked, Mark());
  ASSERT_TRUE(embed.ok());
  ASSERT_GT(embed->copies, 2u);
  for (size_t multiple : {1u, 2u, 7u}) {
    auto detect = marker.Detect(marked, Mark().size(),
                                Mark().size() * multiple);
    ASSERT_TRUE(detect.ok()) << multiple;
    EXPECT_EQ(detect->recovered, Mark()) << multiple;
  }
}

TEST(WatermarkDeterminismTest, MarkContentChangesCells) {
  // Different marks must produce different embeddings (the bit actually
  // drives the permutation).
  Env env = MakeEnv();
  const WatermarkKey key{"det-k1", "det-k2", 2};
  auto marker = env.Marker(key);
  Table with_a = env.table.Clone();
  Table with_b = env.table.Clone();
  const BitVector mark_a(20, false);
  const BitVector mark_b(20, true);
  ASSERT_TRUE(marker.Embed(&with_a, mark_a).ok());
  ASSERT_TRUE(marker.Embed(&with_b, mark_b).ok());
  size_t differing = 0;
  for (size_t r = 0; r < with_a.num_rows(); ++r) {
    if (with_a.at(r, 1) != with_b.at(r, 1)) ++differing;
  }
  EXPECT_GT(differing, 50u);
}

}  // namespace
}  // namespace privmark
