#include "watermark/watermark_key.h"

#include <gtest/gtest.h>

#include <set>

namespace privmark {
namespace {

TEST(TupleSelectionTest, DeterministicPerIdent) {
  WatermarkKey key;
  key.eta = 10;
  for (int i = 0; i < 50; ++i) {
    const std::string ident = "id" + std::to_string(i);
    EXPECT_EQ(IsTupleSelected(key, HashAlgorithm::kSha1, ident),
              IsTupleSelected(key, HashAlgorithm::kSha1, ident));
  }
}

TEST(TupleSelectionTest, RateApproximatesOneOverEta) {
  WatermarkKey key;
  for (uint64_t eta : {10u, 50u, 100u}) {
    key.eta = eta;
    size_t selected = 0;
    constexpr size_t kCount = 30000;
    for (size_t i = 0; i < kCount; ++i) {
      if (IsTupleSelected(key, HashAlgorithm::kSha1,
                          "ident" + std::to_string(i))) {
        ++selected;
      }
    }
    const double rate = static_cast<double>(selected) / kCount;
    EXPECT_NEAR(rate, 1.0 / static_cast<double>(eta), 0.5 / eta)
        << "eta=" << eta;
  }
}

TEST(TupleSelectionTest, DifferentK1SelectsDifferentTuples) {
  WatermarkKey a;
  a.k1 = "alpha";
  a.eta = 5;
  WatermarkKey b;
  b.k1 = "bravo";
  b.eta = 5;
  int differing = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string ident = "id" + std::to_string(i);
    if (IsTupleSelected(a, HashAlgorithm::kSha1, ident) !=
        IsTupleSelected(b, HashAlgorithm::kSha1, ident)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 200);
}

TEST(TupleSelectionTest, EtaOneSelectsEverything) {
  WatermarkKey key;
  key.eta = 1;
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(IsTupleSelected(key, HashAlgorithm::kSha1,
                                "id" + std::to_string(i)));
  }
}

TEST(WmdPositionTest, InRangeAndDeterministic) {
  WatermarkKey key;
  for (int i = 0; i < 200; ++i) {
    const std::string ident = "id" + std::to_string(i);
    const size_t p = WmdPosition(key, HashAlgorithm::kSha1, ident, "age", 97);
    EXPECT_LT(p, 97u);
    EXPECT_EQ(p, WmdPosition(key, HashAlgorithm::kSha1, ident, "age", 97));
  }
}

TEST(WmdPositionTest, ColumnSeparation) {
  WatermarkKey key;
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string ident = "id" + std::to_string(i);
    if (WmdPosition(key, HashAlgorithm::kSha1, ident, "age", 1000) !=
        WmdPosition(key, HashAlgorithm::kSha1, ident, "zip", 1000)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 450);
}

TEST(WmdPositionTest, PositionsCoverTheRange) {
  WatermarkKey key;
  std::set<size_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(WmdPosition(key, HashAlgorithm::kSha1,
                            "id" + std::to_string(i), "c", 20));
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(PermutationIndexTest, InRangeDeterministicDepthSeparated) {
  WatermarkKey key;
  const size_t a =
      PermutationIndex(key, HashAlgorithm::kSha1, "id1", "age", 2, 7);
  EXPECT_LT(a, 7u);
  EXPECT_EQ(a, PermutationIndex(key, HashAlgorithm::kSha1, "id1", "age", 2, 7));
  // Depth changes the draw (used to decorrelate levels).
  int differing = 0;
  for (int i = 0; i < 300; ++i) {
    const std::string ident = "id" + std::to_string(i);
    if (PermutationIndex(key, HashAlgorithm::kSha1, ident, "age", 1, 64) !=
        PermutationIndex(key, HashAlgorithm::kSha1, ident, "age", 2, 64)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 280);
}

TEST(PermutationIndexTest, K2Separation) {
  WatermarkKey a;
  a.k2 = "one";
  WatermarkKey b;
  b.k2 = "two";
  int differing = 0;
  for (int i = 0; i < 300; ++i) {
    const std::string ident = "id" + std::to_string(i);
    if (PermutationIndex(a, HashAlgorithm::kSha1, ident, "c", 0, 64) !=
        PermutationIndex(b, HashAlgorithm::kSha1, ident, "c", 0, 64)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 280);
}

TEST(KeySeparationTest, SelectionIndependentOfK2) {
  // Changing k2 must not affect Eq. (5) selection (k1's job).
  WatermarkKey a;
  a.k2 = "x";
  a.eta = 7;
  WatermarkKey b = a;
  b.k2 = "y";
  for (int i = 0; i < 200; ++i) {
    const std::string ident = "id" + std::to_string(i);
    EXPECT_EQ(IsTupleSelected(a, HashAlgorithm::kSha1, ident),
              IsTupleSelected(b, HashAlgorithm::kSha1, ident));
  }
}

}  // namespace
}  // namespace privmark
