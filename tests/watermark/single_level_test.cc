#include "watermark/single_level.h"

#include <gtest/gtest.h>

#include <memory>

#include "attack/attacks.h"
#include "common/random.h"

namespace privmark {
namespace {

DomainHierarchy DeepTree() {
  return HierarchyBuilder::FromOutline("sym", R"(All
  C1
    B11
      s111
      s112
    B12
      s121
      s122
  C2
    B21
      s211
      s212
    B22
      s221
      s222)").ValueOrDie();
}

Schema OneQiSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"sym", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

Table MakeBinnedTable(const DomainHierarchy& tree, size_t rows,
                      uint64_t seed) {
  Table t(OneQiSchema());
  Random rng(seed);
  const auto& leaves = tree.Leaves();
  for (size_t r = 0; r < rows; ++r) {
    const NodeId leaf = leaves[rng.Uniform(leaves.size())];
    EXPECT_TRUE(t.AppendRow({Value::String("ident-" + std::to_string(r)),
                             Value::String(tree.node(leaf).label)}).ok());
  }
  return t;
}

BitVector TestMark() {
  return BitVector::FromString("10110010011010111001").ValueOrDie();
}

struct Env {
  std::unique_ptr<DomainHierarchy> tree;
  Table table;
  WatermarkKey key;
  std::unique_ptr<SingleLevelWatermarker> single;
  std::unique_ptr<HierarchicalWatermarker> hierarchical;
};

Env MakeSetup() {
  Env env;
  env.tree = std::make_unique<DomainHierarchy>(DeepTree());
  env.table = MakeBinnedTable(*env.tree, 600, 23);
  env.key.k1 = "single-k1";
  env.key.k2 = "single-k2";
  env.key.eta = 3;
  const GeneralizationSet ultimate =
      GeneralizationSet::AllLeaves(env.tree.get());
  const GeneralizationSet maximal = CutAtDepth(env.tree.get(), 1);
  env.single = std::make_unique<SingleLevelWatermarker>(
      std::vector<size_t>{1}, 0, std::vector<GeneralizationSet>{ultimate},
      env.key, WatermarkOptions{});
  env.hierarchical = std::make_unique<HierarchicalWatermarker>(
      std::vector<size_t>{1}, 0, std::vector<GeneralizationSet>{maximal},
      std::vector<GeneralizationSet>{ultimate}, env.key,
      WatermarkOptions{});
  return env;
}

TEST(SingleLevelTest, CleanRoundTripRecoversMark) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  const BitVector wm = TestMark();
  auto embed = env.single->Embed(&marked, wm);
  ASSERT_TRUE(embed.ok());
  EXPECT_GT(embed->slots_embedded, 0u);
  auto detect = env.single->Detect(marked, wm.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->recovered, wm);
}

TEST(SingleLevelTest, PermutationStaysAmongSiblings) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  ASSERT_TRUE(env.single->Embed(&marked, TestMark()).ok());
  for (size_t r = 0; r < marked.num_rows(); ++r) {
    const NodeId before =
        *env.tree->FindByLabel(env.table.at(r, 1).ToString());
    const NodeId after = *env.tree->FindByLabel(marked.at(r, 1).ToString());
    EXPECT_EQ(env.tree->Parent(before), env.tree->Parent(after))
        << "row " << r;
  }
}

TEST(SingleLevelTest, GeneralizationAttackDestroysSingleLevelMark) {
  // The Sec. 5.2 claim: the key-free generalization attack erases a
  // single-level watermark while the hierarchical scheme survives.
  Env env = MakeSetup();
  const BitVector wm = TestMark();

  Table single_marked = env.table.Clone();
  auto single_embed = env.single->Embed(&single_marked, wm);
  ASSERT_TRUE(single_embed.ok());

  Table hier_marked = env.table.Clone();
  auto hier_embed = env.hierarchical->Embed(&hier_marked, wm);
  ASSERT_TRUE(hier_embed.ok());

  const GeneralizationSet maximal = CutAtDepth(env.tree.get(), 1);
  auto attack1 = GeneralizationAttack(&single_marked, {1}, {maximal}, 1);
  ASSERT_TRUE(attack1.ok());
  EXPECT_GT(attack1->cells_changed, 0u);
  auto attack2 = GeneralizationAttack(&hier_marked, {1}, {maximal}, 1);
  ASSERT_TRUE(attack2.ok());

  auto single_detect =
      env.single->Detect(single_marked, wm.size(), single_embed->wmd_size);
  ASSERT_TRUE(single_detect.ok());
  const double single_loss = *MarkLossAgainst(wm, single_detect->recovered);

  auto hier_detect = env.hierarchical->Detect(hier_marked, wm.size(),
                                                hier_embed->wmd_size);
  ASSERT_TRUE(hier_detect.ok());
  const double hier_loss = *MarkLossAgainst(wm, hier_detect->recovered);

  // Single-level: all embedded levels were erased; recovery is noise.
  EXPECT_GT(single_loss, 0.2);
  // Hierarchical: upper-level copies survive; the mark is intact.
  EXPECT_DOUBLE_EQ(hier_loss, 0.0);
}

TEST(SingleLevelTest, BandwidthCountsEncodableSlots) {
  Env env = MakeSetup();
  auto bandwidth = env.single->EstimateBandwidth(env.table);
  ASSERT_TRUE(bandwidth.ok());
  EXPECT_GT(*bandwidth, 0u);
  Table marked = env.table.Clone();
  auto embed = env.single->Embed(&marked, TestMark());
  ASSERT_TRUE(embed.ok());
  EXPECT_EQ(embed->slots_embedded, *bandwidth);
}

TEST(SingleLevelTest, EmptyMarkRejected) {
  Env env = MakeSetup();
  Table marked = env.table.Clone();
  EXPECT_FALSE(env.single->Embed(&marked, BitVector()).ok());
}

TEST(SingleLevelTest, DetectValidatesSizes) {
  Env env = MakeSetup();
  EXPECT_FALSE(env.single->Detect(env.table, 20, 30).ok());
}

}  // namespace
}  // namespace privmark
