#include "watermark/key_registry.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/random.h"

namespace privmark {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

TEST(GenerateKeyTest, DeterministicFromSeed) {
  Random a(42);
  Random b(42);
  const NamedKey first = GenerateKey("clinic", 50, &a);
  const NamedKey second = GenerateKey("clinic", 50, &b);
  EXPECT_EQ(first.key.k1, second.key.k1);
  EXPECT_EQ(first.key.k2, second.key.k2);
  EXPECT_EQ(first.key.eta, 50u);
  EXPECT_EQ(first.name, "clinic");
  EXPECT_EQ(first.key.k1.size(), 16u);
  EXPECT_EQ(first.key.k2.size(), 16u);
  EXPECT_NE(first.key.k1, first.key.k2);
}

TEST(GenerateKeyTest, DistinctSeedsDistinctMaterial) {
  Random a(1);
  Random b(2);
  EXPECT_NE(GenerateKey("x", 50, &a).key.k1, GenerateKey("x", 50, &b).key.k1);
}

TEST(KeyRegistryTest, AddValidatesEntries) {
  KeyRegistry registry;
  Random rng(7);
  EXPECT_TRUE(registry.Add(GenerateKey("a", 50, &rng)).ok());
  // Duplicate name.
  Status dup = registry.Add(GenerateKey("a", 50, &rng));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  // Empty name / zero eta.
  EXPECT_FALSE(registry.Add(GenerateKey("", 50, &rng)).ok());
  EXPECT_FALSE(registry.Add(GenerateKey("b", 0, &rng)).ok());
  EXPECT_EQ(registry.size(), 1u);
}

TEST(KeyRegistryTest, FindByName) {
  KeyRegistry registry;
  Random rng(7);
  ASSERT_TRUE(registry.Add(GenerateKey("east", 50, &rng)).ok());
  ASSERT_TRUE(registry.Add(GenerateKey("west", 60, &rng)).ok());
  ASSERT_NE(registry.Find("west"), nullptr);
  EXPECT_EQ(registry.Find("west")->key.eta, 60u);
  EXPECT_EQ(registry.Find("north"), nullptr);
}

TEST(KeyRegistryTest, SerializeParseRoundTrip) {
  KeyRegistry registry;
  Random rng(11);
  ASSERT_TRUE(registry.Add(GenerateKey("clinic-east", 50, &rng)).ok());
  ASSERT_TRUE(registry.Add(GenerateKey("clinic-west", 75, &rng)).ok());
  // Arbitrary (non-printable) key bytes must survive the hex encoding.
  ASSERT_TRUE(registry
                  .Add(NamedKey{"binary",
                                WatermarkKey{std::string("\x00\x01\xff", 3),
                                             std::string("\n = [", 5), 9}})
                  .ok());

  auto parsed = KeyRegistry::Parse(registry.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  for (size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(parsed->keys()[i].name, registry.keys()[i].name) << i;
    EXPECT_EQ(parsed->keys()[i].key.k1, registry.keys()[i].key.k1) << i;
    EXPECT_EQ(parsed->keys()[i].key.k2, registry.keys()[i].key.k2) << i;
    EXPECT_EQ(parsed->keys()[i].key.eta, registry.keys()[i].key.eta) << i;
  }
}

TEST(KeyRegistryTest, FileRoundTrip) {
  const std::string path = TempPath("registry_roundtrip.keys");
  KeyRegistry registry;
  Random rng(13);
  ASSERT_TRUE(registry.Add(GenerateKey("east", 50, &rng)).ok());
  ASSERT_TRUE(registry.Add(GenerateKey("west", 50, &rng)).ok());
  ASSERT_TRUE(registry.WriteFile(path).ok());

  auto loaded = KeyRegistry::ReadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->keys()[0].key.k1, registry.keys()[0].key.k1);
  EXPECT_EQ(loaded->keys()[1].name, "west");
}

TEST(KeyRegistryTest, ReadMissingFileFails) {
  EXPECT_FALSE(KeyRegistry::ReadFile(TempPath("no_such.keys")).ok());
}

TEST(KeyRegistryTest, ParseRejectsEmptyFile) {
  auto parsed = KeyRegistry::Parse("");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("magic"), std::string::npos);
}

TEST(KeyRegistryTest, ParseRejectsBadMagic) {
  auto parsed = KeyRegistry::Parse("not-a-key-file\n[key]\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("not-a-key-file"),
            std::string::npos);
}

TEST(KeyRegistryTest, ParseRejectsUnsupportedVersion) {
  auto parsed = KeyRegistry::Parse("privmark-keys v2\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("version"), std::string::npos);
}

TEST(KeyRegistryTest, ParseRejectsTruncatedEntry) {
  // Entry missing its eta line — the error must name the broken entry.
  auto parsed = KeyRegistry::Parse(
      "privmark-keys v1\n"
      "[key]\n"
      "name = half-done\n"
      "k1 = 00ff\n"
      "k2 = 11ee\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("half-done"), std::string::npos);
}

TEST(KeyRegistryTest, ParseRejectsDuplicateNames) {
  auto parsed = KeyRegistry::Parse(
      "privmark-keys v1\n"
      "[key]\nname = same\nk1 = 00\nk2 = 01\neta = 5\n"
      "[key]\nname = same\nk1 = 02\nk2 = 03\neta = 5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kAlreadyExists);
}

TEST(KeyRegistryTest, ParseRejectsMalformedLines) {
  // Unknown key inside a section.
  EXPECT_FALSE(KeyRegistry::Parse("privmark-keys v1\n[key]\nwhat = 1\n").ok());
  // Key-value line before any [key] section.
  EXPECT_FALSE(KeyRegistry::Parse("privmark-keys v1\nname = stray\n").ok());
  // Bad hex and bad eta.
  EXPECT_FALSE(
      KeyRegistry::Parse("privmark-keys v1\n[key]\nname = a\nk1 = zz\n"
                         "k2 = 00\neta = 5\n")
          .ok());
  EXPECT_FALSE(
      KeyRegistry::Parse("privmark-keys v1\n[key]\nname = a\nk1 = 00\n"
                         "k2 = 00\neta = five\n")
          .ok());
}

TEST(KeyFileTest, SingleKeyRoundTrip) {
  const std::string path = TempPath("single.key");
  Random rng(17);
  const NamedKey key = GenerateKey("recipient-9", 40, &rng);
  ASSERT_TRUE(WriteKeyFile(key, path).ok());
  auto loaded = ReadKeyFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, key.name);
  EXPECT_EQ(loaded->key.k1, key.key.k1);
  EXPECT_EQ(loaded->key.k2, key.key.k2);
  EXPECT_EQ(loaded->key.eta, key.key.eta);
}

TEST(KeyFileTest, ReadKeyFileRequiresExactlyOneEntry) {
  const std::string empty_path = TempPath("zero.keys");
  WriteText(empty_path, "privmark-keys v1\n");
  EXPECT_FALSE(ReadKeyFile(empty_path).ok());

  const std::string two_path = TempPath("two.keys");
  KeyRegistry registry;
  Random rng(19);
  ASSERT_TRUE(registry.Add(GenerateKey("a", 50, &rng)).ok());
  ASSERT_TRUE(registry.Add(GenerateKey("b", 50, &rng)).ok());
  ASSERT_TRUE(registry.WriteFile(two_path).ok());
  EXPECT_FALSE(ReadKeyFile(two_path).ok());
}

}  // namespace
}  // namespace privmark
