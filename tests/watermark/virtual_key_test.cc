#include "watermark/virtual_key.h"

#include <gtest/gtest.h>

#include <memory>

#include "attack/attacks.h"
#include "common/random.h"
#include "core/framework.h"
#include "datagen/medical_data.h"

namespace privmark {
namespace {

DomainHierarchy DeepTree() {
  return HierarchyBuilder::FromOutline("sym", R"(All
  C1
    B11
      s111
      s112
    B12
      s121
      s122
  C2
    B21
      s211
      s212
    B22
      s221
      s222)").ValueOrDie();
}

Schema OneQiSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", ColumnRole::kIdentifying,
                                ValueType::kString}).ok());
  EXPECT_TRUE(schema.AddColumn({"sym", ColumnRole::kQuasiCategorical,
                                ValueType::kString}).ok());
  return schema;
}

struct Env {
  std::unique_ptr<DomainHierarchy> tree;
  Table table;
  WatermarkKey key;
  std::unique_ptr<HierarchicalWatermarker> watermarker;
};

Env MakeEnv() {
  Env env;
  env.tree = std::make_unique<DomainHierarchy>(DeepTree());
  Table t(OneQiSchema());
  Random rng(5);
  const auto& leaves = env.tree->Leaves();
  for (size_t r = 0; r < 600; ++r) {
    const NodeId leaf = leaves[rng.Uniform(leaves.size())];
    EXPECT_TRUE(
        t.AppendRow({Value::String("enc-" + std::to_string(r)),
                     Value::String(env.tree->node(leaf).label)}).ok());
  }
  env.table = std::move(t);
  env.key = {"vk-k1", "vk-k2", /*eta=*/2};
  env.watermarker = std::make_unique<HierarchicalWatermarker>(
      std::vector<size_t>{1}, 0,
      std::vector<GeneralizationSet>{CutAtDepth(env.tree.get(), 1)},
      std::vector<GeneralizationSet>{
          GeneralizationSet::AllLeaves(env.tree.get())},
      env.key, WatermarkOptions{});
  return env;
}

TEST(VirtualKeyTest, CoversLabelOfMaximalNode) {
  Env env = MakeEnv();
  const GeneralizationSet maximal = CutAtDepth(env.tree.get(), 1);
  auto key = VirtualIdentifier(env.table, 0, {1}, {maximal});
  ASSERT_TRUE(key.ok());
  // The cell is a leaf under C1 or C2; its cover label must be the key.
  EXPECT_TRUE(*key == "C1" || *key == "C2") << *key;
}

TEST(VirtualKeyTest, InvariantUnderWatermarkEmbedding) {
  Env env = MakeEnv();
  const GeneralizationSet maximal = CutAtDepth(env.tree.get(), 1);
  Table marked = env.table.Clone();
  const BitVector mark = BitVector::FromString("1011001001").ValueOrDie();
  ASSERT_TRUE(env.watermarker->Embed(&marked, mark).ok());
  for (size_t r = 0; r < env.table.num_rows(); ++r) {
    EXPECT_EQ(*VirtualIdentifier(env.table, r, {1}, {maximal}),
              *VirtualIdentifier(marked, r, {1}, {maximal}))
        << "row " << r;
  }
}

TEST(VirtualKeyTest, DegradesGracefullyOnUnknownLabels) {
  Env env = MakeEnv();
  const GeneralizationSet maximal = CutAtDepth(env.tree.get(), 1);
  Table attacked = env.table.Clone();
  attacked.Set(0, 1, Value::String("out-of-domain-junk"));
  auto key = VirtualIdentifier(attacked, 0, {1}, {maximal});
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, "out-of-domain-junk");
}

TEST(VirtualKeyTest, ValidationErrors) {
  Env env = MakeEnv();
  const GeneralizationSet maximal = CutAtDepth(env.tree.get(), 1);
  EXPECT_FALSE(VirtualIdentifier(env.table, 9999, {1}, {maximal}).ok());
  EXPECT_FALSE(VirtualIdentifier(env.table, 0, {1}, {}).ok());
}

TEST(VirtualKeyTest, MaterializeOverwritesIdentColumnOnly) {
  Env env = MakeEnv();
  const GeneralizationSet maximal = CutAtDepth(env.tree.get(), 1);
  auto materialized = MaterializeVirtualIdentifiers(env.table, {1}, {maximal});
  ASSERT_TRUE(materialized.ok());
  for (size_t r = 0; r < env.table.num_rows(); ++r) {
    EXPECT_NE(materialized->at(r, 0), env.table.at(r, 0));
    EXPECT_EQ(materialized->at(r, 1), env.table.at(r, 1));
  }
}

TEST(VirtualKeyTest, SingleColumnKeysCollapseByDesign) {
  // With one QI column the virtual-key space equals the maximal-node set
  // (here: {C1, C2}); whole cover groups move in lockstep and most mark
  // positions never receive a vote. This is the documented diversity
  // limitation — multi-column usage below is the supported regime.
  Env env = MakeEnv();
  Table published = env.table.Clone();
  const BitVector mark = BitVector::FromString("10110010011010111001")
                             .ValueOrDie();
  auto embed = EmbedWithVirtualKeys(*env.watermarker, &published, mark);
  ASSERT_TRUE(embed.ok());
  auto detect = DetectWithVirtualKeys(*env.watermarker, published,
                                      mark.size(), embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  size_t voted = 0;
  for (bool b : detect->bit_voted) voted += b ? 1 : 0;
  EXPECT_LE(voted, 2u);  // at most one position per distinct key
}

// ---- Multi-column (supported) regime over the medical pipeline ----

class VirtualKeyPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MedicalDataSpec spec;
    spec.num_rows = 3000;
    spec.seed = 21;
    dataset_ = std::make_unique<MedicalDataset>(
        std::move(GenerateMedicalDataset(spec)).ValueOrDie());
    config_.binning.k = 10;
    config_.binning.enforce_joint = false;
    config_.key = {"vk-k1", "vk-k2", /*eta=*/5};
    metrics_ = std::make_unique<UsageMetrics>(
        MetricsFromDepthCuts(dataset_->trees(), {2, 1, 2, 1, 1})
            .ValueOrDie());
    framework_ =
        std::make_unique<ProtectionFramework>(*metrics_, config_);
    BinningAgent agent(*metrics_, config_.binning);
    binning_ = std::make_unique<BinningOutcome>(
        std::move(agent.Run(dataset_->table)).ValueOrDie());
    watermarker_ = std::make_unique<HierarchicalWatermarker>(
        framework_->MakeWatermarker(*binning_));
  }

  std::unique_ptr<MedicalDataset> dataset_;
  FrameworkConfig config_;
  std::unique_ptr<UsageMetrics> metrics_;
  std::unique_ptr<ProtectionFramework> framework_;
  std::unique_ptr<BinningOutcome> binning_;
  std::unique_ptr<HierarchicalWatermarker> watermarker_;
};

TEST_F(VirtualKeyPipelineTest, EmbedDetectRoundTripWithoutIdentColumn) {
  // The headline property: embedding/detection work end to end keyed on
  // virtual identifiers, and the published table's identifying column is
  // untouched.
  Table published = binning_->binned.Clone();
  const BitVector mark = BitVector::FromString("10110010011010111001")
                             .ValueOrDie();
  auto embed = EmbedWithVirtualKeys(*watermarker_, &published, mark);
  ASSERT_TRUE(embed.ok());
  EXPECT_GT(embed->slots_embedded, 100u);
  for (size_t r = 0; r < published.num_rows(); ++r) {
    ASSERT_EQ(published.at(r, 0), binning_->binned.at(r, 0)) << r;
  }
  auto detect = DetectWithVirtualKeys(*watermarker_, published, mark.size(),
                                      embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_LE(*MarkLossAgainst(mark, detect->recovered), 0.05);
}

TEST_F(VirtualKeyPipelineTest, DetectionSurvivesIdentifierColumnDestruction) {
  // The scenario motivating virtual keys: the attacker strips/replaces
  // the identifying column entirely; column-keyed detection dies, virtual
  // keys do not care.
  Table published = binning_->binned.Clone();
  const BitVector mark = BitVector::FromString("10110010011010111001")
                             .ValueOrDie();
  auto embed = EmbedWithVirtualKeys(*watermarker_, &published, mark);
  ASSERT_TRUE(embed.ok());
  for (size_t r = 0; r < published.num_rows(); ++r) {
    published.Set(r, 0, Value::String("wiped-" + std::to_string(r * 7)));
  }
  // Column-keyed detection is now uncorrelated...
  auto column_keyed = watermarker_->Detect(published, mark.size(),
                                           embed->wmd_size);
  ASSERT_TRUE(column_keyed.ok());
  EXPECT_GT(*StrictMarkLoss(mark, *column_keyed), 0.3);
  // ...while virtual-key detection still recovers the mark.
  auto detect = DetectWithVirtualKeys(*watermarker_, published, mark.size(),
                                      embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_LE(*MarkLossAgainst(mark, detect->recovered), 0.05);
}

TEST_F(VirtualKeyPipelineTest, SiblingSwapDegradesButDoesNotDestroy) {
  // Swapped cells keep their maximal cover, so virtual keys stay stable;
  // the attack only injects level noise like in the column-keyed case.
  Table published = binning_->binned.Clone();
  const BitVector mark = BitVector::FromString("10110010011010111001")
                             .ValueOrDie();
  auto embed = EmbedWithVirtualKeys(*watermarker_, &published, mark);
  ASSERT_TRUE(embed.ok());
  Random rng(17);
  ASSERT_TRUE(SiblingSwapAttack(&published, binning_->qi_columns,
                                binning_->ultimate, 0.3, &rng)
                  .ok());
  auto detect = DetectWithVirtualKeys(*watermarker_, published, mark.size(),
                                      embed->wmd_size);
  ASSERT_TRUE(detect.ok());
  EXPECT_LE(*MarkLossAgainst(mark, detect->recovered), 0.25);
}

}  // namespace
}  // namespace privmark
