#include "hierarchy/domain_hierarchy.h"

#include <gtest/gtest.h>

#include <set>

namespace privmark {
namespace {

// The paper's Fig. 1 role tree, abbreviated.
Result<DomainHierarchy> RoleTree() {
  return HierarchyBuilder::FromOutline("role", R"(Person
  Medical Practitioner
    General Practitioner
    Medical Specialist
  Paramedic
    Pharmacist
    Nurse
    Consultant)");
}

TEST(HierarchyBuilderTest, BuildsCategoricalTree) {
  auto tree = RoleTree();
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->attribute(), "role");
  EXPECT_FALSE(tree->is_numeric());
  EXPECT_EQ(tree->num_nodes(), 8u);
  EXPECT_EQ(tree->Leaves().size(), 5u);
}

TEST(HierarchyBuilderTest, DepthsAndParents) {
  auto tree = RoleTree().ValueOrDie();
  const NodeId root = tree.root();
  EXPECT_EQ(tree.Depth(root), 0);
  EXPECT_EQ(tree.Parent(root), kInvalidNode);
  const NodeId nurse = *tree.FindByLabel("Nurse");
  EXPECT_EQ(tree.Depth(nurse), 2);
  EXPECT_EQ(tree.node(tree.Parent(nurse)).label, "Paramedic");
}

TEST(HierarchyBuilderTest, DuplicateLabelRejected) {
  HierarchyBuilder builder("x", "root");
  ASSERT_TRUE(builder.AddChild(0, "a").ok());
  EXPECT_EQ(builder.AddChild(0, "a").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(builder.AddChild(0, "root").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(HierarchyBuilderTest, AddPathCreatesAndReuses) {
  HierarchyBuilder builder("x", "root");
  auto leaf1 = builder.AddPath({"a", "b"});
  ASSERT_TRUE(leaf1.ok());
  auto leaf2 = builder.AddPath({"a", "c"});
  ASSERT_TRUE(leaf2.ok());
  auto tree = builder.Build().ValueOrDie();
  EXPECT_EQ(tree.num_nodes(), 4u);  // root, a, b, c
  EXPECT_EQ(tree.Children(*tree.FindByLabel("a")).size(), 2u);
}

TEST(HierarchyBuilderTest, AddPathConflictingParentRejected) {
  HierarchyBuilder builder("x", "root");
  ASSERT_TRUE(builder.AddPath({"a", "b"}).ok());
  // "b" exists under "a"; claiming it under the root must fail.
  EXPECT_FALSE(builder.AddPath({"b"}).ok());
}

TEST(FromOutlineTest, RejectsBadInput) {
  EXPECT_FALSE(HierarchyBuilder::FromOutline("x", "").ok());
  EXPECT_FALSE(HierarchyBuilder::FromOutline("x", "  indented root").ok());
  EXPECT_FALSE(HierarchyBuilder::FromOutline("x", "root\n\tTabChild").ok());
  EXPECT_FALSE(HierarchyBuilder::FromOutline("x", "root\n   odd").ok());
  // Skipping a level is invalid.
  EXPECT_FALSE(HierarchyBuilder::FromOutline("x", "root\n    grandchild").ok());
}

TEST(SiblingsTest, OrderAndIndex) {
  auto tree = RoleTree().ValueOrDie();
  const NodeId nurse = *tree.FindByLabel("Nurse");
  const std::vector<NodeId> sibs = tree.Siblings(nurse);
  ASSERT_EQ(sibs.size(), 3u);
  EXPECT_EQ(tree.node(sibs[0]).label, "Pharmacist");
  EXPECT_EQ(tree.node(sibs[1]).label, "Nurse");
  EXPECT_EQ(tree.node(sibs[2]).label, "Consultant");
  EXPECT_EQ(tree.SiblingIndex(nurse), 1u);
}

TEST(SiblingsTest, RootIsItsOwnSiblingSet) {
  auto tree = RoleTree().ValueOrDie();
  EXPECT_EQ(tree.Siblings(tree.root()), std::vector<NodeId>{tree.root()});
  EXPECT_EQ(tree.SiblingIndex(tree.root()), 0u);
}

TEST(LeavesTest, LeavesUnderSubtree) {
  auto tree = RoleTree().ValueOrDie();
  const NodeId paramedic = *tree.FindByLabel("Paramedic");
  const std::vector<NodeId> leaves = tree.LeavesUnder(paramedic);
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(tree.node(leaves[0]).label, "Pharmacist");
  EXPECT_EQ(tree.LeafCountUnder(paramedic), 3u);
  EXPECT_EQ(tree.LeafCountUnder(tree.root()), 5u);
  EXPECT_EQ(tree.LeafCountUnder(leaves[0]), 1u);
}

TEST(LookupTest, FindByLabelAndErrors) {
  auto tree = RoleTree().ValueOrDie();
  EXPECT_TRUE(tree.FindByLabel("Pharmacist").ok());
  EXPECT_EQ(tree.FindByLabel("Dentist").status().code(),
            StatusCode::kKeyError);
}

TEST(LookupTest, LeafForCategoricalValue) {
  auto tree = RoleTree().ValueOrDie();
  auto leaf = tree.LeafForValue(Value::String("Nurse"));
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(tree.node(*leaf).label, "Nurse");
  // Interior labels are not leaves.
  EXPECT_FALSE(tree.LeafForValue(Value::String("Paramedic")).ok());
}

TEST(AncestryTest, IsAncestorOrSelf) {
  auto tree = RoleTree().ValueOrDie();
  const NodeId root = tree.root();
  const NodeId paramedic = *tree.FindByLabel("Paramedic");
  const NodeId nurse = *tree.FindByLabel("Nurse");
  EXPECT_TRUE(tree.IsAncestorOrSelf(root, nurse));
  EXPECT_TRUE(tree.IsAncestorOrSelf(paramedic, nurse));
  EXPECT_TRUE(tree.IsAncestorOrSelf(nurse, nurse));
  EXPECT_FALSE(tree.IsAncestorOrSelf(nurse, paramedic));
  const NodeId gp = *tree.FindByLabel("General Practitioner");
  EXPECT_FALSE(tree.IsAncestorOrSelf(paramedic, gp));
}

TEST(AncestryTest, LevelsBetween) {
  auto tree = RoleTree().ValueOrDie();
  const NodeId nurse = *tree.FindByLabel("Nurse");
  EXPECT_EQ(tree.LevelsBetween(tree.root(), nurse), 2);
  EXPECT_EQ(tree.LevelsBetween(nurse, nurse), 0);
}

// ---- Numeric trees (paper Fig. 3) ----

TEST(NumericTreeTest, Fig3Construction) {
  // The paper's example: Age domain [0,150) cut into 5 intervals of 30.
  auto tree =
      BuildNumericHierarchy("age", {0, 30, 60, 90, 120, 150}).ValueOrDie();
  EXPECT_TRUE(tree.is_numeric());
  EXPECT_EQ(tree.Leaves().size(), 5u);
  EXPECT_EQ(tree.node(tree.root()).label, "[0,150)");
  EXPECT_DOUBLE_EQ(tree.node(tree.root()).lo, 0);
  EXPECT_DOUBLE_EQ(tree.node(tree.root()).hi, 150);
  // Pairwise combination: [0,60) and [60,120) exist; [120,150) is carried.
  EXPECT_TRUE(tree.FindByLabel("[0,60)").ok());
  EXPECT_TRUE(tree.FindByLabel("[60,120)").ok());
  EXPECT_TRUE(tree.FindByLabel("[120,150)").ok());
}

TEST(NumericTreeTest, LeavesAreInOrder) {
  auto tree = BuildNumericHierarchy("age", {0, 10, 20, 30, 40}).ValueOrDie();
  const auto& leaves = tree.Leaves();
  ASSERT_EQ(leaves.size(), 4u);
  for (size_t i = 0; i + 1 < leaves.size(); ++i) {
    EXPECT_LE(tree.node(leaves[i]).hi, tree.node(leaves[i + 1]).lo + 1e-9);
  }
}

TEST(NumericTreeTest, LeafForNumericValue) {
  auto tree =
      BuildNumericHierarchy("age", {0, 30, 60, 90, 120, 150}).ValueOrDie();
  EXPECT_EQ(tree.node(*tree.LeafForValue(Value::Int64(0))).label, "[0,30)");
  EXPECT_EQ(tree.node(*tree.LeafForValue(Value::Int64(29))).label, "[0,30)");
  EXPECT_EQ(tree.node(*tree.LeafForValue(Value::Int64(30))).label, "[30,60)");
  EXPECT_EQ(tree.node(*tree.LeafForValue(Value::Int64(149))).label,
            "[120,150)");
  EXPECT_FALSE(tree.LeafForValue(Value::Int64(150)).ok());
  EXPECT_FALSE(tree.LeafForValue(Value::Int64(-1)).ok());
}

TEST(NumericTreeTest, LabelLookupForGeneralizedCell) {
  auto tree =
      BuildNumericHierarchy("age", {0, 30, 60, 90, 120, 150}).ValueOrDie();
  // A binned cell holds a label; LeafForValue on a string goes via labels.
  auto leaf = tree.LeafForValue(Value::String("[30,60)"));
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(tree.node(*leaf).label, "[30,60)");
}

TEST(NumericTreeTest, UnequalIntervalsAllowed) {
  auto tree = BuildNumericHierarchy("x", {0, 1, 10, 100}).ValueOrDie();
  EXPECT_EQ(tree.Leaves().size(), 3u);
  EXPECT_EQ(tree.node(*tree.LeafForValue(Value::Double(0.5))).label, "[0,1)");
  EXPECT_EQ(tree.node(*tree.LeafForValue(Value::Double(50))).label,
            "[10,100)");
}

TEST(NumericTreeTest, RejectsBadBoundaries) {
  EXPECT_FALSE(BuildNumericHierarchy("x", {0}).ok());
  EXPECT_FALSE(BuildNumericHierarchy("x", {0, 0}).ok());
  EXPECT_FALSE(BuildNumericHierarchy("x", {10, 5}).ok());
}

TEST(NumericTreeTest, TwoLeavesMakeOneParent) {
  auto tree = BuildNumericHierarchy("x", {0, 5, 10}).ValueOrDie();
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.Children(tree.root()).size(), 2u);
}

TEST(IntervalLabelTest, Formatting) {
  EXPECT_EQ(IntervalLabel(0, 30), "[0,30)");
  EXPECT_EQ(IntervalLabel(2.5, 7.25), "[2.5,7.25)");
  EXPECT_EQ(IntervalLabel(-10, 0), "[-10,0)");
}

TEST(ToStringTest, RendersIndentedOutline) {
  auto tree = RoleTree().ValueOrDie();
  const std::string rendered = tree.ToString();
  EXPECT_NE(rendered.find("Person\n"), std::string::npos);
  EXPECT_NE(rendered.find("  Paramedic\n"), std::string::npos);
  EXPECT_NE(rendered.find("    Nurse\n"), std::string::npos);
}

TEST(LabelUniquenessTest, AllNodesDistinct) {
  auto tree = RoleTree().ValueOrDie();
  std::set<std::string> labels;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    labels.insert(tree.node(static_cast<NodeId>(i)).label);
  }
  EXPECT_EQ(labels.size(), tree.num_nodes());
}

}  // namespace
}  // namespace privmark
