#include "hierarchy/generalization.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace privmark {
namespace {

// The paper's Fig. 6 tree: maximal generalization nodes {20, 21, 22},
// minimal generalization nodes {30, 31, 45, 46, 33, 22}.
//
/*
 *            root
 *        /    |    \
 *      20    21    22
 *     /  \  /  \
 *    30 31 32  33
 *          / \
 *        45   46
 */
DomainHierarchy Fig6Tree() {
  return HierarchyBuilder::FromOutline("fig6", R"(root
  20
    30
    31
  21
    32
      45
      46
    33
  22)").ValueOrDie();
}

std::vector<NodeId> Ids(const DomainHierarchy& tree,
                        const std::vector<std::string>& labels) {
  std::vector<NodeId> ids;
  for (const auto& label : labels) ids.push_back(*tree.FindByLabel(label));
  return ids;
}

TEST(GeneralizationSetTest, ValidCoverAccepted) {
  DomainHierarchy tree = Fig6Tree();
  EXPECT_TRUE(GeneralizationSet::Create(&tree, Ids(tree, {"20", "21", "22"}))
                  .ok());
  EXPECT_TRUE(GeneralizationSet::Create(
                  &tree, Ids(tree, {"30", "31", "45", "46", "33", "22"}))
                  .ok());
  EXPECT_TRUE(GeneralizationSet::Create(&tree, {tree.root()}).ok());
}

TEST(GeneralizationSetTest, MixedLevelsAreValid) {
  // The broader notion of generalization: nodes need not share a level.
  DomainHierarchy tree = Fig6Tree();
  EXPECT_TRUE(
      GeneralizationSet::Create(&tree, Ids(tree, {"20", "32", "33", "22"}))
          .ok());
}

TEST(GeneralizationSetTest, UncoveredLeafRejected) {
  DomainHierarchy tree = Fig6Tree();
  // Missing the subtree of 22.
  auto r = GeneralizationSet::Create(&tree, Ids(tree, {"20", "21"}));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(GeneralizationSetTest, DoubleCoverRejected) {
  DomainHierarchy tree = Fig6Tree();
  // 21 covers 45 already; adding 45 double-covers it.
  auto r = GeneralizationSet::Create(&tree,
                                     Ids(tree, {"20", "21", "22", "45"}));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(GeneralizationSetTest, DuplicateNodeRejected) {
  DomainHierarchy tree = Fig6Tree();
  auto r = GeneralizationSet::Create(&tree,
                                     Ids(tree, {"20", "20", "21", "22"}));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(GeneralizationSetTest, OutOfRangeNodeRejected) {
  DomainHierarchy tree = Fig6Tree();
  auto r = GeneralizationSet::Create(&tree, {999});
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(GeneralizationSetTest, AllLeavesAndRootOnly) {
  DomainHierarchy tree = Fig6Tree();
  const GeneralizationSet leaves = GeneralizationSet::AllLeaves(&tree);
  EXPECT_EQ(leaves.size(), tree.Leaves().size());
  EXPECT_DOUBLE_EQ(leaves.SpecificityLoss(), 0.0);
  const GeneralizationSet root = GeneralizationSet::RootOnly(&tree);
  EXPECT_EQ(root.size(), 1u);
}

TEST(GeneralizationSetTest, NodeForLeafAndContains) {
  DomainHierarchy tree = Fig6Tree();
  auto gs =
      GeneralizationSet::Create(&tree, Ids(tree, {"20", "32", "33", "22"}))
          .ValueOrDie();
  EXPECT_TRUE(gs.Contains(*tree.FindByLabel("32")));
  EXPECT_FALSE(gs.Contains(*tree.FindByLabel("45")));
  EXPECT_EQ(*gs.NodeForLeaf(*tree.FindByLabel("45")),
            *tree.FindByLabel("32"));
  EXPECT_EQ(*gs.NodeForLeaf(*tree.FindByLabel("30")),
            *tree.FindByLabel("20"));
  EXPECT_EQ(*gs.NodeForLeaf(*tree.FindByLabel("22")),
            *tree.FindByLabel("22"));
}

TEST(GeneralizationSetTest, GeneralizeValue) {
  DomainHierarchy tree = Fig6Tree();
  auto gs = GeneralizationSet::Create(&tree, Ids(tree, {"20", "21", "22"}))
                .ValueOrDie();
  auto v = gs.Generalize(Value::String("45"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "21");
}

TEST(GeneralizationSetTest, NodeForLabelChecksMembership) {
  DomainHierarchy tree = Fig6Tree();
  auto gs = GeneralizationSet::Create(&tree, Ids(tree, {"20", "21", "22"}))
                .ValueOrDie();
  EXPECT_TRUE(gs.NodeForLabel("21").ok());
  EXPECT_EQ(gs.NodeForLabel("32").status().code(), StatusCode::kKeyError);
  EXPECT_EQ(gs.NodeForLabel("no-such").status().code(), StatusCode::kKeyError);
}

TEST(GeneralizationSetTest, RefinementOrder) {
  DomainHierarchy tree = Fig6Tree();
  auto minimal = GeneralizationSet::Create(
                     &tree, Ids(tree, {"30", "31", "45", "46", "33", "22"}))
                     .ValueOrDie();
  auto middle =
      GeneralizationSet::Create(&tree, Ids(tree, {"20", "32", "33", "22"}))
          .ValueOrDie();
  auto maximal = GeneralizationSet::Create(&tree, Ids(tree, {"20", "21", "22"}))
                     .ValueOrDie();
  EXPECT_TRUE(minimal.IsRefinementOf(middle));
  EXPECT_TRUE(minimal.IsRefinementOf(maximal));
  EXPECT_TRUE(middle.IsRefinementOf(maximal));
  EXPECT_FALSE(maximal.IsRefinementOf(minimal));
  EXPECT_FALSE(middle.IsRefinementOf(minimal));
  EXPECT_TRUE(minimal.IsRefinementOf(minimal));
}

TEST(GeneralizationSetTest, SpecificityLossFormula) {
  DomainHierarchy tree = Fig6Tree();
  // N = 6 leaves; Ng = 3 -> (6-3)/6 = 0.5 (Sec. 4.2.2).
  auto gs = GeneralizationSet::Create(&tree, Ids(tree, {"20", "21", "22"}))
                .ValueOrDie();
  EXPECT_DOUBLE_EQ(gs.SpecificityLoss(), 0.5);
}

TEST(CutAtDepthTest, DepthOneCut) {
  DomainHierarchy tree = Fig6Tree();
  const GeneralizationSet cut = CutAtDepth(&tree, 1);
  std::set<std::string> labels;
  for (NodeId id : cut.nodes()) labels.insert(tree.node(id).label);
  EXPECT_EQ(labels, (std::set<std::string>{"20", "21", "22"}));
}

TEST(CutAtDepthTest, DeepCutKeepsShallowLeaves) {
  DomainHierarchy tree = Fig6Tree();
  const GeneralizationSet cut = CutAtDepth(&tree, 2);
  std::set<std::string> labels;
  for (NodeId id : cut.nodes()) labels.insert(tree.node(id).label);
  // 22 is a depth-1 leaf and must be kept; others cut at depth 2.
  EXPECT_EQ(labels, (std::set<std::string>{"30", "31", "32", "33", "22"}));
}

TEST(CutAtDepthTest, DepthZeroIsRoot) {
  DomainHierarchy tree = Fig6Tree();
  EXPECT_EQ(CutAtDepth(&tree, 0).nodes(), std::vector<NodeId>{tree.root()});
}

TEST(EnumerateBetweenTest, ReproducesFig6Enumeration) {
  DomainHierarchy tree = Fig6Tree();
  auto minimal = GeneralizationSet::Create(
                     &tree, Ids(tree, {"30", "31", "45", "46", "33", "22"}))
                     .ValueOrDie();
  auto maximal = GeneralizationSet::Create(&tree, Ids(tree, {"20", "21", "22"}))
                     .ValueOrDie();
  auto all = EnumerateBetween(minimal, maximal, 1000);
  ASSERT_TRUE(all.ok());
  // The paper enumerates exactly these six allowable generalizations.
  const std::set<std::set<std::string>> expected = {
      {"30", "31", "45", "46", "33", "22"},
      {"30", "31", "32", "33", "22"},
      {"30", "31", "21", "22"},
      {"20", "45", "46", "33", "22"},
      {"20", "32", "33", "22"},
      {"20", "21", "22"}};
  std::set<std::set<std::string>> got;
  for (const auto& gs : *all) {
    std::set<std::string> labels;
    for (NodeId id : gs.nodes()) labels.insert(tree.node(id).label);
    got.insert(std::move(labels));
  }
  EXPECT_EQ(got, expected);
}

TEST(EnumerateBetweenTest, TrivialWhenBoundsEqual) {
  DomainHierarchy tree = Fig6Tree();
  auto bound = GeneralizationSet::Create(&tree, Ids(tree, {"20", "21", "22"}))
                   .ValueOrDie();
  auto all = EnumerateBetween(bound, bound, 10);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);
}

TEST(EnumerateBetweenTest, CapEnforced) {
  DomainHierarchy tree = Fig6Tree();
  auto minimal = GeneralizationSet::AllLeaves(&tree);
  auto maximal = GeneralizationSet::RootOnly(&tree);
  auto all = EnumerateBetween(minimal, maximal, 2);
  EXPECT_EQ(all.status().code(), StatusCode::kCapacityExceeded);
}

TEST(EnumerateBetweenTest, RejectsInvertedBounds) {
  DomainHierarchy tree = Fig6Tree();
  auto minimal = GeneralizationSet::AllLeaves(&tree);
  auto maximal = GeneralizationSet::RootOnly(&tree);
  auto all = EnumerateBetween(maximal, minimal, 100);
  EXPECT_EQ(all.status().code(), StatusCode::kInvalidArgument);
}

TEST(EnumerateBetweenTest, EveryResultIsValidAndBounded) {
  DomainHierarchy tree = Fig6Tree();
  auto minimal = GeneralizationSet::AllLeaves(&tree);
  auto maximal = GeneralizationSet::RootOnly(&tree);
  auto all = EnumerateBetween(minimal, maximal, 100000).ValueOrDie();
  EXPECT_GT(all.size(), 6u);
  for (const auto& gs : all) {
    EXPECT_TRUE(GeneralizationSet::ValidateCover(tree, gs.nodes()).ok());
    EXPECT_TRUE(minimal.IsRefinementOf(gs));
    EXPECT_TRUE(gs.IsRefinementOf(maximal));
  }
  // No duplicates.
  std::set<std::vector<NodeId>> unique;
  for (const auto& gs : all) unique.insert(gs.nodes());
  EXPECT_EQ(unique.size(), all.size());
}

}  // namespace
}  // namespace privmark
