// Unit tests for the NodeId-encoded column substrate (EncodedColumn /
// EncodedView) and the build-time tree layout metadata it leans on
// (leaf spans, O(1) sibling indices, dense-child-range check).

#include "hierarchy/encoded_view.h"

#include <gtest/gtest.h>

#include "hierarchy/generalization.h"
#include "relation/schema.h"

namespace privmark {
namespace {

Result<DomainHierarchy> RoleTree() {
  return HierarchyBuilder::FromOutline("role", R"(Person
  Medical Practitioner
    General Practitioner
    Medical Specialist
  Paramedic
    Pharmacist
    Nurse
    Consultant)");
}

Schema TwoColumnSchema() {
  Schema schema;
  EXPECT_TRUE(schema
                  .AddColumn({"id", ColumnRole::kIdentifying,
                              ValueType::kString})
                  .ok());
  EXPECT_TRUE(schema
                  .AddColumn({"role", ColumnRole::kQuasiCategorical,
                              ValueType::kString})
                  .ok());
  return schema;
}

Table RoleTable(const std::vector<std::string>& roles) {
  Table table(TwoColumnSchema());
  for (size_t i = 0; i < roles.size(); ++i) {
    EXPECT_TRUE(table
                    .AppendRow({Value::String("id" + std::to_string(i)),
                                Value::String(roles[i])})
                    .ok());
  }
  return table;
}

TEST(EncodedColumnTest, LeavesEncodeToLeafIds) {
  auto tree = RoleTree().ValueOrDie();
  Table table = RoleTable({"Nurse", "Pharmacist", "Nurse"});
  auto column = EncodedColumn::Leaves(table, 1, &tree);
  ASSERT_TRUE(column.ok());
  ASSERT_EQ(column->size(), 3u);
  EXPECT_EQ(column->id(0), *tree.FindByLabel("Nurse"));
  EXPECT_EQ(column->id(1), *tree.FindByLabel("Pharmacist"));
  EXPECT_EQ(column->id(2), column->id(0));
  EXPECT_EQ(column->unknown_cells(), 0u);
  EXPECT_EQ(column->tree(), &tree);
}

TEST(EncodedColumnTest, LeavesRejectUnknownLabel) {
  auto tree = RoleTree().ValueOrDie();
  Table table = RoleTable({"Nurse", "Dr. Nobody"});
  EXPECT_EQ(EncodedColumn::Leaves(table, 1, &tree).status().code(),
            StatusCode::kKeyError);
}

TEST(EncodedColumnTest, LeavesRejectInteriorLabel) {
  auto tree = RoleTree().ValueOrDie();
  Table table = RoleTable({"Paramedic"});
  EXPECT_EQ(EncodedColumn::Leaves(table, 1, &tree).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EncodedColumnTest, NumericOutOfRangeRejected) {
  auto tree = BuildNumericHierarchy("age", {0, 10, 20, 40}).ValueOrDie();
  Schema schema;
  ASSERT_TRUE(schema
                  .AddColumn({"age", ColumnRole::kQuasiNumeric,
                              ValueType::kInt64})
                  .ok());
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({Value::Int64(999)}).ok());
  EXPECT_EQ(EncodedColumn::Leaves(table, 0, &tree).status().code(),
            StatusCode::kOutOfRange);
}

TEST(EncodedColumnTest, SchemaMismatchRejected) {
  auto tree = RoleTree().ValueOrDie();
  Table table = RoleTable({"Nurse"});
  EXPECT_EQ(EncodedColumn::Leaves(table, 7, &tree).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(EncodedColumn::Leaves(table, 1, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EncodedColumnTest, LabelsTolerateUnknownCells) {
  auto tree = RoleTree().ValueOrDie();
  Table table = RoleTable({"Nurse", "junk-1", "Paramedic", "junk-2"});
  auto column = EncodedColumn::Labels(table, 1, &tree);
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column->unknown_cells(), 2u);
  EXPECT_EQ(column->id(0), *tree.FindByLabel("Nurse"));
  EXPECT_EQ(column->id(1), kInvalidNode);
  // Interior labels are valid nodes under Labels() (binned cells hold
  // generalization-node labels at any level).
  EXPECT_EQ(column->id(2), *tree.FindByLabel("Paramedic"));
  EXPECT_EQ(column->id(3), kInvalidNode);
}

TEST(EncodedColumnTest, FilteredKeepsMarkedRowsInOrder) {
  auto tree = RoleTree().ValueOrDie();
  Table table = RoleTable({"Nurse", "Pharmacist", "Consultant"});
  auto column = EncodedColumn::Leaves(table, 1, &tree).ValueOrDie();
  const EncodedColumn filtered = column.Filtered({1, 0, 1}).ValueOrDie();
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered.id(0), *tree.FindByLabel("Nurse"));
  EXPECT_EQ(filtered.id(1), *tree.FindByLabel("Consultant"));
  // A mask sized for a different table is rejected, not truncated.
  EXPECT_EQ(column.Filtered({1, 0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EncodedViewTest, SizeMismatchRejected) {
  auto tree = RoleTree().ValueOrDie();
  Table table = RoleTable({"Nurse"});
  // One QI column but two trees.
  EXPECT_EQ(EncodedView::Leaves(table, {1}, {&tree, &tree}).status().code(),
            StatusCode::kInvalidArgument);
  // Column index outside the schema.
  EXPECT_EQ(EncodedView::Leaves(table, {9}, {&tree}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EncodedViewTest, EncodesAllColumnsOnce) {
  auto tree = RoleTree().ValueOrDie();
  Table table = RoleTable({"Nurse", "Pharmacist"});
  auto view = EncodedView::Leaves(table, {1}, {&tree});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->num_columns(), 1u);
  EXPECT_EQ(view->num_rows(), 2u);
  EXPECT_EQ(view->column(0).id(1), *tree.FindByLabel("Pharmacist"));
}

// --------------------------------------------------------------------------
// Build-time tree layout metadata.

TEST(TreeLayoutTest, LeafSpansMatchLeavesUnder) {
  auto tree = RoleTree().ValueOrDie();
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    const std::vector<NodeId> expected = tree.LeavesUnder(id);
    const auto [begin, end] = tree.LeafSpan(id);
    ASSERT_EQ(end - begin, expected.size());
    EXPECT_EQ(tree.LeafCountUnder(id), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(tree.Leaves()[begin + i], expected[i]);
    }
    if (!expected.empty()) {
      EXPECT_EQ(tree.FirstLeafUnder(id), expected.front());
    }
  }
}

TEST(TreeLayoutTest, SiblingIndexMatchesSiblingOrder) {
  auto tree = RoleTree().ValueOrDie();
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    const std::vector<NodeId> sibs = tree.Siblings(id);
    ASSERT_LT(tree.SiblingIndex(id), sibs.size());
    EXPECT_EQ(sibs[tree.SiblingIndex(id)], id);
    EXPECT_EQ(tree.SiblingCount(id), sibs.size());
  }
}

TEST(TreeLayoutTest, NumericTreeKeepsLayoutAfterChildResort) {
  // BuildNumericHierarchy re-sorts children by interval and must recompute
  // spans and sibling indices afterwards.
  auto tree = BuildNumericHierarchy("age", {0, 10, 20, 40, 80}).ValueOrDie();
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    const std::vector<NodeId> expected = tree.LeavesUnder(id);
    const auto [begin, end] = tree.LeafSpan(id);
    ASSERT_EQ(end - begin, expected.size());
    const std::vector<NodeId> sibs = tree.Siblings(id);
    EXPECT_EQ(sibs[tree.SiblingIndex(id)], id);
  }
  // DFS materialization adds each proto node's two children back to back.
  EXPECT_TRUE(tree.has_dense_child_ranges());
}

TEST(TreeLayoutTest, OutlineTreeIsNotDense) {
  // DFS outline order interleaves subtrees, so the root's children are not
  // a contiguous id range.
  auto tree = RoleTree().ValueOrDie();
  EXPECT_FALSE(tree.has_dense_child_ranges());
}

TEST(TreeLayoutTest, StringViewLookupFindsEveryLabel) {
  auto tree = RoleTree().ValueOrDie();
  for (NodeId id = 0; id < static_cast<NodeId>(tree.num_nodes()); ++id) {
    const std::string& label = tree.node(id).label;
    auto found = tree.FindByLabel(std::string_view(label));
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, id);
  }
  EXPECT_EQ(tree.FindByLabel("No Such Role").status().code(),
            StatusCode::kKeyError);
}

}  // namespace
}  // namespace privmark
