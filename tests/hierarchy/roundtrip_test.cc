// Round-trip and consistency properties of the hierarchy substrate that
// cut across the per-class unit tests.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "datagen/ontologies.h"
#include "hierarchy/domain_hierarchy.h"

namespace privmark {
namespace {

TEST(HierarchyRoundTripTest, ToStringParsesBackIdentically) {
  // ToString emits the FromOutline format; parsing it back must reproduce
  // the exact same topology for every built-in ontology.
  for (auto builder : {BuildZipHierarchy, BuildDoctorHierarchy,
                       BuildSymptomHierarchy, BuildPrescriptionHierarchy}) {
    const DomainHierarchy original = std::move(builder()).ValueOrDie();
    auto reparsed = HierarchyBuilder::FromOutline(original.attribute(),
                                                  original.ToString());
    ASSERT_TRUE(reparsed.ok()) << original.attribute();
    ASSERT_EQ(reparsed->num_nodes(), original.num_nodes());
    for (size_t i = 0; i < original.num_nodes(); ++i) {
      const auto id = static_cast<NodeId>(i);
      EXPECT_EQ(reparsed->node(id).label, original.node(id).label);
      EXPECT_EQ(reparsed->Parent(id), original.Parent(id));
      EXPECT_EQ(reparsed->Depth(id), original.Depth(id));
    }
  }
}

TEST(HierarchyConsistencyTest, LeafCountsMatchLeavesUnder) {
  const DomainHierarchy tree = std::move(BuildSymptomHierarchy()).ValueOrDie();
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    EXPECT_EQ(tree.LeafCountUnder(id), tree.LeavesUnder(id).size()) << i;
  }
}

TEST(HierarchyConsistencyTest, SiblingIndexIsConsistentWithChildren) {
  const DomainHierarchy tree = std::move(BuildZipHierarchy()).ValueOrDie();
  for (size_t i = 1; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const std::vector<NodeId> sibs = tree.Siblings(id);
    EXPECT_EQ(sibs[tree.SiblingIndex(id)], id);
    EXPECT_EQ(sibs, tree.Children(tree.Parent(id)));
  }
}

TEST(HierarchyConsistencyTest, EveryNodeReachesRoot) {
  const DomainHierarchy tree =
      std::move(BuildPrescriptionHierarchy()).ValueOrDie();
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    NodeId cur = static_cast<NodeId>(i);
    int hops = 0;
    while (tree.Parent(cur) != kInvalidNode) {
      cur = tree.Parent(cur);
      ASSERT_LT(++hops, 100) << "cycle suspected at node " << i;
    }
    EXPECT_EQ(cur, tree.root());
  }
}

TEST(HierarchyConsistencyTest, NumericTreeIntervalsNest) {
  const DomainHierarchy tree = std::move(BuildAgeHierarchy()).ValueOrDie();
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const HierarchyNode& node = tree.node(id);
    ASSERT_TRUE(node.has_interval());
    EXPECT_LT(node.lo, node.hi);
    if (tree.Parent(id) != kInvalidNode) {
      const HierarchyNode& parent = tree.node(tree.Parent(id));
      EXPECT_GE(node.lo, parent.lo);
      EXPECT_LE(node.hi, parent.hi);
    }
    // Children partition the parent exactly.
    if (!node.is_leaf()) {
      double cursor = node.lo;
      for (NodeId child : tree.Children(id)) {
        EXPECT_DOUBLE_EQ(tree.node(child).lo, cursor);
        cursor = tree.node(child).hi;
      }
      EXPECT_DOUBLE_EQ(cursor, node.hi);
    }
  }
}

TEST(HierarchyConsistencyTest, RandomNumericTreesCoverTheirDomain) {
  Random rng(99);
  for (int round = 0; round < 20; ++round) {
    // 3-40 random strictly-increasing boundaries.
    std::vector<double> boundaries = {0};
    const size_t cuts = 2 + rng.Uniform(38);
    for (size_t i = 0; i < cuts; ++i) {
      boundaries.push_back(boundaries.back() + 1 +
                           static_cast<double>(rng.Uniform(20)));
    }
    auto tree = BuildNumericHierarchy("x", boundaries);
    ASSERT_TRUE(tree.ok()) << round;
    EXPECT_EQ(tree->Leaves().size(), boundaries.size() - 1);
    // Every in-domain value maps to exactly one leaf whose interval
    // contains it.
    for (int probe = 0; probe < 50; ++probe) {
      const double v = rng.NextDouble() * boundaries.back();
      auto leaf = tree->LeafForValue(Value::Double(v));
      ASSERT_TRUE(leaf.ok()) << v;
      EXPECT_GE(v, tree->node(*leaf).lo);
      EXPECT_LT(v, tree->node(*leaf).hi);
    }
  }
}

}  // namespace
}  // namespace privmark
