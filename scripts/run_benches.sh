#!/usr/bin/env bash
# Runs the google-benchmark microbenchmarks and writes the JSON that
# seeds the repo's perf trajectory (BENCH_micro.json).
#
# Usage:
#   scripts/run_benches.sh [build-dir] [out-json]
#
# Environment:
#   MIN_TIME  per-benchmark minimum run time in seconds (default 0.05).
#             NOTE: passed as a plain double (--benchmark_min_time=0.05),
#             which works on google-benchmark 1.7.x and 1.8.x alike; the
#             "0.05s"/"10x" suffix forms require >= 1.8.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_micro.json}"
MIN_TIME="${MIN_TIME:-0.05}"

BIN="${BUILD_DIR}/bench/micro_throughput"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not built. Run: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

"${BIN}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json \
  --benchmark_out="${OUT_JSON}" \
  --benchmark_out_format=json >/dev/null

echo "wrote ${OUT_JSON}"
