#!/usr/bin/env bash
# Runs the google-benchmark microbenchmarks in a dedicated *Release* build
# and writes the JSON that tracks the repo's perf trajectory
# (BENCH_micro.json).
#
# Usage:
#   scripts/run_benches.sh [out-json]
#
# Environment:
#   MIN_TIME        per-benchmark minimum run time in seconds (default
#                   0.05). NOTE: passed as a plain double
#                   (--benchmark_min_time=0.05), which works on
#                   google-benchmark 1.7.x and 1.8.x alike; the
#                   "0.05s"/"10x" suffix forms require >= 1.8.
#   BENCH_BUILD_DIR build directory (default build-bench). Always
#                   configured with -DCMAKE_BUILD_TYPE=Release; benchmark
#                   numbers from unoptimized builds are noise, so the
#                   emitted JSON is rejected unless the binary itself
#                   reports an optimized build (see below).
#   BASELINE_JSON   Release baseline to embed under the output's
#                   "baseline_release" key (default
#                   scripts/bench_baseline_release.json), so before/after
#                   numbers travel together.
#   CMAKE_ARGS      extra arguments appended to the cmake configure (CI
#                   passes -DCMAKE_CXX_COMPILER_LAUNCHER=ccache).
#
# Build-type validation: the binary records "privmark_build_type" into the
# JSON context from its own NDEBUG state. We check that field, not the
# benchmark library's "library_build_type" — distro libbenchmark packages
# are often built assertion-enabled and report "debug" even when our code
# is fully optimized (which is exactly how a debug-looking BENCH_micro.json
# got recorded from a Release tree once).
set -euo pipefail

OUT_JSON="${1:-BENCH_micro.json}"
MIN_TIME="${MIN_TIME:-0.05}"
BUILD_DIR="${BENCH_BUILD_DIR:-build-bench}"
BASELINE_JSON="${BASELINE_JSON:-scripts/bench_baseline_release.json}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DPRIVMARK_BUILD_TESTS=OFF \
  -DPRIVMARK_BUILD_EXAMPLES=OFF ${CMAKE_ARGS:-} >/dev/null
cmake --build "${BUILD_DIR}" --target micro_throughput -j "$(nproc)"

BIN="${BUILD_DIR}/bench/micro_throughput"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} was not built" >&2
  exit 1
fi

"${BIN}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json \
  --benchmark_out="${OUT_JSON}" \
  --benchmark_out_format=json >/dev/null

if ! grep -q '"privmark_build_type": "release"' "${OUT_JSON}"; then
  echo "error: ${OUT_JSON} was recorded from a non-Release privmark build" >&2
  echo "       (context.privmark_build_type != \"release\");" >&2
  echo "       refusing to publish debug benchmark numbers." >&2
  exit 1
fi

if [[ -f "${BASELINE_JSON}" ]] && command -v python3 >/dev/null 2>&1; then
  python3 - "${OUT_JSON}" "${BASELINE_JSON}" <<'PY'
import json
import sys

out_path, baseline_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    current = json.load(f)
with open(baseline_path) as f:
    baseline = json.load(f)
current["baseline_release"] = {
    "source": baseline_path,
    "context": baseline.get("context", {}),
    "benchmarks": baseline.get("benchmarks", []),
}
with open(out_path, "w") as f:
    json.dump(current, f, indent=1)
    f.write("\n")
PY
  echo "embedded baseline from ${BASELINE_JSON}"
fi

echo "wrote ${OUT_JSON}"
