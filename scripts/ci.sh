#!/usr/bin/env bash
# Tier-1 verify, runnable locally or from CI. Three configurations:
#   1. Debug + address/undefined sanitizers (slow-labeled suites excluded),
#      then a crypto-only rerun with UBSan findings made fatal
#      (halt_on_error) so misaligned loads in the multi-buffer SHA-1
#      backends fail the job instead of merely printing
#   2. Debug + thread sanitizer over the parallel-labeled suites (pool
#      substrate incl. concurrent submission/leases, binning,
#      watermarking, sessions, the service and daemon suites, failure
#      injection, the concurrent_hospitals smoke test), plus the full 20k
#      parallel-equivalence property suite, the thread-exercising
#      streaming-equivalence tests (session ingest and the parallel
#      joint-binning candidate search; the serial-only replay/drift
#      cases run in the Release job), and the 100-connection daemon
#      loopback soak (slow-labeled, so invoked directly)
#   3. Release with failpoints compiled in (everything, incl. the
#      fork/kill crash-recovery acceptance suite)
# plus a fault-injection replay of the faultinject-labeled suites under
# ASan with three fixed PRIVMARK_FAULT_SEED values, and a short-min-time
# benchmark smoke run on a failpoint-free Release build, gated
# by scripts/bench_check.py against the checked-in Release baseline
# (set PRIVMARK_BENCH_OVERRIDE=1 to report without failing).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== Debug + sanitizers ==="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPRIVMARK_SANITIZE=address,undefined
cmake --build build-asan -j "${JOBS}"
(cd build-asan && ctest --output-on-failure -j "${JOBS}" -LE slow)

echo "=== Crypto kernels under UBSan (alignment findings made fatal) ==="
# -fsanitize=undefined already instruments alignment, but UBSan only
# prints by default. halt_on_error turns any finding in the hashing
# kernels — notably misaligned loads in the multi-buffer SHA-1 backends,
# which read caller-provided message bytes at arbitrary offsets — into a
# hard failure. The multibuffer suite forces every compiled backend
# (portable/SSE2/AVX2) in turn, so each SIMD path is exercised here.
(cd build-asan && \
 UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
 ctest --output-on-failure -j "${JOBS}" \
   -R 'Sha1|Md5|KeyedHash|HashAlgorithm|Aes')

echo "=== Fault injection under ASan (three fixed seeds) ==="
# Debug builds compile failpoints in; the seed feeds the probabilistic
# fault-storm test, and the deterministic faultinject suites — including
# the daemon suite's injected wire.read/wire.write socket faults and the
# adversarial manifest cases — simply rerun.
# The fork/kill crash suite is slow-labeled and runs in the Release job.
for seed in 101 202 303; do
  (cd build-asan && \
   PRIVMARK_FAULT_SEED="${seed}" \
   ctest --output-on-failure -j "${JOBS}" -L faultinject -LE slow)
done

echo "=== Debug + thread sanitizer (parallel suites) ==="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPRIVMARK_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}"
(cd build-tsan && ctest --output-on-failure -j "${JOBS}" -L parallel -LE slow)
./build-tsan/tests/properties_parallel_equivalence_test
./build-tsan/tests/properties_fingerprint_equivalence_test
./build-tsan/tests/properties_streaming_equivalence_test \
  --gtest_filter='*AcrossThreads*:*JointParallel*'
./build-tsan/tests/integration_daemon_soak_test
# The v2 multiplex soak is the client demux path's race test: many
# threads pipelining sessions over ONE connection, streamed fingerprint
# shards interleaving with other sessions' responses.
./build-tsan/tests/integration_daemon_multiplex_soak_test

echo "=== Release ==="
# PRIVMARK_FAILPOINTS=ON keeps the crash-recovery acceptance suite alive in
# the Release test tree; unarmed failpoints are a branch on a relaxed atomic
# load, and the benchmark tree below is configured without them, so the
# published numbers never carry the instrumentation.
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DPRIVMARK_FAILPOINTS=ON
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "=== Benchmark smoke (Release-enforced, double-valued min_time) ==="
# run_benches.sh builds its own dedicated Release tree (build-bench/, tests
# and examples off) and refuses to publish non-Release numbers.
MIN_TIME=0.01 scripts/run_benches.sh BENCH_micro.json

echo "=== Benchmark regression gate ==="
python3 scripts/bench_check.py BENCH_micro.json

echo "CI OK"
