#!/usr/bin/env python3
"""Benchmark regression gate over BENCH_micro.json.

Compares a freshly-recorded google-benchmark JSON against the checked-in
Release baseline (scripts/bench_baseline_release.json) and exits non-zero
when any tracked benchmark regressed beyond the noise threshold — turning
the CI bench-smoke job from an artifact upload into an enforced gate.

The two runs come from different machines (a laptop recorded the
baseline, a CI runner records the candidate), so absolute times are not
comparable. The gate therefore self-normalizes: it computes each matched
benchmark's current/baseline time ratio, takes the median ratio as the
machine-speed scale, and flags a benchmark only when its own ratio
exceeds `scale * threshold`. A uniformly slower machine moves every
ratio — and the median with them — so nothing fires; a genuine
regression moves one benchmark away from the pack. The flip side is a
blind spot this tool accepts deliberately: a change that slows *every*
benchmark by the same factor is indistinguishable from slower hardware.

Usage:
    scripts/bench_check.py BENCH_micro.json \
        [--baseline scripts/bench_baseline_release.json] \
        [--threshold 1.35] [--summary "$GITHUB_STEP_SUMMARY"]

Exit codes: 0 ok (or override), 1 regression, 2 bad input.

Override: set PRIVMARK_BENCH_OVERRIDE=1 (CI sets it when the PR carries
the `bench-regression-ok` label) to report regressions without failing —
for intentional trade-offs; the printed table still documents them.
"""

import argparse
import json
import os
import re
import statistics
import sys

# Report-only benchmarks: measured and tabulated, but never gated (and
# not required to be present). BM_ServiceThroughput drives concurrent
# sessions against the host scheduler — on a shared CI runner its
# variance swamps any threshold — and the prefix also covers
# BM_ServiceThroughputLoopback, which adds real loopback sockets (and so
# the kernel's network stack) on top. BM_StreamedFingerprintLoopback is
# loopback-bound the same way (v2 streamed shards over real sockets).
# BM_GenerateDataset measures the RNG/allocator, not a protected-pipeline
# hot path. None of these calibrate the machine-speed median: only gated
# benchmarks do.
UNGATED_PATTERNS = [
    r"^BM_ServiceThroughput",
    r"^BM_StreamedFingerprintLoopback",
    r"^BM_GenerateDataset",
]


def is_gated(name):
    return not any(re.search(p, name) for p in UNGATED_PATTERNS)


def load_benchmarks(path):
    """name -> real_time in ns (aggregate entries and error runs skipped)."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" or "error_occurred" in bench:
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            continue
        out[bench["name"]] = bench["real_time"] * scale
    return out


def fmt_ms(ns):
    return f"{ns / 1e6:.3f}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh BENCH_micro.json")
    parser.add_argument(
        "--baseline",
        default="scripts/bench_baseline_release.json",
        help="checked-in Release baseline JSON",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.35,
        help="fail when a benchmark's ratio exceeds median * threshold",
    )
    parser.add_argument(
        "--summary",
        default=os.environ.get("GITHUB_STEP_SUMMARY", ""),
        help="append the markdown table to this file (job summary)",
    )
    args = parser.parse_args()

    try:
        current = load_benchmarks(args.current)
        baseline = load_benchmarks(args.baseline)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_check: cannot load inputs: {e}", file=sys.stderr)
        return 2
    if not current:
        print(f"bench_check: no benchmarks in {args.current}", file=sys.stderr)
        return 2

    matched = sorted(set(current) & set(baseline))
    fresh = sorted(set(current) - set(baseline))
    dropped = sorted(n for n in set(baseline) - set(current) if is_gated(n))
    gated = [name for name in matched if is_gated(name)]
    if not gated:
        print("bench_check: no gated benchmark names match the baseline",
              file=sys.stderr)
        return 2

    ratios = {name: current[name] / baseline[name] for name in matched}
    scale = statistics.median(ratios[name] for name in gated)

    rows = []
    regressions = []
    for name in matched:
        normalized = ratios[name] / scale
        if not is_gated(name):
            verdict = "not gated"
        elif normalized > args.threshold:
            verdict = "REGRESSED"
            regressions.append(name)
        elif normalized < 1.0 / args.threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append((name, fmt_ms(baseline[name]), fmt_ms(current[name]),
                     f"{ratios[name]:.2f}", f"{normalized:.2f}", verdict))

    header = ("benchmark", "baseline ms", "current ms", "ratio",
              "normalized", "verdict")
    lines = [
        f"## Bench gate: {'FAIL' if regressions else 'pass'} "
        f"(machine scale {scale:.2f}x, threshold {args.threshold}x)",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    for name in fresh:
        lines.append(f"| {name} | — | {fmt_ms(current[name])} | — | — | "
                     "new (no baseline) |")
    # A baseline benchmark that is absent from (or errored in) the fresh
    # run fails the gate: silently dropping out of perf coverage is the
    # failure mode an enforced gate exists to prevent. A deliberate
    # rename/removal needs a baseline refresh or the override label.
    for name in dropped:
        lines.append(f"| {name} | {fmt_ms(baseline[name])} | — | — | — | "
                     "MISSING from run |")
    report = "\n".join(lines)
    print(report)
    if args.summary:
        with open(args.summary, "a") as f:
            f.write(report + "\n")

    if regressions or dropped:
        if regressions:
            print(f"\nbench_check: {len(regressions)} regression(s): "
                  + ", ".join(regressions), file=sys.stderr)
        if dropped:
            print(f"\nbench_check: {len(dropped)} tracked benchmark(s) "
                  "missing or errored in this run: " + ", ".join(dropped),
                  file=sys.stderr)
        if os.environ.get("PRIVMARK_BENCH_OVERRIDE"):
            print("bench_check: PRIVMARK_BENCH_OVERRIDE set "
                  "(bench-regression-ok label) — not failing the job.",
                  file=sys.stderr)
            return 0
        print("bench_check: label the PR `bench-regression-ok` to override "
              "an intentional trade-off (see README), or refresh "
              "scripts/bench_baseline_release.json for renamed/removed "
              "benchmarks.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
