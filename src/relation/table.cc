#include "relation/table.h"

#include <algorithm>

namespace privmark {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "AppendRow: row has " + std::to_string(row.size()) +
        " cells, schema has " + std::to_string(schema_.num_columns()) +
        " columns");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::RemoveRows(std::vector<size_t> indices) {
  if (indices.empty()) return;
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  std::vector<Row> kept;
  kept.reserve(rows_.size() - indices.size());
  size_t next_removed = 0;
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (next_removed < indices.size() && indices[next_removed] == r) {
      ++next_removed;
      continue;
    }
    kept.push_back(std::move(rows_[r]));
  }
  rows_ = std::move(kept);
}

std::vector<Value> Table::ColumnValues(size_t c) const {
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[c]);
  return out;
}

std::vector<Bin> Table::GroupBy(const std::vector<size_t>& columns) const {
  std::map<std::vector<Value>, std::vector<size_t>> groups;
  std::vector<Value> key(columns.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t i = 0; i < columns.size(); ++i) {
      key[i] = rows_[r][columns[i]];
    }
    groups[key].push_back(r);
  }
  std::vector<Bin> bins;
  bins.reserve(groups.size());
  for (auto& [k, members] : groups) {
    bins.push_back(Bin{k, std::move(members)});
  }
  return bins;
}

size_t Table::MinBinSize(const std::vector<size_t>& columns) const {
  if (rows_.empty()) return 0;
  size_t min_size = rows_.size();
  for (const Bin& bin : GroupBy(columns)) {
    min_size = std::min(min_size, bin.size());
  }
  return min_size;
}

bool Table::IsKAnonymous(const std::vector<size_t>& columns, size_t k) const {
  return MinBinSize(columns) >= k;
}

Table Table::Clone() const {
  Table copy(schema_);
  copy.rows_ = rows_;
  return copy;
}

Table Table::Slice(size_t begin, size_t end) const {
  Table slice(schema_);
  end = std::min(end, rows_.size());
  for (size_t r = begin; r < end; ++r) {
    slice.rows_.push_back(rows_[r]);
  }
  return slice;
}

}  // namespace privmark
