#include "relation/schema.h"

namespace privmark {

const char* ColumnRoleToString(ColumnRole role) {
  switch (role) {
    case ColumnRole::kIdentifying:
      return "identifying";
    case ColumnRole::kQuasiCategorical:
      return "quasi-categorical";
    case ColumnRole::kQuasiNumeric:
      return "quasi-numeric";
    case ColumnRole::kOther:
      return "other";
  }
  return "unknown";
}

Schema::Schema(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {}

Status Schema::AddColumn(ColumnSpec spec) {
  for (const auto& existing : columns_) {
    if (existing.name == spec.name) {
      return Status::AlreadyExists("column '" + spec.name +
                                   "' already present");
    }
  }
  columns_.push_back(std::move(spec));
  return Status::OK();
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::KeyError("no column named '" + name + "'");
}

std::vector<size_t> Schema::ColumnsWithRole(ColumnRole role) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].role == role) out.push_back(i);
  }
  return out;
}

std::vector<size_t> Schema::QuasiIdentifyingColumns() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].role == ColumnRole::kQuasiCategorical ||
        columns_[i].role == ColumnRole::kQuasiNumeric) {
      out.push_back(i);
    }
  }
  return out;
}

Result<size_t> Schema::IdentifyingColumn() const {
  const std::vector<size_t> ids = ColumnsWithRole(ColumnRole::kIdentifying);
  if (ids.empty()) {
    return Status::KeyError("schema has no identifying column");
  }
  if (ids.size() > 1) {
    return Status::InvalidArgument(
        "schema has " + std::to_string(ids.size()) +
        " identifying columns; exactly one is expected");
  }
  return ids[0];
}

bool operator==(const ColumnSpec& a, const ColumnSpec& b) {
  return a.name == b.name && a.role == b.role && a.type == b.type;
}

bool Schema::operator==(const Schema& other) const {
  return columns_ == other.columns_;
}

}  // namespace privmark
