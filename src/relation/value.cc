#include "relation/value.h"

#include <cassert>
#include <cerrno>
#include <cstdlib>

#include "common/strings.h"

namespace privmark {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt64;
    case 2:
      return ValueType::kDouble;
    default:
      return ValueType::kString;
  }
}

int64_t Value::AsInt64() const {
  assert(type() == ValueType::kInt64);
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  if (type() == ValueType::kInt64) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  assert(type() == ValueType::kDouble);
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  assert(type() == ValueType::kString);
  return std::get<std::string>(data_);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return FormatDouble(std::get<double>(data_), 6);
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "";
}

Result<Value> Value::Parse(const std::string& text, ValueType expected) {
  if (text.empty() && expected != ValueType::kString) return Value::Null();
  switch (expected) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("cannot parse '" + text +
                                       "' as int64");
      }
      return Value::Int64(v);
    }
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("cannot parse '" + text +
                                       "' as double");
      }
      return Value::Double(v);
    }
    case ValueType::kString:
      return Value::String(text);
  }
  return Status::InvalidArgument("unknown expected type");
}

bool Value::operator<(const Value& other) const {
  if (data_.index() != other.data_.index()) {
    return data_.index() < other.data_.index();
  }
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return std::get<int64_t>(data_) < std::get<int64_t>(other.data_);
    case ValueType::kDouble:
      return std::get<double>(data_) < std::get<double>(other.data_);
    case ValueType::kString:
      return std::get<std::string>(data_) < std::get<std::string>(other.data_);
  }
  return false;
}

}  // namespace privmark
