#include "relation/csv.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace privmark {

namespace {

// Caps on untrusted CSV input. A single field larger than 16 MiB or a file
// larger than 1 GiB is not a data set this library targets — it is far more
// likely a corrupt or adversarial input, and slurping it would balloon
// memory before any schema check runs. Both caps fail with a clean
// InvalidArgument/IOError instead.
constexpr size_t kMaxCsvFieldBytes = 16ull << 20;
constexpr uint64_t kMaxCsvFileBytes = 1ull << 30;

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteCell(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

// Parses one CSV record starting at `pos`; advances pos past the record's
// line terminator. Handles quoted fields with embedded commas/quotes.
Result<std::vector<std::string>> ParseRecord(const std::string& text,
                                             size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\0') {
      // NUL never appears in well-formed CSV; accepting it would let a
      // binary blob masquerade as a short record when later passed through
      // C string handling.
      return Status::InvalidArgument("CSV: embedded NUL byte at offset " +
                                     std::to_string(i));
    }
    if (field.size() > kMaxCsvFieldBytes) {
      return Status::InvalidArgument(
          "CSV: field at offset " + std::to_string(*pos) + " exceeds " +
          std::to_string(kMaxCsvFieldBytes) + " bytes");
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else {
      if (c == '"') {
        if (!field.empty()) {
          return Status::InvalidArgument(
              "CSV: quote inside unquoted field at offset " +
              std::to_string(i));
        }
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(field));
        field.clear();
      } else if (c == '\n' || c == '\r') {
        break;
      } else {
        field += c;
      }
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV: unterminated quoted field");
  }
  fields.push_back(std::move(field));
  // Skip the line terminator (\n, \r, or \r\n).
  if (i < text.size() && text[i] == '\r') ++i;
  if (i < text.size() && text[i] == '\n') ++i;
  *pos = i;
  return fields;
}

}  // namespace

std::string TableToCsv(const Table& table) {
  std::string out;
  std::vector<std::string> names;
  names.reserve(table.num_columns());
  for (const auto& col : table.schema().columns()) {
    names.push_back(QuoteCell(col.name));
  }
  out += Join(names, ",");
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(table.num_columns());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      cells.push_back(QuoteCell(table.at(r, c).ToString()));
    }
    out += Join(cells, ",");
    out += '\n';
  }
  return out;
}

Result<Table> TableFromCsv(const std::string& csv, const Schema& schema) {
  size_t pos = 0;
  PRIVMARK_ASSIGN_OR_RETURN(std::vector<std::string> header,
                            ParseRecord(csv, &pos));
  if (header.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "CSV header has " + std::to_string(header.size()) +
        " columns, schema has " + std::to_string(schema.num_columns()));
  }
  for (size_t c = 0; c < header.size(); ++c) {
    if (header[c] != schema.column(c).name) {
      return Status::InvalidArgument("CSV header column " + std::to_string(c) +
                                     " is '" + header[c] + "', expected '" +
                                     schema.column(c).name + "'");
    }
  }

  Table table(schema);
  while (pos < csv.size()) {
    // Allow (and stop at) a trailing newline.
    if (csv[pos] == '\n' || csv[pos] == '\r') {
      ++pos;
      continue;
    }
    PRIVMARK_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                              ParseRecord(csv, &pos));
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "CSV record has " + std::to_string(fields.size()) +
          " fields, expected " + std::to_string(schema.num_columns()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      auto parsed = Value::Parse(fields[c], schema.column(c).type);
      if (parsed.ok()) {
        row.push_back(std::move(parsed).ValueOrDie());
      } else {
        // Generalized cells (e.g. "[25,50)" in a numeric column) stay as
        // string labels, mirroring how binned tables hold node labels.
        row.push_back(Value::String(fields[c]));
      }
    }
    PRIVMARK_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

Status WriteTableCsv(const Table& table, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const std::string csv = TableToCsv(table);
  file.write(csv.data(), static_cast<std::streamsize>(csv.size()));
  if (!file) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<Table> ReadTableCsv(const std::string& path, const Schema& schema) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  // Size-check before slurping so an oversized (or runaway, e.g. /dev/zero)
  // input fails cleanly instead of exhausting memory.
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  if (size < 0) {
    return Status::IOError("cannot determine size of '" + path + "'");
  }
  if (static_cast<uint64_t>(size) > kMaxCsvFileBytes) {
    return Status::IOError("'" + path + "' is " + std::to_string(size) +
                           " bytes; CSV inputs are capped at " +
                           std::to_string(kMaxCsvFileBytes) + " bytes");
  }
  file.seekg(0, std::ios::beg);
  std::string text(static_cast<size_t>(size), '\0');
  file.read(text.data(), size);
  if (!file) {
    return Status::IOError("short read from '" + path + "'");
  }
  return TableFromCsv(text, schema);
}

}  // namespace privmark
