// Minimal CSV import/export for tables (header row + quoted-field support).
//
// Used by examples to persist protected tables, and by tests to round-trip
// data sets; the algorithms never depend on it.

#ifndef PRIVMARK_RELATION_CSV_H_
#define PRIVMARK_RELATION_CSV_H_

#include <string>

#include "common/status.h"
#include "relation/table.h"

namespace privmark {

/// \brief Serializes a table to CSV text (header = column names).
std::string TableToCsv(const Table& table);

/// \brief Parses CSV text into a table with the given schema.
///
/// The header row must match the schema's column names in order; each cell is
/// parsed to the declared column type, with non-parsing cells for int64 and
/// double columns kept as strings (generalized labels like "[25,50)" survive
/// a round trip). Malformed input — embedded NUL bytes, unterminated quotes,
/// fields past the 16 MiB cap, record/header arity mismatches — fails with
/// InvalidArgument, never UB or unbounded allocation.
Result<Table> TableFromCsv(const std::string& csv, const Schema& schema);

/// \brief Writes a table to a CSV file.
Status WriteTableCsv(const Table& table, const std::string& path);

/// \brief Reads a table from a CSV file. Files past the 1 GiB cap are
/// rejected with IOError before any bytes are buffered.
Result<Table> ReadTableCsv(const std::string& path, const Schema& schema);

}  // namespace privmark

#endif  // PRIVMARK_RELATION_CSV_H_
