// Relational schema with the paper's column taxonomy.
//
// Section 2 of the paper categorizes columns into identifying columns
// (explicit identifiers such as SSN), quasi-identifying columns (linkable
// attributes such as zip code or birth date), and the rest. Binning operates
// on quasi-identifying columns; the identifying column is encrypted and then
// drives watermark tuple selection.

#ifndef PRIVMARK_RELATION_SCHEMA_H_
#define PRIVMARK_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relation/value.h"

namespace privmark {

/// \brief Privacy role of a column (paper Sec. 2).
enum class ColumnRole {
  /// Explicitly identifies an individual (e.g. SSN). Encrypted by binning.
  kIdentifying,
  /// Quasi-identifying categorical attribute; generalized along a DHT.
  kQuasiCategorical,
  /// Quasi-identifying numeric attribute; generalized along a binary
  /// interval DHT (paper Fig. 3).
  kQuasiNumeric,
  /// Carries no identifying information; passed through untouched.
  kOther,
};

const char* ColumnRoleToString(ColumnRole role);

/// \brief Declaration of one column.
struct ColumnSpec {
  std::string name;
  ColumnRole role = ColumnRole::kOther;
  /// Declared type of the *original* data. After binning, generalized cells
  /// hold string labels regardless of the declared type.
  ValueType type = ValueType::kString;
};

/// \brief Ordered collection of column specs with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns);

  /// \brief Appends a column; rejects duplicate names.
  Status AddColumn(ColumnSpec spec);

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }

  /// \brief Index of the column with this name.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// \brief Indices of all columns with the given role, in schema order.
  std::vector<size_t> ColumnsWithRole(ColumnRole role) const;

  /// \brief Indices of all quasi-identifying columns (categorical+numeric).
  std::vector<size_t> QuasiIdentifyingColumns() const;

  /// \brief Index of the identifying column; KeyError if absent, and
  /// InvalidArgument if there are several (the pipeline expects exactly one).
  Result<size_t> IdentifyingColumn() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<ColumnSpec> columns_;
};

bool operator==(const ColumnSpec& a, const ColumnSpec& b);

}  // namespace privmark

#endif  // PRIVMARK_RELATION_SCHEMA_H_
