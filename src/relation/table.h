// In-memory row-store table.
//
// The paper operates on one clinical relation of ~20k tuples; a simple
// row-major store with value semantics is the right tool — binning and
// watermarking both take whole-table passes, and attacks clone tables freely.

#ifndef PRIVMARK_RELATION_TABLE_H_
#define PRIVMARK_RELATION_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace privmark {

/// \brief One tuple.
using Row = std::vector<Value>;

/// \brief An equivalence class ("bin"): all rows sharing one generalized
/// quasi-identifier vector (paper Sec. 2: "records containing the same value
/// constitute a bin").
struct Bin {
  /// The shared quasi-identifier values, in the grouping columns' order.
  std::vector<Value> key;
  /// Indices of the member rows.
  std::vector<size_t> row_indices;

  size_t size() const { return row_indices.size(); }
};

/// \brief Mutable table: a Schema plus rows of Values.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_columns(); }

  /// \brief Appends a row after checking its arity.
  Status AppendRow(Row row);

  const Row& row(size_t r) const { return rows_[r]; }
  const Value& at(size_t r, size_t c) const { return rows_[r][c]; }
  void Set(size_t r, size_t c, Value v) { rows_[r][c] = std::move(v); }

  /// \brief Removes the rows at the given indices (need not be sorted).
  void RemoveRows(std::vector<size_t> indices);

  /// \brief All values of one column, in row order.
  std::vector<Value> ColumnValues(size_t c) const;

  /// \brief Groups rows by their values in `columns`; bins are returned in
  /// ascending key order so output is deterministic.
  std::vector<Bin> GroupBy(const std::vector<size_t>& columns) const;

  /// \brief Smallest bin size when grouping by `columns`; 0 for an empty
  /// table. A table is k-anonymous w.r.t. those columns iff this is >= k.
  size_t MinBinSize(const std::vector<size_t>& columns) const;

  /// \brief True iff every bin under `columns` has at least k rows.
  bool IsKAnonymous(const std::vector<size_t>& columns, size_t k) const;

  /// \brief Deep copy.
  Table Clone() const;

  /// \brief Copy of rows [begin, min(end, num_rows())) as a new table
  /// with the same schema — the batch-slicing primitive for streaming
  /// replay (sessions ingest a table in Slice()d batches).
  Table Slice(size_t begin, size_t end) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace privmark

#endif  // PRIVMARK_RELATION_TABLE_H_
