// Dynamically typed cell value for the relational substrate.

#ifndef PRIVMARK_RELATION_VALUE_H_
#define PRIVMARK_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace privmark {

/// \brief Runtime type of a Value.
enum class ValueType {
  kNull,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// \brief One relational cell: null, 64-bit integer, double, or string.
///
/// Cells start out typed per the schema (e.g. age is kInt64); after binning a
/// quasi-identifying cell holds the *label* of its generalization node (a
/// string such as "[25,50)" or "Paramedic"), which is how the paper's
/// transformed tables represent generalized data.
class Value {
 public:
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// \brief The integer payload; requires type() == kInt64.
  int64_t AsInt64() const;
  /// \brief Numeric payload widened to double; requires kInt64 or kDouble.
  double AsDouble() const;
  /// \brief The string payload; requires type() == kString.
  const std::string& AsString() const;

  /// \brief Render for display/CSV. Null renders as empty string.
  std::string ToString() const;

  /// \brief Parses a cell of the expected type from text. Empty text parses
  /// as Null. Returns InvalidArgument if the text does not parse.
  static Result<Value> Parse(const std::string& text, ValueType expected);

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// \brief Total order usable as a grouping/sorting key (orders first by
  /// type, then by payload).
  bool operator<(const Value& other) const;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace privmark

#endif  // PRIVMARK_RELATION_VALUE_H_
