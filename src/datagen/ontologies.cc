#include "datagen/ontologies.h"

namespace privmark {

Result<DomainHierarchy> BuildAgeHierarchy() {
  std::vector<double> boundaries;
  for (int b = 0; b <= 150; b += 5) boundaries.push_back(b);
  return BuildNumericHierarchy("age", boundaries);
}

Result<DomainHierarchy> BuildZipHierarchy() {
  // 8 two-digit regions x 3 three-digit districts x 4 five-digit zips = 96.
  static const char* kRegions[] = {"02", "10", "19", "27",
                                   "33", "48", "60", "94"};
  static const char* kDistrictDigits[] = {"1", "4", "7"};
  static const char* kLeafSuffixes[] = {"03", "26", "59", "88"};

  HierarchyBuilder builder("zip_code", "ZIP-*");
  for (const char* region : kRegions) {
    PRIVMARK_ASSIGN_OR_RETURN(
        NodeId region_node,
        builder.AddChild(0, std::string(region) + "***"));
    for (const char* district : kDistrictDigits) {
      PRIVMARK_ASSIGN_OR_RETURN(
          NodeId district_node,
          builder.AddChild(region_node,
                           std::string(region) + district + "**"));
      for (const char* suffix : kLeafSuffixes) {
        PRIVMARK_RETURN_NOT_OK(
            builder.AddChild(district_node,
                             std::string(region) + district + suffix)
                .status());
      }
    }
  }
  return builder.Build();
}

Result<DomainHierarchy> BuildDoctorHierarchy() {
  // Paper Fig. 1 arranges person roles in a DHT; we extend its role tree
  // one level down to 20 named practitioners (Fig. 14 reports 20 doctor
  // bins).
  static const char kOutline[] = R"(Person
  Medical Practitioner
    General Practitioner
      Dr. Adams
      Dr. Baker
      Dr. Chen
      Dr. Davis
    Medical Specialist
      Cardiologist
        Dr. Evans
        Dr. Flores
      Oncologist
        Dr. Garcia
        Dr. Huang
      Neurologist
        Dr. Ivanov
        Dr. Jackson
  Paramedic
    Pharmacist
      Ph. Kim
      Ph. Lopez
    Nurse
      N. Miller
      N. Nguyen
      N. O'Brien
    Consultant
      C. Patel
      C. Quinn
  Administrative Staff
    Registrar
      R. Roberts
      R. Silva
    Records Officer
      O. Turner)";
  return HierarchyBuilder::FromOutline("doctor", kOutline);
}

Result<DomainHierarchy> BuildSymptomHierarchy() {
  // Condensed ICD-9 structure: chapters -> blocks -> conditions (~100
  // leaves). Chapter and block names follow the ICD-9 chapter headings.
  static const char kOutline[] = R"(All Conditions
  Infectious And Parasitic Diseases
    Intestinal Infectious Diseases
      Cholera
      Typhoid Fever
      Salmonella Enteritis
      Shigellosis
      Viral Gastroenteritis
    Tuberculosis
      Pulmonary Tuberculosis
      Tuberculous Pleurisy
      Miliary Tuberculosis
    Viral Diseases
      Varicella
      Herpes Zoster
      Measles
      Viral Hepatitis B
      Infectious Mononucleosis
  Neoplasms
    Malignant Neoplasms Digestive
      Gastric Carcinoma
      Colon Carcinoma
      Pancreatic Carcinoma
      Hepatocellular Carcinoma
    Malignant Neoplasms Respiratory
      Laryngeal Carcinoma
      Bronchogenic Carcinoma
      Pleural Mesothelioma
    Benign Neoplasms
      Lipoma
      Uterine Leiomyoma
      Colonic Polyp
      Meningioma
  Endocrine And Metabolic Diseases
    Thyroid Disorders
      Simple Goiter
      Thyrotoxicosis
      Hypothyroidism
      Thyroiditis
    Diabetes Mellitus
      Type 1 Diabetes
      Type 2 Diabetes
      Diabetic Ketoacidosis
      Diabetic Nephropathy
    Lipid Metabolism Disorders
      Hypercholesterolemia
      Hypertriglyceridemia
      Mixed Hyperlipidemia
  Diseases Of The Circulatory System
    Hypertensive Disease
      Essential Hypertension
      Hypertensive Heart Disease
      Secondary Hypertension
    Ischemic Heart Disease
      Acute Myocardial Infarction
      Unstable Angina
      Chronic Ischemic Heart Disease
      Coronary Atherosclerosis
    Cerebrovascular Disease
      Subarachnoid Hemorrhage
      Intracerebral Hemorrhage
      Cerebral Infarction
      Transient Ischemic Attack
  Diseases Of The Respiratory System
    Acute Respiratory Infections
      Acute Nasopharyngitis
      Acute Sinusitis
      Acute Pharyngitis
      Acute Bronchitis
    Pneumonia And Influenza
      Viral Pneumonia
      Pneumococcal Pneumonia
      Bacterial Pneumonia
      Influenza
    Chronic Obstructive Disease
      Chronic Bronchitis
      Emphysema
      Asthma
      Bronchiectasis
  Diseases Of The Digestive System
    Upper Gastrointestinal Diseases
      Esophagitis
      Gastric Ulcer
      Duodenal Ulcer
      Acute Gastritis
    Noninfective Enteritis And Colitis
      Crohn Disease
      Ulcerative Colitis
      Irritable Bowel Syndrome
    Diseases Of Liver And Pancreas
      Alcoholic Cirrhosis
      Acute Pancreatitis
      Cholelithiasis
      Acute Cholecystitis
  Diseases Of The Musculoskeletal System
    Arthropathies
      Rheumatoid Arthritis
      Osteoarthrosis
      Gouty Arthritis
    Dorsopathies
      Cervical Disc Degeneration
      Lumbar Disc Displacement
      Sciatica
      Lumbago
    Osteopathies
      Osteoporosis
      Osteomyelitis
      Paget Disease Of Bone
  Injury And Poisoning
    Fractures
      Fracture Of Radius
      Fracture Of Femur
      Fracture Of Ankle
      Vertebral Fracture
    Sprains And Strains
      Ankle Sprain
      Knee Sprain
      Shoulder Strain
    Burns And Poisoning
      Second Degree Burn
      Drug Poisoning
      Food Poisoning)";
  return HierarchyBuilder::FromOutline("symptom", kOutline);
}

Result<DomainHierarchy> BuildPrescriptionHierarchy() {
  // Drug ontology: therapeutic class -> subclass -> product (~100 leaves,
  // matching Fig. 14's 97 prescription bins).
  static const char kOutline[] = R"(All Drugs
  Analgesics
    Nonsteroidal Antiinflammatory
      Ibuprofen
      Naproxen
      Diclofenac
      Celecoxib
    Opioid Analgesics
      Morphine
      Oxycodone
      Tramadol
      Fentanyl
    Simple Analgesics
      Paracetamol
      Aspirin
      Metamizole
  Antibacterials
    Penicillins
      Amoxicillin
      Ampicillin
      Piperacillin
      Flucloxacillin
    Cephalosporins
      Cefalexin
      Cefuroxime
      Ceftriaxone
      Cefepime
    Macrolides And Quinolones
      Azithromycin
      Clarithromycin
      Ciprofloxacin
      Levofloxacin
  Antivirals And Antifungals
    Antivirals
      Aciclovir
      Oseltamivir
      Lamivudine
      Ribavirin
    Antifungals
      Fluconazole
      Itraconazole
      Amphotericin B
    Antiretrovirals
      Zidovudine
      Efavirenz
      Lopinavir
  Cardiovascular Agents
    Antihypertensives
      Lisinopril
      Losartan
      Amlodipine
      Hydrochlorothiazide
    Beta Blockers
      Atenolol
      Metoprolol
      Bisoprolol
      Carvedilol
    Lipid Modifying Agents
      Simvastatin
      Atorvastatin
      Rosuvastatin
      Fenofibrate
  Psychotropics
    Antidepressants
      Fluoxetine
      Sertraline
      Venlafaxine
      Amitriptyline
    Anxiolytics And Hypnotics
      Diazepam
      Lorazepam
      Zolpidem
    Antipsychotics
      Haloperidol
      Risperidone
      Olanzapine
      Quetiapine
  Respiratory Agents
    Bronchodilators
      Salbutamol
      Salmeterol
      Ipratropium
      Tiotropium
    Inhaled Corticosteroids
      Beclometasone
      Budesonide
      Fluticasone
    Antihistamines
      Loratadine
      Cetirizine
      Fexofenadine
      Diphenhydramine
  Gastrointestinal Agents
    Acid Suppressants
      Omeprazole
      Pantoprazole
      Ranitidine
      Famotidine
    Antiemetics
      Ondansetron
      Metoclopramide
      Domperidone
    Laxatives And Antidiarrheals
      Lactulose
      Loperamide
      Mesalazine
  Endocrine Agents
    Antidiabetics
      Metformin
      Glibenclamide
      Insulin Glargine
      Sitagliptin
    Thyroid Agents
      Levothyroxine
      Carbimazole
      Propylthiouracil
    Corticosteroids
      Prednisolone
      Dexamethasone
      Hydrocortisone
      Methylprednisolone)";
  return HierarchyBuilder::FromOutline("prescription", kOutline);
}

}  // namespace privmark
