// Domain ontologies for the synthetic clinical data set (paper Sec. 7).
//
// The paper's evaluation uses a real ~20k-tuple relation
//   R(ssn, age, zip code, doctor, symptom, prescription)
// with a DHT per quasi-identifying column: ICD-9 for symptom, self-defined
// ontologies for the others, and a Fig. 3-style binary interval tree with
// "narrower intervals" for age. We rebuild each at the same scale:
//
//   age          : binary tree over [0, 150), 30 leaves of width 5
//   zip_code     : 4-level prefix tree, 96 five-digit leaves
//   doctor       : Fig. 1-style person-role tree, 20 named leaves
//   symptom      : condensed ICD-9 (chapters -> blocks -> conditions),
//                  ~100 leaves
//   prescription : drug classes -> subclasses -> products, ~100 leaves
//
// Leaf counts mirror the bin totals reported in the paper's Fig. 14
// (e.g. 20 doctors, 96 zip bins, 97 prescription bins at k=10).

#ifndef PRIVMARK_DATAGEN_ONTOLOGIES_H_
#define PRIVMARK_DATAGEN_ONTOLOGIES_H_

#include "common/status.h"
#include "hierarchy/domain_hierarchy.h"

namespace privmark {

/// \brief Binary interval DHT for age over [0, 150), leaf width 5.
Result<DomainHierarchy> BuildAgeHierarchy();

/// \brief Prefix tree for 5-digit zip codes (region -> 3-digit prefix ->
/// zip), 96 leaves.
Result<DomainHierarchy> BuildZipHierarchy();

/// \brief Person-role tree in the style of the paper's Fig. 1, with 20
/// individual practitioners as leaves.
Result<DomainHierarchy> BuildDoctorHierarchy();

/// \brief Condensed ICD-9-style condition ontology, ~100 leaves.
Result<DomainHierarchy> BuildSymptomHierarchy();

/// \brief Drug ontology (class -> subclass -> product), ~100 leaves.
Result<DomainHierarchy> BuildPrescriptionHierarchy();

}  // namespace privmark

#endif  // PRIVMARK_DATAGEN_ONTOLOGIES_H_
