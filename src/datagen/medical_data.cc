#include "datagen/medical_data.h"

#include <set>

#include "common/random.h"

namespace privmark {

Schema MedicalSchema() {
  Schema schema;
  // AddColumn only fails on duplicate names; these are statically distinct.
  (void)schema.AddColumn({"ssn", ColumnRole::kIdentifying, ValueType::kString});
  (void)schema.AddColumn({"age", ColumnRole::kQuasiNumeric, ValueType::kInt64});
  (void)schema.AddColumn(
      {"zip_code", ColumnRole::kQuasiCategorical, ValueType::kString});
  (void)schema.AddColumn(
      {"doctor", ColumnRole::kQuasiCategorical, ValueType::kString});
  (void)schema.AddColumn(
      {"symptom", ColumnRole::kQuasiCategorical, ValueType::kString});
  (void)schema.AddColumn(
      {"prescription", ColumnRole::kQuasiCategorical, ValueType::kString});
  return schema;
}

namespace {

// Draws leaf labels Zipf-skewed over a *shuffled* rank order, so frequency
// is not correlated with the tree's left-to-right leaf layout.
class LeafSampler {
 public:
  LeafSampler(const DomainHierarchy& tree, double skew, Random* rng)
      : tree_(tree),
        order_(rng->Permutation(tree.Leaves().size())),
        zipf_(tree.Leaves().size(), skew) {}

  const std::string& Sample(Random* rng) const {
    const size_t rank = zipf_.Sample(rng);
    const NodeId leaf = tree_.Leaves()[order_[rank]];
    return tree_.node(leaf).label;
  }

 private:
  const DomainHierarchy& tree_;
  std::vector<size_t> order_;
  ZipfSampler zipf_;
};

}  // namespace

Result<MedicalDataset> GenerateMedicalDataset(const MedicalDataSpec& spec) {
  MedicalDataset out;
  PRIVMARK_ASSIGN_OR_RETURN(DomainHierarchy age_tree, BuildAgeHierarchy());
  PRIVMARK_ASSIGN_OR_RETURN(DomainHierarchy zip_tree, BuildZipHierarchy());
  PRIVMARK_ASSIGN_OR_RETURN(DomainHierarchy doctor_tree,
                            BuildDoctorHierarchy());
  PRIVMARK_ASSIGN_OR_RETURN(DomainHierarchy symptom_tree,
                            BuildSymptomHierarchy());
  PRIVMARK_ASSIGN_OR_RETURN(DomainHierarchy prescription_tree,
                            BuildPrescriptionHierarchy());
  out.age = std::make_unique<DomainHierarchy>(std::move(age_tree));
  out.zip = std::make_unique<DomainHierarchy>(std::move(zip_tree));
  out.doctor = std::make_unique<DomainHierarchy>(std::move(doctor_tree));
  out.symptom = std::make_unique<DomainHierarchy>(std::move(symptom_tree));
  out.prescription =
      std::make_unique<DomainHierarchy>(std::move(prescription_tree));

  Random rng(spec.seed);
  LeafSampler zip_sampler(*out.zip, spec.zipf_skew, &rng);
  LeafSampler doctor_sampler(*out.doctor, spec.zipf_skew, &rng);
  LeafSampler symptom_sampler(*out.symptom, spec.zipf_skew, &rng);
  LeafSampler prescription_sampler(*out.prescription, spec.zipf_skew, &rng);

  // Age: mixture of three normal-ish humps (pediatric, adult, elderly)
  // clamped to [0, 150) — clinical age profiles are multimodal, and the
  // mixture exercises uneven leaf counts in the binary interval tree.
  auto sample_age = [&rng]() -> int64_t {
    const double u = rng.NextDouble();
    double center, spread;
    if (u < 0.15) {
      center = 8;
      spread = 6;
    } else if (u < 0.70) {
      center = 42;
      spread = 15;
    } else {
      center = 74;
      spread = 9;
    }
    // Sum of 4 uniforms approximates a normal cheaply and determinism is
    // all we need.
    double z = 0;
    for (int i = 0; i < 4; ++i) z += rng.NextDouble();
    const double v = center + (z - 2.0) * spread;
    if (v < 0) return 0;
    if (v >= 149) return 149;
    return static_cast<int64_t>(v);
  };

  Table table(MedicalSchema());
  std::set<std::string> used_ssns;
  for (size_t r = 0; r < spec.num_rows; ++r) {
    // Unique 9-digit SSNs.
    std::string ssn;
    do {
      ssn = rng.DigitString(9);
    } while (!used_ssns.insert(ssn).second);

    Row row;
    row.push_back(Value::String(std::move(ssn)));
    row.push_back(Value::Int64(sample_age()));
    row.push_back(Value::String(zip_sampler.Sample(&rng)));
    row.push_back(Value::String(doctor_sampler.Sample(&rng)));
    row.push_back(Value::String(symptom_sampler.Sample(&rng)));
    row.push_back(Value::String(prescription_sampler.Sample(&rng)));
    PRIVMARK_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  out.table = std::move(table);
  return out;
}

}  // namespace privmark
