// Synthetic clinical data set generator (substitute for the paper's
// proprietary ~20k-tuple relation; see DESIGN.md "Substitutions").
//
// Every algorithm in the pipeline consumes only (a) per-leaf tuple counts
// on each domain hierarchy and (b) the identifying column's bytes; the
// generator reproduces the paper's schema, leaf-domain sizes, and skewed
// value frequencies (Zipf draws over shuffled leaf ranks) so all code paths
// see realistic inputs and the experiment *shapes* are preserved.

#ifndef PRIVMARK_DATAGEN_MEDICAL_DATA_H_
#define PRIVMARK_DATAGEN_MEDICAL_DATA_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "datagen/ontologies.h"
#include "relation/table.h"

namespace privmark {

/// \brief Generator knobs.
struct MedicalDataSpec {
  /// Tuple count (the paper's data set holds "around 20000 tuples").
  size_t num_rows = 20000;
  /// PRNG seed; equal specs generate identical tables.
  uint64_t seed = 20050405;  // ICDE'05 dates, a fixed default
  /// Zipf skew of categorical value frequencies (0 = uniform).
  double zipf_skew = 0.8;
};

/// \brief A generated data set: table + owned domain hierarchies.
///
/// Movable but not copyable (the hierarchies' addresses are referenced by
/// GeneralizationSets built on top).
struct MedicalDataset {
  Table table;
  std::unique_ptr<DomainHierarchy> age;
  std::unique_ptr<DomainHierarchy> zip;
  std::unique_ptr<DomainHierarchy> doctor;
  std::unique_ptr<DomainHierarchy> symptom;
  std::unique_ptr<DomainHierarchy> prescription;

  /// \brief Trees in quasi-identifying column order (age, zip_code, doctor,
  /// symptom, prescription) — matches Schema::QuasiIdentifyingColumns().
  std::vector<const DomainHierarchy*> trees() const {
    return {age.get(), zip.get(), doctor.get(), symptom.get(),
            prescription.get()};
  }
};

/// \brief The paper's schema R(ssn, age, zip_code, doctor, symptom,
/// prescription) with privacy roles assigned.
Schema MedicalSchema();

/// \brief Generates the data set. Deterministic in `spec`.
Result<MedicalDataset> GenerateMedicalDataset(const MedicalDataSpec& spec);

}  // namespace privmark

#endif  // PRIVMARK_DATAGEN_MEDICAL_DATA_H_
