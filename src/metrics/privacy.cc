#include "metrics/privacy.h"

#include <algorithm>
#include <set>

namespace privmark {

Result<PrivacyReport> EvaluatePrivacy(const Table& table,
                                      const std::vector<size_t>& qi_columns) {
  if (qi_columns.empty()) {
    return Status::InvalidArgument(
        "EvaluatePrivacy: empty quasi-identifier set");
  }
  for (size_t col : qi_columns) {
    if (col >= table.num_columns()) {
      return Status::OutOfRange("EvaluatePrivacy: column index " +
                                std::to_string(col) + " out of range");
    }
  }
  PrivacyReport report;
  if (table.num_rows() == 0) return report;

  const std::vector<Bin> bins = table.GroupBy(qi_columns);
  report.num_bins = bins.size();
  report.k_anonymity_level = table.num_rows();
  double risk_sum = 0.0;
  for (const Bin& bin : bins) {
    report.k_anonymity_level = std::min(report.k_anonymity_level, bin.size());
    // Every record in the bin carries risk 1/|bin|.
    risk_sum += 1.0;  // |bin| * (1 / |bin|)
    if (bin.size() == 1) ++report.unique_records;
  }
  report.average_risk = risk_sum / static_cast<double>(table.num_rows());
  report.max_risk = 1.0 / static_cast<double>(report.k_anonymity_level);
  return report;
}

Result<std::vector<size_t>> RowsBelowK(const Table& table,
                                       const std::vector<size_t>& qi_columns,
                                       size_t k) {
  if (k < 1) {
    return Status::InvalidArgument("RowsBelowK: k must be >= 1");
  }
  std::vector<size_t> rows;
  for (const Bin& bin : table.GroupBy(qi_columns)) {
    if (bin.size() < k) {
      rows.insert(rows.end(), bin.row_indices.begin(), bin.row_indices.end());
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

Result<size_t> LDiversityLevel(const Table& table,
                               const std::vector<size_t>& qi_columns,
                               size_t sensitive_column) {
  if (sensitive_column >= table.num_columns()) {
    return Status::OutOfRange("LDiversityLevel: sensitive column " +
                              std::to_string(sensitive_column) +
                              " out of range");
  }
  for (size_t col : qi_columns) {
    if (col == sensitive_column) {
      return Status::InvalidArgument(
          "LDiversityLevel: sensitive column must not be part of the "
          "quasi-identifier set");
    }
  }
  if (table.num_rows() == 0) return size_t{0};
  size_t level = table.num_rows();
  for (const Bin& bin : table.GroupBy(qi_columns)) {
    std::set<Value> distinct;
    for (size_t r : bin.row_indices) {
      distinct.insert(table.at(r, sensitive_column));
    }
    level = std::min(level, distinct.size());
  }
  return level;
}

}  // namespace privmark
