#include "metrics/usage_metrics.h"

#include <algorithm>

namespace privmark {

Result<GeneralizationSet> DeriveMaximalNodes(const DomainHierarchy* tree,
                                             const std::vector<Value>& values,
                                             double bound) {
  if (tree == nullptr) {
    return Status::InvalidArgument("DeriveMaximalNodes: null tree");
  }
  // Count values per leaf once; node counts are subtree sums over the
  // node's (contiguous) leaf span.
  std::vector<size_t> leaf_counts(tree->num_nodes(), 0);
  for (const Value& v : values) {
    PRIVMARK_ASSIGN_OR_RETURN(NodeId leaf, tree->LeafForValue(v));
    ++leaf_counts[leaf];
  }
  const double total = static_cast<double>(values.size());
  const double total_leaves = static_cast<double>(tree->Leaves().size());
  const HierarchyNode& root_node = tree->node(tree->root());
  const double domain_width =
      tree->is_numeric() ? root_node.hi - root_node.lo : 0.0;

  const std::vector<NodeId>& leaves = tree->Leaves();
  auto count_under = [&](NodeId node) {
    size_t n = 0;
    const auto [begin, end] = tree->LeafSpan(node);
    for (size_t i = begin; i < end; ++i) n += leaf_counts[leaves[i]];
    return n;
  };
  // Contribution of one member node to the Eq. (1)/(2) numerator, divided
  // by the total count (so summing members yields the column loss).
  auto contribution = [&](NodeId node) {
    if (total == 0) return 0.0;
    const double n = static_cast<double>(count_under(node));
    if (tree->is_numeric()) {
      const HierarchyNode& nd = tree->node(node);
      return n * (nd.hi - nd.lo) / domain_width / total;
    }
    const double si = static_cast<double>(tree->LeafCountUnder(node));
    return n * (si - 1.0) / total_leaves / total;
  };

  std::vector<NodeId> members = {tree->root()};
  double loss = contribution(tree->root());
  while (loss > bound) {
    // Split the splittable member with the largest contribution.
    size_t best = members.size();
    double best_contrib = -1.0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (tree->IsLeaf(members[i])) continue;
      const double c = contribution(members[i]);
      if (c > best_contrib) {
        best_contrib = c;
        best = i;
      }
    }
    if (best == members.size()) break;  // all leaves: as specific as possible
    const NodeId victim = members[best];
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(best));
    loss -= best_contrib;
    for (NodeId child : tree->Children(victim)) {
      members.push_back(child);
      loss += contribution(child);
    }
  }
  return GeneralizationSet::Create(tree, std::move(members));
}

UsageMetrics UnconstrainedMetrics(
    const std::vector<const DomainHierarchy*>& trees) {
  UsageMetrics metrics;
  metrics.trees = trees;
  metrics.maximal.reserve(trees.size());
  for (const DomainHierarchy* tree : trees) {
    metrics.maximal.push_back(GeneralizationSet::RootOnly(tree));
  }
  return metrics;
}

Result<UsageMetrics> MetricsFromDepthCuts(
    const std::vector<const DomainHierarchy*>& trees,
    const std::vector<int>& depths) {
  if (trees.size() != depths.size()) {
    return Status::InvalidArgument(
        "MetricsFromDepthCuts: tree/depth count mismatch");
  }
  UsageMetrics metrics;
  metrics.trees = trees;
  metrics.maximal.reserve(trees.size());
  for (size_t i = 0; i < trees.size(); ++i) {
    if (depths[i] < 0) {
      return Status::InvalidArgument("MetricsFromDepthCuts: negative depth");
    }
    metrics.maximal.push_back(CutAtDepth(trees[i], depths[i]));
  }
  return metrics;
}

Result<UsageMetrics> MetricsFromBounds(
    const Table& table, const std::vector<size_t>& column_indices,
    const std::vector<const DomainHierarchy*>& trees,
    const UsageBounds& bounds) {
  if (column_indices.size() != trees.size()) {
    return Status::InvalidArgument(
        "MetricsFromBounds: column/tree count mismatch");
  }
  if (!bounds.per_column.empty() &&
      bounds.per_column.size() != trees.size()) {
    return Status::InvalidArgument(
        "MetricsFromBounds: bound/tree count mismatch");
  }
  UsageMetrics metrics;
  metrics.trees = trees;
  for (size_t i = 0; i < trees.size(); ++i) {
    const double bound =
        bounds.per_column.empty() ? bounds.average : bounds.per_column[i];
    PRIVMARK_ASSIGN_OR_RETURN(
        GeneralizationSet gs,
        DeriveMaximalNodes(trees[i], table.ColumnValues(column_indices[i]),
                           bound));
    metrics.maximal.push_back(std::move(gs));
  }
  return metrics;
}

}  // namespace privmark
