// Off-line enforcement of usage metrics (paper Sec. 4.1).
//
// Rather than re-checking Eq. (4) after every binning step, the paper
// converts the bounds once into *maximal generalization nodes*: a valid
// generalization in which each node is the highest ancestor its leaves may
// ever be generalized to. Binning then only has to stay at or below these
// nodes. The paper notes it is "preferable that the maximal generalization
// nodes are directly given" — DeriveMaximalNodes covers the case where only
// Eq. (4) bounds are known.

#ifndef PRIVMARK_METRICS_USAGE_METRICS_H_
#define PRIVMARK_METRICS_USAGE_METRICS_H_

#include <vector>

#include "common/status.h"
#include "hierarchy/generalization.h"
#include "metrics/info_loss.h"
#include "relation/table.h"

namespace privmark {

/// \brief Derives maximal generalization nodes for one column from a
/// per-column information-loss bound.
///
/// Top-down refinement: start from {root}; while the generalization's
/// Eq. (1)/(2) loss over `values` exceeds `bound`, split the member node
/// contributing the most loss into its children; stop when within bound.
/// The result is a valid generalization whose loss is <= bound (leaf-level
/// loss is 0/minimal, so termination is guaranteed for bound >= leaf loss;
/// otherwise returns the all-leaves set, whose loss for categorical data is
/// exactly 0).
///
/// The derived nodes are *maximal-by-construction* under this refinement
/// order; like the paper's off-line step it is a practical heuristic, not a
/// global optimum over all antichains.
Result<GeneralizationSet> DeriveMaximalNodes(const DomainHierarchy* tree,
                                             const std::vector<Value>& values,
                                             double bound);

/// \brief The usage metrics handed to the pipeline: one maximal
/// generalization per quasi-identifying column (parallel vectors).
struct UsageMetrics {
  /// Trees, parallel to the pipeline's quasi-identifier column list. Not
  /// owned; must outlive the pipeline.
  std::vector<const DomainHierarchy*> trees;
  /// Maximal generalization nodes per column.
  std::vector<GeneralizationSet> maximal;

  size_t num_columns() const { return maximal.size(); }
};

/// \brief Builds UsageMetrics with every column capped at its tree root
/// (no usage constraint), the loosest possible metrics.
UsageMetrics UnconstrainedMetrics(
    const std::vector<const DomainHierarchy*>& trees);

/// \brief Builds UsageMetrics with per-column depth cuts as the maximal
/// generalization nodes (the paper's experimental setup: "a set of maximal
/// generalization nodes is directly given to each column").
Result<UsageMetrics> MetricsFromDepthCuts(
    const std::vector<const DomainHierarchy*>& trees,
    const std::vector<int>& depths);

/// \brief Builds UsageMetrics by deriving maximal nodes from Eq. (4)
/// per-column bounds over the table's current column values.
///
/// \param table source of the per-column value distributions
/// \param column_indices quasi-identifying columns, parallel to trees/bounds
Result<UsageMetrics> MetricsFromBounds(
    const Table& table, const std::vector<size_t>& column_indices,
    const std::vector<const DomainHierarchy*>& trees,
    const UsageBounds& bounds);

}  // namespace privmark

#endif  // PRIVMARK_METRICS_USAGE_METRICS_H_
