// Privacy evaluation of (binned) tables: how anonymous is a release,
// really?
//
// The paper's guarantee is k-anonymity over the quasi-identifying columns
// (Sec. 2/Sec. 4). This module provides the measurement side a data
// holder runs before outsourcing: the achieved k, the re-identification
// risk profile under the standard prosecutor model (the adversary knows
// their target is in the table; the chance of pinning the target down is
// 1/|bin|), and the rows that would violate a required k.

#ifndef PRIVMARK_METRICS_PRIVACY_H_
#define PRIVMARK_METRICS_PRIVACY_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "relation/table.h"

namespace privmark {

/// \brief Privacy profile of a table w.r.t. a quasi-identifier set.
struct PrivacyReport {
  /// The achieved k: the smallest equivalence-class size (0 for an empty
  /// table). The table is k-anonymous for every k <= this value.
  size_t k_anonymity_level = 0;
  /// Number of equivalence classes (bins).
  size_t num_bins = 0;
  /// Prosecutor-model re-identification risk, averaged over *records*:
  /// mean of 1/|bin(record)|.
  double average_risk = 0.0;
  /// Worst-case record risk: 1 / k_anonymity_level (1.0 if any record is
  /// unique).
  double max_risk = 0.0;
  /// Records whose risk exceeds 1/2 (bins of size 1: unique records).
  size_t unique_records = 0;
};

/// \brief Measures the privacy profile over the given columns.
Result<PrivacyReport> EvaluatePrivacy(const Table& table,
                                      const std::vector<size_t>& qi_columns);

/// \brief Indices of all rows living in bins smaller than k — the rows a
/// suppression pass would have to drop to reach k-anonymity without
/// further generalization.
Result<std::vector<size_t>> RowsBelowK(const Table& table,
                                       const std::vector<size_t>& qi_columns,
                                       size_t k);

/// \brief l-diversity level of a sensitive column: the minimum number of
/// distinct sensitive values within any quasi-identifier bin.
///
/// The paper restricts itself to identity disclosure and defers attribute
/// disclosure to the statistical-disclosure literature (its ref [31]);
/// this measurement is the standard first-order check for the deferred
/// problem — a k-anonymous bin whose members all share one diagnosis
/// still discloses that diagnosis. Returns 0 for an empty table.
Result<size_t> LDiversityLevel(const Table& table,
                               const std::vector<size_t>& qi_columns,
                               size_t sensitive_column);

}  // namespace privmark

#endif  // PRIVMARK_METRICS_PRIVACY_H_
