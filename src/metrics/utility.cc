#include "metrics/utility.h"

namespace privmark {

double TotalInfoLoss(const std::vector<double>& per_column_losses) {
  double total = 0;
  for (double loss : per_column_losses) total += loss;
  return total;
}

size_t DiscernibilityMetric(const Table& table,
                            const std::vector<size_t>& columns) {
  size_t dm = 0;
  for (const Bin& bin : table.GroupBy(columns)) {
    dm += bin.size() * bin.size();
  }
  return dm;
}

Result<double> NormalizedAvgClassSize(const Table& table,
                                      const std::vector<size_t>& columns,
                                      size_t k) {
  if (k < 1) {
    return Status::InvalidArgument("NormalizedAvgClassSize: k must be >= 1");
  }
  if (table.num_rows() == 0) return 0.0;
  const size_t bins = table.GroupBy(columns).size();
  return static_cast<double>(table.num_rows()) /
         static_cast<double>(bins) / static_cast<double>(k);
}

}  // namespace privmark
