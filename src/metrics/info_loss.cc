#include "metrics/info_loss.h"

#include "common/parallel.h"

namespace privmark {

namespace {

// Eq. (1)/(2) over per-node counts indexed by NodeId. Contributions are
// summed in ascending node-id order, matching the std::map<NodeId, size_t>
// iteration order of the Value-based forms bit for bit.
double LossFromNodeCounts(const DomainHierarchy& tree,
                          const std::vector<size_t>& counts) {
  double numerator = 0;
  double denominator = 0;
  if (tree.is_numeric()) {
    const HierarchyNode& root = tree.node(tree.root());
    const double domain_width = root.hi - root.lo;
    for (size_t id = 0; id < counts.size(); ++id) {
      if (counts[id] == 0) continue;
      const HierarchyNode& nd = tree.node(static_cast<NodeId>(id));
      const double n = static_cast<double>(counts[id]);
      numerator += n * (nd.hi - nd.lo) / domain_width;
      denominator += n;
    }
  } else {
    const double total_leaves = static_cast<double>(tree.Leaves().size());
    for (size_t id = 0; id < counts.size(); ++id) {
      if (counts[id] == 0) continue;
      const double si =
          static_cast<double>(tree.LeafCountUnder(static_cast<NodeId>(id)));
      const double n = static_cast<double>(counts[id]);
      numerator += n * (si - 1.0) / total_leaves;
      denominator += n;
    }
  }
  return numerator / denominator;
}

}  // namespace

Result<double> ColumnInfoLoss(const std::vector<Value>& values,
                              const GeneralizationSet& gen) {
  if (values.empty()) return 0.0;
  const DomainHierarchy& tree = *gen.tree();
  // n_i per generalization node.
  std::vector<size_t> counts(tree.num_nodes(), 0);
  for (const Value& v : values) {
    PRIVMARK_ASSIGN_OR_RETURN(NodeId node, gen.NodeForValue(v));
    ++counts[node];
  }
  return LossFromNodeCounts(tree, counts);
}

Result<double> ColumnInfoLossOfLabels(const std::vector<Value>& labels,
                                      const DomainHierarchy& tree) {
  if (labels.empty()) return 0.0;
  std::vector<size_t> counts(tree.num_nodes(), 0);
  for (const Value& v : labels) {
    NodeId node;
    if (v.type() == ValueType::kString) {
      PRIVMARK_ASSIGN_OR_RETURN(node, tree.FindByLabel(v.AsString()));
    } else {
      PRIVMARK_ASSIGN_OR_RETURN(node, tree.FindByLabel(v.ToString()));
    }
    ++counts[node];
  }
  return LossFromNodeCounts(tree, counts);
}

Result<double> ColumnLossAgainstOriginal(
    const std::vector<Value>& original_values,
    const std::vector<Value>& transformed_labels,
    const DomainHierarchy& tree) {
  if (original_values.size() != transformed_labels.size()) {
    return Status::InvalidArgument(
        "ColumnLossAgainstOriginal: value/label count mismatch");
  }
  if (original_values.empty()) return 0.0;

  const double total_leaves = static_cast<double>(tree.Leaves().size());
  const HierarchyNode& root = tree.node(tree.root());
  const double domain_width = tree.is_numeric() ? root.hi - root.lo : 0.0;

  double numerator = 0;
  for (size_t i = 0; i < original_values.size(); ++i) {
    PRIVMARK_ASSIGN_OR_RETURN(NodeId leaf,
                              tree.LeafForValue(original_values[i]));
    PRIVMARK_ASSIGN_OR_RETURN(
        NodeId node, tree.FindByLabel(transformed_labels[i].ToString()));
    if (!tree.IsAncestorOrSelf(node, leaf)) {
      // The label no longer covers the true value: the entry is wrong, not
      // just generalized — full loss.
      numerator += 1.0;
      continue;
    }
    if (tree.is_numeric()) {
      const HierarchyNode& nd = tree.node(node);
      numerator += (nd.hi - nd.lo) / domain_width;
    } else {
      numerator +=
          (static_cast<double>(tree.LeafCountUnder(node)) - 1.0) /
          total_leaves;
    }
  }
  return numerator / static_cast<double>(original_values.size());
}

Result<double> ColumnInfoLossEncoded(const EncodedColumn& column,
                                     const GeneralizationSet& gen,
                                     ThreadPool* pool) {
  if (column.size() == 0) return 0.0;
  if (column.tree() != gen.tree()) {
    return Status::InvalidArgument(
        "ColumnInfoLossEncoded: column and generalization use different "
        "trees");
  }
  const DomainHierarchy& tree = *gen.tree();
  const std::vector<NodeId>& ids = column.ids();
  PRIVMARK_ASSIGN_OR_RETURN(
      std::vector<size_t> counts,
      ParallelReduce<std::vector<size_t>>(
          pool, ids.size(), std::vector<size_t>(tree.num_nodes(), 0),
          [&](size_t, size_t begin,
              size_t end) -> Result<std::vector<size_t>> {
            std::vector<size_t> local(tree.num_nodes(), 0);
            for (size_t r = begin; r < end; ++r) {
              PRIVMARK_ASSIGN_OR_RETURN(NodeId node, gen.NodeForLeaf(ids[r]));
              ++local[node];
            }
            return local;
          },
          [](std::vector<size_t>* acc, std::vector<size_t>&& local) {
            for (size_t i = 0; i < acc->size(); ++i) (*acc)[i] += local[i];
          }));
  return LossFromNodeCounts(tree, counts);
}

Result<double> ColumnInfoLossOfLabelsEncoded(const EncodedColumn& column) {
  if (column.size() == 0) return 0.0;
  const DomainHierarchy& tree = *column.tree();
  if (column.unknown_cells() > 0) {
    return Status::KeyError(
        "ColumnInfoLossOfLabels: " + std::to_string(column.unknown_cells()) +
        " cell(s) hold labels outside tree '" + tree.attribute() + "'");
  }
  std::vector<size_t> counts(tree.num_nodes(), 0);
  for (const NodeId node : column.ids()) ++counts[node];
  return LossFromNodeCounts(tree, counts);
}

double NormalizedInfoLoss(const std::vector<double>& per_column_losses) {
  if (per_column_losses.empty()) return 0.0;
  double total = 0;
  for (double loss : per_column_losses) total += loss;
  return total / static_cast<double>(per_column_losses.size());
}

Status CheckUsageBounds(const std::vector<double>& per_column_losses,
                        const UsageBounds& bounds) {
  if (!bounds.per_column.empty() &&
      bounds.per_column.size() != per_column_losses.size()) {
    return Status::InvalidArgument(
        "CheckUsageBounds: " + std::to_string(bounds.per_column.size()) +
        " bounds for " + std::to_string(per_column_losses.size()) +
        " columns");
  }
  for (size_t i = 0; i < bounds.per_column.size(); ++i) {
    if (per_column_losses[i] > bounds.per_column[i]) {
      return Status::Unbinnable(
          "column " + std::to_string(i) + " information loss " +
          std::to_string(per_column_losses[i]) + " exceeds bound " +
          std::to_string(bounds.per_column[i]));
    }
  }
  const double avg = NormalizedInfoLoss(per_column_losses);
  if (avg > bounds.average) {
    return Status::Unbinnable("normalized information loss " +
                              std::to_string(avg) + " exceeds bound " +
                              std::to_string(bounds.average));
  }
  return Status::OK();
}

}  // namespace privmark
