#include "metrics/info_loss.h"

#include <map>

namespace privmark {

Result<double> ColumnInfoLoss(const std::vector<Value>& values,
                              const GeneralizationSet& gen) {
  if (values.empty()) return 0.0;
  const DomainHierarchy& tree = *gen.tree();

  // n_i per generalization node.
  std::map<NodeId, size_t> counts;
  for (const Value& v : values) {
    PRIVMARK_ASSIGN_OR_RETURN(NodeId node, gen.NodeForValue(v));
    ++counts[node];
  }

  double numerator = 0;
  double denominator = 0;
  if (tree.is_numeric()) {
    // Eq. (2): width fractions of the column's domain [L, U).
    const HierarchyNode& root = tree.node(tree.root());
    const double domain_width = root.hi - root.lo;
    for (const auto& [node, n] : counts) {
      const HierarchyNode& nd = tree.node(node);
      numerator += static_cast<double>(n) * (nd.hi - nd.lo) / domain_width;
      denominator += static_cast<double>(n);
    }
  } else {
    // Eq. (1): (|S_i| - 1) / |S| with S the union of all leaves.
    const double total_leaves = static_cast<double>(tree.Leaves().size());
    for (const auto& [node, n] : counts) {
      const double si = static_cast<double>(tree.LeafCountUnder(node));
      numerator += static_cast<double>(n) * (si - 1.0) / total_leaves;
      denominator += static_cast<double>(n);
    }
  }
  return numerator / denominator;
}

Result<double> ColumnInfoLossOfLabels(const std::vector<Value>& labels,
                                      const DomainHierarchy& tree) {
  if (labels.empty()) return 0.0;
  std::map<NodeId, size_t> counts;
  for (const Value& v : labels) {
    PRIVMARK_ASSIGN_OR_RETURN(NodeId node, tree.FindByLabel(v.ToString()));
    ++counts[node];
  }
  double numerator = 0;
  double denominator = 0;
  if (tree.is_numeric()) {
    const HierarchyNode& root = tree.node(tree.root());
    const double domain_width = root.hi - root.lo;
    for (const auto& [node, n] : counts) {
      const HierarchyNode& nd = tree.node(node);
      numerator += static_cast<double>(n) * (nd.hi - nd.lo) / domain_width;
      denominator += static_cast<double>(n);
    }
  } else {
    const double total_leaves = static_cast<double>(tree.Leaves().size());
    for (const auto& [node, n] : counts) {
      const double si = static_cast<double>(tree.LeafCountUnder(node));
      numerator += static_cast<double>(n) * (si - 1.0) / total_leaves;
      denominator += static_cast<double>(n);
    }
  }
  return numerator / denominator;
}

Result<double> ColumnLossAgainstOriginal(
    const std::vector<Value>& original_values,
    const std::vector<Value>& transformed_labels,
    const DomainHierarchy& tree) {
  if (original_values.size() != transformed_labels.size()) {
    return Status::InvalidArgument(
        "ColumnLossAgainstOriginal: value/label count mismatch");
  }
  if (original_values.empty()) return 0.0;

  const double total_leaves = static_cast<double>(tree.Leaves().size());
  const HierarchyNode& root = tree.node(tree.root());
  const double domain_width = tree.is_numeric() ? root.hi - root.lo : 0.0;

  double numerator = 0;
  for (size_t i = 0; i < original_values.size(); ++i) {
    PRIVMARK_ASSIGN_OR_RETURN(NodeId leaf,
                              tree.LeafForValue(original_values[i]));
    PRIVMARK_ASSIGN_OR_RETURN(
        NodeId node, tree.FindByLabel(transformed_labels[i].ToString()));
    if (!tree.IsAncestorOrSelf(node, leaf)) {
      // The label no longer covers the true value: the entry is wrong, not
      // just generalized — full loss.
      numerator += 1.0;
      continue;
    }
    if (tree.is_numeric()) {
      const HierarchyNode& nd = tree.node(node);
      numerator += (nd.hi - nd.lo) / domain_width;
    } else {
      numerator +=
          (static_cast<double>(tree.LeafCountUnder(node)) - 1.0) /
          total_leaves;
    }
  }
  return numerator / static_cast<double>(original_values.size());
}

double NormalizedInfoLoss(const std::vector<double>& per_column_losses) {
  if (per_column_losses.empty()) return 0.0;
  double total = 0;
  for (double loss : per_column_losses) total += loss;
  return total / static_cast<double>(per_column_losses.size());
}

Status CheckUsageBounds(const std::vector<double>& per_column_losses,
                        const UsageBounds& bounds) {
  if (!bounds.per_column.empty() &&
      bounds.per_column.size() != per_column_losses.size()) {
    return Status::InvalidArgument(
        "CheckUsageBounds: " + std::to_string(bounds.per_column.size()) +
        " bounds for " + std::to_string(per_column_losses.size()) +
        " columns");
  }
  for (size_t i = 0; i < bounds.per_column.size(); ++i) {
    if (per_column_losses[i] > bounds.per_column[i]) {
      return Status::Unbinnable(
          "column " + std::to_string(i) + " information loss " +
          std::to_string(per_column_losses[i]) + " exceeds bound " +
          std::to_string(bounds.per_column[i]));
    }
  }
  const double avg = NormalizedInfoLoss(per_column_losses);
  if (avg > bounds.average) {
    return Status::Unbinnable("normalized information loss " +
                              std::to_string(avg) + " exceeds bound " +
                              std::to_string(bounds.average));
  }
  return Status::OK();
}

}  // namespace privmark
