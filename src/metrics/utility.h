// Additional data-quality metrics beyond the paper's Eq. (1)-(3).
//
// Sec. 4.1 notes "Likewise, other forms of information loss, e.g., total
// information loss can be defined"; this module provides that variant
// plus the two classical k-anonymity quality measures used to evaluate
// binned tables in the surrounding literature:
//
//  - total information loss: the Eq. (1)/(2) per-column losses summed
//    rather than averaged;
//  - discernibility metric (DM): sum over bins of |bin|^2 — penalizes
//    over-large equivalence classes;
//  - normalized average equivalence-class size C_avg = (N / #bins) / k —
//    1.0 means bins are exactly as large as k-anonymity requires.

#ifndef PRIVMARK_METRICS_UTILITY_H_
#define PRIVMARK_METRICS_UTILITY_H_

#include <vector>

#include "common/status.h"
#include "relation/table.h"

namespace privmark {

/// \brief Sum (not average) of per-column losses — the paper's "total
/// information loss" variant. Empty input -> 0.
double TotalInfoLoss(const std::vector<double>& per_column_losses);

/// \brief Discernibility metric over the equivalence classes induced by
/// `columns`: sum over bins of size^2. Lower is better; the minimum for a
/// k-anonymous table of N rows is N*k (all bins exactly k).
size_t DiscernibilityMetric(const Table& table,
                            const std::vector<size_t>& columns);

/// \brief Normalized average equivalence-class size
/// C_avg = (N / number_of_bins) / k. 1.0 is ideal; larger means
/// over-generalization. Requires k >= 1; returns 0 for an empty table.
Result<double> NormalizedAvgClassSize(const Table& table,
                                      const std::vector<size_t>& columns,
                                      size_t k);

}  // namespace privmark

#endif  // PRIVMARK_METRICS_UTILITY_H_
