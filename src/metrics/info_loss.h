// Usage metrics: information loss model (paper Sec. 4.1).
//
// Eq. (1): categorical column c generalized into nodes {p1..pM}:
//   InfLoss_c = sum_i( n_i * (|S_i| - 1) / |S| ) / sum_i(n_i)
// where S_i are the leaves under p_i, n_i the entries whose values fall in
// S_i, and S the union of all leaves.
//
// Eq. (2): numeric column generalized to intervals [L_i, U_i) of domain
// [L, U): InfLoss_c = sum_i( n_i * (U_i - L_i) / (U - L) ) / sum_i(n_i).
//
// Eq. (3): normalized loss = average of the per-column losses.

#ifndef PRIVMARK_METRICS_INFO_LOSS_H_
#define PRIVMARK_METRICS_INFO_LOSS_H_

#include <vector>

#include "common/status.h"
#include "hierarchy/encoded_view.h"
#include "hierarchy/generalization.h"
#include "relation/table.h"

namespace privmark {

class ThreadPool;

/// \brief Eq. (1)/(2) information loss of one column under a generalization.
///
/// \param values the column's *original* (leaf-level) values
/// \param gen the generalization applied to the column
///
/// Uses Eq. (2) when the tree is numeric, Eq. (1) otherwise. Ungeneralized
/// leaves contribute |S_i| = 1 (categorical) or their own narrow interval
/// (numeric), so a leaf-identity generalization has loss 0 under Eq. (1).
/// Returns 0 for an empty column.
Result<double> ColumnInfoLoss(const std::vector<Value>& values,
                              const GeneralizationSet& gen);

/// \brief Same over a pre-encoded column of leaf ids — the hot-loop form:
/// no per-cell string resolution, counts accumulate in a flat per-node
/// array. Produces bit-identical results to the Value form (contributions
/// are summed in ascending node-id order either way). With a pool the
/// per-node counting runs as a sharded integer reduction; the Eq. (1)/(2)
/// fold over the merged counts stays serial, so the result is still
/// bit-identical for any worker count.
Result<double> ColumnInfoLossEncoded(const EncodedColumn& column,
                                     const GeneralizationSet& gen,
                                     ThreadPool* pool = nullptr);

/// \brief ColumnInfoLossOfLabels over a label-encoded column; cells that
/// failed to resolve (column.unknown_cells()) are rejected with KeyError,
/// matching the Value form's behavior on unknown labels.
Result<double> ColumnInfoLossOfLabelsEncoded(const EncodedColumn& column);

/// \brief Same as ColumnInfoLoss but the cells already hold generalized
/// labels (a binned or watermarked table); each label must name a node at
/// or below `gen`'s tree... precisely: a node of the tree; its contribution
/// is computed from that node's own leaf span. Used to measure the loss a
/// *transformed* table actually exhibits (Fig. 13 measures watermarking's
/// extra loss this way).
Result<double> ColumnInfoLossOfLabels(const std::vector<Value>& labels,
                                      const DomainHierarchy& tree);

/// \brief Eq. (3): average of per-column losses. Empty input -> 0.
double NormalizedInfoLoss(const std::vector<double>& per_column_losses);

/// \brief Information loss of a *transformed* column measured against the
/// original values (used for Fig. 13, the extra loss watermarking causes).
///
/// Watermark permutation can move a cell to a label that no longer covers
/// the record's true value — that entry's information is not merely less
/// specific but wrong, so it contributes a full loss of 1. Entries whose
/// label still covers the original value contribute the ordinary Eq. (1)/(2)
/// specificity term of that label's node.
///
/// \param original_values the column's original (leaf-level) values
/// \param transformed_labels the binned/watermarked cells (node labels)
Result<double> ColumnLossAgainstOriginal(
    const std::vector<Value>& original_values,
    const std::vector<Value>& transformed_labels, const DomainHierarchy& tree);

/// \brief Bounds of Eq. (4): per-column caps plus a cap on the average.
struct UsageBounds {
  /// bd_i, parallel to the pipeline's quasi-identifier column list.
  std::vector<double> per_column;
  /// bd_avg.
  double average = 1.0;
};

/// \brief Checks Eq. (4) against measured losses.
///
/// \return OK if every per-column loss is within its bound and the average
/// is within bd_avg; Unbinnable otherwise (with a message naming the first
/// violated bound).
Status CheckUsageBounds(const std::vector<double>& per_column_losses,
                        const UsageBounds& bounds);

}  // namespace privmark

#endif  // PRIVMARK_METRICS_INFO_LOSS_H_
