// Multi-recipient fingerprinting: which key's mark does a suspect table
// carry?
//
// The owner embeds each recipient's copy under that recipient's key and,
// given a leaked table, scans it against the whole KeyRegistry. The scan
// builds one DetectIndex (the expensive, key-independent resolve pass)
// and re-runs only the keyed-hash tally per candidate key, sharded on the
// ThreadPool across (key x tuple-shard) — see detect_index.h for the
// determinism contract that keeps every per-key report byte-identical to
// a serial single-key Detect().
//
// Verdicts: with an expected mark (the owner knows F(v), Sec. 5.4), a key
// is "detected" when the recovered mark matches at least match_threshold
// of its bits — a wrong key's recovered mark agrees on ~50% of bits, so
// the default 0.8 separates cleanly, and the binomial-tail p-value
// quantifies the separation. Without an expected mark, detection falls
// back to internal vote agreement (margin_ratio): the right key's votes
// are near-unanimous per position, a wrong key's cancel out.
//
// Collusion: when rows from two recipients' copies are mixed, both keys
// still recover the (same, owner-derived) mark from their own rows, so
// both clear the threshold — the report flags that rather than pretending
// a single leaker exists, and the ranking orders contributors by score.

#ifndef PRIVMARK_WATERMARK_FINGERPRINT_H_
#define PRIVMARK_WATERMARK_FINGERPRINT_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/status.h"
#include "watermark/detect_index.h"
#include "watermark/key_registry.h"
#include "watermark/ownership.h"

namespace privmark {

/// \brief Parameters of a fingerprint scan.
struct FingerprintConfig {
  /// The mark / wmd sizes recorded at protection time (the manifest).
  size_t wm_size = 0;
  size_t wmd_size = 0;
  /// The owner-derived mark F(v); empty = unknown (verdicts then rank by
  /// internal vote agreement instead of mark match). When non-empty its
  /// size must equal wm_size.
  BitVector expected_mark;
  /// Detection threshold on the score (mark_match, or margin_ratio when
  /// no expected mark is given).
  double match_threshold = kDetectionMatchThreshold;
};

/// \brief One candidate key's outcome.
struct KeyVerdict {
  std::string key_name;
  /// The full single-key detection — byte-identical to a serial
  /// Detect() run under this key.
  DetectReport detection;
  /// Internal vote agreement: sum_j |vote_margin[j]| / slots_read, in
  /// [0, 1]. Near 1 when votes are unanimous per bit (the embedding
  /// key), near 0 when they cancel (a wrong key).
  double margin_ratio = 0.0;
  /// Fraction of expected-mark bits matching the recovered mark; 0 when
  /// no expected mark was given.
  double mark_match = 0.0;
  /// Binomial-tail significance vs. the expected mark; 1.0 without one.
  double p_value = 1.0;
  /// The ranking statistic: mark_match when an expected mark was given,
  /// margin_ratio otherwise.
  double score = 0.0;
  bool detected = false;
};

/// \brief The scan's outcome over a whole registry.
struct FingerprintReport {
  /// One verdict per registry key, in registry order.
  std::vector<KeyVerdict> verdicts;
  /// Indices into `verdicts`, best suspect first. Deterministic: ties on
  /// score break by p-value, then margin_ratio, then key name.
  std::vector<size_t> ranking;
  size_t keys_detected = 0;
  /// Two or more keys cleared the threshold — mixed-copy (collusion)
  /// evidence rather than a single leaker.
  bool collusion = false;
};

/// \brief One streamed slice of a scan: the verdicts for a contiguous
/// registry-order run of keys, complete and final the moment they are
/// emitted (per-key verdicts depend only on that key's tally, never on
/// the rest of the registry — only the report-level ranking and
/// collusion flag need the whole scan).
struct FingerprintShard {
  /// Caller-supplied stamp identifying which scan of a multi-scan run
  /// (e.g. which session epoch) this shard belongs to.
  size_t epoch = 0;
  /// Ordinal of this shard within its scan, counting from 0.
  size_t shard = 0;
  /// Registry index of verdicts.front(); the slice covers
  /// [first_key, first_key + verdicts.size()).
  size_t first_key = 0;
  std::vector<KeyVerdict> verdicts;
};

/// \brief Consumer of streamed shards. Invoked on the scanning thread,
/// in (epoch, shard) order; the shard is borrowed for the duration of
/// the call (the scan keeps the verdicts for its final report).
using FingerprintShardSink = std::function<void(const FingerprintShard&)>;

/// \brief Scans a prebuilt index against every registry key. `pool` may
/// be null (serial).
Result<FingerprintReport> ScanIndexForFingerprints(
    const DetectIndex& index, HashAlgorithm algo, const KeyRegistry& registry,
    const FingerprintConfig& config, ThreadPool* pool);

/// \brief Streaming form: delivers verdicts through `sink` per key
/// block as the tally engine completes them, then returns the same
/// one-shot report. The one-shot overload IS this function with a null
/// sink, so the concatenation of streamed shard verdicts is
/// byte-identical to the returned report's verdict vector by
/// construction — ranking, margins, and the collusion flag are
/// finalized over exactly the streamed verdicts. `epoch` is stamped
/// into every emitted shard; shard boundaries depend on the thread
/// count, verdict bytes do not.
Result<FingerprintReport> ScanIndexForFingerprintsStreamed(
    const DetectIndex& index, HashAlgorithm algo, const KeyRegistry& registry,
    const FingerprintConfig& config, ThreadPool* pool,
    const FingerprintShardSink& sink, size_t epoch = 0);

/// \brief Convenience: builds the index from the watermarker's structure
/// (its key material is NOT used — only the registry's candidate keys
/// are) and scans, on the watermarker's configured pool / thread count.
Result<FingerprintReport> ScanForFingerprints(
    const HierarchicalWatermarker& watermarker, const Table& suspect,
    const KeyRegistry& registry, const FingerprintConfig& config);
Result<FingerprintReport> ScanForFingerprints(
    const SingleLevelWatermarker& watermarker, const Table& suspect,
    const KeyRegistry& registry, const FingerprintConfig& config);

/// \brief Streaming convenience overloads (see
/// ScanIndexForFingerprintsStreamed for the equivalence contract).
Result<FingerprintReport> ScanForFingerprintsStreamed(
    const HierarchicalWatermarker& watermarker, const Table& suspect,
    const KeyRegistry& registry, const FingerprintConfig& config,
    const FingerprintShardSink& sink, size_t epoch = 0);
Result<FingerprintReport> ScanForFingerprintsStreamed(
    const SingleLevelWatermarker& watermarker, const Table& suspect,
    const KeyRegistry& registry, const FingerprintConfig& config,
    const FingerprintShardSink& sink, size_t epoch = 0);

}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_FINGERPRINT_H_
