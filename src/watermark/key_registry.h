// Named watermark keys and the versioned key-file format.
//
// The paper proves ownership against a single secret key, but outsourcing
// hands the same relation to N recipients, and the owner's question is
// *which* recipient leaked. Fingerprinting answers it by embedding with a
// distinct key per recipient and later scanning a suspect table against
// all of them — which needs durable, named key material. A KeyRegistry is
// that collection: ordered `NamedKey` entries (registry order is scan
// order) with unique, non-secret names; the name is what manifests record
// as the key id, never the key itself.
//
// The on-disk format follows audiowmark's gen-key/--key workflow: a text
// file with a versioned magic line, one `[key]` section per entry, and
// hex-encoded key material (k1/k2 are arbitrary byte strings). A single
// gen-key output file is simply a one-entry registry.
//
//   privmark-keys v1
//   [key]
//   name = hospital-a
//   k1 = 7f3a...
//   k2 = 09c4...
//   eta = 50

#ifndef PRIVMARK_WATERMARK_KEY_REGISTRY_H_
#define PRIVMARK_WATERMARK_KEY_REGISTRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "watermark/watermark_key.h"

namespace privmark {

/// \brief One registry entry: the recipient-identifying name (non-secret;
/// recorded in manifests as the key id) plus the secret key material.
struct NamedKey {
  std::string name;
  WatermarkKey key;
};

/// \brief Fresh key material from an explicitly seeded Random (privmark
/// never touches global RNG state; interactive callers seed from entropy
/// they own). k1 and k2 are 16 random bytes each.
NamedKey GenerateKey(const std::string& name, uint64_t eta, Random* rng);

/// \brief An ordered collection of named keys. Registry order is scan
/// order: fingerprint verdicts index into keys() by position.
class KeyRegistry {
 public:
  /// \brief Appends an entry. InvalidArgument for an empty name or
  /// eta == 0; AlreadyExists for a duplicate name.
  Status Add(NamedKey entry);

  /// \brief The entry with this name, or nullptr.
  const NamedKey* Find(std::string_view name) const;

  const std::vector<NamedKey>& keys() const { return keys_; }
  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// \brief Serializes to the versioned text format above.
  std::string Serialize() const;

  /// \brief Parses the text format. Rejects a missing or foreign magic
  /// line, unsupported versions, truncated entries (a [key] section
  /// missing name/k1/k2/eta), malformed hex, an eta that overflows
  /// uint64, embedded NUL bytes, and duplicate names — always with a
  /// clean Status, never an exception.
  static Result<KeyRegistry> Parse(const std::string& text);

  Status WriteFile(const std::string& path) const;

  /// \brief Reads and parses a key file. Files past a 1 MiB cap are
  /// rejected with IOError before any bytes are buffered.
  static Result<KeyRegistry> ReadFile(const std::string& path);

 private:
  std::vector<NamedKey> keys_;
};

/// \brief Reads a gen-key output file: a registry holding exactly one
/// entry. InvalidArgument when the file holds zero or several keys.
Result<NamedKey> ReadKeyFile(const std::string& path);

/// \brief Writes a one-entry registry file for `key`.
Status WriteKeyFile(const NamedKey& key, const std::string& path);

}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_KEY_REGISTRY_H_
