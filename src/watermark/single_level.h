// Single-level watermarking baseline (paper Sec. 5.2).
//
// This is the "direct way" the paper describes — permute only at the level
// of each ultimate generalization node among its siblings, encoding the bit
// in the parity of the target's index — and then rejects: it is susceptible
// to the generalization attack, which generalizes every cell one level up
// without needing the watermarking key and thereby erases the single level
// that carries all the bits. It exists in this library as the comparator
// for bench/ablation_generalization_attack.
//
// Deviation from the paper's sketch: when the desired-parity sibling is not
// itself an ultimate generalization node, the paper continues permuting
// downward (without those levels being detectable); we instead restrict the
// choice to same-parity siblings that are ultimate nodes and skip the slot
// when none exists. This keeps detection well-defined and does not affect
// the scheme's (in)vulnerability, which is the property under study.

#ifndef PRIVMARK_WATERMARK_SINGLE_LEVEL_H_
#define PRIVMARK_WATERMARK_SINGLE_LEVEL_H_

#include <vector>

#include "common/bitvec.h"
#include "common/status.h"
#include "hierarchy/generalization.h"
#include "relation/table.h"
#include "watermark/hierarchical.h"
#include "watermark/watermark_key.h"

namespace privmark {

/// \brief The single-level scheme; same interface shape as
/// HierarchicalWatermarker.
class SingleLevelWatermarker {
 public:
  SingleLevelWatermarker(std::vector<size_t> qi_columns, size_t ident_column,
                         std::vector<GeneralizationSet> ultimate,
                         WatermarkKey key, WatermarkOptions options);

  /// \brief Embeds `wm` (duplicated into `copies` copies; 0 = auto).
  Result<EmbedReport> Embed(Table* table, const BitVector& wm,
                            size_t copies = 0) const;

  /// \brief Recovers the mark by reading each marked cell's sibling parity.
  Result<DetectReport> Detect(const Table& table, size_t wm_size,
                              size_t wmd_size) const;

  /// \brief Selected tuples x columns with an embeddable slot.
  Result<size_t> EstimateBandwidth(const Table& table) const;

  /// \brief The key-independent slot read behind Detect(): resolve the
  /// cell and read its sibling-index parity; abstains when the label is
  /// unknown or the node has no siblings. Shared by the fused Detect()
  /// and BuildDetectIndex() so the two paths cannot drift.
  SlotVote ReadSlot(size_t c, const Value& cell) const;

  const WatermarkKey& key() const { return key_; }
  const WatermarkOptions& options() const { return options_; }
  const std::vector<size_t>& qi_columns() const { return qi_columns_; }
  size_t ident_column() const { return ident_column_; }
  const std::vector<GeneralizationSet>& ultimate() const { return ultimate_; }

 private:
  // Same-parity ultimate siblings of `node` (including node itself when the
  // parity matches) into `candidates` (cleared first); empty if the slot
  // cannot encode the bit. Out-parameter form so hot loops reuse one buffer.
  void ParityCandidates(size_t c, NodeId node, bool bit,
                        std::vector<NodeId>* candidates) const;

  std::vector<size_t> qi_columns_;
  size_t ident_column_;
  std::vector<GeneralizationSet> ultimate_;
  WatermarkKey key_;
  WatermarkOptions options_;
};

}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_SINGLE_LEVEL_H_
