// Internal helpers shared by the watermark embedders/detectors
// (hierarchical.cc, single_level.cc). Not part of the public API: both
// schemes walk rows the same way — resolve the identifier by reference,
// gate on Eq. (5) selection, record per-(tuple, column) slots in a
// resolve pass, then hash and write in a second pass — and these pieces
// must not drift apart between them.
//
// Both passes shard over contiguous row (resp. tuple) ranges; the
// per-shard partial results below merge in shard order so parallel
// embed/detect is byte-identical to serial for any worker count.

#ifndef PRIVMARK_WATERMARK_EMBED_INTERNAL_H_
#define PRIVMARK_WATERMARK_EMBED_INTERNAL_H_

#include <cstddef>
#include <iterator>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "relation/table.h"
#include "relation/value.h"
#include "watermark/watermark_key.h"

namespace privmark {
namespace watermark_internal {

/// \brief The identifier text of a cell, by reference for string cells
/// (the overwhelmingly common case: binned tables hold encrypted
/// identifiers as strings) and via `scratch` otherwise.
inline std::string_view IdentText(const Value& cell, std::string* scratch) {
  if (cell.type() == ValueType::kString) return cell.AsString();
  *scratch = cell.ToString();
  return *scratch;
}

/// \brief One row block's identifier texts plus their batched Eq. (5)
/// selection bits. Every row scan (bandwidth pre-pass, embed resolve,
/// detect) walks blocks of kRows rows through Load() so selection hashes
/// go through the multi-buffer kernel in full lane groups instead of one
/// KeyedHash64 per tuple. Values are identical to per-row TupleSelected.
class IdentBlock {
 public:
  static constexpr size_t kRows = WatermarkHasher::kBlockRows;

  /// \brief Gathers idents for rows [begin, begin + n) (n <= kRows) and
  /// runs one batched selection. Views stay valid until the next Load().
  void Load(const Table& table, size_t ident_column, size_t begin, size_t n,
            WatermarkHasher* hasher) {
    n_ = n;
    for (size_t i = 0; i < n; ++i) {
      idents_[i] = IdentText(table.at(begin + i, ident_column), &scratch_[i]);
    }
    hasher->SelectBlock(idents_, n, selected_);
  }

  size_t size() const { return n_; }
  std::string_view ident(size_t i) const { return idents_[i]; }
  bool selected(size_t i) const { return selected_[i] != 0; }

 private:
  size_t n_ = 0;
  std::string_view idents_[kRows];
  uint8_t selected_[kRows];
  std::string scratch_[kRows];  // backing for non-string identifier cells
};

/// \brief One selected tuple with its slots as a [slot_begin, slot_end)
/// range into the embedder's flat slot vector. The identifier is copied
/// once per *selected* tuple (~1/eta of rows) so slot hashing in the
/// write phase needs no table access.
struct SelectedTuple {
  size_t row;
  std::string ident;
  size_t slot_begin;
  size_t slot_end;
};

/// \brief One row-shard's resolve-pass output: its selected tuples (slot
/// ranges relative to the shard's own slot vector until merged) plus the
/// shard's counters. SlotT is each scheme's slot record.
template <typename SlotT>
struct ResolvedShard {
  std::vector<SelectedTuple> tuples;
  std::vector<SlotT> slots;
  /// Position-hash messages ("pos:" ident ":" column), one per slot,
  /// appended back to back: slot i's bytes are
  /// pos_bytes[(i == 0 ? 0 : pos_ends[i-1]) .. pos_ends[i]). Assembled
  /// once in the resolve pass so the write pass batch-hashes whole shards
  /// of slots without re-concatenating per slot.
  std::string pos_bytes;
  std::vector<size_t> pos_ends;
  size_t tuples_selected = 0;
  size_t slots_skipped_no_gap = 0;
  size_t bandwidth = 0;

  std::string_view pos_msg(size_t slot) const {
    const size_t begin = slot == 0 ? 0 : pos_ends[slot - 1];
    return std::string_view(pos_bytes).substr(begin, pos_ends[slot] - begin);
  }
};

/// \brief Shard-order merge for ResolvedShard: rebases the incoming slot
/// ranges onto the accumulated slot vector and appends. Counters are
/// integer sums, so the merged result is identical for any shard count.
template <typename SlotT>
void MergeResolve(ResolvedShard<SlotT>* acc, ResolvedShard<SlotT>&& shard) {
  const size_t offset = acc->slots.size();
  acc->tuples.reserve(acc->tuples.size() + shard.tuples.size());
  for (SelectedTuple& tuple : shard.tuples) {
    tuple.slot_begin += offset;
    tuple.slot_end += offset;
    acc->tuples.push_back(std::move(tuple));
  }
  acc->slots.insert(acc->slots.end(),
                    std::make_move_iterator(shard.slots.begin()),
                    std::make_move_iterator(shard.slots.end()));
  // Concatenating the arenas keeps the pos_msg invariant: the incoming
  // shard's first message starts exactly where the accumulated bytes end.
  const size_t byte_offset = acc->pos_bytes.size();
  acc->pos_bytes += shard.pos_bytes;
  acc->pos_ends.reserve(acc->pos_ends.size() + shard.pos_ends.size());
  for (size_t end : shard.pos_ends) {
    acc->pos_ends.push_back(end + byte_offset);
  }
  acc->tuples_selected += shard.tuples_selected;
  acc->slots_skipped_no_gap += shard.slots_skipped_no_gap;
  acc->bandwidth += shard.bandwidth;
}

/// \brief One tuple-shard's write-pass tally.
struct WriteTally {
  size_t slots_embedded = 0;
  size_t slots_skipped_no_gap = 0;  // single-level: empty parity candidates
  size_t cells_changed = 0;
};

inline void MergeWrites(WriteTally* acc, WriteTally&& tally) {
  acc->slots_embedded += tally.slots_embedded;
  acc->slots_skipped_no_gap += tally.slots_skipped_no_gap;
  acc->cells_changed += tally.cells_changed;
}

/// \brief One row-shard's detection tally: weighted votes per wmd
/// position plus counters. Vote accumulation adds 1.0 per voting slot, so
/// per-shard sums merged in shard order reproduce the serial totals
/// exactly (whole-valued doubles are closed under addition well past any
/// realistic row count).
struct VoteShard {
  std::vector<double> zeros;
  std::vector<double> ones;
  size_t tuples_selected = 0;
  size_t slots_read = 0;
  size_t slots_skipped = 0;

  explicit VoteShard(size_t wmd_size = 0)
      : zeros(wmd_size, 0.0), ones(wmd_size, 0.0) {}
};

inline void MergeVotes(VoteShard* acc, VoteShard&& shard) {
  for (size_t pos = 0; pos < acc->zeros.size(); ++pos) {
    acc->zeros[pos] += shard.zeros[pos];
    acc->ones[pos] += shard.ones[pos];
  }
  acc->tuples_selected += shard.tuples_selected;
  acc->slots_read += shard.slots_read;
  acc->slots_skipped += shard.slots_skipped;
}

}  // namespace watermark_internal
}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_EMBED_INTERNAL_H_
