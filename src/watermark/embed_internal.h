// Internal helpers shared by the watermark embedders/detectors
// (hierarchical.cc, single_level.cc). Not part of the public API: both
// schemes walk rows the same way — resolve the identifier by reference,
// gate on Eq. (5) selection, record per-(tuple, column) slots in a
// resolve pass, then hash and write in a second pass — and these pieces
// must not drift apart between them.

#ifndef PRIVMARK_WATERMARK_EMBED_INTERNAL_H_
#define PRIVMARK_WATERMARK_EMBED_INTERNAL_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "relation/value.h"

namespace privmark {
namespace watermark_internal {

/// \brief The identifier text of a cell, by reference for string cells
/// (the overwhelmingly common case: binned tables hold encrypted
/// identifiers as strings) and via `scratch` otherwise.
inline std::string_view IdentText(const Value& cell, std::string* scratch) {
  if (cell.type() == ValueType::kString) return cell.AsString();
  *scratch = cell.ToString();
  return *scratch;
}

/// \brief One selected tuple with its slots as a [slot_begin, slot_end)
/// range into the embedder's flat slot vector. The identifier is copied
/// once per *selected* tuple (~1/eta of rows) so slot hashing in the
/// write phase needs no table access.
struct SelectedTuple {
  size_t row;
  std::string ident;
  size_t slot_begin;
  size_t slot_end;
};

}  // namespace watermark_internal
}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_EMBED_INTERNAL_H_
