// Internal helpers shared by the watermark embedders/detectors
// (hierarchical.cc, single_level.cc). Not part of the public API: both
// schemes walk rows the same way — resolve the identifier by reference,
// gate on Eq. (5) selection, record per-(tuple, column) slots in a
// resolve pass, then hash and write in a second pass — and these pieces
// must not drift apart between them.
//
// Both passes shard over contiguous row (resp. tuple) ranges; the
// per-shard partial results below merge in shard order so parallel
// embed/detect is byte-identical to serial for any worker count.

#ifndef PRIVMARK_WATERMARK_EMBED_INTERNAL_H_
#define PRIVMARK_WATERMARK_EMBED_INTERNAL_H_

#include <cstddef>
#include <iterator>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "relation/value.h"

namespace privmark {
namespace watermark_internal {

/// \brief The identifier text of a cell, by reference for string cells
/// (the overwhelmingly common case: binned tables hold encrypted
/// identifiers as strings) and via `scratch` otherwise.
inline std::string_view IdentText(const Value& cell, std::string* scratch) {
  if (cell.type() == ValueType::kString) return cell.AsString();
  *scratch = cell.ToString();
  return *scratch;
}

/// \brief One selected tuple with its slots as a [slot_begin, slot_end)
/// range into the embedder's flat slot vector. The identifier is copied
/// once per *selected* tuple (~1/eta of rows) so slot hashing in the
/// write phase needs no table access.
struct SelectedTuple {
  size_t row;
  std::string ident;
  size_t slot_begin;
  size_t slot_end;
};

/// \brief One row-shard's resolve-pass output: its selected tuples (slot
/// ranges relative to the shard's own slot vector until merged) plus the
/// shard's counters. SlotT is each scheme's slot record.
template <typename SlotT>
struct ResolvedShard {
  std::vector<SelectedTuple> tuples;
  std::vector<SlotT> slots;
  size_t tuples_selected = 0;
  size_t slots_skipped_no_gap = 0;
  size_t bandwidth = 0;
};

/// \brief Shard-order merge for ResolvedShard: rebases the incoming slot
/// ranges onto the accumulated slot vector and appends. Counters are
/// integer sums, so the merged result is identical for any shard count.
template <typename SlotT>
void MergeResolve(ResolvedShard<SlotT>* acc, ResolvedShard<SlotT>&& shard) {
  const size_t offset = acc->slots.size();
  acc->tuples.reserve(acc->tuples.size() + shard.tuples.size());
  for (SelectedTuple& tuple : shard.tuples) {
    tuple.slot_begin += offset;
    tuple.slot_end += offset;
    acc->tuples.push_back(std::move(tuple));
  }
  acc->slots.insert(acc->slots.end(),
                    std::make_move_iterator(shard.slots.begin()),
                    std::make_move_iterator(shard.slots.end()));
  acc->tuples_selected += shard.tuples_selected;
  acc->slots_skipped_no_gap += shard.slots_skipped_no_gap;
  acc->bandwidth += shard.bandwidth;
}

/// \brief One tuple-shard's write-pass tally.
struct WriteTally {
  size_t slots_embedded = 0;
  size_t slots_skipped_no_gap = 0;  // single-level: empty parity candidates
  size_t cells_changed = 0;
};

inline void MergeWrites(WriteTally* acc, WriteTally&& tally) {
  acc->slots_embedded += tally.slots_embedded;
  acc->slots_skipped_no_gap += tally.slots_skipped_no_gap;
  acc->cells_changed += tally.cells_changed;
}

/// \brief One row-shard's detection tally: weighted votes per wmd
/// position plus counters. Vote accumulation adds 1.0 per voting slot, so
/// per-shard sums merged in shard order reproduce the serial totals
/// exactly (whole-valued doubles are closed under addition well past any
/// realistic row count).
struct VoteShard {
  std::vector<double> zeros;
  std::vector<double> ones;
  size_t tuples_selected = 0;
  size_t slots_read = 0;
  size_t slots_skipped = 0;

  explicit VoteShard(size_t wmd_size = 0)
      : zeros(wmd_size, 0.0), ones(wmd_size, 0.0) {}
};

inline void MergeVotes(VoteShard* acc, VoteShard&& shard) {
  for (size_t pos = 0; pos < acc->zeros.size(); ++pos) {
    acc->zeros[pos] += shard.zeros[pos];
    acc->ones[pos] += shard.ones[pos];
  }
  acc->tuples_selected += shard.tuples_selected;
  acc->slots_read += shard.slots_read;
  acc->slots_skipped += shard.slots_skipped;
}

}  // namespace watermark_internal
}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_EMBED_INTERNAL_H_
