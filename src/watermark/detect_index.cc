#include "watermark/detect_index.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"

namespace privmark {

namespace {

using watermark_internal::IdentText;
using watermark_internal::MergeVotes;
using watermark_internal::VoteShard;

// One row-shard of the index build: its slot outcomes plus identifier
// bytes and per-row lengths (offsets are prefix-summed after the merge).
struct IndexShard {
  std::vector<SlotVote> slots;
  std::string ident_bytes;
  std::vector<size_t> ident_sizes;
};

void MergeIndex(IndexShard* acc, IndexShard&& shard) {
  acc->slots.insert(acc->slots.end(), shard.slots.begin(), shard.slots.end());
  acc->ident_bytes += shard.ident_bytes;
  acc->ident_sizes.insert(acc->ident_sizes.end(), shard.ident_sizes.begin(),
                          shard.ident_sizes.end());
}

// Shared build skeleton; `slot_of(cell, c, &level_scratch)` is each
// scheme's ReadSlot.
template <typename SlotFn>
Result<DetectIndex> BuildIndexImpl(const Table& table, size_t ident_column,
                                   const std::vector<size_t>& qi_columns,
                                   const WatermarkOptions& options,
                                   const SlotFn& slot_of) {
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options.pool, options.num_threads, &owned_pool);
  const size_t num_cols = qi_columns.size();
  PRIVMARK_ASSIGN_OR_RETURN(
      IndexShard merged,
      ParallelReduce<IndexShard>(
          pool, table.num_rows(), IndexShard{},
          [&](size_t, size_t begin, size_t end) -> Result<IndexShard> {
            IndexShard shard;
            shard.slots.reserve((end - begin) * num_cols);
            shard.ident_sizes.reserve(end - begin);
            std::string scratch;
            std::vector<std::pair<bool, int>> level_scratch;
            for (size_t r = begin; r < end; ++r) {
              const std::string_view ident =
                  IdentText(table.at(r, ident_column), &scratch);
              shard.ident_bytes.append(ident.data(), ident.size());
              shard.ident_sizes.push_back(ident.size());
              for (size_t c = 0; c < num_cols; ++c) {
                shard.slots.push_back(
                    slot_of(table.at(r, qi_columns[c]), c, &level_scratch));
              }
            }
            return shard;
          },
          MergeIndex));

  DetectIndex index;
  index.num_rows = table.num_rows();
  index.column_names.reserve(num_cols);
  for (size_t col : qi_columns) {
    index.column_names.push_back(table.schema().column(col).name);
  }
  index.slots = std::move(merged.slots);
  index.ident_bytes = std::move(merged.ident_bytes);
  index.ident_offsets.resize(index.num_rows + 1, 0);
  for (size_t r = 0; r < index.num_rows; ++r) {
    index.ident_offsets[r + 1] = index.ident_offsets[r] +
                                 merged.ident_sizes[r];
  }
  return index;
}

// The keyed inner loop shared by TallyDetect and MultiKeyTally: replays
// selection and position hashing over [begin, end), reading slot votes
// from the index. Mirrors the fused Detect() loop statement for
// statement, so counters and tallies come out identical.
void TallyRows(const DetectIndex& index, WatermarkHasher* hasher,
               size_t wmd_size, size_t begin, size_t end, VoteShard* shard) {
  const size_t num_cols = index.num_columns();
  for (size_t r = begin; r < end; ++r) {
    const std::string_view ident = index.ident(r);
    if (!hasher->TupleSelected(ident)) continue;
    ++shard->tuples_selected;
    for (size_t c = 0; c < num_cols; ++c) {
      const SlotVote vote = index.slots[r * num_cols + c];
      if (vote == SlotVote::kSkip) {
        ++shard->slots_skipped;
        continue;
      }
      const size_t pos =
          hasher->WmdPosition(ident, index.column_names[c], wmd_size);
      (vote == SlotVote::kOne ? shard->ones[pos] : shard->zeros[pos]) += 1.0;
      ++shard->slots_read;
    }
  }
}

Status ValidateSizes(size_t wm_size, size_t wmd_size) {
  if (wm_size == 0 || wmd_size == 0 || wmd_size % wm_size != 0) {
    return Status::InvalidArgument(
        "Detect: wmd_size must be a positive multiple of wm_size");
  }
  return Status::OK();
}

}  // namespace

void FoldVotes(const VoteShard& votes, size_t wm_size, size_t wmd_size,
               DetectReport* report) {
  report->tuples_selected = votes.tuples_selected;
  report->slots_read = votes.slots_read;
  report->slots_skipped = votes.slots_skipped;
  // Fold wmd votes down to wm bits: copy t of bit j lives at j + t*wm_size.
  report->recovered = BitVector(wm_size);
  report->vote_margin.assign(wm_size, 0.0);
  report->bit_voted.assign(wm_size, false);
  for (size_t j = 0; j < wm_size; ++j) {
    double zero_total = 0.0;
    double one_total = 0.0;
    for (size_t pos = j; pos < wmd_size; pos += wm_size) {
      zero_total += votes.zeros[pos];
      one_total += votes.ones[pos];
    }
    report->vote_margin[j] = one_total - zero_total;
    report->bit_voted[j] = (zero_total + one_total) > 0.0;
    report->recovered.Set(j, one_total > zero_total);
  }
}

Result<DetectIndex> BuildDetectIndex(const HierarchicalWatermarker& wm,
                                     const Table& table) {
  return BuildIndexImpl(
      table, wm.ident_column(), wm.qi_columns(), wm.options(),
      [&wm](const Value& cell, size_t c,
            std::vector<std::pair<bool, int>>* scratch) {
        return wm.ReadSlot(c, cell, scratch);
      });
}

Result<DetectIndex> BuildDetectIndex(const SingleLevelWatermarker& wm,
                                     const Table& table) {
  return BuildIndexImpl(
      table, wm.ident_column(), wm.qi_columns(), wm.options(),
      [&wm](const Value& cell, size_t c,
            std::vector<std::pair<bool, int>>*) {
        return wm.ReadSlot(c, cell);
      });
}

Result<DetectReport> TallyDetect(const DetectIndex& index,
                                 const WatermarkKey& key, HashAlgorithm algo,
                                 size_t wm_size, size_t wmd_size,
                                 ThreadPool* pool) {
  PRIVMARK_RETURN_NOT_OK(ValidateSizes(wm_size, wmd_size));
  PRIVMARK_ASSIGN_OR_RETURN(
      VoteShard votes,
      ParallelReduce<VoteShard>(
          pool, index.num_rows, VoteShard(wmd_size),
          [&](size_t, size_t begin, size_t end) -> Result<VoteShard> {
            VoteShard shard(wmd_size);
            WatermarkHasher hasher(key, algo);
            TallyRows(index, &hasher, wmd_size, begin, end, &shard);
            return shard;
          },
          MergeVotes));
  DetectReport report;
  FoldVotes(votes, wm_size, wmd_size, &report);
  return report;
}

Result<std::vector<DetectReport>> MultiKeyTally(
    const DetectIndex& index, const std::vector<WatermarkKey>& keys,
    HashAlgorithm algo, size_t wm_size, size_t wmd_size, ThreadPool* pool) {
  PRIVMARK_RETURN_NOT_OK(ValidateSizes(wm_size, wmd_size));
  std::vector<DetectReport> reports;
  reports.reserve(keys.size());

  const std::vector<ShardRange> shards =
      ShardRanges(index.num_rows, pool == nullptr ? 1 : pool->num_threads());
  const size_t num_shards = shards.size();
  if (num_shards == 0) {
    // Empty table: every key folds an empty tally.
    for (size_t k = 0; k < keys.size(); ++k) {
      DetectReport report;
      FoldVotes(VoteShard(wmd_size), wm_size, wmd_size, &report);
      reports.push_back(std::move(report));
    }
    return reports;
  }

  // Keys are processed in blocks so live VoteShards stay O(threads), not
  // O(K) — a thousands-of-keys scan must not hold thousands of wmd-sized
  // tallies at once. Each block flattens into one (key x shard) fork-join
  // batch with ~4 tasks per worker; within a block, task t owns cell
  // cells[t] and nothing else, and each key's cells merge in shard order.
  const size_t num_threads = pool == nullptr ? 1 : pool->num_threads();
  const size_t block =
      pool == nullptr
          ? 1
          : std::max<size_t>(1, (4 * num_threads + num_shards - 1) /
                                    num_shards);
  std::vector<VoteShard> cells;
  for (size_t k0 = 0; k0 < keys.size(); k0 += block) {
    const size_t block_keys = std::min(keys.size() - k0, block);
    cells.assign(block_keys * num_shards, VoteShard(wmd_size));
    const auto task = [&](size_t t) {
      const size_t ki = t / num_shards;
      const size_t s = t % num_shards;
      WatermarkHasher hasher(keys[k0 + ki], algo);
      TallyRows(index, &hasher, wmd_size, shards[s].begin, shards[s].end,
                &cells[t]);
    };
    if (pool == nullptr) {
      for (size_t t = 0; t < block_keys * num_shards; ++t) task(t);
    } else {
      pool->Run(block_keys * num_shards, task);
    }
    for (size_t ki = 0; ki < block_keys; ++ki) {
      VoteShard votes(wmd_size);
      for (size_t s = 0; s < num_shards; ++s) {
        MergeVotes(&votes, std::move(cells[ki * num_shards + s]));
      }
      DetectReport report;
      FoldVotes(votes, wm_size, wmd_size, &report);
      reports.push_back(std::move(report));
    }
  }
  return reports;
}

}  // namespace privmark
