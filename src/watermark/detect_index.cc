#include "watermark/detect_index.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"

namespace privmark {

namespace {

using watermark_internal::IdentText;
using watermark_internal::MergeVotes;
using watermark_internal::VoteShard;

// One row-shard of the index build: its slot outcomes plus identifier
// bytes and per-row lengths (offsets are prefix-summed after the merge).
struct IndexShard {
  std::vector<SlotVote> slots;
  std::string ident_bytes;
  std::vector<size_t> ident_sizes;
};

void MergeIndex(IndexShard* acc, IndexShard&& shard) {
  acc->slots.insert(acc->slots.end(), shard.slots.begin(), shard.slots.end());
  acc->ident_bytes += shard.ident_bytes;
  acc->ident_sizes.insert(acc->ident_sizes.end(), shard.ident_sizes.begin(),
                          shard.ident_sizes.end());
}

// Shared build skeleton; `slot_of(cell, c, &level_scratch)` is each
// scheme's ReadSlot.
template <typename SlotFn>
Result<DetectIndex> BuildIndexImpl(const Table& table, size_t ident_column,
                                   const std::vector<size_t>& qi_columns,
                                   const WatermarkOptions& options,
                                   const SlotFn& slot_of) {
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options.pool, options.num_threads, &owned_pool);
  const size_t num_cols = qi_columns.size();
  PRIVMARK_ASSIGN_OR_RETURN(
      IndexShard merged,
      ParallelReduce<IndexShard>(
          pool, table.num_rows(), IndexShard{},
          [&](size_t, size_t begin, size_t end) -> Result<IndexShard> {
            IndexShard shard;
            shard.slots.reserve((end - begin) * num_cols);
            shard.ident_sizes.reserve(end - begin);
            std::string scratch;
            std::vector<std::pair<bool, int>> level_scratch;
            for (size_t r = begin; r < end; ++r) {
              const std::string_view ident =
                  IdentText(table.at(r, ident_column), &scratch);
              shard.ident_bytes.append(ident.data(), ident.size());
              shard.ident_sizes.push_back(ident.size());
              for (size_t c = 0; c < num_cols; ++c) {
                shard.slots.push_back(
                    slot_of(table.at(r, qi_columns[c]), c, &level_scratch));
              }
            }
            return shard;
          },
          MergeIndex));

  DetectIndex index;
  index.num_rows = table.num_rows();
  index.column_names.reserve(num_cols);
  for (size_t col : qi_columns) {
    index.column_names.push_back(table.schema().column(col).name);
  }
  index.slots = std::move(merged.slots);
  index.ident_bytes = std::move(merged.ident_bytes);
  index.ident_offsets.resize(index.num_rows + 1, 0);
  for (size_t r = 0; r < index.num_rows; ++r) {
    index.ident_offsets[r + 1] = index.ident_offsets[r] +
                                 merged.ident_sizes[r];
  }
  return index;
}

// The keyed inner loop of TallyDetect: replays selection and position
// hashing over [begin, end), reading slot votes from the index. Row
// blocks batch both hash kinds through the multi-buffer kernel (identifier
// views come straight from the index, position messages from a per-block
// arena), so values, counters, and tallies come out identical to the fused
// Detect() — only the hashing schedule differs.
void TallyRows(const DetectIndex& index, WatermarkHasher* hasher,
               size_t wmd_size, size_t begin, size_t end, VoteShard* shard) {
  const size_t num_cols = index.num_columns();
  constexpr size_t kRows = WatermarkHasher::kBlockRows;
  std::string_view idents[kRows];
  uint8_t selected[kRows];
  std::string arena;
  std::vector<size_t> msg_ends;
  std::vector<uint8_t> vote_ones;
  std::vector<std::string_view> messages;
  std::vector<size_t> positions;
  for (size_t b = begin; b < end; b += kRows) {
    const size_t n = std::min(kRows, end - b);
    for (size_t i = 0; i < n; ++i) idents[i] = index.ident(b + i);
    hasher->SelectBlock(idents, n, selected);
    arena.clear();
    msg_ends.clear();
    vote_ones.clear();
    for (size_t i = 0; i < n; ++i) {
      if (selected[i] == 0) continue;
      ++shard->tuples_selected;
      const size_t r = b + i;
      for (size_t c = 0; c < num_cols; ++c) {
        const SlotVote vote = index.slots[r * num_cols + c];
        if (vote == SlotVote::kSkip) {
          ++shard->slots_skipped;
          continue;
        }
        WatermarkHasher::AppendPositionMessage(idents[i],
                                               index.column_names[c], &arena);
        msg_ends.push_back(arena.size());
        vote_ones.push_back(vote == SlotVote::kOne ? 1 : 0);
      }
    }
    messages.resize(msg_ends.size());
    positions.resize(msg_ends.size());
    size_t start = 0;
    for (size_t j = 0; j < msg_ends.size(); ++j) {
      messages[j] = std::string_view(arena).substr(start, msg_ends[j] - start);
      start = msg_ends[j];
    }
    hasher->PositionBlock(messages.data(), messages.size(), wmd_size,
                          positions.data());
    for (size_t j = 0; j < msg_ends.size(); ++j) {
      (vote_ones[j] != 0 ? shard->ones[positions[j]]
                         : shard->zeros[positions[j]]) += 1.0;
      ++shard->slots_read;
    }
  }
}

// Keys per multi-key tally group: one AVX2 lane group's worth, so even a
// single row's position message fills the widest kernel when all group
// keys select it.
constexpr size_t kKeyLanes = 8;

// The multi-key twin of TallyRows: tallies rows [begin, end) for
// `num_keys` (<= kKeyLanes) keys at once into shards[0..num_keys).
// Amortizes per-row work across the whole group — identifier views are
// gathered once, selection hashes for all (key, row) pairs of a block go
// through one batched call, and each voting (row, column) position message
// is assembled once and then hashed per selecting key. Per key the values,
// counters, and tallies are identical to a single-key TallyRows pass.
void TallyRowsMultiKey(const DetectIndex& index, const WatermarkKey* keys,
                       size_t num_keys, HashAlgorithm algo, size_t wmd_size,
                       size_t begin, size_t end, VoteShard* shards) {
  const size_t num_cols = index.num_columns();
  constexpr size_t kRows = WatermarkHasher::kBlockRows;
  std::string_view idents[kRows];
  std::vector<KeyedHashInput> sel_inputs;
  std::vector<uint64_t> sel_hashes;
  std::vector<uint8_t> selected;  // [key * kRows + row-in-block]
  std::string arena;
  std::vector<size_t> msg_ends;
  std::vector<int> msg_idx;  // [row-in-block * num_cols], -1 = no message
  std::vector<std::string_view> messages;
  std::vector<KeyedHashInput> pos_inputs;
  std::vector<uint64_t> pos_hashes;
  struct PendingVote {
    uint32_t key;
    uint8_t one;
  };
  std::vector<PendingVote> pending;
  for (size_t b = begin; b < end; b += kRows) {
    const size_t n = std::min(kRows, end - b);
    for (size_t i = 0; i < n; ++i) idents[i] = index.ident(b + i);

    // Selection for every (key, row) pair in one batch.
    sel_inputs.clear();
    for (size_t k = 0; k < num_keys; ++k) {
      for (size_t i = 0; i < n; ++i) {
        sel_inputs.push_back({keys[k].k1, idents[i]});
      }
    }
    sel_hashes.resize(sel_inputs.size());
    KeyedHash64Batch(algo, sel_inputs.data(), sel_inputs.size(),
                     sel_hashes.data());
    selected.assign(num_keys * kRows, 0);
    for (size_t k = 0; k < num_keys; ++k) {
      for (size_t i = 0; i < n; ++i) {
        selected[k * kRows + i] =
            sel_hashes[k * n + i] % keys[k].eta == 0 ? 1 : 0;
      }
    }

    // Assemble each voting (row, column) message once — for rows any key
    // selected — then hash it once per selecting key below.
    arena.clear();
    msg_ends.clear();
    msg_idx.assign(n * num_cols, -1);
    for (size_t i = 0; i < n; ++i) {
      bool any = false;
      for (size_t k = 0; k < num_keys && !any; ++k) {
        any = selected[k * kRows + i] != 0;
      }
      if (!any) continue;
      const size_t r = b + i;
      for (size_t c = 0; c < num_cols; ++c) {
        if (index.slots[r * num_cols + c] == SlotVote::kSkip) continue;
        msg_idx[i * num_cols + c] = static_cast<int>(msg_ends.size());
        WatermarkHasher::AppendPositionMessage(idents[i],
                                               index.column_names[c], &arena);
        msg_ends.push_back(arena.size());
      }
    }
    messages.resize(msg_ends.size());
    size_t start = 0;
    for (size_t j = 0; j < msg_ends.size(); ++j) {
      messages[j] = std::string_view(arena).substr(start, msg_ends[j] - start);
      start = msg_ends[j];
    }

    pos_inputs.clear();
    pending.clear();
    for (size_t k = 0; k < num_keys; ++k) {
      for (size_t i = 0; i < n; ++i) {
        if (selected[k * kRows + i] == 0) continue;
        ++shards[k].tuples_selected;
        const size_t r = b + i;
        for (size_t c = 0; c < num_cols; ++c) {
          const SlotVote vote = index.slots[r * num_cols + c];
          if (vote == SlotVote::kSkip) {
            ++shards[k].slots_skipped;
            continue;
          }
          pos_inputs.push_back(
              {keys[k].k2, messages[msg_idx[i * num_cols + c]]});
          pending.push_back({static_cast<uint32_t>(k),
                             vote == SlotVote::kOne ? uint8_t{1}
                                                    : uint8_t{0}});
        }
      }
    }
    pos_hashes.resize(pos_inputs.size());
    KeyedHash64Batch(algo, pos_inputs.data(), pos_inputs.size(),
                     pos_hashes.data());
    for (size_t j = 0; j < pending.size(); ++j) {
      const size_t pos = static_cast<size_t>(pos_hashes[j] % wmd_size);
      VoteShard& shard = shards[pending[j].key];
      (pending[j].one != 0 ? shard.ones[pos] : shard.zeros[pos]) += 1.0;
      ++shard.slots_read;
    }
  }
}

Status ValidateSizes(size_t wm_size, size_t wmd_size) {
  if (wm_size == 0 || wmd_size == 0 || wmd_size % wm_size != 0) {
    return Status::InvalidArgument(
        "Detect: wmd_size must be a positive multiple of wm_size");
  }
  return Status::OK();
}

}  // namespace

void FoldVotes(const VoteShard& votes, size_t wm_size, size_t wmd_size,
               DetectReport* report) {
  report->tuples_selected = votes.tuples_selected;
  report->slots_read = votes.slots_read;
  report->slots_skipped = votes.slots_skipped;
  // Fold wmd votes down to wm bits: copy t of bit j lives at j + t*wm_size.
  report->recovered = BitVector(wm_size);
  report->vote_margin.assign(wm_size, 0.0);
  report->bit_voted.assign(wm_size, false);
  for (size_t j = 0; j < wm_size; ++j) {
    double zero_total = 0.0;
    double one_total = 0.0;
    for (size_t pos = j; pos < wmd_size; pos += wm_size) {
      zero_total += votes.zeros[pos];
      one_total += votes.ones[pos];
    }
    report->vote_margin[j] = one_total - zero_total;
    report->bit_voted[j] = (zero_total + one_total) > 0.0;
    report->recovered.Set(j, one_total > zero_total);
  }
}

Result<DetectIndex> BuildDetectIndex(const HierarchicalWatermarker& wm,
                                     const Table& table) {
  return BuildIndexImpl(
      table, wm.ident_column(), wm.qi_columns(), wm.options(),
      [&wm](const Value& cell, size_t c,
            std::vector<std::pair<bool, int>>* scratch) {
        return wm.ReadSlot(c, cell, scratch);
      });
}

Result<DetectIndex> BuildDetectIndex(const SingleLevelWatermarker& wm,
                                     const Table& table) {
  return BuildIndexImpl(
      table, wm.ident_column(), wm.qi_columns(), wm.options(),
      [&wm](const Value& cell, size_t c,
            std::vector<std::pair<bool, int>>*) {
        return wm.ReadSlot(c, cell);
      });
}

Result<DetectReport> TallyDetect(const DetectIndex& index,
                                 const WatermarkKey& key, HashAlgorithm algo,
                                 size_t wm_size, size_t wmd_size,
                                 ThreadPool* pool) {
  PRIVMARK_RETURN_NOT_OK(ValidateSizes(wm_size, wmd_size));
  PRIVMARK_ASSIGN_OR_RETURN(
      VoteShard votes,
      ParallelReduce<VoteShard>(
          pool, index.num_rows, VoteShard(wmd_size),
          [&](size_t, size_t begin, size_t end) -> Result<VoteShard> {
            VoteShard shard(wmd_size);
            WatermarkHasher hasher(key, algo);
            TallyRows(index, &hasher, wmd_size, begin, end, &shard);
            return shard;
          },
          MergeVotes));
  DetectReport report;
  FoldVotes(votes, wm_size, wmd_size, &report);
  return report;
}

Result<std::vector<DetectReport>> MultiKeyTally(
    const DetectIndex& index, const std::vector<WatermarkKey>& keys,
    HashAlgorithm algo, size_t wm_size, size_t wmd_size, ThreadPool* pool,
    const MultiKeyTallySink& sink) {
  PRIVMARK_RETURN_NOT_OK(ValidateSizes(wm_size, wmd_size));
  std::vector<DetectReport> reports;
  if (sink == nullptr) reports.reserve(keys.size());

  const std::vector<ShardRange> shards =
      ShardRanges(index.num_rows, pool == nullptr ? 1 : pool->num_threads());
  const size_t num_shards = shards.size();
  if (num_shards == 0) {
    // Empty table: every key folds an empty tally (one block).
    for (size_t k = 0; k < keys.size(); ++k) {
      DetectReport report;
      FoldVotes(VoteShard(wmd_size), wm_size, wmd_size, &report);
      reports.push_back(std::move(report));
    }
    if (sink != nullptr && !reports.empty()) {
      sink(0, std::move(reports));
      reports.clear();
    }
    return reports;
  }

  // Keys tally in lane groups of kKeyLanes: a (group x shard) task walks
  // its rows once for all group keys (TallyRowsMultiKey), amortizing ident
  // gathering and position-message assembly K-fold. Groups are processed
  // in blocks so live VoteShards stay O(threads x kKeyLanes), not O(K) — a
  // thousands-of-keys scan must not hold thousands of wmd-sized tallies at
  // once. Within a block, task t owns its kKeyLanes-cell stripe and
  // nothing else, and each key's cells merge in shard order.
  const size_t num_threads = pool == nullptr ? 1 : pool->num_threads();
  const size_t num_groups = (keys.size() + kKeyLanes - 1) / kKeyLanes;
  const size_t group_block =
      pool == nullptr
          ? 1
          : std::max<size_t>(1, (4 * num_threads + num_shards - 1) /
                                    num_shards);
  std::vector<VoteShard> cells;
  for (size_t g0 = 0; g0 < num_groups; g0 += group_block) {
    const size_t block_groups = std::min(num_groups - g0, group_block);
    // Layout: cells[(gi * num_shards + s) * kKeyLanes + lane]; tail groups
    // leave their unused lane cells empty.
    cells.assign(block_groups * num_shards * kKeyLanes, VoteShard(wmd_size));
    const auto task = [&](size_t t) {
      const size_t gi = t / num_shards;
      const size_t s = t % num_shards;
      const size_t k0 = (g0 + gi) * kKeyLanes;
      const size_t group_keys = std::min(keys.size() - k0, kKeyLanes);
      TallyRowsMultiKey(index, keys.data() + k0, group_keys, algo, wmd_size,
                        shards[s].begin, shards[s].end,
                        &cells[(gi * num_shards + s) * kKeyLanes]);
    };
    if (pool == nullptr) {
      for (size_t t = 0; t < block_groups * num_shards; ++t) task(t);
    } else {
      pool->Run(block_groups * num_shards, task);
    }
    std::vector<DetectReport> block_reports;
    std::vector<DetectReport>& out = sink == nullptr ? reports : block_reports;
    for (size_t gi = 0; gi < block_groups; ++gi) {
      const size_t k0 = (g0 + gi) * kKeyLanes;
      const size_t group_keys = std::min(keys.size() - k0, kKeyLanes);
      for (size_t lane = 0; lane < group_keys; ++lane) {
        VoteShard votes(wmd_size);
        for (size_t s = 0; s < num_shards; ++s) {
          MergeVotes(&votes,
                     std::move(cells[(gi * num_shards + s) * kKeyLanes +
                                     lane]));
        }
        DetectReport report;
        FoldVotes(votes, wm_size, wmd_size, &report);
        out.push_back(std::move(report));
      }
    }
    // Stream the whole block at once: it is the unit already bounded for
    // memory, and its keys are contiguous from g0 * kKeyLanes.
    if (sink != nullptr) sink(g0 * kKeyLanes, std::move(block_reports));
  }
  return reports;
}

}  // namespace privmark
