#include "watermark/hierarchical.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/parallel.h"
#include "watermark/detect_index.h"
#include "watermark/embed_internal.h"

namespace privmark {

namespace {

using watermark_internal::IdentBlock;
using watermark_internal::MergeResolve;
using watermark_internal::ResolvedShard;
using watermark_internal::SelectedTuple;

// One embeddable (tuple, column) slot: the cell's resolved node and the
// maximal generalization node above it.
struct EmbedSlot {
  size_t col_idx;  // index into qi_columns_, not the schema
  NodeId node;
  NodeId max_node;
};

}  // namespace

HierarchicalWatermarker::HierarchicalWatermarker(
    std::vector<size_t> qi_columns, size_t ident_column,
    std::vector<GeneralizationSet> maximal,
    std::vector<GeneralizationSet> ultimate, WatermarkKey key,
    WatermarkOptions options)
    : qi_columns_(std::move(qi_columns)),
      ident_column_(ident_column),
      maximal_(std::move(maximal)),
      ultimate_(std::move(ultimate)),
      key_(std::move(key)),
      options_(options) {
  assert(qi_columns_.size() == maximal_.size());
  assert(qi_columns_.size() == ultimate_.size());
}

NodeId HierarchicalWatermarker::MaximalAbove(size_t c, NodeId node) const {
  const DomainHierarchy& tree = *maximal_[c].tree();
  for (NodeId cur = node; cur != kInvalidNode; cur = tree.Parent(cur)) {
    if (maximal_[c].Contains(cur)) return cur;
  }
  return kInvalidNode;
}

SlotVote HierarchicalWatermarker::ReadSlot(
    size_t c, const Value& cell,
    std::vector<std::pair<bool, int>>* level_scratch) const {
  const DomainHierarchy& tree = *ultimate_[c].tree();
  auto node_result = cell.type() == ValueType::kString
                         ? tree.FindByLabel(cell.AsString())
                         : tree.FindByLabel(cell.ToString());
  if (!node_result.ok()) {
    // Altered beyond the domain: no votes from this slot.
    return SlotVote::kSkip;
  }
  NodeId cur = *node_result;
  if (maximal_[c].Contains(cur)) return SlotVote::kSkip;

  // Walk up to the maximal node, reading a parity bit per level with >= 2
  // siblings (Fig. 9's Detection inner loop). The embedding wrote the
  // same bit at every level, so majority-vote the levels. Sibling index
  // and count are O(1) precomputed tree metadata.
  std::vector<std::pair<bool, int>>& level_bits = *level_scratch;
  bool reached_maximal = false;
  level_bits.clear();
  while (cur != kInvalidNode) {
    const NodeId parent = tree.Parent(cur);
    if (parent == kInvalidNode) break;
    if (tree.SiblingCount(cur) >= 2) {
      level_bits.push_back(
          {(tree.SiblingIndex(cur) & 1) != 0, tree.Depth(cur)});
    }
    if (maximal_[c].Contains(parent)) {
      reached_maximal = true;
      break;
    }
    cur = parent;
  }
  if (!reached_maximal || level_bits.empty()) return SlotVote::kSkip;

  // Weight by distance from the top of the walk (highest level first).
  double zero_weight = 0.0;
  double one_weight = 0.0;
  const int top_depth = level_bits.back().second;
  for (const auto& [bit, depth] : level_bits) {
    const double weight =
        options_.weighted_voting
            ? std::pow(options_.level_weight_decay, depth - top_depth)
            : 1.0;
    (bit ? one_weight : zero_weight) += weight;
  }
  // Tied levels: the slot abstains.
  if (one_weight == zero_weight) return SlotVote::kSkip;
  return one_weight > zero_weight ? SlotVote::kOne : SlotVote::kZero;
}

Result<size_t> HierarchicalWatermarker::EstimateBandwidth(
    const Table& table) const {
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options_.pool, options_.num_threads, &owned_pool);
  return ParallelReduce<size_t>(
      pool, table.num_rows(), size_t{0},
      [&](size_t, size_t begin, size_t end) -> Result<size_t> {
        WatermarkHasher hasher(key_, options_.hash);
        IdentBlock block;
        size_t slots = 0;
        for (size_t b = begin; b < end; b += IdentBlock::kRows) {
          const size_t n = std::min(IdentBlock::kRows, end - b);
          block.Load(table, ident_column_, b, n, &hasher);
          for (size_t i = 0; i < n; ++i) {
            if (!block.selected(i)) continue;
            const size_t r = b + i;
            for (size_t c = 0; c < qi_columns_.size(); ++c) {
              const Value& cell = table.at(r, qi_columns_[c]);
              auto node = cell.type() == ValueType::kString
                              ? ultimate_[c].NodeForLabel(cell.AsString())
                              : ultimate_[c].NodeForLabel(cell.ToString());
              if (!node.ok()) continue;
              const NodeId max_node = MaximalAbove(c, *node);
              if (max_node == kInvalidNode || max_node == *node) continue;
              ++slots;
            }
          }
        }
        return slots;
      },
      [](size_t* acc, size_t&& slots) { *acc += slots; });
}

Result<EmbedReport> HierarchicalWatermarker::Embed(Table* table,
                                                   const BitVector& wm,
                                                   size_t copies) const {
  if (wm.empty()) {
    return Status::InvalidArgument("Embed: empty watermark");
  }
  EmbedReport report;
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options_.pool, options_.num_threads, &owned_pool);

  // Pass 1 — resolve. One Eq. (5) hash per tuple and one label-to-node
  // resolution per (selected tuple, column); the former bandwidth
  // pre-pass and the embedding pass used to pay both twice. Rows shard
  // contiguously; each shard records its own tuples/slots (merged in
  // shard order, so the combined vectors match a serial scan).
  using Resolved = ResolvedShard<EmbedSlot>;
  PRIVMARK_ASSIGN_OR_RETURN(
      Resolved resolved,
      ParallelReduce<Resolved>(
          pool, table->num_rows(), Resolved{},
          [&](size_t, size_t begin, size_t end) -> Result<Resolved> {
            Resolved shard;
            WatermarkHasher hasher(key_, options_.hash);
            IdentBlock block;
            for (size_t b = begin; b < end; b += IdentBlock::kRows) {
              const size_t n = std::min(IdentBlock::kRows, end - b);
              block.Load(*table, ident_column_, b, n, &hasher);
              for (size_t i = 0; i < n; ++i) {
                if (!block.selected(i)) continue;
                const size_t r = b + i;
                const std::string_view ident = block.ident(i);
                ++shard.tuples_selected;
                SelectedTuple tuple{r, std::string(ident),
                                    shard.slots.size(), shard.slots.size()};
                for (size_t c = 0; c < qi_columns_.size(); ++c) {
                  const Value& cell = table->at(r, qi_columns_[c]);
                  PRIVMARK_ASSIGN_OR_RETURN(
                      NodeId node,
                      cell.type() == ValueType::kString
                          ? ultimate_[c].NodeForLabel(cell.AsString())
                          : ultimate_[c].NodeForLabel(cell.ToString()));
                  const NodeId max_node = MaximalAbove(c, node);
                  if (max_node == kInvalidNode || max_node == node) {
                    // Zero-gap special case (Sec. 5.2): permutation here
                    // would exceed the usage metrics, so the slot carries
                    // no bit.
                    ++shard.slots_skipped_no_gap;
                    continue;
                  }
                  shard.slots.push_back(EmbedSlot{c, node, max_node});
                  // Assemble the slot's position message now so the write
                  // pass can batch-hash whole shards of slots.
                  WatermarkHasher::AppendPositionMessage(
                      ident, table->schema().column(qi_columns_[c]).name,
                      &shard.pos_bytes);
                  shard.pos_ends.push_back(shard.pos_bytes.size());
                  ++shard.bandwidth;
                }
                tuple.slot_end = shard.slots.size();
                shard.tuples.push_back(std::move(tuple));
              }
            }
            return shard;
          },
          MergeResolve<EmbedSlot>));
  report.tuples_selected = resolved.tuples_selected;
  report.slots_skipped_no_gap = resolved.slots_skipped_no_gap;

  if (copies == 0) {
    copies = resolved.bandwidth / wm.size();
    if (copies == 0) copies = 1;
  }
  report.copies = copies;
  const BitVector wmd = wm.Duplicate(copies);
  report.wmd_size = wmd.size();

  // Pass 2 — embed. Walks the recorded slots only; labels are written
  // back from the tree's NodeId -> label arena, and only when the walk
  // lands on a different node than the cell already holds. Tuples shard
  // contiguously and every tuple writes only its own row, so writes are
  // disjoint across workers.
  PRIVMARK_ASSIGN_OR_RETURN(
      watermark_internal::WriteTally tally,
      ParallelReduce<watermark_internal::WriteTally>(
          pool, resolved.tuples.size(), {},
          [&](size_t, size_t begin,
              size_t end) -> Result<watermark_internal::WriteTally> {
            watermark_internal::WriteTally shard;
            if (begin == end) return shard;
            WatermarkHasher hasher(key_, options_.hash);
            // The shard's slots form one contiguous range; batch-hash all
            // their (pre-assembled) position messages up front. The
            // permutation walk below stays scalar: each step depends on
            // the node the previous one landed on.
            const size_t slot0 = resolved.tuples[begin].slot_begin;
            const size_t slot1 = resolved.tuples[end - 1].slot_end;
            std::vector<std::string_view> messages(slot1 - slot0);
            std::vector<size_t> positions(slot1 - slot0);
            for (size_t i = slot0; i < slot1; ++i) {
              messages[i - slot0] = resolved.pos_msg(i);
            }
            hasher.PositionBlock(messages.data(), messages.size(),
                                 wmd.size(), positions.data());
            for (size_t t = begin; t < end; ++t) {
              const SelectedTuple& tuple = resolved.tuples[t];
              for (size_t i = tuple.slot_begin; i < tuple.slot_end; ++i) {
                const EmbedSlot& slot = resolved.slots[i];
                const size_t col = qi_columns_[slot.col_idx];
                const std::string& column_name =
                    table->schema().column(col).name;
                const DomainHierarchy& tree = *ultimate_[slot.col_idx].tree();

                const bool bit = wmd.Get(positions[i - slot0]);
                NodeId cur = slot.max_node;
                bool encoded_any = false;
                while (!ultimate_[slot.col_idx].Contains(cur)) {
                  const std::vector<NodeId>& children = tree.Children(cur);
                  assert(!children.empty() &&
                         "a leaf must be covered by an ultimate node at or "
                         "above it");
                  if (children.size() == 1) {
                    cur = children[0];
                    continue;
                  }
                  size_t idx =
                      hasher.PermutationIndex(tuple.ident, column_name,
                                              tree.Depth(cur), children.size());
                  // SetMuBit with in-range correction: force the parity,
                  // stepping back by 2 if that overruns the sibling count
                  // (safe: >= 2 children means both parities exist).
                  idx = (idx & ~size_t{1}) | static_cast<size_t>(bit);
                  if (idx >= children.size()) idx -= 2;
                  cur = children[idx];
                  encoded_any = true;
                }
                if (encoded_any) ++shard.slots_embedded;
                if (cur != slot.node) {
                  table->Set(tuple.row, col, Value::String(tree.node(cur).label));
                  ++shard.cells_changed;
                }
              }
            }
            return shard;
          },
          watermark_internal::MergeWrites));
  report.slots_embedded = tally.slots_embedded;
  report.cells_changed = tally.cells_changed;
  return report;
}

Result<DetectReport> HierarchicalWatermarker::Detect(const Table& table,
                                                     size_t wm_size,
                                                     size_t wmd_size) const {
  if (wm_size == 0 || wmd_size == 0 || wmd_size % wm_size != 0) {
    return Status::InvalidArgument(
        "Detect: wmd_size must be a positive multiple of wm_size");
  }
  DetectReport report;
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options_.pool, options_.num_threads, &owned_pool);

  // Row shards accumulate weighted votes per wmd position into their own
  // (zeros, ones) tally, merged in shard order before the fold — every
  // slot contributes exactly 1.0, so the merged totals equal the serial
  // ones bit for bit.
  using watermark_internal::VoteShard;
  PRIVMARK_ASSIGN_OR_RETURN(
      VoteShard votes,
      ParallelReduce<VoteShard>(
          pool, table.num_rows(), VoteShard(wmd_size),
          [&](size_t, size_t begin, size_t end) -> Result<VoteShard> {
            VoteShard shard(wmd_size);
            WatermarkHasher hasher(key_, options_.hash);
            IdentBlock block;
            std::vector<std::pair<bool, int>> level_bits;  // (bit, depth)
            // Per block: read every voting slot first, appending its
            // position message to the arena, then batch-hash all positions
            // once the arena is stable (views into a growing string would
            // dangle) and apply the votes. Vote values and counters are
            // identical to the per-slot order — tallies are commutative
            // integer-valued sums.
            std::string arena;
            std::vector<size_t> msg_ends;
            std::vector<uint8_t> vote_ones;
            std::vector<std::string_view> messages;
            std::vector<size_t> positions;
            for (size_t b = begin; b < end; b += IdentBlock::kRows) {
              const size_t n = std::min(IdentBlock::kRows, end - b);
              block.Load(table, ident_column_, b, n, &hasher);
              arena.clear();
              msg_ends.clear();
              vote_ones.clear();
              for (size_t i = 0; i < n; ++i) {
                if (!block.selected(i)) continue;
                const size_t r = b + i;
                ++shard.tuples_selected;
                for (size_t c = 0; c < qi_columns_.size(); ++c) {
                  const size_t col = qi_columns_[c];
                  const SlotVote vote =
                      ReadSlot(c, table.at(r, col), &level_bits);
                  if (vote == SlotVote::kSkip) {
                    ++shard.slots_skipped;
                    continue;
                  }
                  WatermarkHasher::AppendPositionMessage(
                      block.ident(i), table.schema().column(col).name,
                      &arena);
                  msg_ends.push_back(arena.size());
                  vote_ones.push_back(vote == SlotVote::kOne ? 1 : 0);
                }
              }
              messages.resize(msg_ends.size());
              positions.resize(msg_ends.size());
              size_t start = 0;
              for (size_t j = 0; j < msg_ends.size(); ++j) {
                messages[j] = std::string_view(arena).substr(
                    start, msg_ends[j] - start);
                start = msg_ends[j];
              }
              hasher.PositionBlock(messages.data(), messages.size(),
                                   wmd_size, positions.data());
              for (size_t j = 0; j < msg_ends.size(); ++j) {
                (vote_ones[j] != 0 ? shard.ones[positions[j]]
                                   : shard.zeros[positions[j]]) += 1.0;
                ++shard.slots_read;
              }
            }
            return shard;
          },
          watermark_internal::MergeVotes));
  FoldVotes(votes, wm_size, wmd_size, &report);
  return report;
}

Result<double> MarkLossAgainst(const BitVector& reference,
                               const BitVector& recovered) {
  return reference.LossFraction(recovered);
}

Result<double> DetectionPValue(const BitVector& reference,
                               const DetectReport& report) {
  if (reference.size() != report.recovered.size() ||
      reference.size() != report.bit_voted.size()) {
    return Status::InvalidArgument("DetectionPValue: size mismatch");
  }
  size_t voted = 0;
  size_t matches = 0;
  for (size_t j = 0; j < reference.size(); ++j) {
    if (!report.bit_voted[j]) continue;
    ++voted;
    if (reference.Get(j) == report.recovered.Get(j)) ++matches;
  }
  if (voted == 0) return 1.0;

  // P[Bin(voted, 1/2) >= matches] = sum_{i=matches..voted} C(voted,i)/2^v,
  // computed in log space to stay stable for large vote counts.
  double tail = 0.0;
  double log_choose = 0.0;  // log C(voted, 0) = 0
  const double log_half_pow = -static_cast<double>(voted) * std::log(2.0);
  for (size_t i = 0; i <= voted; ++i) {
    if (i >= matches) {
      tail += std::exp(log_choose + log_half_pow);
    }
    // C(v, i+1) = C(v, i) * (v - i) / (i + 1).
    if (i < voted) {
      log_choose += std::log(static_cast<double>(voted - i)) -
                    std::log(static_cast<double>(i + 1));
    }
  }
  return std::min(tail, 1.0);
}

Result<double> StrictMarkLoss(const BitVector& reference,
                              const DetectReport& report) {
  if (reference.size() != report.recovered.size() ||
      reference.size() != report.bit_voted.size()) {
    return Status::InvalidArgument("StrictMarkLoss: size mismatch");
  }
  if (reference.empty()) return 0.0;
  size_t lost = 0;
  for (size_t j = 0; j < reference.size(); ++j) {
    if (!report.bit_voted[j] ||
        reference.Get(j) != report.recovered.Get(j)) {
      ++lost;
    }
  }
  return static_cast<double>(lost) / static_cast<double>(reference.size());
}

}  // namespace privmark
