#include "watermark/single_level.h"

#include <cassert>

namespace privmark {

SingleLevelWatermarker::SingleLevelWatermarker(
    std::vector<size_t> qi_columns, size_t ident_column,
    std::vector<GeneralizationSet> ultimate, WatermarkKey key,
    WatermarkOptions options)
    : qi_columns_(std::move(qi_columns)),
      ident_column_(ident_column),
      ultimate_(std::move(ultimate)),
      key_(std::move(key)),
      options_(options) {
  assert(qi_columns_.size() == ultimate_.size());
}

std::vector<NodeId> SingleLevelWatermarker::ParityCandidates(size_t c,
                                                             NodeId node,
                                                             bool bit) const {
  const DomainHierarchy& tree = *ultimate_[c].tree();
  const std::vector<NodeId> sibs = tree.Siblings(node);
  std::vector<NodeId> candidates;
  for (size_t i = 0; i < sibs.size(); ++i) {
    if (((i & 1) != 0) == bit && ultimate_[c].Contains(sibs[i])) {
      candidates.push_back(sibs[i]);
    }
  }
  return candidates;
}

Result<size_t> SingleLevelWatermarker::EstimateBandwidth(
    const Table& table) const {
  size_t slots = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const std::string ident = table.at(r, ident_column_).ToString();
    if (!IsTupleSelected(key_, options_.hash, ident)) continue;
    for (size_t c = 0; c < qi_columns_.size(); ++c) {
      auto node =
          ultimate_[c].NodeForLabel(table.at(r, qi_columns_[c]).ToString());
      if (!node.ok()) continue;
      // Encodable iff both parities are reachable among ultimate siblings.
      if (!ParityCandidates(c, *node, false).empty() &&
          !ParityCandidates(c, *node, true).empty()) {
        ++slots;
      }
    }
  }
  return slots;
}

Result<EmbedReport> SingleLevelWatermarker::Embed(Table* table,
                                                  const BitVector& wm,
                                                  size_t copies) const {
  if (wm.empty()) {
    return Status::InvalidArgument("Embed: empty watermark");
  }
  EmbedReport report;
  if (copies == 0) {
    PRIVMARK_ASSIGN_OR_RETURN(size_t bandwidth, EstimateBandwidth(*table));
    copies = bandwidth / wm.size();
    if (copies == 0) copies = 1;
  }
  report.copies = copies;
  const BitVector wmd = wm.Duplicate(copies);
  report.wmd_size = wmd.size();

  for (size_t r = 0; r < table->num_rows(); ++r) {
    const std::string ident = table->at(r, ident_column_).ToString();
    if (!IsTupleSelected(key_, options_.hash, ident)) continue;
    ++report.tuples_selected;

    for (size_t c = 0; c < qi_columns_.size(); ++c) {
      const size_t col = qi_columns_[c];
      const std::string& column_name = table->schema().column(col).name;
      const std::string label = table->at(r, col).ToString();
      PRIVMARK_ASSIGN_OR_RETURN(NodeId node, ultimate_[c].NodeForLabel(label));

      const bool bit =
          wmd.Get(WmdPosition(key_, options_.hash, ident, column_name,
                              wmd.size()));
      const std::vector<NodeId> candidates = ParityCandidates(c, node, bit);
      if (candidates.empty()) {
        ++report.slots_skipped_no_gap;
        continue;
      }
      const DomainHierarchy& tree = *ultimate_[c].tree();
      const size_t pick =
          PermutationIndex(key_, options_.hash, ident, column_name,
                           tree.Depth(node), candidates.size());
      const NodeId target = candidates[pick];
      ++report.slots_embedded;
      const std::string& new_label = tree.node(target).label;
      if (new_label != label) {
        table->Set(r, col, Value::String(new_label));
        ++report.cells_changed;
      }
    }
  }
  return report;
}

Result<DetectReport> SingleLevelWatermarker::Detect(const Table& table,
                                                    size_t wm_size,
                                                    size_t wmd_size) const {
  if (wm_size == 0 || wmd_size == 0 || wmd_size % wm_size != 0) {
    return Status::InvalidArgument(
        "Detect: wmd_size must be a positive multiple of wm_size");
  }
  DetectReport report;
  std::vector<double> zeros(wmd_size, 0.0);
  std::vector<double> ones(wmd_size, 0.0);

  for (size_t r = 0; r < table.num_rows(); ++r) {
    const std::string ident = table.at(r, ident_column_).ToString();
    if (!IsTupleSelected(key_, options_.hash, ident)) continue;
    ++report.tuples_selected;

    for (size_t c = 0; c < qi_columns_.size(); ++c) {
      const size_t col = qi_columns_[c];
      const std::string& column_name = table.schema().column(col).name;
      const DomainHierarchy& tree = *ultimate_[c].tree();
      auto node = tree.FindByLabel(table.at(r, col).ToString());
      if (!node.ok()) {
        ++report.slots_skipped;
        continue;
      }
      const std::vector<NodeId> sibs = tree.Siblings(*node);
      if (sibs.size() < 2) {
        ++report.slots_skipped;
        continue;
      }
      const bool slot_bit = (tree.SiblingIndex(*node) & 1) != 0;
      const size_t pos =
          WmdPosition(key_, options_.hash, ident, column_name, wmd_size);
      (slot_bit ? ones[pos] : zeros[pos]) += 1.0;
      ++report.slots_read;
    }
  }

  report.recovered = BitVector(wm_size);
  report.vote_margin.assign(wm_size, 0.0);
  report.bit_voted.assign(wm_size, false);
  for (size_t j = 0; j < wm_size; ++j) {
    double zero_total = 0.0;
    double one_total = 0.0;
    for (size_t pos = j; pos < wmd_size; pos += wm_size) {
      zero_total += zeros[pos];
      one_total += ones[pos];
    }
    report.vote_margin[j] = one_total - zero_total;
    report.bit_voted[j] = (zero_total + one_total) > 0.0;
    report.recovered.Set(j, one_total > zero_total);
  }
  return report;
}

}  // namespace privmark
