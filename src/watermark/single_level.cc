#include "watermark/single_level.h"

#include <algorithm>
#include <cassert>

#include "common/parallel.h"
#include "watermark/detect_index.h"
#include "watermark/embed_internal.h"

namespace privmark {

namespace {

using watermark_internal::IdentBlock;
using watermark_internal::MergeResolve;
using watermark_internal::ResolvedShard;
using watermark_internal::SelectedTuple;

// The single-level slot carries no maximal node: permutation happens only
// among the resolved node's own siblings.
struct EmbedSlot {
  size_t col_idx;
  NodeId node;
};

}  // namespace

SingleLevelWatermarker::SingleLevelWatermarker(
    std::vector<size_t> qi_columns, size_t ident_column,
    std::vector<GeneralizationSet> ultimate, WatermarkKey key,
    WatermarkOptions options)
    : qi_columns_(std::move(qi_columns)),
      ident_column_(ident_column),
      ultimate_(std::move(ultimate)),
      key_(std::move(key)),
      options_(options) {
  assert(qi_columns_.size() == ultimate_.size());
}

void SingleLevelWatermarker::ParityCandidates(
    size_t c, NodeId node, bool bit, std::vector<NodeId>* candidates) const {
  const DomainHierarchy& tree = *ultimate_[c].tree();
  candidates->clear();
  const NodeId parent = tree.Parent(node);
  if (parent == kInvalidNode) {
    if (!bit && ultimate_[c].Contains(node)) candidates->push_back(node);
    return;
  }
  const std::vector<NodeId>& sibs = tree.Children(parent);
  for (size_t i = 0; i < sibs.size(); ++i) {
    if (((i & 1) != 0) == bit && ultimate_[c].Contains(sibs[i])) {
      candidates->push_back(sibs[i]);
    }
  }
}

Result<size_t> SingleLevelWatermarker::EstimateBandwidth(
    const Table& table) const {
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options_.pool, options_.num_threads, &owned_pool);
  return ParallelReduce<size_t>(
      pool, table.num_rows(), size_t{0},
      [&](size_t, size_t begin, size_t end) -> Result<size_t> {
        WatermarkHasher hasher(key_, options_.hash);
        IdentBlock block;
        std::vector<NodeId> zeros;
        std::vector<NodeId> ones;
        size_t slots = 0;
        for (size_t b = begin; b < end; b += IdentBlock::kRows) {
          const size_t n = std::min(IdentBlock::kRows, end - b);
          block.Load(table, ident_column_, b, n, &hasher);
          for (size_t i = 0; i < n; ++i) {
            if (!block.selected(i)) continue;
            const size_t r = b + i;
            for (size_t c = 0; c < qi_columns_.size(); ++c) {
              const Value& cell = table.at(r, qi_columns_[c]);
              auto node = cell.type() == ValueType::kString
                              ? ultimate_[c].NodeForLabel(cell.AsString())
                              : ultimate_[c].NodeForLabel(cell.ToString());
              if (!node.ok()) continue;
              // Encodable iff both parities are reachable among ultimate
              // siblings.
              ParityCandidates(c, *node, false, &zeros);
              if (zeros.empty()) continue;
              ParityCandidates(c, *node, true, &ones);
              if (!ones.empty()) ++slots;
            }
          }
        }
        return slots;
      },
      [](size_t* acc, size_t&& slots) { *acc += slots; });
}

Result<EmbedReport> SingleLevelWatermarker::Embed(Table* table,
                                                  const BitVector& wm,
                                                  size_t copies) const {
  if (wm.empty()) {
    return Status::InvalidArgument("Embed: empty watermark");
  }
  EmbedReport report;
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options_.pool, options_.num_threads, &owned_pool);

  // Pass 1 — resolve labels once per (selected tuple, column); see the
  // hierarchical embedder for the pass/shard structure.
  const bool need_bandwidth = copies == 0;
  using Resolved = ResolvedShard<EmbedSlot>;
  PRIVMARK_ASSIGN_OR_RETURN(
      Resolved resolved,
      ParallelReduce<Resolved>(
          pool, table->num_rows(), Resolved{},
          [&](size_t, size_t begin, size_t end) -> Result<Resolved> {
            Resolved shard;
            WatermarkHasher hasher(key_, options_.hash);
            IdentBlock block;
            std::vector<NodeId> zeros;
            std::vector<NodeId> ones;
            for (size_t b = begin; b < end; b += IdentBlock::kRows) {
              const size_t n = std::min(IdentBlock::kRows, end - b);
              block.Load(*table, ident_column_, b, n, &hasher);
              for (size_t i = 0; i < n; ++i) {
                if (!block.selected(i)) continue;
                const size_t r = b + i;
                const std::string_view ident = block.ident(i);
                ++shard.tuples_selected;
                SelectedTuple tuple{r, std::string(ident),
                                    shard.slots.size(), shard.slots.size()};
                for (size_t c = 0; c < qi_columns_.size(); ++c) {
                  const Value& cell = table->at(r, qi_columns_[c]);
                  PRIVMARK_ASSIGN_OR_RETURN(
                      NodeId node,
                      cell.type() == ValueType::kString
                          ? ultimate_[c].NodeForLabel(cell.AsString())
                          : ultimate_[c].NodeForLabel(cell.ToString()));
                  shard.slots.push_back(EmbedSlot{c, node});
                  // Assemble the slot's position message now so the write
                  // pass can batch-hash whole shards of slots.
                  WatermarkHasher::AppendPositionMessage(
                      ident, table->schema().column(qi_columns_[c]).name,
                      &shard.pos_bytes);
                  shard.pos_ends.push_back(shard.pos_bytes.size());
                  if (!need_bandwidth) continue;
                  // Bandwidth counts slots where both parities are
                  // encodable, exactly like EstimateBandwidth (the
                  // copies=0 auto-sizing contract).
                  ParityCandidates(c, node, false, &zeros);
                  if (zeros.empty()) continue;
                  ParityCandidates(c, node, true, &ones);
                  if (!ones.empty()) ++shard.bandwidth;
                }
                tuple.slot_end = shard.slots.size();
                shard.tuples.push_back(std::move(tuple));
              }
            }
            return shard;
          },
          MergeResolve<EmbedSlot>));
  report.tuples_selected = resolved.tuples_selected;

  if (copies == 0) {
    copies = resolved.bandwidth / wm.size();
    if (copies == 0) copies = 1;
  }
  report.copies = copies;
  const BitVector wmd = wm.Duplicate(copies);
  report.wmd_size = wmd.size();

  // Pass 2 — embed over the recorded slots; tuples shard contiguously and
  // each writes only its own row.
  PRIVMARK_ASSIGN_OR_RETURN(
      watermark_internal::WriteTally tally,
      ParallelReduce<watermark_internal::WriteTally>(
          pool, resolved.tuples.size(), {},
          [&](size_t, size_t begin,
              size_t end) -> Result<watermark_internal::WriteTally> {
            watermark_internal::WriteTally shard;
            if (begin == end) return shard;
            WatermarkHasher hasher(key_, options_.hash);
            std::vector<NodeId> candidates;
            // Batch-hash the shard's contiguous slot range up front from
            // the resolve pass's pre-assembled position messages; the
            // parity pick below stays scalar (one hash per slot, dependent
            // on the candidate count).
            const size_t slot0 = resolved.tuples[begin].slot_begin;
            const size_t slot1 = resolved.tuples[end - 1].slot_end;
            std::vector<std::string_view> messages(slot1 - slot0);
            std::vector<size_t> positions(slot1 - slot0);
            for (size_t i = slot0; i < slot1; ++i) {
              messages[i - slot0] = resolved.pos_msg(i);
            }
            hasher.PositionBlock(messages.data(), messages.size(),
                                 wmd.size(), positions.data());
            for (size_t t = begin; t < end; ++t) {
              const SelectedTuple& tuple = resolved.tuples[t];
              for (size_t i = tuple.slot_begin; i < tuple.slot_end; ++i) {
                const EmbedSlot& slot = resolved.slots[i];
                const size_t col = qi_columns_[slot.col_idx];
                const std::string& column_name =
                    table->schema().column(col).name;
                const DomainHierarchy& tree = *ultimate_[slot.col_idx].tree();

                const bool bit = wmd.Get(positions[i - slot0]);
                ParityCandidates(slot.col_idx, slot.node, bit, &candidates);
                if (candidates.empty()) {
                  ++shard.slots_skipped_no_gap;
                  continue;
                }
                const size_t pick = hasher.PermutationIndex(
                    tuple.ident, column_name, tree.Depth(slot.node),
                    candidates.size());
                const NodeId target = candidates[pick];
                ++shard.slots_embedded;
                if (target != slot.node) {
                  table->Set(tuple.row, col,
                             Value::String(tree.node(target).label));
                  ++shard.cells_changed;
                }
              }
            }
            return shard;
          },
          watermark_internal::MergeWrites));
  report.slots_embedded = tally.slots_embedded;
  report.slots_skipped_no_gap = tally.slots_skipped_no_gap;
  report.cells_changed = tally.cells_changed;
  return report;
}

SlotVote SingleLevelWatermarker::ReadSlot(size_t c, const Value& cell) const {
  const DomainHierarchy& tree = *ultimate_[c].tree();
  auto node = cell.type() == ValueType::kString
                  ? tree.FindByLabel(cell.AsString())
                  : tree.FindByLabel(cell.ToString());
  if (!node.ok()) return SlotVote::kSkip;
  if (tree.SiblingCount(*node) < 2) return SlotVote::kSkip;
  return (tree.SiblingIndex(*node) & 1) != 0 ? SlotVote::kOne
                                             : SlotVote::kZero;
}

Result<DetectReport> SingleLevelWatermarker::Detect(const Table& table,
                                                    size_t wm_size,
                                                    size_t wmd_size) const {
  if (wm_size == 0 || wmd_size == 0 || wmd_size % wm_size != 0) {
    return Status::InvalidArgument(
        "Detect: wmd_size must be a positive multiple of wm_size");
  }
  DetectReport report;
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options_.pool, options_.num_threads, &owned_pool);

  using watermark_internal::VoteShard;
  PRIVMARK_ASSIGN_OR_RETURN(
      VoteShard votes,
      ParallelReduce<VoteShard>(
          pool, table.num_rows(), VoteShard(wmd_size),
          [&](size_t, size_t begin, size_t end) -> Result<VoteShard> {
            VoteShard shard(wmd_size);
            WatermarkHasher hasher(key_, options_.hash);
            IdentBlock block;
            // Same block structure as the hierarchical Detect: gather the
            // block's voting slots and their position messages, batch-hash
            // once the arena is stable, then apply the votes.
            std::string arena;
            std::vector<size_t> msg_ends;
            std::vector<uint8_t> vote_ones;
            std::vector<std::string_view> messages;
            std::vector<size_t> positions;
            for (size_t b = begin; b < end; b += IdentBlock::kRows) {
              const size_t n = std::min(IdentBlock::kRows, end - b);
              block.Load(table, ident_column_, b, n, &hasher);
              arena.clear();
              msg_ends.clear();
              vote_ones.clear();
              for (size_t i = 0; i < n; ++i) {
                if (!block.selected(i)) continue;
                const size_t r = b + i;
                ++shard.tuples_selected;
                for (size_t c = 0; c < qi_columns_.size(); ++c) {
                  const size_t col = qi_columns_[c];
                  const SlotVote vote = ReadSlot(c, table.at(r, col));
                  if (vote == SlotVote::kSkip) {
                    ++shard.slots_skipped;
                    continue;
                  }
                  WatermarkHasher::AppendPositionMessage(
                      block.ident(i), table.schema().column(col).name,
                      &arena);
                  msg_ends.push_back(arena.size());
                  vote_ones.push_back(vote == SlotVote::kOne ? 1 : 0);
                }
              }
              messages.resize(msg_ends.size());
              positions.resize(msg_ends.size());
              size_t start = 0;
              for (size_t j = 0; j < msg_ends.size(); ++j) {
                messages[j] = std::string_view(arena).substr(
                    start, msg_ends[j] - start);
                start = msg_ends[j];
              }
              hasher.PositionBlock(messages.data(), messages.size(),
                                   wmd_size, positions.data());
              for (size_t j = 0; j < msg_ends.size(); ++j) {
                (vote_ones[j] != 0 ? shard.ones[positions[j]]
                                   : shard.zeros[positions[j]]) += 1.0;
                ++shard.slots_read;
              }
            }
            return shard;
          },
          watermark_internal::MergeVotes));
  FoldVotes(votes, wm_size, wmd_size, &report);
  return report;
}

}  // namespace privmark
