#include "watermark/single_level.h"

#include <cassert>

#include "common/parallel.h"
#include "watermark/detect_index.h"
#include "watermark/embed_internal.h"

namespace privmark {

namespace {

using watermark_internal::IdentText;
using watermark_internal::MergeResolve;
using watermark_internal::ResolvedShard;
using watermark_internal::SelectedTuple;

// The single-level slot carries no maximal node: permutation happens only
// among the resolved node's own siblings.
struct EmbedSlot {
  size_t col_idx;
  NodeId node;
};

}  // namespace

SingleLevelWatermarker::SingleLevelWatermarker(
    std::vector<size_t> qi_columns, size_t ident_column,
    std::vector<GeneralizationSet> ultimate, WatermarkKey key,
    WatermarkOptions options)
    : qi_columns_(std::move(qi_columns)),
      ident_column_(ident_column),
      ultimate_(std::move(ultimate)),
      key_(std::move(key)),
      options_(options) {
  assert(qi_columns_.size() == ultimate_.size());
}

void SingleLevelWatermarker::ParityCandidates(
    size_t c, NodeId node, bool bit, std::vector<NodeId>* candidates) const {
  const DomainHierarchy& tree = *ultimate_[c].tree();
  candidates->clear();
  const NodeId parent = tree.Parent(node);
  if (parent == kInvalidNode) {
    if (!bit && ultimate_[c].Contains(node)) candidates->push_back(node);
    return;
  }
  const std::vector<NodeId>& sibs = tree.Children(parent);
  for (size_t i = 0; i < sibs.size(); ++i) {
    if (((i & 1) != 0) == bit && ultimate_[c].Contains(sibs[i])) {
      candidates->push_back(sibs[i]);
    }
  }
}

Result<size_t> SingleLevelWatermarker::EstimateBandwidth(
    const Table& table) const {
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options_.pool, options_.num_threads, &owned_pool);
  return ParallelReduce<size_t>(
      pool, table.num_rows(), size_t{0},
      [&](size_t, size_t begin, size_t end) -> Result<size_t> {
        WatermarkHasher hasher(key_, options_.hash);
        std::string scratch;
        std::vector<NodeId> zeros;
        std::vector<NodeId> ones;
        size_t slots = 0;
        for (size_t r = begin; r < end; ++r) {
          const std::string_view ident =
              IdentText(table.at(r, ident_column_), &scratch);
          if (!hasher.TupleSelected(ident)) continue;
          for (size_t c = 0; c < qi_columns_.size(); ++c) {
            const Value& cell = table.at(r, qi_columns_[c]);
            auto node = cell.type() == ValueType::kString
                            ? ultimate_[c].NodeForLabel(cell.AsString())
                            : ultimate_[c].NodeForLabel(cell.ToString());
            if (!node.ok()) continue;
            // Encodable iff both parities are reachable among ultimate
            // siblings.
            ParityCandidates(c, *node, false, &zeros);
            if (zeros.empty()) continue;
            ParityCandidates(c, *node, true, &ones);
            if (!ones.empty()) ++slots;
          }
        }
        return slots;
      },
      [](size_t* acc, size_t&& slots) { *acc += slots; });
}

Result<EmbedReport> SingleLevelWatermarker::Embed(Table* table,
                                                  const BitVector& wm,
                                                  size_t copies) const {
  if (wm.empty()) {
    return Status::InvalidArgument("Embed: empty watermark");
  }
  EmbedReport report;
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options_.pool, options_.num_threads, &owned_pool);

  // Pass 1 — resolve labels once per (selected tuple, column); see the
  // hierarchical embedder for the pass/shard structure.
  const bool need_bandwidth = copies == 0;
  using Resolved = ResolvedShard<EmbedSlot>;
  PRIVMARK_ASSIGN_OR_RETURN(
      Resolved resolved,
      ParallelReduce<Resolved>(
          pool, table->num_rows(), Resolved{},
          [&](size_t, size_t begin, size_t end) -> Result<Resolved> {
            Resolved shard;
            WatermarkHasher hasher(key_, options_.hash);
            std::string scratch;
            std::vector<NodeId> zeros;
            std::vector<NodeId> ones;
            for (size_t r = begin; r < end; ++r) {
              const std::string_view ident =
                  IdentText(table->at(r, ident_column_), &scratch);
              if (!hasher.TupleSelected(ident)) continue;
              ++shard.tuples_selected;
              SelectedTuple tuple{r, std::string(ident), shard.slots.size(),
                                  shard.slots.size()};
              for (size_t c = 0; c < qi_columns_.size(); ++c) {
                const Value& cell = table->at(r, qi_columns_[c]);
                PRIVMARK_ASSIGN_OR_RETURN(
                    NodeId node,
                    cell.type() == ValueType::kString
                        ? ultimate_[c].NodeForLabel(cell.AsString())
                        : ultimate_[c].NodeForLabel(cell.ToString()));
                shard.slots.push_back(EmbedSlot{c, node});
                if (!need_bandwidth) continue;
                // Bandwidth counts slots where both parities are
                // encodable, exactly like EstimateBandwidth (the copies=0
                // auto-sizing contract).
                ParityCandidates(c, node, false, &zeros);
                if (zeros.empty()) continue;
                ParityCandidates(c, node, true, &ones);
                if (!ones.empty()) ++shard.bandwidth;
              }
              tuple.slot_end = shard.slots.size();
              shard.tuples.push_back(std::move(tuple));
            }
            return shard;
          },
          MergeResolve<EmbedSlot>));
  report.tuples_selected = resolved.tuples_selected;

  if (copies == 0) {
    copies = resolved.bandwidth / wm.size();
    if (copies == 0) copies = 1;
  }
  report.copies = copies;
  const BitVector wmd = wm.Duplicate(copies);
  report.wmd_size = wmd.size();

  // Pass 2 — embed over the recorded slots; tuples shard contiguously and
  // each writes only its own row.
  PRIVMARK_ASSIGN_OR_RETURN(
      watermark_internal::WriteTally tally,
      ParallelReduce<watermark_internal::WriteTally>(
          pool, resolved.tuples.size(), {},
          [&](size_t, size_t begin,
              size_t end) -> Result<watermark_internal::WriteTally> {
            watermark_internal::WriteTally shard;
            WatermarkHasher hasher(key_, options_.hash);
            std::vector<NodeId> candidates;
            for (size_t t = begin; t < end; ++t) {
              const SelectedTuple& tuple = resolved.tuples[t];
              for (size_t i = tuple.slot_begin; i < tuple.slot_end; ++i) {
                const EmbedSlot& slot = resolved.slots[i];
                const size_t col = qi_columns_[slot.col_idx];
                const std::string& column_name =
                    table->schema().column(col).name;
                const DomainHierarchy& tree = *ultimate_[slot.col_idx].tree();

                const bool bit = wmd.Get(
                    hasher.WmdPosition(tuple.ident, column_name, wmd.size()));
                ParityCandidates(slot.col_idx, slot.node, bit, &candidates);
                if (candidates.empty()) {
                  ++shard.slots_skipped_no_gap;
                  continue;
                }
                const size_t pick = hasher.PermutationIndex(
                    tuple.ident, column_name, tree.Depth(slot.node),
                    candidates.size());
                const NodeId target = candidates[pick];
                ++shard.slots_embedded;
                if (target != slot.node) {
                  table->Set(tuple.row, col,
                             Value::String(tree.node(target).label));
                  ++shard.cells_changed;
                }
              }
            }
            return shard;
          },
          watermark_internal::MergeWrites));
  report.slots_embedded = tally.slots_embedded;
  report.slots_skipped_no_gap = tally.slots_skipped_no_gap;
  report.cells_changed = tally.cells_changed;
  return report;
}

SlotVote SingleLevelWatermarker::ReadSlot(size_t c, const Value& cell) const {
  const DomainHierarchy& tree = *ultimate_[c].tree();
  auto node = cell.type() == ValueType::kString
                  ? tree.FindByLabel(cell.AsString())
                  : tree.FindByLabel(cell.ToString());
  if (!node.ok()) return SlotVote::kSkip;
  if (tree.SiblingCount(*node) < 2) return SlotVote::kSkip;
  return (tree.SiblingIndex(*node) & 1) != 0 ? SlotVote::kOne
                                             : SlotVote::kZero;
}

Result<DetectReport> SingleLevelWatermarker::Detect(const Table& table,
                                                    size_t wm_size,
                                                    size_t wmd_size) const {
  if (wm_size == 0 || wmd_size == 0 || wmd_size % wm_size != 0) {
    return Status::InvalidArgument(
        "Detect: wmd_size must be a positive multiple of wm_size");
  }
  DetectReport report;
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(options_.pool, options_.num_threads, &owned_pool);

  using watermark_internal::VoteShard;
  PRIVMARK_ASSIGN_OR_RETURN(
      VoteShard votes,
      ParallelReduce<VoteShard>(
          pool, table.num_rows(), VoteShard(wmd_size),
          [&](size_t, size_t begin, size_t end) -> Result<VoteShard> {
            VoteShard shard(wmd_size);
            WatermarkHasher hasher(key_, options_.hash);
            std::string scratch;
            for (size_t r = begin; r < end; ++r) {
              const std::string_view ident =
                  IdentText(table.at(r, ident_column_), &scratch);
              if (!hasher.TupleSelected(ident)) continue;
              ++shard.tuples_selected;

              for (size_t c = 0; c < qi_columns_.size(); ++c) {
                const size_t col = qi_columns_[c];
                const std::string& column_name =
                    table.schema().column(col).name;
                const SlotVote vote = ReadSlot(c, table.at(r, col));
                if (vote == SlotVote::kSkip) {
                  ++shard.slots_skipped;
                  continue;
                }
                const size_t pos =
                    hasher.WmdPosition(ident, column_name, wmd_size);
                (vote == SlotVote::kOne ? shard.ones[pos]
                                        : shard.zeros[pos]) += 1.0;
                ++shard.slots_read;
              }
            }
            return shard;
          },
          watermark_internal::MergeVotes));
  FoldVotes(votes, wm_size, wmd_size, &report);
  return report;
}

}  // namespace privmark
