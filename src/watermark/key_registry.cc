#include "watermark/key_registry.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace privmark {

namespace {

constexpr char kMagicPrefix[] = "privmark-keys v";

// Key files are a handful of short text sections; anything near this cap is
// not a key file. Rejecting early keeps ReadFile from slurping a huge or
// binary blob handed to it by mistake (or on purpose).
constexpr uint64_t kMaxKeyFileBytes = 1ull << 20;

// Overflow-checked decimal parse for eta. std::stoull throws on overflow,
// which would escape the Status-based error model as an exception from a
// file read.
Result<uint64_t> ParseEta(const std::string& value) {
  if (value.empty()) {
    return Status::InvalidArgument("key file: eta is empty");
  }
  uint64_t eta = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("key file: eta is not a number: " +
                                     value);
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (eta > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("key file: eta overflows uint64: " +
                                     value);
    }
    eta = eta * 10 + digit;
  }
  return eta;
}

std::string RandomBytes(size_t count, Random* rng) {
  std::string bytes;
  bytes.reserve(count);
  uint64_t word = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i % 8 == 0) word = rng->Next();
    bytes.push_back(static_cast<char>(word & 0xff));
    word >>= 8;
  }
  return bytes;
}

std::string HexOf(const std::string& bytes) {
  return HexEncode(std::vector<uint8_t>(bytes.begin(), bytes.end()));
}

Result<std::string> BytesOfHex(const std::string& hex, const char* field) {
  auto bytes = HexDecode(hex);
  if (!bytes.ok()) {
    return Status::InvalidArgument(std::string("key file: field '") + field +
                                   "' is not valid hex: " + hex);
  }
  return std::string(bytes->begin(), bytes->end());
}

// One entry being assembled by the parser; every field must appear before
// the entry is closed by the next [key] section or end of input.
struct PendingKey {
  NamedKey entry;
  bool has_name = false;
  bool has_k1 = false;
  bool has_k2 = false;
  bool has_eta = false;
};

Status FinalizePending(PendingKey* pending, KeyRegistry* registry) {
  if (!pending->has_name || !pending->has_k1 || !pending->has_k2 ||
      !pending->has_eta) {
    return Status::InvalidArgument(
        "key file: truncated [key] entry" +
        (pending->has_name ? " '" + pending->entry.name + "'" : std::string()) +
        " (name, k1, k2 and eta are all required)");
  }
  return registry->Add(std::move(pending->entry));
}

}  // namespace

NamedKey GenerateKey(const std::string& name, uint64_t eta, Random* rng) {
  NamedKey entry;
  entry.name = name;
  entry.key.k1 = RandomBytes(16, rng);
  entry.key.k2 = RandomBytes(16, rng);
  entry.key.eta = eta;
  return entry;
}

Status KeyRegistry::Add(NamedKey entry) {
  if (entry.name.empty()) {
    return Status::InvalidArgument("KeyRegistry: key name must not be empty");
  }
  if (entry.key.eta == 0) {
    return Status::InvalidArgument("KeyRegistry: key '" + entry.name +
                                   "' has eta == 0");
  }
  if (Find(entry.name) != nullptr) {
    return Status::AlreadyExists("KeyRegistry: duplicate key name '" +
                                 entry.name + "'");
  }
  keys_.push_back(std::move(entry));
  return Status::OK();
}

const NamedKey* KeyRegistry::Find(std::string_view name) const {
  for (const NamedKey& entry : keys_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::string KeyRegistry::Serialize() const {
  std::string out;
  out += std::string(kMagicPrefix) + "1\n";
  for (const NamedKey& entry : keys_) {
    out += "[key]\n";
    out += "name = " + entry.name + "\n";
    out += "k1 = " + HexOf(entry.key.k1) + "\n";
    out += "k2 = " + HexOf(entry.key.k2) + "\n";
    out += "eta = " + std::to_string(entry.key.eta) + "\n";
  }
  return out;
}

Result<KeyRegistry> KeyRegistry::Parse(const std::string& text) {
  if (text.find('\0') != std::string::npos) {
    return Status::InvalidArgument(
        "key file: embedded NUL byte (not a privmark key file)");
  }
  KeyRegistry registry;
  bool saw_magic = false;
  bool in_key = false;
  PendingKey pending;

  for (const std::string& raw_line : Split(text, '\n')) {
    const std::string line = Trim(raw_line);
    if (line.empty()) continue;
    if (!saw_magic) {
      // The magic line must come first; anything else is not a key file.
      if (!StartsWith(line, kMagicPrefix)) {
        return Status::InvalidArgument(
            "key file: bad magic (expected '" + std::string(kMagicPrefix) +
            "<version>', got '" + line + "')");
      }
      const std::string version = line.substr(sizeof(kMagicPrefix) - 1);
      if (version != "1") {
        return Status::InvalidArgument("key file: unsupported version " +
                                       version);
      }
      saw_magic = true;
      continue;
    }
    if (line == "[key]") {
      if (in_key) {
        PRIVMARK_RETURN_NOT_OK(FinalizePending(&pending, &registry));
      }
      pending = PendingKey{};
      in_key = true;
      continue;
    }
    const size_t eq = line.find(" = ");
    if (eq == std::string::npos) {
      return Status::InvalidArgument("key file: malformed line: " + line);
    }
    if (!in_key) {
      return Status::InvalidArgument("key file: '" + line.substr(0, eq) +
                                     "' outside a [key] section");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 3);
    if (key == "name") {
      pending.entry.name = value;
      pending.has_name = true;
    } else if (key == "k1") {
      PRIVMARK_ASSIGN_OR_RETURN(pending.entry.key.k1,
                                BytesOfHex(value, "k1"));
      pending.has_k1 = true;
    } else if (key == "k2") {
      PRIVMARK_ASSIGN_OR_RETURN(pending.entry.key.k2,
                                BytesOfHex(value, "k2"));
      pending.has_k2 = true;
    } else if (key == "eta") {
      PRIVMARK_ASSIGN_OR_RETURN(pending.entry.key.eta, ParseEta(value));
      pending.has_eta = true;
    } else {
      return Status::InvalidArgument("key file: unknown key " + key);
    }
  }
  if (!saw_magic) {
    return Status::InvalidArgument("key file: empty file (missing magic)");
  }
  if (in_key) {
    PRIVMARK_RETURN_NOT_OK(FinalizePending(&pending, &registry));
  }
  return registry;
}

Status KeyRegistry::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const std::string text = Serialize();
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

Result<KeyRegistry> KeyRegistry::ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  if (size < 0) {
    return Status::IOError("cannot determine size of '" + path + "'");
  }
  if (static_cast<uint64_t>(size) > kMaxKeyFileBytes) {
    return Status::IOError("'" + path + "' is " + std::to_string(size) +
                           " bytes; key files are capped at " +
                           std::to_string(kMaxKeyFileBytes) + " bytes");
  }
  file.seekg(0, std::ios::beg);
  std::string text(static_cast<size_t>(size), '\0');
  file.read(text.data(), size);
  if (!file) {
    return Status::IOError("short read from '" + path + "'");
  }
  return Parse(text);
}

Result<NamedKey> ReadKeyFile(const std::string& path) {
  PRIVMARK_ASSIGN_OR_RETURN(KeyRegistry registry, KeyRegistry::ReadFile(path));
  if (registry.size() != 1) {
    return Status::InvalidArgument(
        "'" + path + "' holds " + std::to_string(registry.size()) +
        " keys; expected exactly one (pass a registry where one is accepted)");
  }
  return registry.keys()[0];
}

Status WriteKeyFile(const NamedKey& key, const std::string& path) {
  KeyRegistry registry;
  PRIVMARK_RETURN_NOT_OK(registry.Add(key));
  return registry.WriteFile(path);
}

}  // namespace privmark
