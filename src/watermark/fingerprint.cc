#include "watermark/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/parallel.h"

namespace privmark {

namespace {

Result<FingerprintReport> BuildReport(std::vector<DetectReport> detections,
                                      const KeyRegistry& registry,
                                      const FingerprintConfig& config) {
  FingerprintReport report;
  report.verdicts.reserve(detections.size());
  for (size_t k = 0; k < detections.size(); ++k) {
    KeyVerdict verdict;
    verdict.key_name = registry.keys()[k].name;
    verdict.detection = std::move(detections[k]);
    const DetectReport& det = verdict.detection;

    double margin_sum = 0.0;
    for (double m : det.vote_margin) margin_sum += std::abs(m);
    verdict.margin_ratio =
        det.slots_read > 0
            ? margin_sum / static_cast<double>(det.slots_read)
            : 0.0;

    if (!config.expected_mark.empty()) {
      PRIVMARK_ASSIGN_OR_RETURN(
          double loss, config.expected_mark.LossFraction(det.recovered));
      verdict.mark_match = 1.0 - loss;
      PRIVMARK_ASSIGN_OR_RETURN(
          verdict.p_value, DetectionPValue(config.expected_mark, det));
      verdict.score = verdict.mark_match;
    } else {
      verdict.score = verdict.margin_ratio;
    }
    verdict.detected =
        det.slots_read > 0 && verdict.score >= config.match_threshold;
    if (verdict.detected) ++report.keys_detected;
    report.verdicts.push_back(std::move(verdict));
  }
  report.collusion = report.keys_detected >= 2;

  report.ranking.resize(report.verdicts.size());
  for (size_t i = 0; i < report.ranking.size(); ++i) report.ranking[i] = i;
  std::sort(report.ranking.begin(), report.ranking.end(),
            [&](size_t a, size_t b) {
              const KeyVerdict& va = report.verdicts[a];
              const KeyVerdict& vb = report.verdicts[b];
              if (va.score != vb.score) return va.score > vb.score;
              if (va.p_value != vb.p_value) return va.p_value < vb.p_value;
              if (va.margin_ratio != vb.margin_ratio) {
                return va.margin_ratio > vb.margin_ratio;
              }
              return va.key_name < vb.key_name;
            });
  return report;
}

}  // namespace

Result<FingerprintReport> ScanIndexForFingerprints(
    const DetectIndex& index, HashAlgorithm algo, const KeyRegistry& registry,
    const FingerprintConfig& config, ThreadPool* pool) {
  if (registry.empty()) {
    return Status::InvalidArgument(
        "ScanIndexForFingerprints: empty key registry");
  }
  if (!config.expected_mark.empty() &&
      config.expected_mark.size() != config.wm_size) {
    return Status::InvalidArgument(
        "ScanIndexForFingerprints: expected mark has " +
        std::to_string(config.expected_mark.size()) + " bits, wm_size is " +
        std::to_string(config.wm_size));
  }
  std::vector<WatermarkKey> keys;
  keys.reserve(registry.size());
  for (const NamedKey& entry : registry.keys()) keys.push_back(entry.key);
  PRIVMARK_ASSIGN_OR_RETURN(
      std::vector<DetectReport> detections,
      MultiKeyTally(index, keys, algo, config.wm_size, config.wmd_size,
                    pool));
  return BuildReport(std::move(detections), registry, config);
}

Result<FingerprintReport> ScanForFingerprints(
    const HierarchicalWatermarker& watermarker, const Table& suspect,
    const KeyRegistry& registry, const FingerprintConfig& config) {
  PRIVMARK_ASSIGN_OR_RETURN(DetectIndex index,
                            BuildDetectIndex(watermarker, suspect));
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(watermarker.options().pool, watermarker.options().num_threads,
                 &owned_pool);
  return ScanIndexForFingerprints(index, watermarker.options().hash, registry,
                                  config, pool);
}

Result<FingerprintReport> ScanForFingerprints(
    const SingleLevelWatermarker& watermarker, const Table& suspect,
    const KeyRegistry& registry, const FingerprintConfig& config) {
  PRIVMARK_ASSIGN_OR_RETURN(DetectIndex index,
                            BuildDetectIndex(watermarker, suspect));
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(watermarker.options().pool, watermarker.options().num_threads,
                 &owned_pool);
  return ScanIndexForFingerprints(index, watermarker.options().hash, registry,
                                  config, pool);
}

}  // namespace privmark
