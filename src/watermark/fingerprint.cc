#include "watermark/fingerprint.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/parallel.h"

namespace privmark {

namespace {

// One key's verdict from its tally. Depends only on that key's
// detection and the scan config, which is what makes per-shard
// streaming sound: a verdict emitted early is already final.
Result<KeyVerdict> MakeKeyVerdict(const std::string& key_name,
                                  DetectReport detection,
                                  const FingerprintConfig& config) {
  KeyVerdict verdict;
  verdict.key_name = key_name;
  verdict.detection = std::move(detection);
  const DetectReport& det = verdict.detection;

  double margin_sum = 0.0;
  for (double m : det.vote_margin) margin_sum += std::abs(m);
  verdict.margin_ratio =
      det.slots_read > 0
          ? margin_sum / static_cast<double>(det.slots_read)
          : 0.0;

  if (!config.expected_mark.empty()) {
    PRIVMARK_ASSIGN_OR_RETURN(
        double loss, config.expected_mark.LossFraction(det.recovered));
    verdict.mark_match = 1.0 - loss;
    PRIVMARK_ASSIGN_OR_RETURN(
        verdict.p_value, DetectionPValue(config.expected_mark, det));
    verdict.score = verdict.mark_match;
  } else {
    verdict.score = verdict.margin_ratio;
  }
  verdict.detected =
      det.slots_read > 0 && verdict.score >= config.match_threshold;
  return verdict;
}

// The whole-scan half of the report: ranking + collusion over the
// accumulated verdicts. keys_detected is counted as verdicts stream in.
void FinishFingerprintReport(FingerprintReport* report) {
  report->collusion = report->keys_detected >= 2;
  report->ranking.resize(report->verdicts.size());
  for (size_t i = 0; i < report->ranking.size(); ++i) report->ranking[i] = i;
  std::sort(report->ranking.begin(), report->ranking.end(),
            [&](size_t a, size_t b) {
              const KeyVerdict& va = report->verdicts[a];
              const KeyVerdict& vb = report->verdicts[b];
              if (va.score != vb.score) return va.score > vb.score;
              if (va.p_value != vb.p_value) return va.p_value < vb.p_value;
              if (va.margin_ratio != vb.margin_ratio) {
                return va.margin_ratio > vb.margin_ratio;
              }
              return va.key_name < vb.key_name;
            });
}

}  // namespace

Result<FingerprintReport> ScanIndexForFingerprints(
    const DetectIndex& index, HashAlgorithm algo, const KeyRegistry& registry,
    const FingerprintConfig& config, ThreadPool* pool) {
  return ScanIndexForFingerprintsStreamed(index, algo, registry, config, pool,
                                          nullptr);
}

Result<FingerprintReport> ScanIndexForFingerprintsStreamed(
    const DetectIndex& index, HashAlgorithm algo, const KeyRegistry& registry,
    const FingerprintConfig& config, ThreadPool* pool,
    const FingerprintShardSink& sink, size_t epoch) {
  if (registry.empty()) {
    return Status::InvalidArgument(
        "ScanIndexForFingerprints: empty key registry");
  }
  if (!config.expected_mark.empty() &&
      config.expected_mark.size() != config.wm_size) {
    return Status::InvalidArgument(
        "ScanIndexForFingerprints: expected mark has " +
        std::to_string(config.expected_mark.size()) + " bits, wm_size is " +
        std::to_string(config.wm_size));
  }
  std::vector<WatermarkKey> keys;
  keys.reserve(registry.size());
  for (const NamedKey& entry : registry.keys()) keys.push_back(entry.key);

  FingerprintReport report;
  report.verdicts.reserve(registry.size());
  // The tally sink cannot propagate a Status, so the first verdict
  // failure is parked here and later blocks are skipped.
  Status verdict_status = Status::OK();
  size_t next_shard = 0;
  const MultiKeyTallySink tally_sink =
      [&](size_t first_key, std::vector<DetectReport> block) {
        if (!verdict_status.ok()) return;
        FingerprintShard shard;
        shard.epoch = epoch;
        shard.shard = next_shard++;
        shard.first_key = first_key;
        shard.verdicts.reserve(block.size());
        for (size_t i = 0; i < block.size(); ++i) {
          Result<KeyVerdict> verdict =
              MakeKeyVerdict(registry.keys()[first_key + i].name,
                             std::move(block[i]), config);
          if (!verdict.ok()) {
            verdict_status = verdict.status();
            return;
          }
          if (verdict->detected) ++report.keys_detected;
          shard.verdicts.push_back(*std::move(verdict));
        }
        if (sink != nullptr) sink(shard);
        for (KeyVerdict& verdict : shard.verdicts) {
          report.verdicts.push_back(std::move(verdict));
        }
      };
  PRIVMARK_RETURN_NOT_OK(MultiKeyTally(index, keys, algo, config.wm_size,
                                       config.wmd_size, pool, tally_sink)
                             .status());
  PRIVMARK_RETURN_NOT_OK(verdict_status);
  FinishFingerprintReport(&report);
  return report;
}

namespace {

template <typename Watermarker>
Result<FingerprintReport> ScanStreamedImpl(const Watermarker& watermarker,
                                           const Table& suspect,
                                           const KeyRegistry& registry,
                                           const FingerprintConfig& config,
                                           const FingerprintShardSink& sink,
                                           size_t epoch) {
  PRIVMARK_ASSIGN_OR_RETURN(DetectIndex index,
                            BuildDetectIndex(watermarker, suspect));
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* const pool =
      PoolOrMake(watermarker.options().pool, watermarker.options().num_threads,
                 &owned_pool);
  return ScanIndexForFingerprintsStreamed(index, watermarker.options().hash,
                                          registry, config, pool, sink, epoch);
}

}  // namespace

Result<FingerprintReport> ScanForFingerprints(
    const HierarchicalWatermarker& watermarker, const Table& suspect,
    const KeyRegistry& registry, const FingerprintConfig& config) {
  return ScanStreamedImpl(watermarker, suspect, registry, config, nullptr, 0);
}

Result<FingerprintReport> ScanForFingerprints(
    const SingleLevelWatermarker& watermarker, const Table& suspect,
    const KeyRegistry& registry, const FingerprintConfig& config) {
  return ScanStreamedImpl(watermarker, suspect, registry, config, nullptr, 0);
}

Result<FingerprintReport> ScanForFingerprintsStreamed(
    const HierarchicalWatermarker& watermarker, const Table& suspect,
    const KeyRegistry& registry, const FingerprintConfig& config,
    const FingerprintShardSink& sink, size_t epoch) {
  return ScanStreamedImpl(watermarker, suspect, registry, config, sink, epoch);
}

Result<FingerprintReport> ScanForFingerprintsStreamed(
    const SingleLevelWatermarker& watermarker, const Table& suspect,
    const KeyRegistry& registry, const FingerprintConfig& config,
    const FingerprintShardSink& sink, size_t epoch) {
  return ScanStreamedImpl(watermarker, suspect, registry, config, sink, epoch);
}

}  // namespace privmark
