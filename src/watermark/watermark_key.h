// Watermarking key material and tuple selection (paper Sec. 5, Eq. 5).

#ifndef PRIVMARK_WATERMARK_WATERMARK_KEY_H_
#define PRIVMARK_WATERMARK_WATERMARK_KEY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/keyed_hash.h"

namespace privmark {

class ThreadPool;

/// \brief The secret watermarking key (paper Table 1: k1, k2, eta).
///
/// k1 drives tuple selection (Eq. 5), k2 drives bit positions and
/// permutation indices (Fig. 9); the paper stresses that distinct keys keep
/// these calculations uncorrelated. eta tunes the marked fraction: a tuple
/// is selected iff H(k1, ident) mod eta == 0, so roughly 1/eta of tuples are
/// marked — smaller eta means more bandwidth but more distortion (Fig. 12
/// vs. Fig. 13 trade-off).
struct WatermarkKey {
  std::string k1 = "k1-secret";
  std::string k2 = "k2-secret";
  uint64_t eta = 100;
};

/// \brief Detection-voting and hashing options.
struct WatermarkOptions {
  /// Hash H() used for Eq. (5) and Fig. 9 ("e.g., MD5 or SHA1").
  HashAlgorithm hash = HashAlgorithm::kSha1;
  /// Weighted per-level voting (Sec. 5.3: "the copy from a higher level is
  /// more reliable than that from a lower level"). When false, all levels
  /// vote equally.
  bool weighted_voting = false;
  /// With weighted voting, a level's weight is decay^(distance from the
  /// maximal node); decay in (0, 1] — 1.0 degenerates to plain voting.
  double level_weight_decay = 0.5;
  /// Worker threads for embed/detect/bandwidth row scans. 1 = serial (the
  /// default), 0 = hardware concurrency, N = exactly N workers. Embedded
  /// tables, reports, and vote margins are byte-identical for every value:
  /// rows shard contiguously, each shard owns its writes and its own
  /// WatermarkHasher, and per-shard tallies (integer counters and sums of
  /// whole-valued vote weights) merge in shard order (common/parallel.h).
  size_t num_threads = 1;
  /// Optional caller-owned worker pool. When set it wins over num_threads
  /// (its worker count governs) and the watermarker constructs no pool per
  /// Embed/Detect/EstimateBandwidth call — a long-lived caller (the
  /// protection session, a service front-end) pays thread spawn/join once
  /// instead of per run. Must outlive every call using these options. Not
  /// serialized state: a borrowed execution resource.
  ThreadPool* pool = nullptr;
};

/// \brief Eq. (5): true iff the tuple with this (encrypted) identifier is
/// chosen for embedding.
bool IsTupleSelected(const WatermarkKey& key, HashAlgorithm algo,
                     std::string_view ident);

/// \brief Position of this tuple/column slot's bit within wmd:
/// H(k2, "pos:" ident ":" column) mod wmd_size.
///
/// The paper uses H(ti.ident, k2) mod |wmd| for a single column; the
/// purpose-prefix and column name extend it to multi-column embedding while
/// keeping positions independent of the permutation hashes below.
size_t WmdPosition(const WatermarkKey& key, HashAlgorithm algo,
                   std::string_view ident, std::string_view column,
                   size_t wmd_size);

/// \brief Pseudo-random index for the permutation at one tree level:
/// H(k2, "perm:" ident ":" column ":" depth) mod set_size.
size_t PermutationIndex(const WatermarkKey& key, HashAlgorithm algo,
                        std::string_view ident, std::string_view column,
                        int depth, size_t set_size);

/// \brief Hot-loop façade over the three functions above.
///
/// Produces bit-identical values, but (a) assembles every hash message in
/// one reused buffer instead of fresh string concatenations per slot, and
/// (b) memoizes the Eq. (5) selection hash per tuple — a caller that walks
/// rows and asks TupleSelected once, then derives several slot hashes for
/// the same identifier, pays exactly one selection hash per tuple instead
/// of one per (tuple, pass).
class WatermarkHasher {
 public:
  /// Row-block granularity the batched callers below are designed around:
  /// a multiple of every multi-buffer lane width (4 and 8), small enough
  /// that per-block gather state lives on the stack.
  static constexpr size_t kBlockRows = 64;

  WatermarkHasher(const WatermarkKey& key, HashAlgorithm algo)
      : key_(&key), algo_(algo) {}

  /// \brief Eq. (5) for `ident`; consecutive calls with the same identifier
  /// reuse the cached hash.
  bool TupleSelected(std::string_view ident);

  /// \brief Batched Eq. (5): selected[i] = TupleSelected(idents[i]) for a
  /// whole block at once (`n` <= kBlockRows), value-identical to the scalar
  /// call. The selection hashes flow through the multi-buffer SHA-1 kernel,
  /// so a row scan pays a fraction of the per-tuple hash cost.
  void SelectBlock(const std::string_view* idents, size_t n,
                   uint8_t* selected);

  /// \brief Same as the free WmdPosition, reusing the message buffer.
  size_t WmdPosition(std::string_view ident, std::string_view column,
                     size_t wmd_size);

  /// \brief Batched WmdPosition over pre-assembled "pos:..." messages
  /// (see AppendPositionMessage); any `n`. out[i] is the wmd position for
  /// messages[i], value-identical to the scalar WmdPosition that would
  /// have assembled the same message.
  void PositionBlock(const std::string_view* messages, size_t n,
                     size_t wmd_size, size_t* out);

  /// \brief Appends the exact bytes WmdPosition hashes — "pos:" ident ":"
  /// column — to `arena` without clearing it. Callers batch slots by
  /// appending each slot's message and recording [start, end) offsets,
  /// then hand views into the arena to PositionBlock once the arena stops
  /// growing.
  static void AppendPositionMessage(std::string_view ident,
                                    std::string_view column,
                                    std::string* arena);

  /// \brief Same as the free PermutationIndex, reusing the message buffer.
  size_t PermutationIndex(std::string_view ident, std::string_view column,
                          int depth, size_t set_size);

 private:
  const WatermarkKey* key_;
  HashAlgorithm algo_;
  std::string buf_;         // reused message assembly buffer
  std::string last_ident_;  // memoized selection: identifier ...
  uint64_t last_hash_ = 0;  // ... and its H(k1, ident)
  bool has_last_ = false;
};

}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_WATERMARK_KEY_H_
