// Watermarking key material and tuple selection (paper Sec. 5, Eq. 5).

#ifndef PRIVMARK_WATERMARK_WATERMARK_KEY_H_
#define PRIVMARK_WATERMARK_WATERMARK_KEY_H_

#include <cstdint>
#include <string>

#include "crypto/keyed_hash.h"

namespace privmark {

/// \brief The secret watermarking key (paper Table 1: k1, k2, eta).
///
/// k1 drives tuple selection (Eq. 5), k2 drives bit positions and
/// permutation indices (Fig. 9); the paper stresses that distinct keys keep
/// these calculations uncorrelated. eta tunes the marked fraction: a tuple
/// is selected iff H(k1, ident) mod eta == 0, so roughly 1/eta of tuples are
/// marked — smaller eta means more bandwidth but more distortion (Fig. 12
/// vs. Fig. 13 trade-off).
struct WatermarkKey {
  std::string k1 = "k1-secret";
  std::string k2 = "k2-secret";
  uint64_t eta = 100;
};

/// \brief Detection-voting and hashing options.
struct WatermarkOptions {
  /// Hash H() used for Eq. (5) and Fig. 9 ("e.g., MD5 or SHA1").
  HashAlgorithm hash = HashAlgorithm::kSha1;
  /// Weighted per-level voting (Sec. 5.3: "the copy from a higher level is
  /// more reliable than that from a lower level"). When false, all levels
  /// vote equally.
  bool weighted_voting = false;
  /// With weighted voting, a level's weight is decay^(distance from the
  /// maximal node); decay in (0, 1] — 1.0 degenerates to plain voting.
  double level_weight_decay = 0.5;
};

/// \brief Eq. (5): true iff the tuple with this (encrypted) identifier is
/// chosen for embedding.
bool IsTupleSelected(const WatermarkKey& key, HashAlgorithm algo,
                     const std::string& ident);

/// \brief Position of this tuple/column slot's bit within wmd:
/// H(k2, "pos:" ident ":" column) mod wmd_size.
///
/// The paper uses H(ti.ident, k2) mod |wmd| for a single column; the
/// purpose-prefix and column name extend it to multi-column embedding while
/// keeping positions independent of the permutation hashes below.
size_t WmdPosition(const WatermarkKey& key, HashAlgorithm algo,
                   const std::string& ident, const std::string& column,
                   size_t wmd_size);

/// \brief Pseudo-random index for the permutation at one tree level:
/// H(k2, "perm:" ident ":" column ":" depth) mod set_size.
size_t PermutationIndex(const WatermarkKey& key, HashAlgorithm algo,
                        const std::string& ident, const std::string& column,
                        int depth, size_t set_size);

}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_WATERMARK_KEY_H_
