// Rightful-ownership resolution (paper Sec. 5.4).
//
// Robustness against mark removal is not enough to establish ownership:
// an attacker can insert his own mark into the owner's watermarked table
// (Attack 1) or "extract" a bogus mark to fabricate a fake original
// (Attack 2). The multimedia literature's answer — and the paper's — is to
// bind the mark to the original data through a one-way function F.
//
// The binned table's identifying column is *encrypted*, so only the owner
// can produce the cleartext identifiers. The paper therefore sets
//   wm = F(v),  v = a statistical value (e.g. the mean) of the cleartext
//               identifying column,
// and resolves a dispute by having the owner (1) present v, (2) decrypt the
// identifiers in court and recompute v' — valid if |v - v'| < tau (the
// table may have lost or gained tuples under attack, hence a statistic with
// tolerance rather than exact cleartext), and (3) extract the mark and
// compare with F(v).

#ifndef PRIVMARK_WATERMARK_OWNERSHIP_H_
#define PRIVMARK_WATERMARK_OWNERSHIP_H_

#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/status.h"
#include "crypto/aes128.h"
#include "relation/table.h"
#include "watermark/hierarchical.h"

namespace privmark {

/// \brief Minimum fraction of matching mark bits for an extraction to
/// count as a detection of that key's mark. The single definition shared
/// by the dispute protocol (OwnershipConfig), fingerprint scans
/// (FingerprintConfig), and the CLI verdict lines, so the consumers can
/// never drift apart.
inline constexpr double kDetectionMatchThreshold = 0.8;

/// \brief Parameters of the dispute protocol.
struct OwnershipConfig {
  HashAlgorithm hash = HashAlgorithm::kSha1;
  /// Mark length in bits (the paper's experiments use a 20-bit mark).
  size_t mark_bits = 20;
  /// Relative tolerance tau: the claim is consistent iff
  /// |v - v'| < tau * max(1, |v|). The paper's tau is a "predefined
  /// threshold" absorbing attack-induced drift of the statistic; a relative
  /// form keeps one default meaningful across identifier magnitudes.
  /// Random-sample deletion of 30% of ~9-digit identifiers drifts the mean
  /// by well under 1%, so 0.02 accepts heavily attacked tables while
  /// rejecting fabricated statistics.
  double tau = 0.02;
  /// Minimum fraction of matching mark bits for the extraction to count.
  double match_threshold = kDetectionMatchThreshold;
};

/// \brief v: the mean of the numeric interpretation of cleartext
/// identifiers (digits extracted from each identifier, e.g. SSNs).
/// InvalidArgument if an identifier contains no digits.
Result<double> IdentifierStatistic(const std::vector<std::string>& idents);

/// \brief Convenience: statistic of a table's cleartext identifying column.
Result<double> StatisticFromTable(const Table& table, size_t ident_column);

/// \brief Decrypts the identifying column and computes the statistic.
/// Identifiers that fail to decrypt (bogus tuples added by an attacker) are
/// skipped; fails if fewer than half decrypt.
Result<double> StatisticFromEncrypted(const Table& table, size_t ident_column,
                                      const Aes128& cipher);

/// \brief F(v): one-way derivation of the ownership mark from the
/// statistic. Canonicalizes v to 6 decimal places before hashing.
Result<BitVector> DeriveOwnershipMark(double v, size_t bits,
                                      HashAlgorithm algo);

/// \brief The court's verdict on a disputed table.
struct DisputeVerdict {
  double claimed_v = 0.0;
  double recomputed_v = 0.0;
  /// |claimed_v - recomputed_v| < tau after decrypting the identifiers.
  bool statistic_consistent = false;
  /// Fraction of F(claimed_v)'s bits matching the extracted mark.
  double mark_match = 0.0;
  /// Probability of the observed agreement arising by chance (binomial
  /// tail over the voted bits) — the number the claimant cites in court.
  double p_value = 1.0;
  bool ownership_established = false;
};

/// \brief Runs the full Sec. 5.4 protocol on a disputed table.
///
/// \param suspect the table in dispute (possibly attacked)
/// \param watermarker the claimant's watermarker (their secret key)
/// \param cipher the claimant's identifier encryption key
/// \param claimed_v the statistic the claimant presents
/// \param wmd_size the claimant's recorded wmd length (embedding metadata)
Result<DisputeVerdict> ResolveDispute(const Table& suspect,
                                      const HierarchicalWatermarker& watermarker,
                                      const Aes128& cipher, double claimed_v,
                                      size_t wmd_size,
                                      const OwnershipConfig& config);

}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_OWNERSHIP_H_
