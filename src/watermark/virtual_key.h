// Virtual primary keys (paper footnote 1, after Li-Swarup-Jajodia '03).
//
// Eq. (5) keys tuple selection on the encrypted identifying column,
// assumed to "keep intact". When the identifying column cannot be relied
// on (an attacker might drop or re-encrypt it), the paper points to
// constructing *virtual* key attributes from other columns.
//
// Our construction leans on the framework's own invariant: the
// hierarchical watermark never moves a cell outside its maximal
// generalization subtree (Sec. 5.1), so the *maximal-node cover label* of
// every quasi-identifying cell is untouched by embedding. The virtual
// identifier of a tuple is the concatenation of those cover labels —
// stable under watermarking by construction, and degraded only where an
// attacker alters cells (the classic fragility of virtual keys: colliding
// tuples share selection decisions, altered tuples fall out of sync).
//
// Diversity requirement: the key space is the cross product of the
// maximal-node sets of the columns used, so virtual keys only make sense
// over *several* quasi-identifying columns (the medical schema's five
// columns give thousands of combinations). With a single column the keys
// collapse to a handful of values, whole cover-groups of tuples move in
// lockstep, and most of the mark cannot be embedded — use the encrypted
// identifying column whenever it is available, as the paper recommends.

#ifndef PRIVMARK_WATERMARK_VIRTUAL_KEY_H_
#define PRIVMARK_WATERMARK_VIRTUAL_KEY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "hierarchy/generalization.h"
#include "relation/table.h"
#include "watermark/hierarchical.h"

namespace privmark {

/// \brief The virtual identifier of one row: "label0|label1|..." where
/// label_c is the maximal-generalization cover of the row's cell in
/// quasi-identifying column c. Cells whose label is unknown to the tree
/// contribute the literal cell text (attacked cells degrade gracefully
/// instead of failing the whole row).
Result<std::string> VirtualIdentifier(
    const Table& table, size_t row, const std::vector<size_t>& qi_columns,
    const std::vector<GeneralizationSet>& maximal);

/// \brief Clones `table` with the identifying column overwritten by each
/// row's virtual identifier.
///
/// The result can be fed to HierarchicalWatermarker directly: embedding
/// does not change any cover label, so recomputing the virtual identifiers
/// on the *watermarked* table reproduces the same keys and detection
/// stays aligned.
Result<Table> MaterializeVirtualIdentifiers(
    const Table& table, const std::vector<size_t>& qi_columns,
    const std::vector<GeneralizationSet>& maximal);

/// \brief Embeds using virtual keys without publishing them: selection and
/// positions are computed from materialized virtual identifiers, then only
/// the quasi-identifying cells are written back to `table` — the real
/// (encrypted) identifying column stays untouched in the output.
Result<EmbedReport> EmbedWithVirtualKeys(
    const HierarchicalWatermarker& watermarker, Table* table,
    const BitVector& mark, size_t copies = 0);

/// \brief Detection counterpart: recomputes virtual identifiers on the
/// (possibly attacked) table, then runs ordinary detection.
Result<DetectReport> DetectWithVirtualKeys(
    const HierarchicalWatermarker& watermarker, const Table& table,
    size_t wm_size, size_t wmd_size);

}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_VIRTUAL_KEY_H_
