#include "watermark/virtual_key.h"

namespace privmark {

Result<std::string> VirtualIdentifier(
    const Table& table, size_t row, const std::vector<size_t>& qi_columns,
    const std::vector<GeneralizationSet>& maximal) {
  if (qi_columns.size() != maximal.size()) {
    return Status::InvalidArgument(
        "VirtualIdentifier: column/generalization count mismatch");
  }
  if (row >= table.num_rows()) {
    return Status::OutOfRange("VirtualIdentifier: row " + std::to_string(row) +
                              " out of range");
  }
  std::string key;
  for (size_t c = 0; c < qi_columns.size(); ++c) {
    const DomainHierarchy& tree = *maximal[c].tree();
    const std::string cell = table.at(row, qi_columns[c]).ToString();
    if (c > 0) key += '|';
    auto node = tree.FindByLabel(cell);
    if (!node.ok()) {
      // Out-of-domain (attacked) cell: keep the literal text so only this
      // component of the key degrades.
      key += cell;
      continue;
    }
    // Walk up to the maximal cover; a node above every maximal member
    // (should not occur in well-formed tables) falls back to its own label.
    NodeId cover = kInvalidNode;
    for (NodeId cur = *node; cur != kInvalidNode; cur = tree.Parent(cur)) {
      if (maximal[c].Contains(cur)) {
        cover = cur;
        break;
      }
    }
    key += tree.node(cover == kInvalidNode ? *node : cover).label;
  }
  return key;
}

Result<Table> MaterializeVirtualIdentifiers(
    const Table& table, const std::vector<size_t>& qi_columns,
    const std::vector<GeneralizationSet>& maximal) {
  PRIVMARK_ASSIGN_OR_RETURN(size_t ident_column,
                            table.schema().IdentifyingColumn());
  Table out = table.Clone();
  for (size_t r = 0; r < out.num_rows(); ++r) {
    PRIVMARK_ASSIGN_OR_RETURN(
        std::string key, VirtualIdentifier(table, r, qi_columns, maximal));
    out.Set(r, ident_column, Value::String(std::move(key)));
  }
  return out;
}

Result<EmbedReport> EmbedWithVirtualKeys(
    const HierarchicalWatermarker& watermarker, Table* table,
    const BitVector& mark, size_t copies) {
  PRIVMARK_ASSIGN_OR_RETURN(
      Table materialized,
      MaterializeVirtualIdentifiers(*table, watermarker.qi_columns(),
                                    watermarker.maximal()));
  PRIVMARK_ASSIGN_OR_RETURN(EmbedReport report,
                            watermarker.Embed(&materialized, mark, copies));
  // Publish only the quasi-identifier changes; the identifying column of
  // the caller's table is left exactly as it was.
  for (size_t r = 0; r < table->num_rows(); ++r) {
    for (size_t col : watermarker.qi_columns()) {
      table->Set(r, col, materialized.at(r, col));
    }
  }
  return report;
}

Result<DetectReport> DetectWithVirtualKeys(
    const HierarchicalWatermarker& watermarker, const Table& table,
    size_t wm_size, size_t wmd_size) {
  PRIVMARK_ASSIGN_OR_RETURN(
      Table materialized,
      MaterializeVirtualIdentifiers(table, watermarker.qi_columns(),
                                    watermarker.maximal()));
  return watermarker.Detect(materialized, wm_size, wmd_size);
}

}  // namespace privmark
