#include "watermark/watermark_key.h"

#include <cassert>

namespace privmark {

namespace {

// Assembles "pos:" ident ":" column into `buf`.
void BuildPositionMessage(std::string_view ident, std::string_view column,
                          std::string* buf) {
  buf->clear();
  WatermarkHasher::AppendPositionMessage(ident, column, buf);
}

// Assembles "perm:" ident ":" column ":" depth into `buf`.
void BuildPermutationMessage(std::string_view ident, std::string_view column,
                             int depth, std::string* buf) {
  buf->clear();
  buf->append("perm:");
  buf->append(ident.data(), ident.size());
  buf->push_back(':');
  buf->append(column.data(), column.size());
  buf->push_back(':');
  buf->append(std::to_string(depth));
}

}  // namespace

bool IsTupleSelected(const WatermarkKey& key, HashAlgorithm algo,
                     std::string_view ident) {
  assert(key.eta > 0);
  return KeyedHash64(algo, key.k1, ident) % key.eta == 0;
}

size_t WmdPosition(const WatermarkKey& key, HashAlgorithm algo,
                   std::string_view ident, std::string_view column,
                   size_t wmd_size) {
  assert(wmd_size > 0);
  std::string msg;
  BuildPositionMessage(ident, column, &msg);
  return static_cast<size_t>(KeyedHash64(algo, key.k2, msg) % wmd_size);
}

size_t PermutationIndex(const WatermarkKey& key, HashAlgorithm algo,
                        std::string_view ident, std::string_view column,
                        int depth, size_t set_size) {
  assert(set_size > 0);
  std::string msg;
  BuildPermutationMessage(ident, column, depth, &msg);
  return static_cast<size_t>(KeyedHash64(algo, key.k2, msg) % set_size);
}

void WatermarkHasher::AppendPositionMessage(std::string_view ident,
                                            std::string_view column,
                                            std::string* arena) {
  arena->append("pos:");
  arena->append(ident.data(), ident.size());
  arena->push_back(':');
  arena->append(column.data(), column.size());
}

void WatermarkHasher::SelectBlock(const std::string_view* idents, size_t n,
                                  uint8_t* selected) {
  assert(key_->eta > 0);
  assert(n <= kBlockRows);
  uint64_t hashes[kBlockRows];
  KeyedHash64Batch(algo_, key_->k1, idents, n, hashes);
  for (size_t i = 0; i < n; ++i) {
    selected[i] = hashes[i] % key_->eta == 0 ? 1 : 0;
  }
}

void WatermarkHasher::PositionBlock(const std::string_view* messages,
                                    size_t n, size_t wmd_size, size_t* out) {
  assert(wmd_size > 0);
  uint64_t hashes[kBlockRows];
  for (size_t base = 0; base < n; base += kBlockRows) {
    const size_t m = n - base < kBlockRows ? n - base : kBlockRows;
    KeyedHash64Batch(algo_, key_->k2, messages + base, m, hashes);
    for (size_t i = 0; i < m; ++i) {
      out[base + i] = static_cast<size_t>(hashes[i] % wmd_size);
    }
  }
}

bool WatermarkHasher::TupleSelected(std::string_view ident) {
  assert(key_->eta > 0);
  if (!has_last_ || last_ident_ != ident) {
    last_hash_ = KeyedHash64(algo_, key_->k1, ident);
    last_ident_.assign(ident.data(), ident.size());
    has_last_ = true;
  }
  return last_hash_ % key_->eta == 0;
}

size_t WatermarkHasher::WmdPosition(std::string_view ident,
                                    std::string_view column,
                                    size_t wmd_size) {
  assert(wmd_size > 0);
  BuildPositionMessage(ident, column, &buf_);
  return static_cast<size_t>(KeyedHash64(algo_, key_->k2, buf_) % wmd_size);
}

size_t WatermarkHasher::PermutationIndex(std::string_view ident,
                                         std::string_view column, int depth,
                                         size_t set_size) {
  assert(set_size > 0);
  BuildPermutationMessage(ident, column, depth, &buf_);
  return static_cast<size_t>(KeyedHash64(algo_, key_->k2, buf_) % set_size);
}

}  // namespace privmark
