#include "watermark/watermark_key.h"

#include <cassert>

namespace privmark {

bool IsTupleSelected(const WatermarkKey& key, HashAlgorithm algo,
                     const std::string& ident) {
  assert(key.eta > 0);
  return KeyedHash64(algo, key.k1, ident) % key.eta == 0;
}

size_t WmdPosition(const WatermarkKey& key, HashAlgorithm algo,
                   const std::string& ident, const std::string& column,
                   size_t wmd_size) {
  assert(wmd_size > 0);
  const std::string msg = "pos:" + ident + ":" + column;
  return static_cast<size_t>(KeyedHash64(algo, key.k2, msg) % wmd_size);
}

size_t PermutationIndex(const WatermarkKey& key, HashAlgorithm algo,
                        const std::string& ident, const std::string& column,
                        int depth, size_t set_size) {
  assert(set_size > 0);
  const std::string msg =
      "perm:" + ident + ":" + column + ":" + std::to_string(depth);
  return static_cast<size_t>(KeyedHash64(algo, key.k2, msg) % set_size);
}

}  // namespace privmark
