// Key-independent detection substrate for multi-key fingerprint scans.
//
// Detection splits cleanly in two along Eq. (5). Everything the hierarchy
// contributes — label resolution, the walk to the maximal node, the
// per-level parity majority — depends only on the *table*, while tuple
// selection (H(k1, ident) mod eta) and wmd positions (H(k2, ...)) depend
// only on the *key*. A DetectIndex materializes the key-independent half
// once: every (row, column) slot collapses to a SlotVote (skip / vote 0 /
// vote 1) and every row keeps its identifier text. TallyDetect and
// MultiKeyTally then replay only the keyed-hash part, so scanning a
// registry of K candidate keys costs one resolve pass plus K cheap
// tallies instead of K full detections — the difference between minutes
// and hours at "thousands of candidate keys" scale.
//
// Determinism contract: tallies shard over contiguous row ranges exactly
// like the fused Detect(), merge per-shard VoteShards in shard order, and
// accumulate 1.0 per voting slot, so every report (margins, recovered
// bits, counters) is byte-identical to a serial one-key-at-a-time
// Detect() run for any thread count. MultiKeyTally flattens the
// (key x row-shard) grid into one fork-join batch; each task owns its
// (key, shard) cell, and cells merge per key in shard order.

#ifndef PRIVMARK_WATERMARK_DETECT_INDEX_H_
#define PRIVMARK_WATERMARK_DETECT_INDEX_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relation/table.h"
#include "watermark/embed_internal.h"
#include "watermark/hierarchical.h"
#include "watermark/single_level.h"

namespace privmark {

class ThreadPool;

/// \brief The key-independent half of detection over one table: per-slot
/// votes and per-row identifier texts, reusable across candidate keys.
struct DetectIndex {
  size_t num_rows = 0;
  /// Schema names of the quasi-identifying columns, in watermarker order
  /// (wmd positions hash the column name).
  std::vector<std::string> column_names;
  /// Row-major num_rows x column_names.size() slot outcomes.
  std::vector<SlotVote> slots;
  /// Identifier texts, concatenated; row r is
  /// ident_bytes[ident_offsets[r] .. ident_offsets[r + 1]).
  std::string ident_bytes;
  std::vector<size_t> ident_offsets;

  size_t num_columns() const { return column_names.size(); }

  std::string_view ident(size_t row) const {
    return std::string_view(ident_bytes)
        .substr(ident_offsets[row], ident_offsets[row + 1] -
                                        ident_offsets[row]);
  }

  SlotVote slot(size_t row, size_t c) const {
    return slots[row * column_names.size() + c];
  }
};

/// \brief Builds the index with the watermarker's ReadSlot() — the same
/// function the fused Detect() uses — sharded on the watermarker's
/// configured pool / thread count.
Result<DetectIndex> BuildDetectIndex(const HierarchicalWatermarker& wm,
                                     const Table& table);
Result<DetectIndex> BuildDetectIndex(const SingleLevelWatermarker& wm,
                                     const Table& table);

/// \brief Runs the keyed half of detection over a prebuilt index:
/// selection, position hashing, vote tally, and the wmd -> wm fold.
/// Byte-identical to the watermarker's Detect() on the same table.
Result<DetectReport> TallyDetect(const DetectIndex& index,
                                 const WatermarkKey& key, HashAlgorithm algo,
                                 size_t wm_size, size_t wmd_size,
                                 ThreadPool* pool);

/// \brief Streaming consumer of MultiKeyTally's per-block results:
/// invoked once per completed key block, in key order, on the calling
/// thread, with the block's first key index and its reports (a
/// contiguous key-order slice starting at `first_key`). Blocks are the
/// tally engine's existing memory-bounding unit, so streaming adds no
/// extra synchronization — each block is complete (merged across all
/// row shards) before the sink sees it.
using MultiKeyTallySink =
    std::function<void(size_t first_key, std::vector<DetectReport> block)>;

/// \brief TallyDetect for every key, sharded across the flattened
/// (key x row-shard) grid — with T workers and K keys, all T stay busy
/// even when K row-shards alone would not saturate them. Keys are
/// processed in bounded blocks so memory stays O(threads x wmd), not
/// O(K x wmd); reports come back in key order, each byte-identical to a
/// serial single-key TallyDetect.
///
/// With a `sink`, every block's reports are handed to it as soon as the
/// block completes and the returned vector is EMPTY — the sink owns the
/// reports, so a registry-scale caller never holds all K at once. The
/// concatenation of sink deliveries is element-identical to the no-sink
/// return value for the same thread count (same blocks, same order);
/// report *contents* are byte-identical across all thread counts either
/// way, only the block boundaries move.
Result<std::vector<DetectReport>> MultiKeyTally(
    const DetectIndex& index, const std::vector<WatermarkKey>& keys,
    HashAlgorithm algo, size_t wm_size, size_t wmd_size, ThreadPool* pool,
    const MultiKeyTallySink& sink = nullptr);

/// \brief Folds per-wmd-position vote tallies down to the wm-bit report
/// fields (copy t of bit j lives at j + t * wm_size). Shared by the fused
/// detectors and the tally engine.
void FoldVotes(const watermark_internal::VoteShard& votes, size_t wm_size,
               size_t wmd_size, DetectReport* report);

}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_DETECT_INDEX_H_
