#include "watermark/ownership.h"

#include <cmath>

#include "common/strings.h"
#include "crypto/keyed_hash.h"

namespace privmark {

Result<double> IdentifierStatistic(const std::vector<std::string>& idents) {
  if (idents.empty()) {
    return Status::InvalidArgument("IdentifierStatistic: no identifiers");
  }
  double sum = 0.0;
  for (const std::string& ident : idents) {
    std::string digits;
    for (char ch : ident) {
      if (ch >= '0' && ch <= '9') digits += ch;
    }
    if (digits.empty()) {
      return Status::InvalidArgument("identifier '" + ident +
                                     "' contains no digits");
    }
    // Use at most 15 digits so the double conversion stays exact.
    if (digits.size() > 15) digits.resize(15);
    sum += std::stod(digits);
  }
  return sum / static_cast<double>(idents.size());
}

Result<double> StatisticFromTable(const Table& table, size_t ident_column) {
  std::vector<std::string> idents;
  idents.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    idents.push_back(table.at(r, ident_column).ToString());
  }
  return IdentifierStatistic(idents);
}

Result<double> StatisticFromEncrypted(const Table& table, size_t ident_column,
                                      const Aes128& cipher) {
  std::vector<std::string> decrypted;
  decrypted.reserve(table.num_rows());
  size_t failures = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    auto plain = cipher.DecryptValue(table.at(r, ident_column).ToString());
    // A bogus (attacker-fabricated) ciphertext occasionally "decrypts" to
    // garbage with consistent chunk headers; identifiers carry digits, so
    // digit-free plaintexts are counted as failures too.
    const bool has_digit =
        plain.ok() && plain->find_first_of("0123456789") != std::string::npos;
    if (has_digit) {
      decrypted.push_back(std::move(plain).ValueOrDie());
    } else {
      ++failures;
    }
  }
  if (decrypted.size() < failures) {
    return Status::VerificationFailed(
        "fewer than half of the identifiers decrypt under this key (" +
        std::to_string(decrypted.size()) + " of " +
        std::to_string(table.num_rows()) + ")");
  }
  return IdentifierStatistic(decrypted);
}

Result<BitVector> DeriveOwnershipMark(double v, size_t bits,
                                      HashAlgorithm algo) {
  if (bits == 0) {
    return Status::InvalidArgument("DeriveOwnershipMark: zero-length mark");
  }
  const std::string canonical = FormatDouble(v, 6);
  const std::vector<uint8_t> digest =
      KeyedDigest(algo, "privmark-ownership", canonical);
  if (bits > digest.size() * 8) {
    return Status::InvalidArgument(
        "DeriveOwnershipMark: mark longer than one digest (" +
        std::to_string(bits) + " bits)");
  }
  return BitVector::FromDigest(digest, bits);
}

Result<DisputeVerdict> ResolveDispute(const Table& suspect,
                                      const HierarchicalWatermarker& watermarker,
                                      const Aes128& cipher, double claimed_v,
                                      size_t wmd_size,
                                      const OwnershipConfig& config) {
  DisputeVerdict verdict;
  verdict.claimed_v = claimed_v;

  // Step 1-2: decrypt the identifying column, recompute the statistic, and
  // compare against the claim with tolerance tau.
  PRIVMARK_ASSIGN_OR_RETURN(size_t ident_column,
                            suspect.schema().IdentifyingColumn());
  auto recomputed = StatisticFromEncrypted(suspect, ident_column, cipher);
  if (!recomputed.ok()) {
    // Wrong key (or a table that is not the claimant's): the claim fails,
    // but the protocol itself completed.
    verdict.statistic_consistent = false;
    verdict.ownership_established = false;
    return verdict;
  }
  verdict.recomputed_v = *recomputed;
  verdict.statistic_consistent =
      std::abs(claimed_v - verdict.recomputed_v) <
      config.tau * std::max(1.0, std::abs(claimed_v));

  // Step 3: extract the embedded mark and compare against F(claimed_v).
  PRIVMARK_ASSIGN_OR_RETURN(
      BitVector expected,
      DeriveOwnershipMark(claimed_v, config.mark_bits, config.hash));
  PRIVMARK_ASSIGN_OR_RETURN(
      DetectReport detection,
      watermarker.Detect(suspect, config.mark_bits, wmd_size));
  PRIVMARK_ASSIGN_OR_RETURN(double loss,
                            expected.LossFraction(detection.recovered));
  verdict.mark_match = 1.0 - loss;
  PRIVMARK_ASSIGN_OR_RETURN(verdict.p_value,
                            DetectionPValue(expected, detection));
  verdict.ownership_established = verdict.statistic_consistent &&
                                  verdict.mark_match >= config.match_threshold;
  return verdict;
}

}  // namespace privmark
