// The hierarchical watermarking scheme (paper Sec. 5.3, Fig. 9).
//
// Bandwidth channel (Sec. 5.1): in a binned table, permuting a value among
// the nodes between its maximal generalization node (usage-metric ceiling)
// and the ultimate generalization nodes (binning output) is exactly another
// allowable generalization, so the table tolerates it — that gap is the
// watermark's insertion bandwidth.
//
// Embedding (Fig. 9): for each selected tuple and quasi-identifying column,
// start from the maximal generalization node above the cell's ultimate node
// and walk down; at every level choose, among the sorted children, a
// pseudo-random child whose sibling-index parity equals the embedded bit;
// stop at an ultimate generalization node and write its label into the
// cell. Every level on the walk carries a copy of the same bit, which is
// what defeats the generalization attack that kills single-level schemes.
//
// Detection: walk from the cell's node up to its maximal generalization
// node, reading the sibling-index parity at each level; majority-vote the
// levels (optionally weighted toward higher levels), then accumulate votes
// per wmd position across tuples, and finally majority-vote the duplicated
// copies down to the recovered mark.

#ifndef PRIVMARK_WATERMARK_HIERARCHICAL_H_
#define PRIVMARK_WATERMARK_HIERARCHICAL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "common/status.h"
#include "hierarchy/generalization.h"
#include "relation/table.h"
#include "watermark/watermark_key.h"

namespace privmark {

/// \brief Statistics from an embedding run.
struct EmbedReport {
  /// Rows matching the Eq. (5) selector.
  size_t tuples_selected = 0;
  /// (tuple, column) slots that actually carried a bit (gap >= 1 level and
  /// at least one level with >= 2 siblings).
  size_t slots_embedded = 0;
  /// (tuple, column) slots skipped because the cell's ultimate node is also
  /// its maximal node (the Sec. 5.2 zero-gap special case).
  size_t slots_skipped_no_gap = 0;
  /// Number of mark copies in wmd (the paper's l).
  size_t copies = 1;
  /// |wmd| = copies * |wm|; detection must be told this value.
  size_t wmd_size = 0;
  /// Cells whose value changed (a slot can be embedded yet keep its value
  /// if the walk lands on the original node).
  size_t cells_changed = 0;
};

/// \brief Outcome of the key-independent half of detection for one
/// (tuple, column) slot: the slot abstains (unknown label, no gap, tied
/// levels) or votes a bit. Detection splits along Eq. (5): this value
/// depends only on the table and the hierarchy, never on the key, which
/// is what lets a multi-key fingerprint scan read every slot once and
/// re-run only the keyed-hash tally per candidate key (detect_index.h).
enum class SlotVote : uint8_t { kSkip = 0, kZero = 1, kOne = 2 };

/// \brief Statistics from a detection run.
struct DetectReport {
  /// The recovered mark (|wm| bits). Positions with no or tied votes
  /// default to 0.
  BitVector recovered;
  /// Fraction of mark bits lost vs. a reference mark; filled by
  /// MarkLossAgainst().
  size_t tuples_selected = 0;
  /// Slots contributing at least one vote.
  size_t slots_read = 0;
  /// Slots skipped (unknown label, no gap, label at/above maximal node).
  size_t slots_skipped = 0;
  /// Per wm-bit signed vote margin (ones minus zeros, weighted); diagnostic.
  std::vector<double> vote_margin;
  /// Per wm-bit flag: did any slot vote for this bit (any copy)? A bit
  /// without votes is unrecoverable — deletion-style attacks erase bits
  /// this way rather than by flipping them.
  std::vector<bool> bit_voted;
};

/// \brief The watermarking agent for binned tables.
///
/// Holds non-owning pointers to the domain hierarchies via the
/// generalization sets; those must outlive the watermarker.
class HierarchicalWatermarker {
 public:
  /// \param qi_columns quasi-identifying column indices, parallel to
  ///        `maximal` / `ultimate`
  /// \param ident_column index of the (encrypted) identifying column
  HierarchicalWatermarker(std::vector<size_t> qi_columns, size_t ident_column,
                          std::vector<GeneralizationSet> maximal,
                          std::vector<GeneralizationSet> ultimate,
                          WatermarkKey key, WatermarkOptions options);

  /// \brief Upper bound on embeddable slots for this table: selected tuples
  /// x columns whose cell has a positive maximal-to-ultimate gap.
  Result<size_t> EstimateBandwidth(const Table& table) const;

  /// \brief Embeds `wm` into `table` in place.
  ///
  /// \param copies how many times to duplicate the mark (the paper's
  ///        multiple embedding). 0 = auto: floor(bandwidth / |wm|), >= 1.
  Result<EmbedReport> Embed(Table* table, const BitVector& wm,
                            size_t copies = 0) const;

  /// \brief Recovers a mark of `wm_size` bits assuming `wmd_size` embedded
  /// positions (from the EmbedReport). Never fails on attacked cells; they
  /// simply contribute no votes.
  Result<DetectReport> Detect(const Table& table, size_t wm_size,
                              size_t wmd_size) const;

  /// \brief The key-independent slot read behind Detect(): resolve the
  /// cell of quasi-identifying column `c`, walk up to its maximal node
  /// reading sibling parities, and majority-vote the levels. Both the
  /// fused single-key Detect() and BuildDetectIndex() call this, so the
  /// two paths cannot drift. `level_scratch` is a reusable buffer for the
  /// per-level (bit, depth) pairs; hot loops pass one across calls.
  SlotVote ReadSlot(size_t c, const Value& cell,
                    std::vector<std::pair<bool, int>>* level_scratch) const;

  const WatermarkKey& key() const { return key_; }
  const WatermarkOptions& options() const { return options_; }
  const std::vector<size_t>& qi_columns() const { return qi_columns_; }
  size_t ident_column() const { return ident_column_; }
  const std::vector<GeneralizationSet>& maximal() const { return maximal_; }
  const std::vector<GeneralizationSet>& ultimate() const { return ultimate_; }

 private:
  // Walks up from `node` to the first member of maximal[c]; kInvalidNode if
  // none is found (attacked label above the ceiling).
  NodeId MaximalAbove(size_t c, NodeId node) const;

  std::vector<size_t> qi_columns_;
  size_t ident_column_;
  std::vector<GeneralizationSet> maximal_;
  std::vector<GeneralizationSet> ultimate_;
  WatermarkKey key_;
  WatermarkOptions options_;
};

/// \brief Fraction of bits of `reference` lost in `recovered` (paper's
/// "mark loss"). Requires equal sizes.
Result<double> MarkLossAgainst(const BitVector& reference,
                               const BitVector& recovered);

/// \brief Strict mark loss: a bit is lost if it was recovered wrong *or*
/// received no votes at all (DetectReport::bit_voted). This is the honest
/// accounting for erasure-style attacks such as subset deletion, where
/// bits disappear without being flipped; benches report this number.
Result<double> StrictMarkLoss(const BitVector& reference,
                              const DetectReport& report);

/// \brief Significance of a detection: the probability that a table
/// carrying *no* mark (or a different key's mark) would agree with the
/// expected mark on at least as many voted bits by chance — the binomial
/// tail P[Bin(voted, 1/2) >= matches].
///
/// Small values (e.g. < 1e-6) are what an ownership claimant presents:
/// "this agreement cannot be coincidence". Bits without votes are
/// excluded — they carry no evidence either way. Returns 1.0 when no bit
/// received votes.
Result<double> DetectionPValue(const BitVector& reference,
                               const DetectReport& report);

}  // namespace privmark

#endif  // PRIVMARK_WATERMARK_HIERARCHICAL_H_
