#include "service/admission.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

namespace privmark {

namespace {

size_t NormalizeCapacity(size_t capacity) {
  if (capacity != 0) return capacity;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

int64_t RetryAfterMsFromStatus(const Status& status) {
  return status.retry_after_ms();
}

AdmissionController::AdmissionController(size_t capacity)
    : capacity_(NormalizeCapacity(capacity)) {}

void AdmissionController::SkipAbandonedLocked() {
  while (abandoned_.erase(serving_) != 0) ++serving_;
}

size_t AdmissionController::Acquire(size_t ask) {
  size_t want = ask == 0 ? capacity_ : std::min(ask, capacity_);
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  ++waiters_;
  cv_.wait(lock, [&] { return serving_ == ticket && in_use_ < capacity_; });
  --waiters_;
  const size_t granted = std::min(want, capacity_ - in_use_);
  in_use_ += granted;
  ++serving_;
  SkipAbandonedLocked();
  // Wake the next ticket holder: it may fit alongside this grant.
  cv_.notify_all();
  return granted;
}

Result<size_t> AdmissionController::AcquireWithin(size_t ask,
                                                 int64_t timeout_ms,
                                                 size_t max_waiters) {
  size_t want = ask == 0 ? capacity_ : std::min(ask, capacity_);
  std::unique_lock<std::mutex> lock(mu_);
  if (max_waiters > 0 && waiters_ >= max_waiters) {
    // Crude service-time guess for the hint: assume each queued caller
    // holds its grant for ~50ms. Clients treat it as advice, not truth.
    const int64_t retry_after_ms = 50 * static_cast<int64_t>(waiters_ + 1);
    return Status::ResourceExhausted(
               "admission queue full: " + std::to_string(waiters_) +
               " request(s) already waiting for threads")
        .WithRetryAfterMs(retry_after_ms);
  }
  const uint64_t ticket = next_ticket_++;
  const auto admitted = [&] {
    return serving_ == ticket && in_use_ < capacity_;
  };
  ++waiters_;
  bool ok = true;
  if (timeout_ms < 0) {
    cv_.wait(lock, admitted);
  } else {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    ok = cv_.wait_until(lock, deadline, admitted);
  }
  --waiters_;
  if (!ok) {
    // Give up the ticket without stalling later ones: either step the
    // cursor past it ourselves (it is our turn but capacity never
    // freed) or leave a tombstone for SkipAbandonedLocked().
    if (serving_ == ticket) {
      ++serving_;
      SkipAbandonedLocked();
    } else {
      abandoned_.insert(ticket);
    }
    cv_.notify_all();
    return Status::DeadlineExceeded(
        "no thread capacity freed within " + std::to_string(timeout_ms) +
        "ms (capacity " + std::to_string(capacity_) + ", in use " +
        std::to_string(in_use_) + ")");
  }
  const size_t granted = std::min(want, capacity_ - in_use_);
  in_use_ += granted;
  ++serving_;
  SkipAbandonedLocked();
  cv_.notify_all();
  return granted;
}

void AdmissionController::Release(size_t granted) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_use_ -= granted;
  }
  cv_.notify_all();
}

size_t AdmissionController::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

size_t AdmissionController::waiters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_;
}

}  // namespace privmark
