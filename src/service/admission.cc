#include "service/admission.h"

#include <algorithm>
#include <thread>

namespace privmark {

namespace {

size_t NormalizeCapacity(size_t capacity) {
  if (capacity != 0) return capacity;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

AdmissionController::AdmissionController(size_t capacity)
    : capacity_(NormalizeCapacity(capacity)) {}

size_t AdmissionController::Acquire(size_t ask) {
  size_t want = ask == 0 ? capacity_ : std::min(ask, capacity_);
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  cv_.wait(lock, [&] { return serving_ == ticket && in_use_ < capacity_; });
  const size_t granted = std::min(want, capacity_ - in_use_);
  in_use_ += granted;
  ++serving_;
  // Wake the next ticket holder: it may fit alongside this grant.
  cv_.notify_all();
  return granted;
}

void AdmissionController::Release(size_t granted) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_use_ -= granted;
  }
  cv_.notify_all();
}

size_t AdmissionController::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

}  // namespace privmark
