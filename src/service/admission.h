// Thread-admission control for the service front-end.
//
// The service owns one shared ThreadPool of `capacity` workers; every
// request asks for some number of threads (its session's num_threads
// knob, or a per-request override). The controller keeps the aggregate
// grant across concurrently-executing requests at or below the capacity:
// a request whose ask does not fit waits its turn instead of
// oversubscribing the pool. Because every pipeline stage produces
// byte-identical output for any worker count (common/parallel.h), a
// grant below the ask only moves throughput, never bytes — which is what
// makes partial grants safe.
//
// Grant policy, in order:
//   - an ask of 0 means "all of it" (the hardware-concurrency
//     convention of the num_threads knobs) and an ask above the capacity
//     is clamped to it: no single request can demand more than the pool
//     holds, it can only wait longer;
//   - admission is FIFO (ticketed): a request never overtakes an earlier
//     one, so a wide ask cannot be starved by a stream of narrow ones;
//   - admission is work-conserving: the request at the head of the queue
//     is admitted as soon as *any* capacity is free, with a grant of
//     min(ask, free). It never idles free workers waiting for its full
//     ask — it takes a partial grant and runs.
//
// Callers pair every Acquire() with exactly one Release() of the granted
// amount (see ThreadGrant for the RAII form).

#ifndef PRIVMARK_SERVICE_ADMISSION_H_
#define PRIVMARK_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_set>

#include "common/status.h"

namespace privmark {

/// \brief The backpressure hint a shedding path (queue-depth or
/// admission-waiter overload) attached to a ResourceExhausted status.
/// -1 when the status carries no hint. Now a thin alias for the typed
/// Status::retry_after_ms() field — in-process and wire callers read
/// the same typed hint; nobody parses message text.
int64_t RetryAfterMsFromStatus(const Status& status);

/// \brief FIFO, work-conserving thread-budget controller.
class AdmissionController {
 public:
  /// \param capacity aggregate thread budget; 0 means hardware
  ///        concurrency (at least 1).
  explicit AdmissionController(size_t capacity);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  size_t capacity() const { return capacity_; }

  /// \brief Blocks until this caller's turn comes and some capacity is
  /// free, then grants min(normalized ask, free capacity) >= 1 threads
  /// and returns the grant. Normalization: ask 0 -> capacity, ask >
  /// capacity -> capacity.
  size_t Acquire(size_t ask);

  /// \brief Bounded-wait form of Acquire() for overload control.
  ///
  /// Behaves like Acquire() (FIFO ticket, work-conserving grant) except:
  ///   - if `max_waiters` > 0 and that many callers are already waiting
  ///     for admission, fails immediately with ResourceExhausted (the
  ///     status carries a typed retry_after_ms() hint) instead of
  ///     joining the queue;
  ///   - if `timeout_ms` >= 0 and the caller's turn has not come (or no
  ///     capacity has freed) within that many milliseconds, fails with
  ///     DeadlineExceeded. The abandoned ticket is skipped over, so a
  ///     timed-out waiter never stalls the FIFO behind it.
  ///
  /// `timeout_ms` < 0 waits forever; `max_waiters` == 0 never sheds.
  Result<size_t> AcquireWithin(size_t ask, int64_t timeout_ms,
                               size_t max_waiters = 0);

  /// \brief Returns a previous Acquire()'s grant to the budget.
  void Release(size_t granted);

  /// \brief Threads currently granted (diagnostic; racy by nature).
  size_t in_use() const;

  /// \brief Callers currently waiting for admission (diagnostic).
  size_t waiters() const;

 private:
  // Advances serving_ past tickets whose waiters gave up. Requires mu_.
  void SkipAbandonedLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t in_use_ = 0;        // guarded by mu_
  size_t waiters_ = 0;       // guarded by mu_: callers blocked in Acquire*
  uint64_t next_ticket_ = 0; // guarded by mu_: next ticket to hand out
  uint64_t serving_ = 0;     // guarded by mu_: ticket allowed to admit
  std::unordered_set<uint64_t> abandoned_;  // guarded by mu_: timed out
};

/// \brief RAII grant: acquires on construction, releases on destruction.
class ThreadGrant {
 public:
  ThreadGrant(AdmissionController* controller, size_t ask)
      : controller_(controller), granted_(controller->Acquire(ask)) {}
  ~ThreadGrant() { controller_->Release(granted_); }

  ThreadGrant(const ThreadGrant&) = delete;
  ThreadGrant& operator=(const ThreadGrant&) = delete;

  size_t granted() const { return granted_; }

 private:
  AdmissionController* controller_;
  size_t granted_;
};

}  // namespace privmark

#endif  // PRIVMARK_SERVICE_ADMISSION_H_
