// Wire protocol for the privmark network daemon: a versioned,
// length-prefixed binary framing of the service request grammar
// (open / ingest / flush / detect / fingerprint / close) so remote
// hospital streams can reach a PrivmarkService over a socket.
//
// Connection handshake: the client sends the 8-byte magic "PRVMNET1"
// (protocol version 1 is the trailing byte); the server validates it
// and echoes it back. A magic mismatch in either direction is fatal to
// the connection — versions never mix mid-stream.
//
// Frames (both directions) reuse the journal's record shape:
//
//   [u32 payload length][u32 crc32][u8 type][payload bytes]
//
// little-endian, CRC-32 (IEEE) over type + payload, payloads capped at
// kMaxWireFrameBytes so a corrupt length can never drive a huge
// allocation. Unlike the torn-tail-tolerant journal reader, a socket
// peer is live: any malformed frame (bad CRC, unknown type, oversized
// length, truncated payload) is a protocol error and the connection is
// closed — there is no resynchronization point inside a byte stream.
//
// Table batches travel in a columnar encoding over the same lossless
// cell shapes as SessionJournal::EncodeBatch: int64 and double columns
// as flat 64-bit little-endian patterns, string columns
// dictionary-encoded with the dictionary shipped incrementally (each
// string's bytes cross the wire once per connection direction, then
// flat u32 id columns), mixed/null columns falling back to per-cell
// type tags. Dictionary state lives in the codec instances
// (WireTableEncoder / WireTableDecoder), one pair per connection
// direction; because a connection's frames are strictly ordered, the
// decoder's dictionary replays the encoder's exactly. The codec is
// lossless (doubles bit for bit, Null distinct from "", NUL-safe
// strings), which is what lets a remote client byte-compare its
// stream's output against serial in-process replay.
//
// Responses carry the service Status (code + message), the session's
// sticky journal status, the admission grant, and — on
// ResourceExhausted — a *typed* retry_after_ms backpressure hint
// (clients must not parse message text).

#ifndef PRIVMARK_SERVICE_WIRE_H_
#define PRIVMARK_SERVICE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binenc.h"
#include "common/status.h"
#include "core/session.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "watermark/fingerprint.h"

namespace privmark {

/// \brief Connection preamble: protocol name + version in 8 bytes.
inline constexpr char kWireMagic[8] = {'P', 'R', 'V', 'M',
                                       'N', 'E', 'T', '1'};
inline constexpr size_t kWireMagicSize = sizeof(kWireMagic);

/// \brief Frame payloads larger than this are refused on both encode
/// and decode (matches SessionJournal::kMaxRecordBytes).
inline constexpr size_t kMaxWireFrameBytes = size_t{256} * 1024 * 1024;

/// \brief [u32 payload length][u32 crc32] — the fixed prefix read
/// before the type byte and payload.
inline constexpr size_t kWireFrameHeaderBytes = 8;

/// \brief Frame types. 1–6 are requests (client → server) mirroring
/// the serve grammar; kResponse carries every server reply.
enum class WireFrameType : uint8_t {
  kOpen = 1,
  kIngest = 2,
  kFlush = 3,
  kDetect = 4,
  kFingerprint = 5,
  kClose = 6,
  kResponse = 7,
};

const char* WireFrameTypeToString(WireFrameType type);

/// \brief One decoded frame.
struct WireFrame {
  WireFrameType type = WireFrameType::kResponse;
  std::string payload;
};

/// \brief Encodes a complete frame (header + type + payload).
/// InvalidArgument when the payload exceeds kMaxWireFrameBytes.
Result<std::string> EncodeWireFrame(WireFrameType type,
                                    const std::string& payload);

/// \brief Validates a frame header (first kWireFrameHeaderBytes bytes
/// off the socket) and returns the body length still to read
/// (1 type byte + payload). InvalidArgument on an oversized length.
Result<size_t> WireFrameBodyLength(const char* header);

/// \brief Validates CRC and type of a frame body read after
/// WireFrameBodyLength and splits it into a WireFrame.
/// InvalidArgument on CRC mismatch or an unknown type.
Result<WireFrame> DecodeWireFrameBody(const char* header, const char* body,
                                      size_t body_length);

// ---- columnar table codec ------------------------------------------------

/// \brief Per-column encodings inside a table block.
enum class WireColumnEncoding : uint8_t {
  /// rows × u64 little-endian two's-complement int64.
  kInt64Dense = 0,
  /// rows × u64 little-endian IEEE double bit patterns.
  kDoubleDense = 1,
  /// [u32 new_entries][new_entries × (u32 len + bytes)][rows × u32 id]:
  /// dictionary ids into the codec's persistent per-column dictionary,
  /// new entries appended in first-occurrence order.
  kStringDict = 2,
  /// rows × (u8 ValueType tag + payload) — the journal cell codec;
  /// fallback for mixed-type or Null-bearing columns.
  kCells = 3,
};

/// \brief Encode side of the columnar codec. One instance per
/// connection direction; dictionary state accumulates across calls.
class WireTableEncoder {
 public:
  /// Appends the block for `batch` to `out`:
  /// [u32 rows][u32 cols], then per column [u8 encoding][column data].
  void Encode(const Table& batch, std::string* out);

 private:
  // column index -> string -> dictionary id (ids are append-ordered).
  std::unordered_map<size_t, std::unordered_map<std::string, uint32_t>>
      dicts_;
};

/// \brief Decode side; must see every block its encoder produced, in
/// order, or the dictionaries desynchronize (the daemon guarantees
/// this by making any decode error fatal to the connection).
class WireTableDecoder {
 public:
  explicit WireTableDecoder(Schema schema) : schema_(std::move(schema)) {}

  /// Consumes one table block from `reader`. InvalidArgument on
  /// truncation, unknown encodings, out-of-range dictionary ids, or a
  /// column count differing from the schema's.
  Result<Table> Decode(BinReader* reader);

  const Schema& schema() const { return schema_; }

 private:
  Schema schema_;
  std::unordered_map<size_t, std::vector<std::string>> dicts_;
};

// ---- request payloads ----------------------------------------------------

/// \brief kOpen payload: everything the server needs to build the
/// stream's FrameworkConfig + SessionConfig. Secrets (passphrase, k1,
/// k2) cross the wire by design — the daemon trusts its transport the
/// way the in-process service trusts its caller (TLS is the recorded
/// follow-on; see ROADMAP).
struct WireOpenRequest {
  std::string session;
  uint64_t k = 20;
  bool enforce_joint = false;
  bool auto_epsilon = false;
  /// The session's own num_threads knob (its default admission ask).
  uint64_t num_threads = 1;
  std::string passphrase;
  std::string k1;
  std::string k2;
  uint64_t eta = 50;
  std::string key_id;
  /// 0 = UnbinnablePolicy::kError, 1 = kSuppress.
  uint8_t on_unbinnable = 0;
  /// 0 = RebinPolicy::kFreezeBins, 1 = kRebinOnDrift.
  uint8_t policy = 0;
  double drift_threshold = 0.5;
};

/// \brief One decoded request of any kind. `table` carries the ingest
/// batch or the detect/fingerprint suspect copy; `registry_text` the
/// fingerprint request's serialized KeyRegistry.
struct WireRequest {
  WireFrameType type = WireFrameType::kOpen;
  std::string session;
  /// Admission ask; UINT64_MAX encodes kSessionThreads.
  uint64_t ask = UINT64_MAX;
  /// Per-request deadline; -1 = the daemon's default_deadline_ms.
  int64_t deadline_ms = -1;
  WireOpenRequest open;
  Table table;
  std::string registry_text;
};

/// \brief Encodes a request's payload (not the frame). Table-bearing
/// requests advance `tables`' dictionary state.
std::string EncodeWireRequest(const WireRequest& request,
                              WireTableEncoder* tables);

/// \brief Decodes a request frame's payload. `tables` must be the
/// connection's decoder (its schema types the table block).
Result<WireRequest> DecodeWireRequest(WireFrameType type,
                                      const std::string& payload,
                                      WireTableDecoder* tables);

// ---- response payloads ---------------------------------------------------

/// \brief kOpen response body: what (if anything) was recovered from
/// the session's journal.
struct WireOpenResult {
  bool recovered = false;
  uint64_t batches_applied = 0;
  uint64_t epochs_sealed = 0;
  bool tail_truncated = false;
  /// Rows the recovered session had already emitted before the crash.
  Table emitted;
};

/// \brief kIngest response body (IngestResult minus the in-process-only
/// embed internals).
struct WireIngestResult {
  uint64_t epoch = 0;
  bool flushed = false;
  uint64_t rows_emitted = 0;
  uint64_t rows_suppressed = 0;
  uint64_t rows_buffered = 0;
  Table emitted;
};

/// \brief kFlush response body.
struct WireFlushResult {
  uint64_t epoch = 0;
  double identifier_statistic = 0.0;
  Table emitted;
};

/// \brief One sealed epoch in a kClose response. The manifest crosses
/// the wire pre-serialized (SerializeManifest is deterministic, so the
/// client's manifest file is byte-identical to a local run's).
struct WireEpochSummary {
  uint64_t epoch = 0;
  uint64_t rows_emitted = 0;
  uint64_t rows_suppressed = 0;
  uint64_t wmd_size = 0;
  double identifier_statistic = 0.0;
  std::string manifest_text;
};

/// \brief kClose response body.
struct WireCloseResult {
  uint64_t rows_ingested = 0;
  uint64_t rows_emitted = 0;
  uint64_t rows_suppressed = 0;
  std::vector<WireEpochSummary> epochs;
};

/// \brief Every server reply. `kind` echoes the request's frame type
/// and selects which body member is meaningful; a non-OK `status`
/// carries no body.
struct WireResponse {
  WireFrameType kind = WireFrameType::kOpen;
  /// The service-level outcome, reconstructed code + message.
  Status status;
  /// Typed backpressure hint: milliseconds to wait before retrying a
  /// ResourceExhausted request. -1 = no hint. Never parse message text.
  int64_t retry_after_ms = -1;
  /// The session's sticky journal status as of this request.
  Status journal_status;
  uint64_t threads_granted = 1;

  WireOpenResult open;              // kind == kOpen
  WireIngestResult ingest;          // kind == kIngest
  WireFlushResult flush;            // kind == kFlush
  std::vector<DetectReport> reports;            // kind == kDetect
  std::vector<FingerprintReport> fingerprints;  // kind == kFingerprint
  WireCloseResult close;            // kind == kClose
};

/// \brief Encodes a response's payload (not the frame). Emitted tables
/// advance `tables`' dictionary state.
std::string EncodeWireResponse(const WireResponse& response,
                               WireTableEncoder* tables);

/// \brief Decodes a response frame's payload (client side).
Result<WireResponse> DecodeWireResponse(const std::string& payload,
                                        WireTableDecoder* tables);

// ---- socket I/O ----------------------------------------------------------

/// \brief recv(2) exactly `size` bytes; false on EOF or error. The
/// "wire.read" failpoint injects a failure here (both the daemon's and
/// the client's read path run through this).
bool ReadFullySocket(int fd, char* data, size_t size);

/// \brief send(2) all of `data` (MSG_NOSIGNAL: a hung-up peer yields an
/// error, not SIGPIPE); false on error. The "wire.write" failpoint
/// injects a failure here.
bool WriteFullySocket(int fd, const char* data, size_t size);

}  // namespace privmark

#endif  // PRIVMARK_SERVICE_WIRE_H_
