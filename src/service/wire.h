// Wire protocol for the privmark network daemon: a versioned,
// length-prefixed binary framing of the service request grammar
// (open / ingest / flush / detect / fingerprint / close) so remote
// hospital streams can reach a PrivmarkService over a socket.
//
// Connection handshake: the client sends an 8-byte magic "PRVMNET<v>"
// (the trailing byte is the highest protocol version it speaks, '1' or
// '2'); the server echoes the magic of min(client version, its own
// max). Both sides then speak the echoed version for the connection's
// lifetime — versions never mix mid-stream. An unknown magic prefix in
// either direction is fatal to the connection.
//
// Version 1 frames (both directions) reuse the journal's record shape:
//
//   [u32 payload length][u32 crc32][u8 type][payload bytes]
//
// and the connection is LOCK-STEP: one request, one response, in order.
//
// Version 2 widens the body into a multiplexing envelope:
//
//   [u32 payload length][u32 crc32]
//   [u8 type][u64 request_id][u8 flags][payload bytes]
//
// request_id is client-assigned and echoed on every frame of the
// response; a client may pipeline any number of requests and the server
// may answer them out of order (same-session requests still execute in
// submission order — the strand guarantee — but their responses
// interleave freely with other sessions'). `flags` bit 0 (kWireFlagFinal)
// marks the last frame of a logical message; bit 1 (kWireFlagStreamed)
// marks frames of a streamed response. A streamed response is an ordered
// sequence of kPartial frames (final=0, streamed=1) closed by one
// kResponse frame (final=1, streamed=1) carrying the response minus what
// already crossed in the partials. Unknown flag bits are a protocol
// error. Requests are always single-frame (final=1).
//
// Both versions: little-endian, CRC-32 (IEEE) over the whole body
// (type byte through payload), payloads capped at kMaxWireFrameBytes so
// a corrupt length can never drive a huge allocation. Unlike the
// torn-tail-tolerant journal reader, a socket peer is live: any
// malformed frame (bad CRC, unknown type or flag, oversized length,
// truncated payload) is a protocol error and the connection is closed —
// there is no resynchronization point inside a byte stream. Payload
// encodings are IDENTICAL across versions; v2 changes only the envelope
// and the frame flow.
//
// Table batches travel in a columnar encoding over the same lossless
// cell shapes as SessionJournal::EncodeBatch: int64 and double columns
// as flat 64-bit little-endian patterns, string columns
// dictionary-encoded with the dictionary shipped incrementally (each
// string's bytes cross the wire once per connection direction, then
// flat u32 id columns), mixed/null columns falling back to per-cell
// type tags. Dictionary state lives in the codec instances
// (WireTableEncoder / WireTableDecoder), one pair per connection
// direction; because a connection's frames are strictly ordered, the
// decoder's dictionary replays the encoder's exactly. The codec is
// lossless (doubles bit for bit, Null distinct from "", NUL-safe
// strings), which is what lets a remote client byte-compare its
// stream's output against serial in-process replay.
//
// Responses carry the service Status (code + message + the typed
// retry_after_ms backpressure hint — clients must not parse message
// text), the session's sticky journal status, and the admission grant.

#ifndef PRIVMARK_SERVICE_WIRE_H_
#define PRIVMARK_SERVICE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binenc.h"
#include "common/status.h"
#include "core/session.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "watermark/fingerprint.h"

namespace privmark {

/// \brief Connection preamble: protocol name + version in 8 bytes.
/// kWireMagic is the version-1 magic (kept under its historical name —
/// existing lock-step code paths are all v1).
inline constexpr char kWireMagic[8] = {'P', 'R', 'V', 'M',
                                       'N', 'E', 'T', '1'};
inline constexpr char kWireMagicV2[8] = {'P', 'R', 'V', 'M',
                                         'N', 'E', 'T', '2'};
inline constexpr size_t kWireMagicSize = sizeof(kWireMagic);

/// \brief Protocol versions. V1 = lock-step request/response; V2 =
/// multiplexed request ids + streamed responses.
inline constexpr uint8_t kWireProtocolV1 = 1;
inline constexpr uint8_t kWireProtocolV2 = 2;
inline constexpr uint8_t kWireProtocolMax = kWireProtocolV2;

/// \brief Version carried by an 8-byte magic; 0 when the bytes are not
/// a known privmark magic.
uint8_t WireMagicVersion(const char* magic);

/// \brief Writes the 8-byte magic for `version` into `out`; false for
/// an unknown version (out untouched).
bool WireMagicFor(uint8_t version, char* out);

/// \brief Frame payloads larger than this are refused on both encode
/// and decode (matches SessionJournal::kMaxRecordBytes).
inline constexpr size_t kMaxWireFrameBytes = size_t{256} * 1024 * 1024;

/// \brief [u32 payload length][u32 crc32] — the fixed prefix read
/// before the type byte and payload.
inline constexpr size_t kWireFrameHeaderBytes = 8;

/// \brief Frame types. 1–6 are requests (client → server) mirroring
/// the serve grammar; kResponse carries (or, streamed, closes) every
/// server reply; kPartial (v2 only) carries one continuation slice of a
/// streamed response.
enum class WireFrameType : uint8_t {
  kOpen = 1,
  kIngest = 2,
  kFlush = 3,
  kDetect = 4,
  kFingerprint = 5,
  kClose = 6,
  kResponse = 7,
  kPartial = 8,
};

const char* WireFrameTypeToString(WireFrameType type);

/// \brief v2 envelope flag bits.
inline constexpr uint8_t kWireFlagFinal = 0x1;
inline constexpr uint8_t kWireFlagStreamed = 0x2;
inline constexpr uint8_t kWireFlagMask = kWireFlagFinal | kWireFlagStreamed;

/// \brief Fixed v2 envelope overhead past the type byte:
/// u64 request_id + u8 flags.
inline constexpr size_t kWireV2EnvelopeBytes = 9;

/// \brief One decoded frame. Under v1 the envelope fields keep their
/// defaults (no request ids, every frame final, nothing streamed).
struct WireFrame {
  WireFrameType type = WireFrameType::kResponse;
  /// v2: client-assigned id echoed on every frame of the response.
  uint64_t request_id = 0;
  /// v2: kWireFlagFinal — last frame of its logical message.
  bool final_frame = true;
  /// v2: kWireFlagStreamed — part of a streamed response.
  bool streamed = false;
  std::string payload;
};

/// \brief Encodes a complete frame (header + body) under `version`.
/// Under v1 the envelope fields must be at their defaults (a v1 frame
/// cannot carry an id or a continuation). InvalidArgument when the
/// payload exceeds kMaxWireFrameBytes.
Result<std::string> EncodeWireFrame(const WireFrame& frame, uint8_t version);

/// \brief v1 convenience overload (type + payload only).
Result<std::string> EncodeWireFrame(WireFrameType type,
                                    const std::string& payload);

/// \brief Validates a frame header (first kWireFrameHeaderBytes bytes
/// off the socket) and returns the body length still to read (type byte
/// + v2 envelope + payload). InvalidArgument on an oversized length.
Result<size_t> WireFrameBodyLength(const char* header,
                                   uint8_t version = kWireProtocolV1);

/// \brief Validates CRC, type, and (v2) envelope flags of a frame body
/// read after WireFrameBodyLength and splits it into a WireFrame.
/// InvalidArgument on CRC mismatch, an unknown type for the version
/// (kPartial is v2-only), unknown flag bits, or a kPartial frame
/// claiming to be final.
Result<WireFrame> DecodeWireFrameBody(const char* header, const char* body,
                                      size_t body_length,
                                      uint8_t version = kWireProtocolV1);

// ---- columnar table codec ------------------------------------------------

/// \brief Per-column encodings inside a table block.
enum class WireColumnEncoding : uint8_t {
  /// rows × u64 little-endian two's-complement int64.
  kInt64Dense = 0,
  /// rows × u64 little-endian IEEE double bit patterns.
  kDoubleDense = 1,
  /// [u32 new_entries][new_entries × (u32 len + bytes)][rows × u32 id]:
  /// dictionary ids into the codec's persistent per-column dictionary,
  /// new entries appended in first-occurrence order.
  kStringDict = 2,
  /// rows × (u8 ValueType tag + payload) — the journal cell codec;
  /// fallback for mixed-type or Null-bearing columns.
  kCells = 3,
};

/// \brief Encode side of the columnar codec. One instance per
/// connection direction; dictionary state accumulates across calls.
class WireTableEncoder {
 public:
  /// Appends the block for `batch` to `out`:
  /// [u32 rows][u32 cols], then per column [u8 encoding][column data].
  void Encode(const Table& batch, std::string* out);

 private:
  // column index -> string -> dictionary id (ids are append-ordered).
  std::unordered_map<size_t, std::unordered_map<std::string, uint32_t>>
      dicts_;
};

/// \brief Decode side; must see every block its encoder produced, in
/// order, or the dictionaries desynchronize (the daemon guarantees
/// this by making any decode error fatal to the connection).
class WireTableDecoder {
 public:
  explicit WireTableDecoder(Schema schema) : schema_(std::move(schema)) {}

  /// Consumes one table block from `reader`. InvalidArgument on
  /// truncation, unknown encodings, out-of-range dictionary ids, or a
  /// column count differing from the schema's.
  Result<Table> Decode(BinReader* reader);

  const Schema& schema() const { return schema_; }

 private:
  Schema schema_;
  std::unordered_map<size_t, std::vector<std::string>> dicts_;
};

// ---- request payloads ----------------------------------------------------

/// \brief kOpen payload: everything the server needs to build the
/// stream's FrameworkConfig + SessionConfig. Secrets (passphrase, k1,
/// k2) cross the wire by design — the daemon trusts its transport the
/// way the in-process service trusts its caller (TLS is the recorded
/// follow-on; see ROADMAP).
struct WireOpenRequest {
  std::string session;
  uint64_t k = 20;
  bool enforce_joint = false;
  bool auto_epsilon = false;
  /// The session's own num_threads knob (its default admission ask).
  uint64_t num_threads = 1;
  std::string passphrase;
  std::string k1;
  std::string k2;
  uint64_t eta = 50;
  std::string key_id;
  /// 0 = UnbinnablePolicy::kError, 1 = kSuppress.
  uint8_t on_unbinnable = 0;
  /// 0 = RebinPolicy::kFreezeBins, 1 = kRebinOnDrift.
  uint8_t policy = 0;
  double drift_threshold = 0.5;
};

/// \brief One decoded request of any kind. `table` carries the ingest
/// batch or the detect/fingerprint suspect copy; `registry_text` the
/// fingerprint request's serialized KeyRegistry.
struct WireRequest {
  WireFrameType type = WireFrameType::kOpen;
  std::string session;
  /// Admission ask; UINT64_MAX encodes kSessionThreads.
  uint64_t ask = UINT64_MAX;
  /// Per-request deadline; -1 = the daemon's default_deadline_ms.
  int64_t deadline_ms = -1;
  /// v2 kFingerprint only: ask for a streamed response (travels as the
  /// request frame's kWireFlagStreamed envelope bit, NOT in the payload
  /// — v1 payload bytes are unchanged by it).
  bool stream = false;
  WireOpenRequest open;
  Table table;
  std::string registry_text;
};

/// \brief Encodes a request's payload (not the frame). Table-bearing
/// requests advance `tables`' dictionary state.
std::string EncodeWireRequest(const WireRequest& request,
                              WireTableEncoder* tables);

/// \brief Decodes a request frame's payload. `tables` must be the
/// connection's decoder (its schema types the table block).
Result<WireRequest> DecodeWireRequest(WireFrameType type,
                                      const std::string& payload,
                                      WireTableDecoder* tables);

// ---- response payloads ---------------------------------------------------

/// \brief kOpen response body: what (if anything) was recovered from
/// the session's journal.
struct WireOpenResult {
  bool recovered = false;
  uint64_t batches_applied = 0;
  uint64_t epochs_sealed = 0;
  bool tail_truncated = false;
  /// Rows the recovered session had already emitted before the crash.
  Table emitted;
};

/// \brief kIngest response body (IngestResult minus the in-process-only
/// embed internals).
struct WireIngestResult {
  uint64_t epoch = 0;
  bool flushed = false;
  uint64_t rows_emitted = 0;
  uint64_t rows_suppressed = 0;
  uint64_t rows_buffered = 0;
  Table emitted;
};

/// \brief kFlush response body.
struct WireFlushResult {
  uint64_t epoch = 0;
  double identifier_statistic = 0.0;
  Table emitted;
};

/// \brief One sealed epoch in a kClose response. The manifest crosses
/// the wire pre-serialized (SerializeManifest is deterministic, so the
/// client's manifest file is byte-identical to a local run's).
struct WireEpochSummary {
  uint64_t epoch = 0;
  uint64_t rows_emitted = 0;
  uint64_t rows_suppressed = 0;
  uint64_t wmd_size = 0;
  double identifier_statistic = 0.0;
  std::string manifest_text;
};

/// \brief kClose response body.
struct WireCloseResult {
  uint64_t rows_ingested = 0;
  uint64_t rows_emitted = 0;
  uint64_t rows_suppressed = 0;
  std::vector<WireEpochSummary> epochs;
};

/// \brief Every server reply. `kind` echoes the request's frame type
/// and selects which body member is meaningful; a non-OK `status`
/// carries no body but a fully defined envelope (threads_granted = 0,
/// journal_status OK unless the session's is known, the retry hint on
/// `status` itself, and — v2 — the request_id echoed).
struct WireResponse {
  WireFrameType kind = WireFrameType::kOpen;
  /// v2 envelope only (set from the frame, never encoded in the
  /// payload): the id of the request this response answers.
  uint64_t request_id = 0;
  /// The service-level outcome, reconstructed code + message + the
  /// typed retry_after_ms() backpressure hint (clients must never
  /// parse message text).
  Status status;
  /// The session's sticky journal status as of this request.
  Status journal_status;
  uint64_t threads_granted = 1;

  WireOpenResult open;              // kind == kOpen
  WireIngestResult ingest;          // kind == kIngest
  WireFlushResult flush;            // kind == kFlush
  std::vector<DetectReport> reports;            // kind == kDetect
  std::vector<FingerprintReport> fingerprints;  // kind == kFingerprint
  WireCloseResult close;            // kind == kClose
};

/// \brief Encodes a response's payload (not the frame). Emitted tables
/// advance `tables`' dictionary state.
std::string EncodeWireResponse(const WireResponse& response,
                               WireTableEncoder* tables);

/// \brief Decodes a response frame's payload (client side).
Result<WireResponse> DecodeWireResponse(const std::string& payload,
                                        WireTableDecoder* tables);

// ---- streamed fingerprint responses (v2) ---------------------------------

/// \brief One kPartial frame's payload: a FingerprintShard as it left
/// the scan — the verdicts for a contiguous registry-order key run of
/// one epoch's scan. Shards carry no table blocks, so they never touch
/// the connection's dictionary state.
struct WireFingerprintShard {
  uint64_t epoch = 0;
  uint64_t shard = 0;
  uint64_t first_key = 0;
  std::vector<KeyVerdict> verdicts;
};

std::string EncodeWireFingerprintShard(const WireFingerprintShard& shard);
/// \brief Overload straight off the scan's shard type — what the
/// daemon's streaming sink encodes, copy-free.
std::string EncodeWireFingerprintShard(const FingerprintShard& shard);
Result<WireFingerprintShard> DecodeWireFingerprintShard(
    const std::string& payload);

/// \brief Encodes the terminal kResponse payload of a streamed
/// fingerprint response: the envelope plus, per epoch, the report MINUS
/// its verdicts (they already crossed as kPartial shards) — ranking,
/// keys_detected, collusion. ranking.size() doubles as the epoch's
/// verdict count, which is how the receiver validates its reassembly.
/// `response.kind` must be kFingerprint; a non-OK status carries no
/// tails (same convention as EncodeWireResponse).
std::string EncodeWireResponseStreamedTails(const WireResponse& response);

/// \brief Decodes a streamed-terminal payload: the returned response's
/// fingerprints have ranking / keys_detected / collusion set and EMPTY
/// verdicts — the caller reattaches the shard verdicts it buffered,
/// checking each epoch's count against ranking.size().
Result<WireResponse> DecodeWireResponseStreamedTails(
    const std::string& payload);

// ---- socket I/O ----------------------------------------------------------

/// \brief recv(2) exactly `size` bytes; false on EOF or error. The
/// "wire.read" failpoint injects a failure here (both the daemon's and
/// the client's read path run through this).
bool ReadFullySocket(int fd, char* data, size_t size);

/// \brief send(2) all of `data` (MSG_NOSIGNAL: a hung-up peer yields an
/// error, not SIGPIPE); false on error. The "wire.write" failpoint
/// injects a failure here.
bool WriteFullySocket(int fd, const char* data, size_t size);

}  // namespace privmark

#endif  // PRIVMARK_SERVICE_WIRE_H_
