// Client side of the wire protocol: a synchronous connection to a
// privmark daemon. One outstanding request at a time (send a request
// frame, block for the response frame) — the strict ordering is what
// keeps the connection's table-codec dictionaries in sync with the
// daemon's. Concurrency across streams comes from opening one client
// per stream, exactly as the daemon runs one thread per connection.
//
// Any transport or framing error poisons the connection (the codec
// state is unknowable afterwards); the client reports IOError /
// InvalidArgument and refuses further calls until reconnected.
// Service-level failures (unknown session, shed load, deadline) are NOT
// connection errors: Call succeeds and the returned WireResponse
// carries the non-OK status — plus retry_after_ms when the daemon shed
// the request.

#ifndef PRIVMARK_SERVICE_CLIENT_H_
#define PRIVMARK_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "relation/schema.h"
#include "service/wire.h"

namespace privmark {

/// \brief A synchronous daemon connection, schema-typed like the daemon
/// it talks to.
class DaemonClient {
 public:
  explicit DaemonClient(Schema schema);
  /// Disconnects if still connected.
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// \brief Connects to `host`:`port` (numeric IPv4, e.g. "127.0.0.1")
  /// and runs the magic handshake.
  Status Connect(const std::string& host, uint16_t port);

  /// \brief Sends one request and blocks for its response. The
  /// response's kind must echo the request's type. On any transport or
  /// framing error the connection is closed before returning.
  Result<WireResponse> Call(const WireRequest& request);

  /// \brief Closes the socket. Idempotent.
  void Disconnect();

  bool connected() const { return fd_ >= 0; }

 private:
  Schema schema_;
  int fd_ = -1;
  WireTableEncoder encoder_;
  WireTableDecoder decoder_;
};

}  // namespace privmark

#endif  // PRIVMARK_SERVICE_CLIENT_H_
