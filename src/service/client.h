// Client side of the wire protocol, schema-typed like the daemon it
// talks to. The handshake negotiates the protocol version down to the
// lower of the two peers' maxima:
//
//  - v1 (lock-step): one outstanding request at a time — Call() sends a
//    frame and blocks for the response. The strict ordering is what
//    keeps a v1 connection's table-codec dictionaries in sync.
//  - v2 (multiplexed): CallAsync() assigns a client-side request_id,
//    sends immediately, and returns a PendingCall handle; any number of
//    calls may be in flight, their response frames demultiplexed by the
//    echoed id. There is no dedicated reader thread: whichever caller
//    is blocked in Wait()/NextShard() pumps the socket (leader/follower
//    — one pumper at a time, so frames decode in wire order and the
//    table-codec dictionaries stay in sync), handing other requests'
//    frames to their pending state as they pass by. Call() under v2 is
//    CallAsync().Wait().
//
// Streamed fingerprints (v2): set WireRequest::stream on a kFingerprint
// request and the daemon answers with per-key-shard kPartial frames
// before the terminal response. PendingCall::NextShard() hands the
// shards over one at a time, in order, as they arrive; Wait()
// reassembles the full per-epoch reports — byte-identical to a
// non-streamed call's — and validates the shard sequence (contiguous
// keys, per-epoch counts against the terminal's ranking) while doing so.
//
// Any transport or framing error poisons the connection (the codec
// state is unknowable afterwards): every in-flight and future call
// fails with the poisoning status until Connect() is called again.
// Service-level failures (unknown session, shed load, deadline) are NOT
// connection errors: the call succeeds and the returned WireResponse
// carries the non-OK status — whose typed retry_after_ms() is the
// backpressure hint when the daemon shed the request.

#ifndef PRIVMARK_SERVICE_CLIENT_H_
#define PRIVMARK_SERVICE_CLIENT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relation/schema.h"
#include "service/wire.h"

namespace privmark {

/// \brief A daemon connection: lock-step under v1, multiplexed under
/// v2. Thread-compatible under v1 (external synchronization required);
/// under v2, CallAsync / Wait / NextShard are safe to call from any
/// number of threads.
class DaemonClient {
  struct PendingState;

 public:
  /// \brief `max_protocol_version` caps what Connect offers the daemon
  /// (pin kWireProtocolV1 to force the lock-step path).
  explicit DaemonClient(Schema schema,
                        uint8_t max_protocol_version = kWireProtocolMax);
  /// Disconnects if still connected.
  ~DaemonClient();

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// \brief One in-flight v2 call. Default-constructed handles are
  /// empty; real ones come from CallAsync. Handles may outlive nothing:
  /// the DaemonClient must outlive every PendingCall it issued.
  class PendingCall {
   public:
    PendingCall() = default;

    /// \brief Blocks until the terminal response arrives (pumping the
    /// socket if no other caller is) and returns it. For a streamed
    /// call the response's fingerprint verdicts are reassembled from
    /// the partial shards and validated against the terminal's tails —
    /// byte-identical to a non-streamed response. Idempotent.
    Result<WireResponse> Wait();

    /// \brief Streamed calls: blocks for the next partial shard; true
    /// with *shard filled, false when every shard has been handed over
    /// (Wait() then completes without further I/O). Shards arrive in
    /// (epoch, shard) order with contiguous key runs.
    Result<bool> NextShard(WireFingerprintShard* shard);

    /// \brief The id this call's frames carry (diagnostic).
    uint64_t request_id() const;

    bool valid() const { return state_ != nullptr; }

   private:
    friend class DaemonClient;
    DaemonClient* client_ = nullptr;
    std::shared_ptr<PendingState> state_;
  };

  /// \brief Connects to `host`:`port` (numeric IPv4, e.g. "127.0.0.1")
  /// and runs the negotiating handshake.
  Status Connect(const std::string& host, uint16_t port);

  /// \brief Sends one request and blocks for its response (v1: the
  /// lock-step exchange; v2: CallAsync(request).Wait()). The response's
  /// kind echoes the request's type. On any transport or framing error
  /// the connection is poisoned before returning.
  Result<WireResponse> Call(const WireRequest& request);

  /// \brief v2 only: sends the request without waiting; the returned
  /// handle collects the response (and any streamed shards). Pipelining
  /// is free — any number of calls may be outstanding. Same-session
  /// requests execute in the order CallAsync sent them.
  Result<PendingCall> CallAsync(const WireRequest& request);

  /// \brief The negotiated protocol version (after Connect); 0 when
  /// disconnected.
  uint8_t protocol_version() const { return protocol_version_; }

  /// \brief Closes the socket; in-flight v2 calls fail. Idempotent.
  void Disconnect();

  /// \brief True while the connection is open AND usable — a poisoned
  /// (but not yet Disconnect()ed) connection reports false.
  bool connected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fd_ >= 0 && poison_.ok();
  }

 private:
  Result<WireResponse> CallLockStep(const WireRequest& request);
  // Reads + routes exactly one frame off the socket. Called only by the
  // current pump leader (mu_ NOT held); takes mu_ briefly to route.
  Status PumpOneFrame(int fd);
  // Blocks until ready() (routing under mu_ flips it) or the connection
  // poisons, pumping when no other caller is. `lock` holds mu_.
  Status PumpUntil(std::unique_lock<std::mutex>& lock,
                   const std::function<bool()>& ready);
  // Fails every pending call with `status` and latches it. mu_ held.
  void PoisonLocked(const Status& status);
  void DisconnectLocked(std::unique_lock<std::mutex>& lock);

  Schema schema_;
  const uint8_t max_protocol_version_;
  uint8_t protocol_version_ = 0;
  int fd_ = -1;
  WireTableEncoder encoder_;
  WireTableDecoder decoder_;

  // v2 multiplexing state. send_mu_ serializes request ENCODE + write
  // (dictionary order = wire order); mu_ guards everything else.
  std::mutex send_mu_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_request_id_ = 1;                  // guarded by mu_
  std::unordered_map<uint64_t, std::shared_ptr<PendingState>>
      pending_;                                   // guarded by mu_
  bool pumping_ = false;                          // guarded by mu_
  Status poison_;                                 // guarded by mu_
};

}  // namespace privmark

#endif  // PRIVMARK_SERVICE_CLIENT_H_
