// Network daemon: the socket front-end over PrivmarkService, speaking
// the wire protocol of service/wire.h so remote hospital streams reach
// the service without linking it in-process.
//
// Execution model: one accept-loop thread, one thread per connection
// (no event loop, no new dependencies). Each connection is handled
// strictly synchronously — read a request frame, execute it against the
// service, write the response — because same-session requests serialize
// inside the service anyway; concurrency across hospitals comes from
// many connections, each its own strand of the shared service. That
// also keeps the per-connection table-codec dictionaries trivially in
// sync: frames on one connection are totally ordered.
//
// Protocol errors (bad magic, malformed frame, undecodable payload) are
// fatal to the offending connection only: the codec's dictionary state
// is unknowable after a framing error, so the daemon closes that socket
// and keeps serving everyone else. Service-level errors (unknown
// session, shed load, deadline) travel back as normal responses with a
// non-OK status — and, for ResourceExhausted, the typed retry_after_ms
// backpressure hint.
//
// Shutdown(deadline_ms) closes the listener, shuts down live
// connections' sockets, joins every connection thread, then drains the
// service with the same deadline semantics as
// PrivmarkService::Shutdown(deadline_ms).

#ifndef PRIVMARK_SERVICE_DAEMON_H_
#define PRIVMARK_SERVICE_DAEMON_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "metrics/usage_metrics.h"
#include "relation/schema.h"
#include "service/service.h"
#include "service/wire.h"

namespace privmark {

/// \brief Daemon configuration. The daemon is schema-typed: every
/// stream it serves uses `schema`, and `metrics_for_config` builds the
/// usage metrics for each opened stream's FrameworkConfig (the trees it
/// references must outlive the daemon). The factory keeps the service
/// layer free of any dataset dependency — the CLI and tests inject the
/// medical ontologies.
struct DaemonConfig {
  ServiceConfig service;
  Schema schema;
  std::function<Result<UsageMetrics>(const FrameworkConfig&)>
      metrics_for_config;
};

/// \brief TCP daemon on 127.0.0.1 (loopback only until TLS lands; see
/// ROADMAP).
class PrivmarkDaemon {
 public:
  explicit PrivmarkDaemon(DaemonConfig config);
  /// Shuts down (unbounded drain) if still running.
  ~PrivmarkDaemon();

  PrivmarkDaemon(const PrivmarkDaemon&) = delete;
  PrivmarkDaemon& operator=(const PrivmarkDaemon&) = delete;

  /// \brief Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and
  /// starts the accept loop.
  Status Start(uint16_t port);

  /// \brief The bound port (after Start).
  uint16_t port() const { return port_; }

  /// \brief Stops accepting, disconnects live connections, joins their
  /// threads, then drains the service. deadline_ms < 0 waits forever;
  /// otherwise still-queued requests past the deadline fail
  /// DeadlineExceeded (PrivmarkService::Shutdown(deadline_ms)).
  /// Idempotent.
  Status Shutdown(int64_t deadline_ms = -1);

  /// \brief Connections accepted so far (diagnostic).
  size_t connections_accepted() const;

  PrivmarkService& service() { return service_; }

 private:
  // Everything the daemon must remember about an open stream to answer
  // its close (per-epoch manifests are built server-side).
  struct SessionContext {
    FrameworkConfig config;
    UsageMetrics metrics;
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  // Executes one decoded request; the returned response is ready to
  // encode. Never fails — errors travel inside the response's status.
  WireResponse Execute(const WireRequest& request);
  WireResponse ExecuteOpen(const WireRequest& request);

  const DaemonConfig config_;
  PrivmarkService service_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_;  // guarded by mu_
  std::map<std::string, std::shared_ptr<SessionContext>>
      sessions_;             // guarded by mu_
  size_t accepted_ = 0;      // guarded by mu_
  bool shutdown_ = false;    // guarded by mu_
};

}  // namespace privmark

#endif  // PRIVMARK_SERVICE_DAEMON_H_
