// Network daemon: the socket front-end over PrivmarkService, speaking
// the wire protocol of service/wire.h so remote hospital streams reach
// the service without linking it in-process.
//
// Execution model: one accept-loop thread, one reader thread per
// connection (no event loop, no new dependencies). The handshake
// negotiates the protocol version down to the lower of the two peers'
// maxima:
//
//  - v1 (lock-step): the reader serves strictly synchronously — read a
//    request frame, execute it against the service, write the response.
//  - v2 (multiplexed): the reader decodes and submits pipelined
//    requests as they arrive (same-session order = submission order =
//    the strand's execution order) and a small lazily-grown writer pool
//    completes their futures and writes responses as they finish, in
//    any order, demultiplexed by the echoed request_id. A streamed
//    kFingerprint request's verdict shards are written as kPartial
//    frames from the executing strand, before its terminal response.
//    max_inflight_per_connection bounds dispatched-but-unanswered
//    requests; at the cap the reader stops reading (TCP backpressure).
//
// All writes on a v2 connection — partials from strand threads,
// responses from writer threads, inline open responses from the reader
// — serialize on one write mutex, and response payloads are ENCODED
// under that mutex too, so the table codec's dictionary mutation order
// always equals the wire order the client's decoder replays.
//
// Protocol errors (bad magic, malformed frame, unknown v2 flags, a
// kPartial/kResponse frame from a client, undecodable payload) are
// fatal to the offending connection only: the codec's dictionary state
// is unknowable after a framing error, so the daemon closes that socket
// and keeps serving everyone else. Service-level errors (unknown
// session, shed load, deadline) travel back as normal responses with a
// non-OK status whose typed retry_after_ms() carries the backpressure
// hint.
//
// Shutdown(deadline_ms) closes the listener, shuts down live
// connections' sockets, joins every connection thread, then drains the
// service with the same deadline semantics as
// PrivmarkService::Shutdown(deadline_ms).

#ifndef PRIVMARK_SERVICE_DAEMON_H_
#define PRIVMARK_SERVICE_DAEMON_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "metrics/usage_metrics.h"
#include "relation/schema.h"
#include "service/service.h"
#include "service/wire.h"

namespace privmark {

/// \brief Daemon configuration. The daemon is schema-typed: every
/// stream it serves uses `schema`, and `metrics_for_config` builds the
/// usage metrics for each opened stream's FrameworkConfig (the trees it
/// references must outlive the daemon). The factory keeps the service
/// layer free of any dataset dependency — the CLI and tests inject the
/// medical ontologies.
struct DaemonConfig {
  ServiceConfig service;
  Schema schema;
  std::function<Result<UsageMetrics>(const FrameworkConfig&)>
      metrics_for_config;
  /// Highest wire protocol version this daemon speaks; the handshake
  /// negotiates min(client's, this). Pin to kWireProtocolV1 to force
  /// every connection onto the lock-step path.
  uint8_t max_protocol_version = kWireProtocolMax;
  /// v2 connections: cap on requests dispatched but not yet answered on
  /// one connection — also the writer-pool bound. At the cap the reader
  /// stops reading until a response drains. Clamped to >= 1.
  size_t max_inflight_per_connection = 32;
};

/// \brief TCP daemon on 127.0.0.1 (loopback only until TLS lands; see
/// ROADMAP).
class PrivmarkDaemon {
 public:
  explicit PrivmarkDaemon(DaemonConfig config);
  /// Shuts down (unbounded drain) if still running.
  ~PrivmarkDaemon();

  PrivmarkDaemon(const PrivmarkDaemon&) = delete;
  PrivmarkDaemon& operator=(const PrivmarkDaemon&) = delete;

  /// \brief Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and
  /// starts the accept loop.
  Status Start(uint16_t port);

  /// \brief The bound port (after Start).
  uint16_t port() const { return port_; }

  /// \brief Stops accepting, disconnects live connections, joins their
  /// threads, then drains the service. deadline_ms < 0 waits forever;
  /// otherwise still-queued requests past the deadline fail
  /// DeadlineExceeded (PrivmarkService::Shutdown(deadline_ms)).
  /// Idempotent.
  Status Shutdown(int64_t deadline_ms = -1);

  /// \brief Connections accepted so far (diagnostic).
  size_t connections_accepted() const;

  PrivmarkService& service() { return service_; }

 private:
  // Everything the daemon must remember about an open stream to answer
  // its close (per-epoch manifests are built server-side).
  struct SessionContext {
    FrameworkConfig config;
    UsageMetrics metrics;
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  // Shared write-side state of one v2 connection: every frame write —
  // and every response-payload ENCODE, so dictionary order equals wire
  // order — happens under write_mu. `broken` latches the first write
  // failure; later writes become no-ops (the reader tears down).
  struct MuxConnection {
    int fd = -1;
    std::mutex write_mu;
    WireTableEncoder encoder;      // guarded by write_mu
    bool broken = false;           // guarded by write_mu
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  void ServeLockStep(int fd);      // v1
  void ServeMultiplexed(int fd);   // v2
  // Executes one decoded request synchronously (the v1 path); the
  // returned response is ready to encode. Never fails — errors travel
  // inside the response's status.
  WireResponse Execute(const WireRequest& request);
  WireResponse ExecuteOpen(const WireRequest& request);
  // Builds the wire response for a completed service future: the
  // convert-layer mapping plus the daemon's close-path manifest
  // building (which consumes the SessionContext on success).
  WireResponse FinishResponse(WireFrameType type, const std::string& session,
                              Result<ServiceResponse> result);
  // v2 writes: encode + write under mux->write_mu. `streamed` selects
  // the tails-only terminal payload of a streamed response.
  void WriteResponseV2(MuxConnection* mux, uint64_t request_id,
                       const WireResponse& response, bool streamed);
  void WritePartialV2(MuxConnection* mux, uint64_t request_id,
                      const FingerprintShard& shard);

  const DaemonConfig config_;
  PrivmarkService service_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_;  // guarded by mu_
  std::map<std::string, std::shared_ptr<SessionContext>>
      sessions_;             // guarded by mu_
  size_t accepted_ = 0;      // guarded by mu_
  bool shutdown_ = false;    // guarded by mu_
};

}  // namespace privmark

#endif  // PRIVMARK_SERVICE_DAEMON_H_
