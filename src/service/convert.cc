#include "service/convert.h"

#include <memory>
#include <utility>

#include "watermark/key_registry.h"

namespace privmark {

Result<RequestKind> RequestKindForFrame(WireFrameType type) {
  switch (type) {
    case WireFrameType::kIngest:
      return RequestKind::kProtectBatch;
    case WireFrameType::kFlush:
      return RequestKind::kFlush;
    case WireFrameType::kDetect:
      return RequestKind::kDetect;
    case WireFrameType::kFingerprint:
      return RequestKind::kDetectFingerprint;
    case WireFrameType::kClose:
      return RequestKind::kCloseSession;
    case WireFrameType::kOpen:      // registry bookkeeping, not strand work
    case WireFrameType::kResponse:
    case WireFrameType::kPartial:
      break;
  }
  return Status::InvalidArgument(std::string("a ") +
                                 WireFrameTypeToString(type) +
                                 " frame has no service-request shape");
}

WireFrameType FrameForRequestKind(RequestKind kind) {
  switch (kind) {
    case RequestKind::kProtectBatch:
      return WireFrameType::kIngest;
    case RequestKind::kFlush:
      return WireFrameType::kFlush;
    case RequestKind::kDetect:
      return WireFrameType::kDetect;
    case RequestKind::kDetectFingerprint:
      return WireFrameType::kFingerprint;
    case RequestKind::kCloseSession:
      return WireFrameType::kClose;
  }
  return WireFrameType::kClose;
}

Result<ServiceRequest> ToServiceRequest(const WireRequest& request) {
  ServiceRequest service_request;
  PRIVMARK_ASSIGN_OR_RETURN(service_request.kind,
                            RequestKindForFrame(request.type));
  service_request.session = request.session;
  service_request.table = request.table;
  service_request.num_threads = static_cast<size_t>(request.ask);
  service_request.deadline_ms = request.deadline_ms;
  if (request.type == WireFrameType::kFingerprint) {
    PRIVMARK_ASSIGN_OR_RETURN(KeyRegistry registry,
                              KeyRegistry::Parse(request.registry_text));
    service_request.registry =
        std::make_shared<const KeyRegistry>(std::move(registry));
  }
  return service_request;
}

WireRequest ToWireRequest(const ServiceRequest& request) {
  WireRequest wire_request;
  wire_request.type = FrameForRequestKind(request.kind);
  wire_request.session = request.session;
  wire_request.ask = static_cast<uint64_t>(request.num_threads);
  wire_request.deadline_ms = request.deadline_ms;
  wire_request.table = request.table;
  if (request.kind == RequestKind::kDetectFingerprint) {
    if (request.registry != nullptr) {
      wire_request.registry_text = request.registry->Serialize();
    }
    wire_request.stream = request.fingerprint_sink != nullptr;
  }
  return wire_request;
}

WireResponse ToWireResponse(WireFrameType kind, Result<ServiceResponse> result,
                            const EpochManifestFn& manifest_fn) {
  WireResponse response;
  response.kind = kind;
  if (!result.ok()) {
    // The fully-defined non-OK envelope: nothing granted, the stream's
    // durability barrier not implicated, the retry hint on the status.
    response.status = result.status();
    response.threads_granted = 0;
    return response;
  }
  ServiceResponse& executed = *result;
  response.journal_status = executed.journal_status;
  response.threads_granted = executed.threads_granted;
  switch (kind) {
    case WireFrameType::kIngest:
      response.ingest.epoch = executed.ingest.epoch;
      response.ingest.flushed = executed.ingest.flushed;
      response.ingest.rows_emitted = executed.ingest.rows_emitted;
      response.ingest.rows_suppressed = executed.ingest.rows_suppressed;
      response.ingest.rows_buffered = executed.ingest.rows_buffered;
      response.ingest.emitted = std::move(executed.ingest.emitted);
      break;
    case WireFrameType::kFlush:
      response.flush.epoch = executed.epoch.epoch;
      response.flush.identifier_statistic =
          executed.epoch.outcome.identifier_statistic;
      response.flush.emitted = std::move(executed.epoch.outcome.watermarked);
      break;
    case WireFrameType::kDetect:
      response.reports = std::move(executed.reports);
      break;
    case WireFrameType::kFingerprint:
      response.fingerprints = std::move(executed.fingerprints);
      break;
    case WireFrameType::kClose:
      response.close.rows_ingested = executed.stats.rows_ingested;
      response.close.rows_emitted = executed.stats.rows_emitted;
      response.close.rows_suppressed = executed.stats.rows_suppressed;
      for (const EpochRecord& epoch : executed.stats.epochs) {
        WireEpochSummary summary;
        summary.epoch = epoch.epoch;
        summary.rows_emitted = epoch.rows_emitted;
        summary.rows_suppressed = epoch.rows_suppressed;
        summary.wmd_size = epoch.wmd_size;
        summary.identifier_statistic = epoch.identifier_statistic;
        if (manifest_fn != nullptr) {
          Result<std::string> manifest = manifest_fn(epoch);
          if (!manifest.ok()) {
            response = WireResponse();
            response.kind = kind;
            response.status = manifest.status();
            response.threads_granted = 0;
            return response;
          }
          summary.manifest_text = *std::move(manifest);
        }
        response.close.epochs.push_back(std::move(summary));
      }
      break;
    case WireFrameType::kOpen:
    case WireFrameType::kResponse:
    case WireFrameType::kPartial:
      break;  // kOpen is built by the daemon's open path, not here
  }
  return response;
}

}  // namespace privmark
