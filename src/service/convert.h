// The single seam between the in-process request surface
// (ServiceRequest / ServiceResponse, service/service.h) and the wire
// surface (WireRequest / WireResponse, service/wire.h). The daemon and
// the CLI used to each hand-copy fields between the two shapes; every
// conversion now lives here, so a field added to one surface fails to
// compile (or round-trip-test) here instead of silently dropping on one
// of the copies.
//
// The two surfaces are intentionally NOT the same struct: the wire
// shape is what can cross a socket (serialized registries, pre-built
// manifest text, no shared_ptr or tree-pointer state), the service
// shape is what the strands execute. These helpers define the exact
// correspondence:
//
//   WireRequest  --ToServiceRequest-->  ServiceRequest
//   ServiceRequest  --ToWireRequest-->  WireRequest      (inverse)
//   (kind, Result<ServiceResponse>)  --ToWireResponse--> WireResponse
//
// ToWireResponse also pins down the NON-OK envelope (satellite of the
// v2 redesign): a failed request's response has threads_granted = 0
// (nothing was granted for any work that produced output),
// journal_status OK (the failure says nothing about the stream's
// durability barrier), and the retry hint riding on the status itself.

#ifndef PRIVMARK_SERVICE_CONVERT_H_
#define PRIVMARK_SERVICE_CONVERT_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "core/session.h"
#include "service/service.h"
#include "service/wire.h"

namespace privmark {

/// \brief The service kind a request frame type executes as.
/// InvalidArgument for frame types with no ServiceRequest shape (kOpen
/// — registry bookkeeping, not strand work — kResponse, kPartial).
Result<RequestKind> RequestKindForFrame(WireFrameType type);

/// \brief The request frame type a service kind travels as (total —
/// every RequestKind has a frame).
WireFrameType FrameForRequestKind(RequestKind kind);

/// \brief Builds the executable request for a decoded wire request.
/// kOpen has no ServiceRequest shape (it is registry bookkeeping, not
/// strand work) and is rejected with InvalidArgument; a kFingerprint
/// request's registry_text is parsed here (its streamed flag becomes a
/// null fingerprint_sink — the transport layer attaches the real sink).
Result<ServiceRequest> ToServiceRequest(const WireRequest& request);

/// \brief The inverse: the wire shape a service request travels as.
/// A kDetectFingerprint request's registry is re-serialized
/// (KeyRegistry::Serialize / Parse round-trip losslessly); the
/// fingerprint_sink does not cross (it becomes the stream flag).
WireRequest ToWireRequest(const ServiceRequest& request);

/// \brief Builds manifest text for one sealed epoch of a closing
/// session — the daemon injects ManifestFromEpoch + SerializeManifest
/// here, keeping this layer free of the manifest dependency. Null =
/// close responses carry no manifests (in-process callers).
using EpochManifestFn =
    std::function<Result<std::string>(const EpochRecord& epoch)>;

/// \brief Builds the wire response for one executed request. `kind` is
/// the request's frame type (the response echoes it). On a non-OK
/// result the envelope is fully defined: threads_granted = 0,
/// journal_status OK, the retry hint on the status. Never fails —
/// a manifest-build failure becomes the response's status. Takes the
/// result by value so emitted tables move, not copy.
WireResponse ToWireResponse(WireFrameType kind, Result<ServiceResponse> result,
                            const EpochManifestFn& manifest_fn = nullptr);

}  // namespace privmark

#endif  // PRIVMARK_SERVICE_CONVERT_H_
