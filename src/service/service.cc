#include "service/service.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace privmark {

const char* RequestKindToString(RequestKind kind) {
  switch (kind) {
    case RequestKind::kProtectBatch:
      return "ProtectBatch";
    case RequestKind::kFlush:
      return "Flush";
    case RequestKind::kDetect:
      return "Detect";
    case RequestKind::kDetectFingerprint:
      return "DetectFingerprint";
    case RequestKind::kCloseSession:
      return "CloseSession";
  }
  return "Unknown";
}

bool ServiceQueue::Push(Item item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
  }
  cv_.notify_one();
  return true;
}

bool ServiceQueue::Pop(Item* item) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  *item = std::move(items_.front());
  items_.pop_front();
  return true;
}

void ServiceQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t ServiceQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool ServiceQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

PrivmarkService::PrivmarkService(ServiceConfig config)
    : admission_(config.thread_cap),
      pool_(MakeThreadPool(admission_.capacity())) {}

PrivmarkService::~PrivmarkService() { Shutdown(); }

Status PrivmarkService::OpenSession(const std::string& name,
                                    UsageMetrics metrics,
                                    FrameworkConfig config,
                                    SessionConfig session) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::InvalidArgument("OpenSession: service is shut down");
  }
  ReapFinishedLocked();
  auto it = strands_.find(name);
  if (it != strands_.end()) {
    if (!it->second->closing) {
      return Status::AlreadyExists("OpenSession: session '" + name +
                                   "' is already open");
    }
    // Closed but still draining accepted requests. Joining here would
    // hold mu_ — and with it every other session's intake — for the
    // whole drain, so the caller retries instead; the reap above frees
    // the name the moment the strand finishes.
    return Status::AlreadyExists("OpenSession: session '" + name +
                                 "' is still draining; retry shortly");
  }

  auto strand = std::make_unique<Strand>();
  strand->default_ask = SessionThreadAsk(config);
  if (pool_ != nullptr) {
    // All sessions of one service share the one pool; per-request grants
    // re-cap the lease, so whatever pools or thread counts the caller
    // configured are overridden — the admission controller, not the
    // session config, decides how wide a request runs.
    strand->lease = ThreadPool::Lease(pool_.get(), 1);
    config.binning.pool = strand->lease.get();
    config.watermark.pool = strand->lease.get();
  } else {
    // thread_cap == 1: every request runs serial on its strand. Zero the
    // knobs too, or the session would build a private pool of its own.
    config.binning.pool = nullptr;
    config.watermark.pool = nullptr;
    config.binning.num_threads = 1;
    config.watermark.num_threads = 1;
  }
  strand->session = std::make_unique<ProtectionSession>(
      std::move(metrics), std::move(config), session);
  Strand* raw = strand.get();
  strands_.emplace(name, std::move(strand));
  raw->thread = std::thread([this, raw] { RunStrand(raw); });
  return Status::OK();
}

ServiceFuture PrivmarkService::FailedFuture(Status status) {
  std::promise<Result<ServiceResponse>> promise;
  ServiceFuture future = promise.get_future();
  promise.set_value(Result<ServiceResponse>(std::move(status)));
  return future;
}

ServiceFuture PrivmarkService::Submit(ServiceRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return FailedFuture(
        Status::InvalidArgument("Submit: service is shut down"));
  }
  ReapFinishedLocked();
  auto it = strands_.find(request.session);
  if (it == strands_.end()) {
    return FailedFuture(
        Status::KeyError("Submit: unknown session '" + request.session + "'"));
  }
  Strand* strand = it->second.get();
  if (strand->closing) {
    return FailedFuture(Status::InvalidArgument(
        "Submit: session '" + request.session + "' is closed"));
  }

  const bool closes = request.kind == RequestKind::kCloseSession;
  ServiceQueue::Item item;
  item.request = std::move(request);
  ServiceFuture future = item.done.get_future();
  if (!strand->queue.Push(std::move(item))) {
    return FailedFuture(Status::InvalidArgument(
        "Submit: session queue is closed"));
  }
  if (closes) {
    // Mark-then-close under mu_: every earlier Submit already queued, no
    // later one passes the `closing` check, and the strand drains what
    // was accepted — the close request itself runs last.
    strand->closing = true;
    strand->queue.Close();
  }
  return future;
}

ServiceFuture PrivmarkService::ProtectBatch(const std::string& session,
                                            Table batch, size_t num_threads) {
  ServiceRequest request;
  request.kind = RequestKind::kProtectBatch;
  request.session = session;
  request.table = std::move(batch);
  request.num_threads = num_threads;
  return Submit(std::move(request));
}

ServiceFuture PrivmarkService::Flush(const std::string& session,
                                     size_t num_threads) {
  ServiceRequest request;
  request.kind = RequestKind::kFlush;
  request.session = session;
  request.num_threads = num_threads;
  return Submit(std::move(request));
}

ServiceFuture PrivmarkService::Detect(const std::string& session,
                                      Table concatenated, size_t num_threads) {
  ServiceRequest request;
  request.kind = RequestKind::kDetect;
  request.session = session;
  request.table = std::move(concatenated);
  request.num_threads = num_threads;
  return Submit(std::move(request));
}

ServiceFuture PrivmarkService::DetectFingerprint(
    const std::string& session, Table concatenated,
    std::shared_ptr<const KeyRegistry> registry, size_t num_threads) {
  ServiceRequest request;
  request.kind = RequestKind::kDetectFingerprint;
  request.session = session;
  request.table = std::move(concatenated);
  request.registry = std::move(registry);
  request.num_threads = num_threads;
  return Submit(std::move(request));
}

ServiceFuture PrivmarkService::CloseSession(const std::string& session) {
  ServiceRequest request;
  request.kind = RequestKind::kCloseSession;
  request.session = session;
  return Submit(std::move(request));
}

void PrivmarkService::RunStrand(Strand* strand) {
  ServiceQueue::Item item;
  while (strand->queue.Pop(&item)) {
    Result<ServiceResponse> result = Execute(strand, &item.request);
    item.done.set_value(std::move(result));
  }
  strand->finished.store(true, std::memory_order_release);
}

void PrivmarkService::ReapFinishedLocked() {
  for (auto it = strands_.begin(); it != strands_.end();) {
    Strand& strand = *it->second;
    if (strand.closing &&
        strand.finished.load(std::memory_order_acquire)) {
      if (strand.thread.joinable()) strand.thread.join();  // instant
      it = strands_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<ServiceResponse> PrivmarkService::Execute(Strand* strand,
                                                 ServiceRequest* request) {
  ServiceResponse response;
  response.kind = request->kind;

  if (request->kind == RequestKind::kCloseSession) {
    // Pure bookkeeping — no data-parallel work, so no admission round
    // trip; earlier requests already drained (FIFO strand).
    const ProtectionSession& session = *strand->session;
    response.stats.rows_ingested = session.rows_ingested();
    response.stats.rows_emitted = session.rows_emitted();
    response.stats.rows_suppressed = session.rows_suppressed();
    response.stats.epochs = session.epochs();
    return response;
  }

  const size_t ask = request->num_threads == kSessionThreads
                         ? strand->default_ask
                         : request->num_threads;
  ThreadGrant grant(&admission_, ask);
  response.threads_granted = grant.granted();
  // The grant IS the lease width: agents shard by the lease's reported
  // worker count, so at most `granted` of the shared workers ever touch
  // this request (the small-fix guarantee: granted, not requested).
  if (strand->lease != nullptr) strand->lease->set_limit(grant.granted());

  try {
    switch (request->kind) {
      case RequestKind::kProtectBatch: {
        PRIVMARK_ASSIGN_OR_RETURN(response.ingest,
                                  strand->session->Ingest(request->table));
        break;
      }
      case RequestKind::kFlush: {
        PRIVMARK_ASSIGN_OR_RETURN(response.epoch, strand->session->Flush());
        break;
      }
      case RequestKind::kDetect: {
        PRIVMARK_ASSIGN_OR_RETURN(
            response.reports,
            strand->session->DetectAcrossEpochs(request->table));
        break;
      }
      case RequestKind::kDetectFingerprint: {
        if (request->registry == nullptr) {
          return Status::InvalidArgument(
              "DetectFingerprint: request carries no key registry");
        }
        PRIVMARK_ASSIGN_OR_RETURN(
            response.fingerprints,
            strand->session->FingerprintAcrossEpochs(request->table,
                                                     *request->registry));
        break;
      }
      case RequestKind::kCloseSession:
        break;  // handled above
    }
  } catch (const std::exception& e) {
    // The core library reports data-dependent failures as Status; an
    // exception here is a programming error surfaced by the pool. Turn
    // it into a failed future rather than losing the strand.
    return Status::InvalidArgument(std::string("request '") +
                                   RequestKindToString(request->kind) +
                                   "' threw: " + e.what());
  }
  return response;
}

void PrivmarkService::Shutdown() {
  // Take ownership of every strand under the lock: a concurrent (or
  // repeated) Shutdown finds an empty registry and has nothing to join,
  // so no strand is ever joined twice or destroyed under an iterator.
  std::unordered_map<std::string, std::unique_ptr<Strand>> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [name, strand] : strands_) {
      strand->queue.Close();  // idempotent; accepted items still drain
    }
    taken = std::move(strands_);
    strands_.clear();
  }
  for (auto& [name, strand] : taken) {
    if (strand->thread.joinable()) strand->thread.join();
  }
}

size_t PrivmarkService::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& [name, strand] : strands_) {
    if (!strand->closing) ++live;
  }
  return live;
}

size_t PrivmarkService::num_strands() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strands_.size();
}

}  // namespace privmark
