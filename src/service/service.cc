#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "core/journal.h"

namespace privmark {

namespace {

// Journals live in one flat directory, so session names must become
// safe basename characters. The encoding is injective (percent-escapes,
// '%' itself included): two distinct names can never map to one journal
// path, where the second OpenSession would silently resume — and
// corrupt — the first session's live WAL.
std::string JournalBaseName(const std::string& name) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    if (safe) {
      out.push_back(c);
    } else {
      const auto u = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
    }
  }
  // Escapes are always "%XX", so a bare '%' cannot collide with any
  // non-empty name's encoding.
  if (out.empty()) out = "%";
  return out;
}

}  // namespace

const char* RequestKindToString(RequestKind kind) {
  switch (kind) {
    case RequestKind::kProtectBatch:
      return "ProtectBatch";
    case RequestKind::kFlush:
      return "Flush";
    case RequestKind::kDetect:
      return "Detect";
    case RequestKind::kDetectFingerprint:
      return "DetectFingerprint";
    case RequestKind::kCloseSession:
      return "CloseSession";
  }
  return "Unknown";
}

bool ServiceQueue::Push(Item item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
  }
  cv_.notify_one();
  return true;
}

bool ServiceQueue::Pop(Item* item) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  *item = std::move(items_.front());
  items_.pop_front();
  return true;
}

void ServiceQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t ServiceQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

size_t ServiceQueue::Abandon(const Status& status) {
  std::deque<Item> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    taken.swap(items_);
  }
  cv_.notify_all();
  // Promises complete outside mu_: a waiter's continuation may call
  // back into the queue.
  for (Item& item : taken) {
    item.done.set_value(Result<ServiceResponse>(status));
  }
  return taken.size();
}

bool ServiceQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

PrivmarkService::PrivmarkService(ServiceConfig config)
    : config_(std::move(config)),
      admission_(config_.thread_cap),
      pool_(MakeThreadPool(admission_.capacity())) {}

PrivmarkService::~PrivmarkService() { Shutdown(); }

Status PrivmarkService::OpenSession(const std::string& name,
                                    UsageMetrics metrics,
                                    FrameworkConfig config,
                                    SessionConfig session,
                                    SessionRecovery* recovery) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::InvalidArgument("OpenSession: service is shut down");
  }
  ReapFinishedLocked();
  auto it = strands_.find(name);
  if (it != strands_.end()) {
    if (!it->second->closing) {
      return Status::AlreadyExists("OpenSession: session '" + name +
                                   "' is already open");
    }
    // Closed but still draining accepted requests. Joining here would
    // hold mu_ — and with it every other session's intake — for the
    // whole drain, so the caller retries instead; the reap above frees
    // the name the moment the strand finishes.
    return Status::AlreadyExists("OpenSession: session '" + name +
                                 "' is still draining; retry shortly");
  }

  auto strand = std::make_unique<Strand>();
  strand->default_ask = SessionThreadAsk(config);
  if (pool_ != nullptr) {
    // All sessions of one service share the one pool; per-request grants
    // re-cap the lease, so whatever pools or thread counts the caller
    // configured are overridden — the admission controller, not the
    // session config, decides how wide a request runs.
    strand->lease = ThreadPool::Lease(pool_.get(), 1);
    config.binning.pool = strand->lease.get();
    config.watermark.pool = strand->lease.get();
  } else {
    // thread_cap == 1: every request runs serial on its strand. Zero the
    // knobs too, or the session would build a private pool of its own.
    config.binning.pool = nullptr;
    config.watermark.pool = nullptr;
    config.binning.num_threads = 1;
    config.watermark.num_threads = 1;
  }
  SessionRecovery recovered;
  if (config_.journal_dir.empty()) {
    strand->session = std::make_unique<ProtectionSession>(
        std::move(metrics), std::move(config), session);
  } else {
    // Create-or-recover, race-free via the journal's O_EXCL create: a
    // fresh name starts a new journal, an existing one replays it. The
    // pools were leased into `config` above, so the recovered session
    // shares the service pool like any other (replay itself runs serial
    // — the lease starts at limit 1 — which is fine: every stage is
    // byte-identical at any width).
    const std::string path =
        config_.journal_dir + "/" + JournalBaseName(name) + ".wal";
    auto created = SessionJournal::Create(path);
    if (created.ok()) {
      strand->session = std::make_unique<ProtectionSession>(
          std::move(metrics), std::move(config), session);
      PRIVMARK_RETURN_NOT_OK(
          strand->session->AttachJournal(std::move(*created)));
    } else if (created.status().code() == StatusCode::kAlreadyExists) {
      PRIVMARK_ASSIGN_OR_RETURN(
          RecoveredSession rec,
          ProtectionSession::Recover(path, std::move(metrics),
                                     std::move(config), session));
      strand->session = std::move(rec.session);
      recovered.recovered = true;
      recovered.batches_applied = rec.batches_applied;
      recovered.epochs_sealed = rec.epochs_sealed;
      recovered.tail_truncated = rec.tail_truncated;
      recovered.emitted = std::move(rec.emitted);
    } else {
      return created.status();
    }
  }
  if (recovery != nullptr) *recovery = std::move(recovered);
  Strand* raw = strand.get();
  strands_.emplace(name, std::move(strand));
  raw->thread = std::thread([this, raw] { RunStrand(raw); });
  return Status::OK();
}

ServiceFuture PrivmarkService::FailedFuture(Status status) {
  std::promise<Result<ServiceResponse>> promise;
  ServiceFuture future = promise.get_future();
  promise.set_value(Result<ServiceResponse>(std::move(status)));
  return future;
}

ServiceFuture PrivmarkService::Submit(ServiceRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return FailedFuture(
        Status::InvalidArgument("Submit: service is shut down"));
  }
  ReapFinishedLocked();
  auto it = strands_.find(request.session);
  if (it == strands_.end()) {
    return FailedFuture(
        Status::KeyError("Submit: unknown session '" + request.session + "'"));
  }
  Strand* strand = it->second.get();
  if (strand->closing) {
    return FailedFuture(Status::InvalidArgument(
        "Submit: session '" + request.session + "' is closed"));
  }

  const bool closes = request.kind == RequestKind::kCloseSession;
  // Queue-depth shed — but never for CloseSession: an overloaded
  // session must still be closable, and the close itself adds no work
  // beyond what is already queued.
  if (!closes && config_.max_queue_depth > 0) {
    const size_t depth = strand->queue.size();
    if (depth >= config_.max_queue_depth) {
      // Crude service-time guess (~50ms/request) for the typed hint.
      const int64_t retry_after_ms = 50 * static_cast<int64_t>(depth);
      return FailedFuture(
          Status::ResourceExhausted("Submit: session '" + request.session +
                                    "' queue is full (" +
                                    std::to_string(depth) + " pending)")
              .WithRetryAfterMs(retry_after_ms));
    }
  }
  const int64_t deadline_ms = request.deadline_ms == kDeadlineFromConfig
                                  ? config_.default_deadline_ms
                                  : request.deadline_ms;
  ServiceQueue::Item item;
  item.request = std::move(request);
  if (deadline_ms > 0) {
    item.has_deadline = true;
    item.deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(deadline_ms);
  }
  ServiceFuture future = item.done.get_future();
  if (!strand->queue.Push(std::move(item))) {
    return FailedFuture(Status::InvalidArgument(
        "Submit: session queue is closed"));
  }
  if (closes) {
    // Mark-then-close under mu_: every earlier Submit already queued, no
    // later one passes the `closing` check, and the strand drains what
    // was accepted — the close request itself runs last.
    strand->closing = true;
    strand->queue.Close();
  }
  return future;
}

ServiceFuture PrivmarkService::ProtectBatch(const std::string& session,
                                            Table batch, size_t num_threads) {
  ServiceRequest request;
  request.kind = RequestKind::kProtectBatch;
  request.session = session;
  request.table = std::move(batch);
  request.num_threads = num_threads;
  return Submit(std::move(request));
}

ServiceFuture PrivmarkService::Flush(const std::string& session,
                                     size_t num_threads) {
  ServiceRequest request;
  request.kind = RequestKind::kFlush;
  request.session = session;
  request.num_threads = num_threads;
  return Submit(std::move(request));
}

ServiceFuture PrivmarkService::Detect(const std::string& session,
                                      Table concatenated, size_t num_threads) {
  ServiceRequest request;
  request.kind = RequestKind::kDetect;
  request.session = session;
  request.table = std::move(concatenated);
  request.num_threads = num_threads;
  return Submit(std::move(request));
}

ServiceFuture PrivmarkService::DetectFingerprint(
    const std::string& session, Table concatenated,
    std::shared_ptr<const KeyRegistry> registry, size_t num_threads) {
  ServiceRequest request;
  request.kind = RequestKind::kDetectFingerprint;
  request.session = session;
  request.table = std::move(concatenated);
  request.registry = std::move(registry);
  request.num_threads = num_threads;
  return Submit(std::move(request));
}

ServiceFuture PrivmarkService::DetectFingerprintStreamed(
    const std::string& session, Table concatenated,
    std::shared_ptr<const KeyRegistry> registry, FingerprintShardSink sink,
    size_t num_threads) {
  ServiceRequest request;
  request.kind = RequestKind::kDetectFingerprint;
  request.session = session;
  request.table = std::move(concatenated);
  request.registry = std::move(registry);
  request.fingerprint_sink = std::move(sink);
  request.num_threads = num_threads;
  return Submit(std::move(request));
}

ServiceFuture PrivmarkService::CloseSession(const std::string& session) {
  ServiceRequest request;
  request.kind = RequestKind::kCloseSession;
  request.session = session;
  return Submit(std::move(request));
}

void PrivmarkService::RunStrand(Strand* strand) {
  ServiceQueue::Item item;
  while (strand->queue.Pop(&item)) {
    if (item.has_deadline &&
        std::chrono::steady_clock::now() >= item.deadline) {
      // Expired while queued: fail without executing. The session state
      // is untouched, so the stream stays byte-identical to a replay
      // that never submitted this request.
      item.done.set_value(Result<ServiceResponse>(Status::DeadlineExceeded(
          std::string("request '") + RequestKindToString(item.request.kind) +
          "' spent its whole deadline queued; it was not executed")));
      continue;
    }
    Result<ServiceResponse> result = Execute(strand, &item);
    item.done.set_value(std::move(result));
  }
  strand->finished.store(true, std::memory_order_release);
}

void PrivmarkService::ReapFinishedLocked() {
  for (auto it = strands_.begin(); it != strands_.end();) {
    Strand& strand = *it->second;
    if (strand.closing &&
        strand.finished.load(std::memory_order_acquire)) {
      if (strand.thread.joinable()) strand.thread.join();  // instant
      it = strands_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<ServiceResponse> PrivmarkService::Execute(Strand* strand,
                                                 ServiceQueue::Item* item) {
  ServiceRequest* request = &item->request;
  ServiceResponse response;
  response.kind = request->kind;

  if (request->kind == RequestKind::kCloseSession) {
    // Pure bookkeeping — no data-parallel work, so no admission round
    // trip; earlier requests already drained (FIFO strand).
    const ProtectionSession& session = *strand->session;
    response.stats.rows_ingested = session.rows_ingested();
    response.stats.rows_emitted = session.rows_emitted();
    response.stats.rows_suppressed = session.rows_suppressed();
    response.stats.epochs = session.epochs();
    response.journal_status = session.journal_status();
    return response;
  }

  const size_t ask = request->num_threads == kSessionThreads
                         ? strand->default_ask
                         : request->num_threads;
  // Admission waits at most the request's remaining deadline, and sheds
  // outright behind max_admission_waiters queued peers.
  int64_t admission_timeout_ms = -1;
  if (item->has_deadline) {
    const auto remaining = item->deadline - std::chrono::steady_clock::now();
    admission_timeout_ms = std::max<int64_t>(
        0, std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
               .count());
  }
  size_t granted = 0;
  PRIVMARK_ASSIGN_OR_RETURN(
      granted, admission_.AcquireWithin(ask, admission_timeout_ms,
                                        config_.max_admission_waiters));
  struct GrantGuard {
    AdmissionController* controller;
    size_t granted;
    ~GrantGuard() { controller->Release(granted); }
  } grant_guard{&admission_, granted};
  response.threads_granted = granted;
  // The grant IS the lease width: agents shard by the lease's reported
  // worker count, so at most `granted` of the shared workers ever touch
  // this request (the small-fix guarantee: granted, not requested).
  if (strand->lease != nullptr) strand->lease->set_limit(granted);

  try {
    switch (request->kind) {
      case RequestKind::kProtectBatch: {
        PRIVMARK_ASSIGN_OR_RETURN(response.ingest,
                                  strand->session->Ingest(request->table));
        break;
      }
      case RequestKind::kFlush: {
        PRIVMARK_ASSIGN_OR_RETURN(response.epoch, strand->session->Flush());
        break;
      }
      case RequestKind::kDetect: {
        PRIVMARK_ASSIGN_OR_RETURN(
            response.reports,
            strand->session->DetectAcrossEpochs(request->table));
        break;
      }
      case RequestKind::kDetectFingerprint: {
        if (request->registry == nullptr) {
          return Status::InvalidArgument(
              "DetectFingerprint: request carries no key registry");
        }
        PRIVMARK_ASSIGN_OR_RETURN(
            response.fingerprints,
            strand->session->FingerprintAcrossEpochsStreamed(
                request->table, *request->registry,
                request->fingerprint_sink));
        break;
      }
      case RequestKind::kCloseSession:
        break;  // handled above
    }
  } catch (const std::exception& e) {
    // The core library reports data-dependent failures as Status; an
    // exception here is a programming error surfaced by the pool. Turn
    // it into a failed future rather than losing the strand.
    return Status::InvalidArgument(std::string("request '") +
                                   RequestKindToString(request->kind) +
                                   "' threw: " + e.what());
  }
  // Surface the session's sticky durability state on every response: a
  // post-commit seal failure degrades the epoch-boundary barrier without
  // failing any request, so this is the client's only signal.
  response.journal_status = strand->session->journal_status();
  return response;
}

void PrivmarkService::Shutdown() {
  // Unbounded: never abandons, so the Status is always OK.
  (void)Shutdown(-1);
}

Status PrivmarkService::Shutdown(int64_t deadline_ms) {
  // Take ownership of every strand under the lock: a concurrent (or
  // repeated) Shutdown finds an empty registry and has nothing to join,
  // so no strand is ever joined twice or destroyed under an iterator.
  std::unordered_map<std::string, std::unique_ptr<Strand>> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [name, strand] : strands_) {
      strand->queue.Close();  // idempotent; accepted items still drain
    }
    taken = std::move(strands_);
    strands_.clear();
  }
  size_t abandoned = 0;
  if (deadline_ms >= 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    for (auto& [name, strand] : taken) {
      // The strand sets `finished` as its last action; poll it rather
      // than joining, because a join cannot be abandoned halfway.
      while (!strand->finished.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      if (!strand->finished.load(std::memory_order_acquire)) {
        abandoned += strand->queue.Abandon(Status::DeadlineExceeded(
            "service shutdown deadline passed before this request ran"));
      }
    }
  }
  // Joins are bounded once queues are drained or abandoned: each blocks
  // only for the strand's in-flight request, which always completes —
  // it cannot be safely interrupted mid-epoch.
  for (auto& [name, strand] : taken) {
    if (strand->thread.joinable()) strand->thread.join();
  }
  if (abandoned > 0) {
    return Status::DeadlineExceeded(
        "Shutdown: abandoned " + std::to_string(abandoned) +
        " queued request(s) at the " + std::to_string(deadline_ms) +
        "ms deadline; abandoned requests never executed and can be "
        "resubmitted after recovery");
  }
  return Status::OK();
}

size_t PrivmarkService::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& [name, strand] : strands_) {
    if (!strand->closing) ++live;
  }
  return live;
}

size_t PrivmarkService::num_strands() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strands_.size();
}

}  // namespace privmark
